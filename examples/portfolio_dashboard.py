#!/usr/bin/env python
"""Portfolio dashboard: batch why-not analysis + influence ranking.

A manufacturer audits its *whole* product line at once:

1. rank the catalogue's most influential products (reverse top-k size,
   Vlachou et al. [33]);
2. for each of the manufacturer's own products, find the customers it
   unexpectedly misses and batch-answer the why-not questions (typed
   ``Question``\\ s with correlation ids through ``Session.ask_batch``);
3. for the weakest product, show the 2-D geometry (dataset + safe
   region) in the terminal and quantify the influence the MQP
   refinement would buy.

Artifacts (JSON report, cached dataset) land in ``./dashboard_out``.

Run:  python examples/portfolio_dashboard.py
"""

from pathlib import Path

import numpy as np

from repro import Question, Session
from repro.core.safe_region import safe_region_polygon
from repro.core.types import WhyNotQuery
from repro.core.mqp import modify_query_point
from repro.data import preference_set
from repro.data.io import dataset_cache, save_results
from repro.rtopk import influence_gain, most_influential
from repro.rtopk.bichromatic import brtopk_naive
from repro.viz import render_plane

OUT = Path("dashboard_out")
SEED = 5
K = 8

catalogue = dataset_cache(OUT / "cache", "anticorrelated", 800, 2,
                          seed=SEED)
panel = preference_set(120, 2, seed=SEED + 1)

print("== 1. Market influence ranking (top 5 of the catalogue) ==")
for pid, influence in most_influential(catalogue, panel, K, 5):
    print(f"  product {pid:>4}: {influence:>3} of {len(panel)} "
          f"customers shortlist it")

# The manufacturer's products: three mid-field offerings.
our_products = np.quantile(catalogue, [0.30, 0.45, 0.60], axis=0)

print("\n== 2. Batch why-not audit of our line ==")
session = Session(catalogue)
questions = []
targets = []
for j, q in enumerate(our_products):
    members = set(brtopk_naive(catalogue, panel, q, K).tolist())
    missing = [i for i in range(len(panel)) if i not in members]
    # Ask about the three most mainstream missing customers.
    centre = np.full(2, 0.5)
    missing.sort(key=lambda i: float(np.linalg.norm(panel[i] - centre)))
    chosen = panel[missing[:3]]
    targets.append((q, chosen))
    questions.append(Question(q=q, k=K, why_not=chosen,
                              algorithm="mqp", id=f"product-{j}"))

answers = session.ask_batch(questions)
for answer in answers:
    if answer.error is not None:
        print(f"  {answer.question_id}: SKIPPED "
              f"({answer.error.message})")
    else:
        print(f"  {answer.question_id}: penalty "
              f"{answer.penalty:.4f}, valid={answer.valid}")
print("  summary:", session.summarize(answers))

save_results(OUT / "whynot_report.json",
             [answer.result for answer in answers if answer.ok],
             context={"k": K, "algorithm": "mqp"})
print(f"  report written to {OUT / 'whynot_report.json'}")

print("\n== 3. Geometry of the weakest product ==")
answered = [answer for answer in answers if answer.ok]
worst = max(answered, key=lambda answer: answer.penalty)
q, chosen = targets[worst.index]
polygon = safe_region_polygon(catalogue, q, chosen, K)
print(render_plane(catalogue[:200], q, polygon=polygon,
                   width=56, height=18, lower=(0, 0),
                   upper=tuple(np.maximum(q * 1.3, 0.6))))

query = WhyNotQuery(points=catalogue, q=q, k=K, why_not=chosen)
res = modify_query_point(query)
gain = influence_gain(catalogue, panel, q, res.q_refined, K)
print(f"\nMQP refinement q -> {np.round(res.q_refined, 3)} "
      f"(penalty {res.penalty:.4f})")
print(f"influence: {gain['before']} -> {gain['after']} customers "
      f"({gain['gain']:+d}, {gain['relative_gain']:+.0%})")
