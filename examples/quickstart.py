#!/usr/bin/env python
"""Quickstart: the paper's running example, on the typed Session API.

Apple's computer q(4, 4) (price, heat) competes against seven other
machines for four customers.  The reverse top-3 query says Tony and
Anna would shortlist q — but Kevin and Julia, existing customers,
would not.  Why?  And what is the cheapest fix?

The last section shows the deprecated pre-Session facade (``WQRTQ``)
still answering identically — it emits a ``DeprecationWarning`` but
keeps old scripts working.

Run:  python examples/quickstart.py
"""

import warnings

import numpy as np

from repro import Question, Session

# Figure 1(a): the product dataset P (price, heat production).
computers = np.array([
    [2.0, 1.0],   # p1
    [6.0, 3.0],   # p2
    [1.0, 9.0],   # p3
    [9.0, 3.0],   # p4
    [7.0, 5.0],   # p5
    [5.0, 8.0],   # p6
    [3.0, 7.0],   # p7
])

# Figure 1(b): customer preferences (weight on price, weight on heat).
customers = {
    "Julia": [0.9, 0.1],
    "Tony": [0.5, 0.5],
    "Anna": [0.3, 0.7],
    "Kevin": [0.1, 0.9],
}
names = list(customers)
weights = np.array(list(customers.values()))

q = np.array([4.0, 4.0])   # Apple's computer

session = Session(computers)

print("== Reverse top-3 query ==")
members = session.reverse_topk(q, 3, weights=weights)
print("Customers shortlisting q:",
      ", ".join(names[i] for i in members))

missing = session.missing_weights(q, 3, weights)
missing_names = [names[i] for i in range(len(names))
                 if i not in set(members.tolist())]
print("Why-not customers:", ", ".join(missing_names))

print("\n== Why not?  (aspect i) ==")
probe = Question(q=q, k=3, why_not=missing)
for name, explanation in zip(missing_names, session.explain(probe)):
    culprits = ", ".join(f"p{int(i) + 1}"
                         for i in explanation.culprit_ids)
    print(f"{name}: q ranks {explanation.rank_of_q}; beaten by "
          f"{culprits}")

print("\n== How to fix it?  (aspect ii) ==")
# One typed Question per strategy; each carries its own algorithm and
# options, and the three are answered through one warmed session.
questions = [
    Question(q=q, k=3, why_not=missing, algorithm="mqp",
             id="fix-product"),
    Question(q=q, k=3, why_not=missing, algorithm="mwk",
             options={"sample_size": 800}, id="fix-preferences"),
    Question(q=q, k=3, why_not=missing, algorithm="mqwk",
             options={"sample_size": 400}, id="fix-both"),
]
answers = session.ask_batch(questions)
# Failures come back as Answers with `error` set, never as raised
# exceptions — check the channel before unpacking results.
assert all(a.ok for a in answers), [a.error for a in answers]
mqp, mwk, mqwk = (a.result for a in answers)

print(f"1. Modify the product:  q -> {np.round(mqp.q_refined, 3)} "
      f"(penalty {mqp.penalty:.3f})")
print(f"2. Modify preferences:  k' = {mwk.k_refined}, "
      f"Wm' = {np.round(mwk.weights_refined, 3).tolist()} "
      f"(penalty {mwk.penalty:.3f})")
print(f"3. Meet in the middle:  q -> {np.round(mqwk.q_refined, 3)}, "
      f"k' = {mqwk.k_refined}, "
      f"Wm' = {np.round(mqwk.weights_refined, 3).tolist()} "
      f"(penalty {mqwk.penalty:.3f})")

print("\n== The deprecated facade still works (and warns) ==")
with warnings.catch_warnings(record=True) as caught:
    warnings.simplefilter("always", DeprecationWarning)
    # The point of this section is to demo the deprecation shim.
    from repro import WQRTQ  # reprolint: disable=DEPRECATED-API

    engine = WQRTQ(computers, q, k=3, weights=weights)
    legacy = engine.modify_query_point(missing)
(warning,) = [w for w in caught
              if issubclass(w.category, DeprecationWarning)]
print(f"DeprecationWarning: {warning.message}")
same = bool(np.isclose(legacy.penalty, mqp.penalty))
print(f"WQRTQ answers identically to Session.ask: {same}")
