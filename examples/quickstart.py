#!/usr/bin/env python
"""Quickstart: the paper's running example, in ~40 lines.

Apple's computer q(4, 4) (price, heat) competes against seven other
machines for four customers.  The reverse top-3 query says Tony and
Anna would shortlist q — but Kevin and Julia, existing customers,
would not.  Why?  And what is the cheapest fix?

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import WQRTQ

# Figure 1(a): the product dataset P (price, heat production).
computers = np.array([
    [2.0, 1.0],   # p1
    [6.0, 3.0],   # p2
    [1.0, 9.0],   # p3
    [9.0, 3.0],   # p4
    [7.0, 5.0],   # p5
    [5.0, 8.0],   # p6
    [3.0, 7.0],   # p7
])

# Figure 1(b): customer preferences (weight on price, weight on heat).
customers = {
    "Julia": [0.9, 0.1],
    "Tony": [0.5, 0.5],
    "Anna": [0.3, 0.7],
    "Kevin": [0.1, 0.9],
}
names = list(customers)
weights = np.array(list(customers.values()))

q = np.array([4.0, 4.0])   # Apple's computer

engine = WQRTQ(computers, q, k=3, weights=weights)

print("== Reverse top-3 query ==")
members = engine.reverse_topk()
print("Customers shortlisting q:",
      ", ".join(names[i] for i in members))

missing = engine.missing_weights()
missing_names = [names[i] for i in range(len(names))
                 if i not in set(members.tolist())]
print("Why-not customers:", ", ".join(missing_names))

print("\n== Why not?  (aspect i) ==")
for name, explanation in zip(missing_names, engine.explain(missing)):
    culprits = ", ".join(f"p{int(i) + 1}"
                         for i in explanation.culprit_ids)
    print(f"{name}: q ranks {explanation.rank_of_q}; beaten by "
          f"{culprits}")

print("\n== How to fix it?  (aspect ii) ==")
rng = np.random.default_rng(0)

mqp = engine.modify_query_point(missing)
print(f"1. Modify the product:  q -> {np.round(mqp.q_refined, 3)} "
      f"(penalty {mqp.penalty:.3f})")

mwk = engine.modify_weights_and_k(missing, sample_size=800, rng=rng)
print(f"2. Modify preferences:  k' = {mwk.k_refined}, "
      f"Wm' = {np.round(mwk.weights_refined, 3).tolist()} "
      f"(penalty {mwk.penalty:.3f})")

mqwk = engine.modify_all(missing, sample_size=400, rng=rng)
print(f"3. Meet in the middle:  q -> {np.round(mqwk.q_refined, 3)}, "
      f"k' = {mqwk.k_refined}, "
      f"Wm' = {np.round(mqwk.weights_refined, 3).tolist()} "
      f"(penalty {mqwk.penalty:.3f})")
