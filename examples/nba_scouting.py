#!/usr/bin/env python
"""NBA scouting: which coaching styles would draft this player?

The paper's NBA experiment views each player season as a point in a
13-dimensional stat space and each "coach" as a weighting vector over
those stats.  A *reverse top-k* query asks: which coaching styles rank
our prospect among their k best options?  A *why-not* question asks:
coach X passed on the prospect — what (minimal) stat improvement, or
what (minimal) shift in the coach's priorities, would change that?

Uses the NBA-like stand-in dataset (the real file is not
redistributable; see DESIGN.md §4).  Smaller coordinates = better.

Run:  python examples/nba_scouting.py
"""

import numpy as np

from repro import Question, Session
from repro.data import nba_like, preference_set
from repro.data.synthetic import query_point_with_rank

SEED = 3
N_PLAYERS = 5_000     # scaled-down season database
DIM = 13
K = 15

players = nba_like(n=N_PLAYERS, d=DIM, seed=SEED)

# 50 coaching styles; mildly concentrated (everyone values scoring).
coaches = preference_set(50, DIM, seed=SEED + 1, concentration=2.0)

# Our prospect: a player ranked ~40th for an all-round coach — solid
# but not a lock.
allround = np.full(DIM, 1.0 / DIM)
prospect = query_point_with_rank(players, allround, 40) * 1.01

session = Session(players)

drafting = session.reverse_topk(prospect, K, weights=coaches)
print(f"{len(drafting)} of 50 coaching styles would draft the "
      f"prospect at k = {K}")

missing = session.missing_weights(prospect, K, coaches)
if len(missing) == 0:
    raise SystemExit("every coach already drafts the prospect")

# The scout cares about one specific sceptical coach.
target = missing[:1]
print(f"\nTarget sceptic's priorities (top 3 stats): "
      f"{np.argsort(target[0])[::-1][:3].tolist()}")

probe = Question(q=prospect, k=K, why_not=target)
[expl] = session.explain(probe, max_culprits=5)
print(f"The sceptic ranks the prospect {expl.rank_of_q}"
      f" (needs <= {K}); {expl.rank_of_q - 1} players stand in the "
      f"way, e.g. ids {expl.culprit_ids[:5].tolist()}")

print("\nOption 1 — training plan (MQP): improve the stat line")
mqp = session.ask(Question(q=prospect, k=K, why_not=target,
                           algorithm="mqp")).result
delta = prospect - mqp.q_refined
improved = np.argsort(delta)[::-1][:3]
print(f"  focus stats {improved.tolist()} "
      f"(largest required improvements); penalty {mqp.penalty:.4f}")

print("\nOption 2 — pitch deck (MWK): shift the coach's priorities")
mwk = session.ask(Question(q=prospect, k=K, why_not=target,
                           algorithm="mwk",
                           options={"sample_size": 800}),
                  seed=SEED).result
shift = np.abs(mwk.weights_refined[0] - target[0])
print(f"  k' = {mwk.k_refined} (Δk = {mwk.delta_k}); "
      f"biggest priority shifts at stats "
      f"{np.argsort(shift)[::-1][:3].tolist()}; "
      f"penalty {mwk.penalty:.4f}")

print("\nOption 3 — both (MQWK)")
mqwk = session.ask(Question(q=prospect, k=K, why_not=target,
                            algorithm="mqwk",
                            options={"sample_size": 200}),
                   seed=SEED).result
print(f"  penalty {mqwk.penalty:.4f} "
      f"(q-share {mqwk.q_penalty_share:.4f}, "
      f"preference-share {mqwk.wk_penalty_share:.4f})")
