#!/usr/bin/env python
"""Market analysis: positioning a product against a customer panel.

Scenario (the paper's motivating application): a manufacturer launches
a product into a market of 5,000 competitors and surveys a panel of
200 customers, each described by a preference vector over four
attributes (price, weight, power draw, noise — all smaller-is-better).

The script:

1. runs the bichromatic reverse top-10 query to find the product's
   current fans;
2. picks the why-not customers the marketing team cares about (the
   panel members closest to the simplex centre — the "mainstream");
3. compares the three WQRTQ refinement strategies over one warmed
   ``Session`` — MQP and MQWK in one ``ask_batch``, MWK *streamed*
   through ``ask_stream`` with a sample budget, printing each
   refinement round as its penalty converges — and prints the
   cheapest way to win the mainstream back.

Run:  python examples/market_analysis.py
"""

import numpy as np

from repro import Question, Session
from repro.data import independent, preference_set

RNG_SEED = 7
N_PRODUCTS = 5_000
N_CUSTOMERS = 200
DIM = 4
K = 10

products = independent(N_PRODUCTS, DIM, seed=RNG_SEED)
panel = preference_set(N_CUSTOMERS, DIM, seed=RNG_SEED + 1)

# Our product: upper-quartile attributes, then 15% better — a solid
# but not dominant offering.
q = np.quantile(products, 0.25, axis=0) * 0.85

session = Session(products)

print(f"Product q = {np.round(q, 3)} vs {N_PRODUCTS} competitors, "
      f"{N_CUSTOMERS}-customer panel, k = {K}")

fans = session.reverse_topk(q, K, weights=panel)
print(f"\nCurrent fans: {len(fans)} / {N_CUSTOMERS} panel members")

# Mainstream customers = closest to the uniform preference.
missing_all = session.missing_weights(q, K, panel)
centre = np.full(DIM, 1.0 / DIM)
dist_to_centre = np.linalg.norm(missing_all - centre, axis=1)
mainstream = missing_all[np.argsort(dist_to_centre)[:3]]
print("Target why-not customers (most mainstream non-fans):")
for w in mainstream:
    print(f"  w = {np.round(w, 3)}")

print("\nWhy do they skip q?")
probe = Question(q=q, k=K, why_not=mainstream)
for expl in session.explain(probe, max_culprits=3):
    print(f"  {expl.describe(K)}")

print("\nRefinement options:")
strategies = [
    Question(q=q, k=K, why_not=mainstream, algorithm="mqp",
             id="redesign"),
    Question(q=q, k=K, why_not=mainstream, algorithm="mqwk",
             options={"sample_size": 200}, id="compromise"),
]
answers = session.ask_batch(strategies, seed=RNG_SEED)
assert all(a.ok for a in answers), [a.error for a in answers]
mqp, mqwk = (a.result for a in answers)

# The MWK strategy is answered *anytime*-style: a sample budget on
# the Question and ask_stream instead of a blocking ask, so the
# dashboard can show the influence campaign's cost converging while
# refinement is still examining samples.  The final streamed answer
# is exactly what a blocking ask with the same budget returns.
print("  MWK  : refining the influence strategy live...")
influence = Question(q=q, k=K, why_not=mainstream, algorithm="mwk",
                     budget={"sample_budget": 800}, id="influence")
for partial in session.ask_stream(influence, seed=RNG_SEED + 1):
    assert partial.ok, partial.error
    print(f"         round {partial.quality.rounds}: "
          f"{partial.quality.samples_examined:>4d} samples "
          f"-> penalty {partial.penalty:.4f}")
    mwk_answer = partial
assert mwk_answer.quality.converged
mwk = mwk_answer.result
print(f"  MQP  : redesign to q' = {np.round(mqp.q_refined, 3)}"
      f"  -> penalty {mqp.penalty:.4f}")
print(f"  MWK  : influence preferences, k' = {mwk.k_refined}"
      f" (Δk = {mwk.delta_k}, ΔW = {mwk.delta_w:.3f})"
      f"  -> penalty {mwk.penalty:.4f}")
print(f"  MQWK : joint compromise, q' = {np.round(mqwk.q_refined, 3)},"
      f" k' = {mqwk.k_refined}  -> penalty {mqwk.penalty:.4f}")

best = min((mqp.penalty, "redesign the product (MQP)"),
           (mwk.penalty, "influence customer preferences (MWK)"),
           (mqwk.penalty, "a joint compromise (MQWK)"))
print(f"\nCheapest strategy: {best[1]} at penalty {best[0]:.4f}")
