#!/usr/bin/env python
"""Preference negotiation: tolerance trade-offs and the mono mode.

Two studies on a 2-D catalogue (price, delivery time):

1. **Monochromatic why-not.**  Without a known customer panel, the
   reverse top-k result is a *region* of weighting space.  We compute
   it exactly, pick why-not vectors outside it, and show the exact
   2-D safe region polygon MQP optimizes over.

2. **Bargaining curve.**  The joint penalty Eq. (5) blends the
   manufacturer's cost (gamma) and the customers' cost (lambda).
   Sweeping gamma traces the compromise frontier between "change the
   product" and "change the customers' minds" — the bargaining model
   the paper motivates via Goh et al. [13].  Each sweep point is a
   ``Session`` with its own ``PenaltyConfig`` riding the *same*
   ``DatasetContext``, so the R-tree and FindIncom partitions are
   paid once for the whole curve.

Run:  python examples/preference_negotiation.py
"""

import numpy as np

from repro import DatasetContext, Question, Session
from repro.core.penalty import PenaltyConfig
from repro.core.safe_region import safe_region_polygon
from repro.data import anticorrelated

SEED = 11

catalogue = anticorrelated(400, 2, seed=SEED)
q = np.array([0.40, 0.40])   # competitive for balanced customers only
K = 8

session = Session(catalogue)

print("== 1. Monochromatic reverse top-8 ==")
intervals = session.reverse_topk(q, K)
if intervals:
    for iv in intervals:
        print(f"q is a top-{K} choice for w1 in "
              f"[{iv.lo:.3f}, {iv.hi:.3f}]")
else:
    print(f"no weighting vector ranks q in its top-{K}")

# Why-not vectors: just outside the qualifying region (cf. A and D in
# the paper's Figure 2(b)).
lo = intervals[0].lo if intervals else 0.5
hi = intervals[-1].hi if intervals else 0.5
why_not = np.array([
    [max(lo - 0.08, 0.01), 1.0 - max(lo - 0.08, 0.01)],
    [min(hi + 0.08, 0.99), 1.0 - min(hi + 0.08, 0.99)],
])
print(f"why-not vectors: {np.round(why_not, 3).tolist()}")

polygon = safe_region_polygon(catalogue, q, why_not, K)
print(f"\nExact safe region: {len(polygon.vertices)}-gon, "
      f"area {polygon.area():.4f} "
      f"(of the {float(np.prod(q)):.4f} box [0, q])")

mqp = session.ask(Question(q=q, k=K, why_not=why_not,
                           algorithm="mqp")).result
print(f"MQP optimum q' = {np.round(mqp.q_refined, 3)} "
      f"(penalty {mqp.penalty:.4f}); inside region: "
      f"{polygon.contains(tuple(mqp.q_refined), atol=1e-6)}")

print("\n== 2. Bargaining curve (gamma = manufacturer tolerance) ==")
print(f"{'gamma':>6} {'penalty':>9} {'q-share':>9} {'W,k-share':>10}"
      f" {'interpretation'}")
# One shared context for the whole sweep: only the penalty weights
# change between the five sessions, never the cached artifacts.
shared = DatasetContext(catalogue)
joint = Question(q=q, k=K, why_not=why_not, algorithm="mqwk",
                 options={"sample_size": 300})
for gamma in (0.1, 0.3, 0.5, 0.7, 0.9):
    config = PenaltyConfig(gamma=gamma, lam=1.0 - gamma)
    nego = Session(context=shared, penalty_config=config)
    res = nego.ask(joint, seed=SEED).result
    if res.q_penalty_share > res.wk_penalty_share * 2:
        story = "mostly redesign"
    elif res.wk_penalty_share > res.q_penalty_share * 2:
        story = "mostly persuasion"
    else:
        story = "genuine compromise"
    print(f"{gamma:>6.1f} {res.penalty:>9.4f} "
          f"{res.q_penalty_share:>9.4f} {res.wk_penalty_share:>10.4f}"
          f" {story}")

print("\nReading: a small gamma makes product changes cheap, so the"
      "\noptimum leans on redesign; a large gamma shifts the burden"
      "\nto customer persuasion (Wm, k changes).")
