"""Batch executor: parallel determinism, timing, and cache reuse.

The last test class asserts the PR's acceptance criterion: answering a
20-question batch (several customer panels per product) over one
catalogue through a shared :class:`DatasetContext` performs at least
2x less index work (R-tree builds + ``FindIncom`` traversals) than
answering each question cold.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.batch import WhyNotBatch
from repro.data import independent, preference_set, query_point_with_rank
from repro.engine.context import DatasetContext
from repro.engine.executor import answer_one, execute_batch
from repro.topk.scan import rank_of_scan

N_PRODUCTS = 5
PANELS_PER_PRODUCT = 4
K = 10
RANK = 41


def make_questions(points, *, n_products=N_PRODUCTS,
                   panels=PANELS_PER_PRODUCT, seed=0):
    """(q, k, Wm) triples: ``panels`` panels per distinct product."""
    questions = []
    for j in range(n_products):
        base = preference_set(1, points.shape[1],
                              seed=seed + 50 + j)[0]
        q = query_point_with_rank(points, base, RANK)
        added = 0
        offset = 0
        while added < panels:
            wm = preference_set(1, points.shape[1],
                                seed=seed + 1000 * j + offset)
            offset += 1
            if rank_of_scan(points, wm[0], q) > K:
                questions.append((q, K, wm))
                added += 1
    return questions


@pytest.fixture(scope="module")
def points():
    return independent(800, 3, seed=21)


@pytest.fixture(scope="module")
def questions(points):
    qs = make_questions(points)
    assert len(qs) == N_PRODUCTS * PANELS_PER_PRODUCT
    return qs


def report_fingerprint(items):
    """Everything that should be identical across serial/parallel."""
    out = []
    for item in items:
        entry = {"index": item.index, "error": item.error,
                 "valid": item.valid, "penalty": item.penalty}
        result = item.result
        if result is not None:
            for attr in ("penalty", "k_refined"):
                if hasattr(result, attr):
                    entry[attr] = getattr(result, attr)
            for attr in ("q_refined", "weights_refined"):
                if hasattr(result, attr):
                    entry[attr] = np.asarray(
                        getattr(result, attr)).tolist()
        out.append(entry)
    return out


class TestParallelDeterminism:
    @pytest.mark.parametrize("algorithm", ["mqp", "mwk", "mqwk"])
    def test_serial_equals_parallel(self, points, questions, algorithm):
        sample = 40 if algorithm == "mqwk" else 80
        serial = execute_batch(DatasetContext(points), questions,
                               algorithm, sample_size=sample, seed=3,
                               workers=1)
        parallel = execute_batch(DatasetContext(points), questions,
                                 algorithm, sample_size=sample, seed=3,
                                 workers=4)
        assert report_fingerprint(serial) == report_fingerprint(parallel)

    def test_batch_api_serial_equals_parallel(self, points, questions):
        def run(workers):
            batch = WhyNotBatch(points)
            for q, k, wm in questions:
                batch.add_question(q, k, wm)
            return batch.run("mwk", sample_size=60, seed=5,
                             workers=workers)

        a, b = run(1), run(3)
        assert report_fingerprint(a.items) == report_fingerprint(b.items)
        assert a.summary()["answered"] == len(questions)

    def test_failing_items_identical_serial_parallel(self, points,
                                                     questions):
        """Batches containing failing items must still be
        bit-identical between the serial and threaded paths."""
        wm = preference_set(1, 3, seed=2)
        bad = (np.zeros(3), K, wm)       # rank 1: never missing
        mixed = questions[:3] + [bad] + questions[3:6]
        serial = execute_batch(DatasetContext(points), mixed, "mwk",
                               sample_size=40, seed=2, workers=1)
        threaded = execute_batch(DatasetContext(points), mixed, "mwk",
                                 sample_size=40, seed=2, workers=3)

        def normalize(items):
            # Failed items carry penalty=nan, which never compares
            # equal to itself.
            out = report_fingerprint(items)
            for entry in out:
                if np.isnan(entry["penalty"]):
                    entry["penalty"] = None
            return out

        assert normalize(serial) == normalize(threaded)
        assert serial[3].error is not None
        assert sum(item.error is None for item in serial) == 6

    def test_item_order_preserved(self, points, questions):
        items = execute_batch(DatasetContext(points), questions, "mqp",
                              workers=4)
        assert [item.index for item in items] == \
            list(range(len(questions)))


class TestExecutionItems:
    def test_per_item_timing(self, points, questions):
        items = execute_batch(DatasetContext(points), questions[:4],
                              "mwk", sample_size=40)
        assert all(item.elapsed > 0.0 for item in items)

    def test_failure_is_isolated(self, points):
        wm = preference_set(1, 3, seed=2)
        good_q = query_point_with_rank(points, wm[0], RANK)
        items = execute_batch(
            DatasetContext(points),
            [(good_q, K, wm), (np.zeros(3), K, wm)], "mqp")
        assert items[0].error is None and items[0].valid
        assert "already has q" in items[1].error
        assert items[1].elapsed >= 0.0

    @pytest.mark.parametrize("workers", [1, 3])
    @pytest.mark.parametrize("exc_type, marker", [
        (np.linalg.LinAlgError, "singular KKT system"),
        (RuntimeError, "RuntimeError: solver state corrupted"),
    ])
    def test_unexpected_exception_is_isolated(self, points,
                                              monkeypatch, workers,
                                              exc_type, marker):
        """An exception escaping an algorithm (e.g. a LinAlgError
        from the QP solver) must become a failed item, not abort the
        batch via ``pool.map`` and lose every completed sibling.

        The registry adapters resolve the implementation through its
        module attribute at call time, so patching the algorithm
        module is seen by every entry point."""
        import repro.core.mqp as mqp_module

        real_mqp = mqp_module.modify_query_point
        poison = np.float64(0.123456789)

        def exploding_mqp(query, **kwargs):
            if query.q[0] == poison:
                raise exc_type(marker.split(": ")[-1])
            return real_mqp(query, **kwargs)

        monkeypatch.setattr(mqp_module, "modify_query_point",
                            exploding_mqp)
        wm = preference_set(1, 3, seed=2)
        good_q = query_point_with_rank(points, wm[0], RANK)
        bad_q = good_q.copy()
        bad_q[0] = poison
        items = execute_batch(
            DatasetContext(points),
            [(good_q, K, wm), (bad_q, K, wm), (good_q, K, wm)],
            "mqp", workers=workers)
        assert [item.error is None for item in items] == \
            [True, False, True]
        assert marker in items[1].error
        assert not items[1].valid and np.isnan(items[1].penalty)
        assert items[0].valid and items[2].valid

    def test_unknown_algorithm(self, points):
        with pytest.raises(ValueError, match="unknown algorithm"):
            execute_batch(DatasetContext(points), [], "simplex")
        with pytest.raises(ValueError, match="unknown algorithm"):
            answer_one(DatasetContext(points), 0, np.ones(3), 2,
                       preference_set(1, 3, seed=1), "simplex")


class TestCacheReuseAcceptance:
    @pytest.mark.parametrize("algorithm", ["mwk", "mqwk"])
    def test_warm_context_halves_index_work(self, points, questions,
                                            algorithm):
        """Acceptance criterion: >= 2x fewer R-tree builds +
        FindIncom traversals with a shared context than cold."""
        sample = 30

        # Cold: every question answered against a fresh context, the
        # way independent WQRTQ calls would.
        cold_work = 0
        cold_items = []
        for index, (q, k, wm) in enumerate(questions):
            ctx = DatasetContext(points)
            cold_items.append(answer_one(
                ctx, index, q, k, wm, algorithm, sample_size=sample,
                rng=np.random.default_rng(7 + index)))
            cold_work += ctx.stats.index_work

        # Warm: one shared context for the whole batch.
        shared = DatasetContext(points)
        warm_items = execute_batch(shared, questions, algorithm,
                                   sample_size=sample, seed=7)
        warm_work = shared.stats.index_work

        # 20 questions / 5 products: cold pays 20 builds + 20
        # traversals, warm pays 1 build + 5 traversals.
        assert cold_work >= 2 * warm_work
        assert shared.stats.tree_builds == 1
        assert shared.stats.findincom_traversals == N_PRODUCTS
        # Every repeat product is a cache hit (partition cache for
        # MWK, box cache for MQWK).
        assert shared.stats.cache_hits == \
            len(questions) - N_PRODUCTS

        # Reuse must not change the answers.
        assert report_fingerprint(cold_items) == \
            report_fingerprint(warm_items)
