"""Unit tests for GRTA and the influence application layer."""

import numpy as np
import pytest

from repro.data import independent, preference_set
from repro.index import RTree
from repro.rtopk import (
    brtopk_grta,
    brtopk_naive,
    brtopk_rta,
    influence_gain,
    influence_score,
    kmeans_weights,
    most_influential,
)
from repro.core.mqp import modify_query_point
from repro.core.types import WhyNotQuery


class TestKMeansWeights:
    def test_labels_and_centroids_shapes(self):
        wts = preference_set(30, 3, seed=1)
        labels, centroids = kmeans_weights(wts, 4)
        assert labels.shape == (30,)
        assert centroids.shape == (4, 3)
        assert set(labels.tolist()) <= set(range(4))

    def test_centroids_on_simplex(self):
        wts = preference_set(50, 4, seed=2)
        _, centroids = kmeans_weights(wts, 5)
        assert centroids.sum(axis=1) == pytest.approx(np.ones(5))
        assert np.all(centroids >= 0)

    def test_clusters_capped_by_points(self):
        wts = preference_set(3, 2, seed=3)
        labels, centroids = kmeans_weights(wts, 10)
        assert len(centroids) == 3

    def test_deterministic(self):
        wts = preference_set(40, 3, seed=4)
        a = kmeans_weights(wts, 4, seed=9)
        b = kmeans_weights(wts, 4, seed=9)
        assert np.array_equal(a[0], b[0])

    def test_separated_clusters_recovered(self):
        tight_a = np.tile([0.9, 0.05, 0.05], (10, 1))
        tight_b = np.tile([0.05, 0.9, 0.05], (10, 1))
        labels, _ = kmeans_weights(np.vstack([tight_a, tight_b]), 2)
        assert len(set(labels[:10].tolist())) == 1
        assert len(set(labels[10:].tolist())) == 1
        assert labels[0] != labels[10]


class TestGRTA:
    def test_paper_example(self, paper_points, paper_weights, paper_q):
        out = brtopk_grta(paper_points, paper_weights, paper_q, 3)
        assert out.tolist() == [1, 2]

    @pytest.mark.parametrize("k", [1, 5, 15])
    @pytest.mark.parametrize("n_clusters", [None, 1, 8])
    def test_equals_naive_and_rta(self, k, n_clusters):
        pts = independent(600, 3, seed=7)
        wts = preference_set(80, 3, seed=8)
        q = np.quantile(pts, 0.15, axis=0)
        naive = brtopk_naive(pts, wts, q, k)
        grta = brtopk_grta(pts, wts, q, k, n_clusters=n_clusters)
        assert grta.tolist() == naive.tolist()
        assert brtopk_rta(pts, wts, q, k).tolist() == naive.tolist()

    def test_rtree_source(self, paper_points, paper_weights, paper_q):
        tree = RTree(paper_points)
        out = brtopk_grta(tree, paper_weights, paper_q, 3)
        assert out.tolist() == [1, 2]

    def test_invalid_k(self, paper_points, paper_weights, paper_q):
        with pytest.raises(ValueError):
            brtopk_grta(paper_points, paper_weights, paper_q, 0)


class TestInfluence:
    def test_paper_example_score(self, paper_points, paper_weights,
                                 paper_q):
        assert influence_score(paper_points, paper_weights,
                               paper_q, 3) == 2

    def test_most_influential_ordering(self, paper_points,
                                       paper_weights):
        ranking = most_influential(paper_points, paper_weights, 3, 3)
        assert len(ranking) == 3
        influences = [inf for _, inf in ranking]
        assert influences == sorted(influences, reverse=True)
        # p1 (cheap and cool) must top the list with all 4 customers.
        assert ranking[0] == (0, 4)

    def test_most_influential_with_candidates(self, paper_points,
                                              paper_weights):
        ranking = most_influential(paper_points, paper_weights, 3, 2,
                                   candidates=[1, 4, 5])
        assert {pid for pid, _ in ranking} <= {1, 4, 5}

    def test_most_influential_validates_m(self, paper_points,
                                          paper_weights):
        with pytest.raises(ValueError):
            most_influential(paper_points, paper_weights, 3, 0)

    def test_influence_gain_of_mqp(self, paper_points, paper_q,
                                   paper_weights, paper_missing):
        """MQP's refined product must win back Kevin and Julia."""
        query = WhyNotQuery(points=paper_points, q=paper_q, k=3,
                            why_not=paper_missing)
        res = modify_query_point(query)
        gain = influence_gain(paper_points, paper_weights, paper_q,
                              res.q_refined, 3)
        assert gain["before"] == 2
        assert gain["after"] == 4
        assert gain["gain"] == 2
        assert gain["relative_gain"] == pytest.approx(1.0)

    def test_influence_gain_zero_before(self, paper_points,
                                        paper_weights):
        gain = influence_gain(paper_points, paper_weights,
                              [30.0, 30.0], [0.0, 0.0], 1)
        assert gain["before"] == 0
        assert gain["relative_gain"] == float("inf")
