"""Tests for the He & Lo per-vector baseline and the paper's
Section 3 claim that it cannot replace WQRTQ's unified MWK."""

import numpy as np
import pytest

from repro.core.helo import compose_per_vector, modify_single_weight
from repro.core.mwk import modify_weights_and_k
from repro.core.types import WhyNotQuery
from repro.data import independent, preference_set, query_point_with_rank
from repro.topk.scan import rank_of_scan


class TestSingleWeight:
    def test_paper_example_kevin(self, paper_points, paper_q):
        res = modify_single_weight(paper_points, paper_q, [0.1, 0.9],
                                   3, rng=np.random.default_rng(0))
        assert res.rank == 4
        assert rank_of_scan(paper_points, res.weight_refined,
                            paper_q) <= res.k_refined

    def test_not_whynot_returns_unchanged(self, paper_points, paper_q):
        res = modify_single_weight(paper_points, paper_q, [0.5, 0.5],
                                   3, rng=np.random.default_rng(0))
        assert res.delta_w == 0.0
        assert res.k_refined == 3

    def test_deterministic(self, paper_points, paper_q):
        a = modify_single_weight(paper_points, paper_q, [0.9, 0.1], 3,
                                 rng=np.random.default_rng(4))
        b = modify_single_weight(paper_points, paper_q, [0.9, 0.1], 3,
                                 rng=np.random.default_rng(4))
        assert np.array_equal(a.weight_refined, b.weight_refined)


class TestComposition:
    @pytest.fixture()
    def query(self, paper_points, paper_q, paper_missing):
        return WhyNotQuery(points=paper_points, q=paper_q, k=3,
                           why_not=paper_missing)

    def test_composed_answer_is_valid(self, query, paper_points,
                                      paper_q):
        res = compose_per_vector(query, sample_size=200,
                                 rng=np.random.default_rng(0))
        for w in res.weights_refined:
            assert rank_of_scan(paper_points, w, paper_q) <= \
                res.k_refined

    def test_mwk_never_worse_than_composition(self, query):
        """The paper's Section 3 claim, on its own example."""
        for seed in range(3):
            composed = compose_per_vector(
                query, sample_size=300,
                rng=np.random.default_rng(seed))
            unified = modify_weights_and_k(
                query, sample_size=300,
                rng=np.random.default_rng(seed))
            assert unified.penalty <= composed.penalty + 1e-9

    def test_mwk_beats_composition_on_skewed_ranks(self):
        """When the vectors need very different ranks, per-vector
        refinement mis-prices the shared k and loses on average."""
        pts = independent(1_000, 3, seed=71)
        wts = preference_set(8, 3, seed=72)
        q = query_point_with_rank(pts, wts[0], 41)
        chosen = [wts[0]]
        for w in wts[1:]:
            if rank_of_scan(pts, w, q) > 10:
                chosen.append(w)
            if len(chosen) == 3:
                break
        if len(chosen) < 3:
            pytest.skip("could not assemble a 3-vector why-not set")
        query = WhyNotQuery(points=pts, q=q, k=10,
                            why_not=np.asarray(chosen))
        gaps = []
        for seed in range(3):
            composed = compose_per_vector(
                query, sample_size=300,
                rng=np.random.default_rng(seed))
            unified = modify_weights_and_k(
                query, sample_size=300,
                rng=np.random.default_rng(seed))
            assert unified.penalty <= composed.penalty + 1e-9
            gaps.append(composed.penalty - unified.penalty)
        assert np.mean(gaps) >= 0.0
