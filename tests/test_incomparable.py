"""Unit tests for FindIncom and its reuse cache."""

import numpy as np
import pytest

from repro.core.incomparable import (
    IncomparableCache,
    find_incomparable,
)
from repro.geometry.dominance import dominates, incomparable
from repro.index import RTree


class TestFindIncomparable:
    def test_paper_example(self, paper_points, paper_q):
        res = find_incomparable(paper_points, paper_q)
        # Only p1(2,1) dominates q(4,4).
        assert res.dominating_ids.tolist() == [0]
        # p2(6,3), p3(1,9), p4(9,3), p7(3,7) are incomparable;
        # p5(7,5) and p6(5,8) are dominated by q.
        assert sorted(res.incomparable_ids.tolist()) == [1, 2, 3, 6]
        assert res.k_floor == 2
        assert res.k_ceiling == 6

    def test_tree_matches_array(self, small_dataset, small_tree, rng):
        for _ in range(5):
            q = rng.random(3)
            a = find_incomparable(small_dataset, q)
            b = find_incomparable(small_tree, q)
            assert sorted(a.dominating_ids.tolist()) == sorted(
                b.dominating_ids.tolist())
            assert sorted(a.incomparable_ids.tolist()) == sorted(
                b.incomparable_ids.tolist())

    def test_semantics(self, small_dataset, rng):
        q = rng.random(3)
        res = find_incomparable(small_dataset, q)
        for pid in res.dominating_ids:
            assert dominates(small_dataset[pid], q)
        for pid in res.incomparable_ids:
            assert incomparable(small_dataset[pid], q)

    def test_pruning_saves_accesses(self, small_dataset):
        """A query near the origin prunes most of the tree."""
        tree = RTree(small_dataset, capacity=8)
        tree.stats.reset()
        find_incomparable(tree, np.array([0.05, 0.05, 0.05]))
        pruned_cost = tree.stats.node_accesses
        tree.stats.reset()
        find_incomparable(tree, np.array([0.95, 0.95, 0.95]))
        full_cost = tree.stats.node_accesses
        assert pruned_cost < full_cost

    def test_q_dominating_everything(self):
        pts = np.array([[2.0, 2.0], [3.0, 1.5]])
        res = find_incomparable(pts, [1.0, 1.0])
        assert res.n_dominating == 0
        assert res.n_incomparable == 0
        assert res.k_floor == 1


class TestIncomparableCache:
    def test_partition_matches_direct(self, small_dataset, small_tree,
                                      rng):
        q = np.array([0.8, 0.8, 0.8])
        cache = IncomparableCache(small_tree, q)
        for _ in range(10):
            q_prime = rng.random(3) * q
            direct = find_incomparable(small_dataset, q_prime)
            cached = cache.partition(q_prime)
            assert sorted(cached.dominating_ids.tolist()) == sorted(
                direct.dominating_ids.tolist())
            assert sorted(cached.incomparable_ids.tolist()) == sorted(
                direct.incomparable_ids.tolist())

    def test_partition_at_q_itself(self, small_dataset, small_tree):
        q = np.array([0.7, 0.6, 0.5])
        cache = IncomparableCache(small_tree, q)
        direct = find_incomparable(small_dataset, q)
        cached = cache.partition(q)
        assert sorted(cached.incomparable_ids.tolist()) == sorted(
            direct.incomparable_ids.tolist())

    def test_rejects_query_outside_box(self, small_tree):
        cache = IncomparableCache(small_tree, np.array([0.5, 0.5, 0.5]))
        with pytest.raises(ValueError):
            cache.partition(np.array([0.6, 0.5, 0.5]))

    def test_single_traversal(self, small_dataset):
        tree = RTree(small_dataset, capacity=8)
        tree.stats.reset()
        cache = IncomparableCache(tree, np.array([0.9, 0.9, 0.9]))
        after_build = tree.stats.node_accesses
        for _ in range(5):
            cache.partition(np.array([0.5, 0.5, 0.5]))
        assert tree.stats.node_accesses == after_build
        assert cache.tree_traversals == 1

    def test_array_source(self, small_dataset, rng):
        q = np.array([0.8, 0.7, 0.9])
        cache = IncomparableCache(small_dataset, q)
        q_prime = q * 0.7
        direct = find_incomparable(small_dataset, q_prime)
        cached = cache.partition(q_prime)
        assert sorted(cached.dominating_ids.tolist()) == sorted(
            direct.dominating_ids.tolist())
