"""Unit tests for the MWK/MQWK samplers."""

import numpy as np
import pytest

from repro.core.incomparable import find_incomparable
from repro.core.sampling import (
    ranks_under_weights,
    sample_query_points,
    sample_simplex,
    sample_weights_on_hyperplanes,
)
from repro.geometry.vectors import is_valid_weight
from repro.topk.scan import rank_of_scan


class TestSimplexSampler:
    def test_samples_are_valid_weights(self, rng):
        out = sample_simplex(rng, 100, 4)
        assert out.shape == (100, 4)
        for w in out:
            assert is_valid_weight(w)

    def test_reasonably_uniform(self, rng):
        out = sample_simplex(rng, 5000, 2)
        # First coordinate of uniform simplex samples is U[0, 1].
        assert out[:, 0].mean() == pytest.approx(0.5, abs=0.03)


class TestHyperplaneSampler:
    def test_samples_lie_on_some_hyperplane(self, paper_points, paper_q,
                                            rng):
        res = find_incomparable(paper_points, paper_q)
        inc = paper_points[res.incomparable_ids]
        samples = sample_weights_on_hyperplanes(inc, paper_q, 200, rng)
        diffs = inc - paper_q
        for w in samples:
            assert is_valid_weight(w, atol=1e-6)
            # On at least one hyperplane w . (p - q) = 0.
            assert np.min(np.abs(diffs @ w)) < 1e-8

    def test_deterministic_with_seed(self, paper_points, paper_q):
        res = find_incomparable(paper_points, paper_q)
        inc = paper_points[res.incomparable_ids]
        a = sample_weights_on_hyperplanes(
            inc, paper_q, 50, np.random.default_rng(9))
        b = sample_weights_on_hyperplanes(
            inc, paper_q, 50, np.random.default_rng(9))
        assert np.array_equal(a, b)

    def test_empty_sample_space_raises(self, paper_q, rng):
        with pytest.raises(ValueError, match="empty sample space"):
            sample_weights_on_hyperplanes(
                np.empty((0, 2)), paper_q, 10, rng)

    def test_higher_dimensions(self, rng):
        pts = rng.random((50, 5))
        q = np.full(5, 0.5)
        res = find_incomparable(pts, q)
        inc = pts[res.incomparable_ids]
        samples = sample_weights_on_hyperplanes(inc, q, 100, rng)
        assert samples.shape == (100, 5)
        diffs = inc - q
        for w in samples:
            assert np.min(np.abs(diffs @ w)) < 1e-8


class TestQueryPointSampler:
    def test_samples_inside_box(self, rng):
        lo = np.array([1.0, 2.0])
        hi = np.array([3.0, 4.0])
        out = sample_query_points(lo, hi, 500, rng)
        assert np.all(out >= lo) and np.all(out <= hi)

    def test_degenerate_box(self, rng):
        q = np.array([2.0, 2.0])
        out = sample_query_points(q, q, 10, rng)
        assert np.allclose(out, q)

    def test_rejects_inverted_box(self, rng):
        with pytest.raises(ValueError):
            sample_query_points([3.0, 3.0], [1.0, 1.0], 5, rng)

    def test_rejects_shape_mismatch(self, rng):
        with pytest.raises(ValueError):
            sample_query_points([1.0], [1.0, 2.0], 5, rng)


class TestRanksUnderWeights:
    def test_matches_full_scan(self, paper_points, paper_q,
                               paper_weights):
        res = find_incomparable(paper_points, paper_q)
        inc = paper_points[res.incomparable_ids]
        dom = paper_points[res.dominating_ids]
        got = ranks_under_weights(paper_weights, inc, dom, paper_q)
        expected = [rank_of_scan(paper_points, w, paper_q)
                    for w in paper_weights]
        assert got.tolist() == expected

    def test_matches_full_scan_random(self, small_dataset, rng):
        q = rng.random(3) * 0.7 + 0.1
        res = find_incomparable(small_dataset, q)
        inc = small_dataset[res.incomparable_ids]
        dom = small_dataset[res.dominating_ids]
        wts = rng.dirichlet(np.ones(3), size=30)
        got = ranks_under_weights(wts, inc, dom, q)
        expected = [rank_of_scan(small_dataset, w, q) for w in wts]
        assert got.tolist() == expected

    def test_int_and_array_dominating_forms_agree(self, small_dataset,
                                                  rng):
        """For well-separated data the trusted count equals the
        epsilon-exact scoring of D."""
        q = rng.random(3) * 0.7 + 0.1
        res = find_incomparable(small_dataset, q)
        inc = small_dataset[res.incomparable_ids]
        dom = small_dataset[res.dominating_ids]
        wts = rng.dirichlet(np.ones(3), size=10)
        a = ranks_under_weights(wts, inc, res.n_dominating, q)
        b = ranks_under_weights(wts, inc, dom, q)
        assert a.tolist() == b.tolist()

    def test_near_tie_dominator_counts_as_tie(self):
        """A dominator within RANK_EPS of q's score ties with q in
        the exact (array) form — the subnormal corner hypothesis
        found."""
        q = np.array([1e-13, 1e-13])
        dom = np.array([[0.0, 0.0]])
        got = ranks_under_weights(np.array([[0.5, 0.5]]),
                                  np.empty((0, 2)), dom, q)
        assert got.tolist() == [1]

    def test_no_incomparable_points(self, rng):
        wts = rng.dirichlet(np.ones(2), size=5)
        got = ranks_under_weights(wts, np.empty((0, 2)), 7, [1.0, 1.0])
        assert got.tolist() == [8] * 5

    def test_chunking_consistency(self, small_dataset, rng):
        q = np.full(3, 0.5)
        res = find_incomparable(small_dataset, q)
        inc = small_dataset[res.incomparable_ids]
        wts = rng.dirichlet(np.ones(3), size=64)
        a = ranks_under_weights(wts, inc, res.n_dominating, q)
        b = ranks_under_weights(wts, inc, res.n_dominating, q,
                                chunk_floats=128)
        assert a.tolist() == b.tolist()


class TestInjectWhyNotVectors:
    """Regression for the factored sample-pool injection helper."""

    def test_matches_manual_vstack_concatenate(self, rng):
        from repro.core.sampling import inject_why_not_vectors

        samples = rng.dirichlet(np.ones(3), size=10)
        sample_ranks = rng.integers(1, 20, size=10)
        why_not = rng.dirichlet(np.ones(3), size=2)
        orig_ranks = np.array([7, 12])
        combined, ranks = inject_why_not_vectors(
            samples, sample_ranks, why_not, orig_ranks)
        assert np.array_equal(combined,
                              np.vstack([samples, why_not]))
        assert np.array_equal(ranks, np.concatenate([sample_ranks,
                                                     orig_ranks]))

    def test_empty_sample_pool(self, rng):
        from repro.core.sampling import inject_why_not_vectors

        why_not = rng.dirichlet(np.ones(3), size=2)
        combined, ranks = inject_why_not_vectors(
            np.empty((0, 3)), np.empty(0, dtype=int), why_not,
            np.array([3, 4]))
        assert np.array_equal(combined, why_not)
        assert ranks.tolist() == [3, 4]


class TestChunkInvariantStreams:
    """The anytime property at its root: sample ``i`` depends on the
    stream's entropy and position only, never on read chunking."""

    def _space(self, small_dataset):
        q = np.full(3, 0.45)
        res = find_incomparable(small_dataset, q)
        return small_dataset[res.incomparable_ids], q

    def test_weight_stream_prefix_property(self, small_dataset):
        from repro.core.sampling import WeightSampleStream

        inc, q = self._space(small_dataset)
        one = WeightSampleStream(inc, q,
                                 np.random.default_rng(3)).take(500)
        stream = WeightSampleStream(inc, q, np.random.default_rng(3))
        parts = [stream.take(n) for n in (13, 200, 87, 200)]
        assert np.array_equal(np.concatenate(parts), one)

    def test_weight_stream_empty_space_raises(self):
        from repro.core.sampling import WeightSampleStream

        with pytest.raises(ValueError, match="empty sample space"):
            WeightSampleStream(np.empty((0, 3)), np.full(3, 0.5),
                               np.random.default_rng(0))

    def test_query_point_stream_prefix_property(self):
        from repro.core.sampling import QueryPointSampleStream

        lo, hi = np.zeros(3), np.full(3, 0.8)
        one = QueryPointSampleStream(
            lo, hi, np.random.default_rng(9)).take(300)
        stream = QueryPointSampleStream(lo, hi,
                                        np.random.default_rng(9))
        parts = [stream.take(n) for n in (1, 150, 149)]
        assert np.array_equal(np.concatenate(parts), one)
        assert np.all(one >= lo) and np.all(one <= hi)
