"""Unit tests for dataset/result persistence."""

import json

import numpy as np
import pytest

from repro.core.mqp import modify_query_point
from repro.core.mwk import modify_weights_and_k
from repro.core.mqwk import modify_query_weights_and_k
from repro.core.types import WhyNotQuery
from repro.data.io import (
    dataset_cache,
    load_dataset,
    load_results,
    result_to_dict,
    save_dataset,
    save_results,
)


class TestDatasetRoundTrip:
    def test_round_trip(self, tmp_path, rng):
        pts = rng.random((50, 3))
        path = save_dataset(tmp_path / "data.npz", pts,
                            kind="independent", seed=7)
        loaded, meta = load_dataset(path)
        assert np.array_equal(loaded, pts)
        assert meta["kind"] == "independent"
        assert meta["seed"] == 7
        assert (meta["n"], meta["d"]) == (50, 3)

    def test_rejects_non_archive(self, tmp_path):
        bogus = tmp_path / "bogus.npz"
        np.savez(bogus, something=np.ones(3))
        with pytest.raises(ValueError, match="not a repro dataset"):
            load_dataset(bogus)

    def test_creates_parent_dirs(self, tmp_path, rng):
        path = save_dataset(tmp_path / "a" / "b" / "data.npz",
                            rng.random((5, 2)))
        assert path.exists()


class TestDatasetCache:
    def test_cache_hit_is_identical(self, tmp_path):
        first = dataset_cache(tmp_path, "independent", 100, 3, seed=1)
        second = dataset_cache(tmp_path, "independent", 100, 3, seed=1)
        assert np.array_equal(first, second)
        assert len(list(tmp_path.glob("*.npz"))) == 1

    def test_different_seeds_different_files(self, tmp_path):
        dataset_cache(tmp_path, "independent", 50, 2, seed=1)
        dataset_cache(tmp_path, "independent", 50, 2, seed=2)
        assert len(list(tmp_path.glob("*.npz"))) == 2

    def test_truncated_cache_is_regenerated(self, tmp_path):
        """A truncated .npz (interrupted write) must be treated as a
        miss and overwritten, not poison every later run."""
        first = dataset_cache(tmp_path, "independent", 80, 3, seed=4)
        (path,) = tmp_path.glob("*.npz")
        raw = path.read_bytes()
        path.write_bytes(raw[:len(raw) // 2])
        with pytest.raises(Exception):
            load_dataset(path)   # the archive really is broken
        recovered = dataset_cache(tmp_path, "independent", 80, 3,
                                  seed=4)
        assert np.array_equal(recovered, first)
        # The bad file was overwritten with a loadable archive.
        reloaded, meta = load_dataset(path)
        assert np.array_equal(reloaded, first)
        assert meta["seed"] == 4

    def test_garbage_cache_file_is_regenerated(self, tmp_path):
        path = tmp_path / "independent_n30_d2_s0.npz"
        path.write_bytes(b"this is not a zip archive")
        points = dataset_cache(tmp_path, "independent", 30, 2, seed=0)
        assert points.shape == (30, 2)
        reloaded, _ = load_dataset(path)
        assert np.array_equal(reloaded, points)

    def test_wrong_params_archive_is_replaced(self, tmp_path):
        """A readable archive whose metadata disagrees with the cache
        key (e.g. a renamed file) is regenerated, same as before."""
        other = dataset_cache(tmp_path, "independent", 40, 2, seed=9)
        (src,) = tmp_path.glob("*.npz")
        target = tmp_path / "independent_n40_d2_s1.npz"
        src.rename(target)
        fresh = dataset_cache(tmp_path, "independent", 40, 2, seed=1)
        assert not np.array_equal(fresh, other)
        _, meta = load_dataset(target)
        assert meta["seed"] == 1


class TestResultSerialization:
    @pytest.fixture()
    def query(self, paper_points, paper_q, paper_missing):
        return WhyNotQuery(points=paper_points, q=paper_q, k=3,
                           why_not=paper_missing)

    def test_mqp_round_trip(self, query, tmp_path):
        res = modify_query_point(query)
        d = result_to_dict(res)
        assert d["kind"] == "mqp"
        assert d["q_refined"] == pytest.approx(res.q_refined.tolist())
        path = save_results(tmp_path / "r.json", [res],
                            context={"k": 3})
        body = load_results(path)
        assert body["context"]["k"] == 3
        assert body["results"][0]["penalty"] == pytest.approx(
            res.penalty)

    def test_mwk_serializes(self, query):
        res = modify_weights_and_k(query, sample_size=50,
                                   rng=np.random.default_rng(0))
        d = result_to_dict(res)
        assert d["kind"] == "mwk"
        assert d["k_refined"] == res.k_refined

    def test_mqwk_drops_nested_results(self, query):
        res = modify_query_weights_and_k(
            query, sample_size=30, rng=np.random.default_rng(0))
        d = result_to_dict(res)
        assert d["kind"] == "mqwk"
        assert "mqp" not in d and "mwk" not in d
        json.dumps(d)   # fully JSON-safe

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError):
            result_to_dict({"not": "a result"})

    def test_bench_rows_serialize(self, tmp_path):
        rows = [{"dataset": "independent", "MQP_time": 0.1,
                 "MQP_penalty": np.float64(0.2)}]
        path = save_results(tmp_path / "rows.json", rows)
        body = load_results(path)
        assert body["results"][0]["MQP_penalty"] == pytest.approx(0.2)
