# fixture-rule: THREAD-LIFECYCLE
# fixture-dest: src/repro/service/bad_thread.py
"""Failing fixture: a non-daemon thread that its creating scope
never joins — it outlives graceful shutdown."""

import threading


def fire_and_forget(work):
    thread = threading.Thread(target=work)
    thread.start()
    return thread
