# fixture-rule: DEPRECATED-API
# fixture-dest: examples/bad_deprecated.py
"""Failing fixture: a new call site importing a pre-schema entry
point that only its deprecation shim may reference."""

from repro.engine.executor import answer_one


def ask(points, q, k, wm):
    return answer_one(points, q, k, wm)
