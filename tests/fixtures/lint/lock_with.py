# fixture-rule: LOCK-WITH
# fixture-dest: src/repro/service/bad_lock.py
"""Failing fixture: a bare acquire/release pair — an exception
between the two orphans the lock."""

import threading

_LOCK = threading.Lock()
_STATE: dict = {}


def mutate(key, value):
    _LOCK.acquire()
    try:
        _STATE[key] = value
    finally:
        _LOCK.release()
