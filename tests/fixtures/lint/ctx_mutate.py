# fixture-rule: CTX-MUTATE
# fixture-dest: src/repro/engine/bad_mutate.py
"""Failing fixture: in-place writes to context-owned arrays, plus
re-enabling writability on a read-only snapshot view."""


def poison(context, row, coords):
    context.points.setflags(write=True)
    context.points[row] = coords
    context.product_ids[row] += 1
    return context
