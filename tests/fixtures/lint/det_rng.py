# fixture-rule: DET-RNG
# fixture-dest: src/repro/core/bad_rng.py
"""Failing fixture: all three forbidden entropy sources — an
unseeded generator, legacy numpy global state, and the stdlib
``random`` module."""

import random

import numpy as np


def sample(n: int):
    rng = np.random.default_rng()
    np.random.shuffle(list(range(n)))
    return rng.random(n) + random.random()
