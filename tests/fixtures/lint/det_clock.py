# fixture-rule: DET-CLOCK
# fixture-dest: src/repro/topk/bad_clock.py
"""Failing fixture: a wall-clock read inside the deterministic zone
(``topk/``) — refinement below the executor must be a pure function
of (question, seed, snapshot)."""

import time


def scan_until(deadline_s: float):
    examined = 0
    while time.perf_counter() < deadline_s:
        examined += 1
    return examined
