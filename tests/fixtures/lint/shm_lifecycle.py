# fixture-rule: SHM-LIFECYCLE
# fixture-dest: src/repro/engine/bad_shm.py
"""Failing fixture: a shared-memory segment created outside
``engine/shm.py`` — the exit sweep can never find (or unlink) it."""

from multiprocessing import shared_memory


def export(nbytes: int):
    return shared_memory.SharedMemory(create=True, size=nbytes)
