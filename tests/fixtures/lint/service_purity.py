# fixture-rule: SERVICE-PURITY
# fixture-dest: src/repro/service/bad_purity.py
"""Failing fixture: a service module importing numpy — the serving
tier is stdlib-only by contract."""

import numpy as np


def flatten(values):
    return np.asarray(values, dtype=np.float64).tolist()
