# fixture-rule: SCHEMA-LOCK
# fixture-dest: src/repro/core/protocol.py
"""Failing fixture: a protocol module in a project with no committed
``schema_lock.json`` — an absent baseline silently disables the
schema freeze, so it is itself a finding."""

SCHEMA_VERSION = 1


class ErrorInfo:
    type: str
    message: str
    category: str


class Budget:
    sample_budget: int


class Quality:
    samples_examined: int


class Question:
    q: list
    k: int


class Answer:
    index: int
    penalty: float


class WatchEvent:
    watch_id: str
    seq: int


class CostEstimate:
    algorithm: str
    est_latency_ms: float


class Plan:
    catalogue: str
    path: str


class AdmissionDecision:
    admitted: bool
    reason: str
