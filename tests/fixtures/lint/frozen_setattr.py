# fixture-rule: FROZEN-SETATTR
# fixture-dest: src/repro/core/bad_setattr.py
"""Failing fixture: ``object.__setattr__`` outside a constructor —
mutating a frozen protocol value other code already hashed."""


def discount_penalty(answer, factor: float):
    object.__setattr__(answer, "penalty", answer.penalty * factor)
    return answer
