# fixture-rule: LAYERING
# fixture-dest: src/repro/topk/bad_layer.py
"""Failing fixture: a substrate module (topk/) reaching up into the
service tier — an edge outside the DESIGN.md layer matrix."""

from repro.service.registry import CatalogueRegistry


def shortlist(name: str):
    return CatalogueRegistry().get(name)
