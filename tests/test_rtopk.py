"""Unit tests for the reverse top-k engines (mono and bichromatic)."""

import numpy as np
import pytest

from repro.data import independent, preference_set
from repro.index import RTree
from repro.rtopk import brtopk_naive, brtopk_rta, mrtopk_2d, \
    mrtopk_sample
from repro.rtopk.bichromatic import why_not_candidates
from repro.rtopk.mono import beat_count_at, mrtopk_contains
from repro.topk.scan import rank_of_scan


class TestMonochromatic:
    def test_paper_figure2(self, paper_points, paper_q):
        """MRTOP3(q) is the segment [1/6, 3/4] of Figure 2(b)."""
        intervals = mrtopk_2d(paper_points, paper_q, 3)
        assert len(intervals) == 1
        assert intervals[0].lo == pytest.approx(1.0 / 6.0)
        assert intervals[0].hi == pytest.approx(3.0 / 4.0)

    def test_paper_why_not_vectors_outside(self, paper_points, paper_q):
        """A(1/10, 9/10) and D(4/5, 1/5) are NOT in MRTOP3(q)."""
        assert not mrtopk_contains(paper_points, paper_q, 3, [0.1, 0.9])
        assert not mrtopk_contains(paper_points, paper_q, 3, [0.8, 0.2])
        assert mrtopk_contains(paper_points, paper_q, 3, [0.5, 0.5])

    def test_grid_consistency(self, rng):
        """Interval membership equals the direct rank test on a grid."""
        pts = rng.random((60, 2))
        q = rng.random(2) * 0.8
        k = 5
        intervals = mrtopk_2d(pts, q, k)
        for w1 in np.linspace(0.001, 0.999, 101):
            in_interval = any(iv.contains(w1, atol=1e-12)
                              for iv in intervals)
            rank = rank_of_scan(pts, [w1, 1 - w1], q)
            if in_interval:
                assert rank <= k, (w1, rank)
            # Off-interval points may sit exactly on boundaries; allow
            # a tolerance band before asserting exclusion.
            elif all(abs(w1 - iv.lo) > 1e-6 and abs(w1 - iv.hi) > 1e-6
                     for iv in intervals):
                assert rank > k, (w1, rank)

    def test_whole_space_when_q_dominates(self):
        pts = np.array([[5.0, 5.0], [6.0, 7.0], [8.0, 2.0]])
        intervals = mrtopk_2d(pts, [1.0, 1.0], 1)
        assert len(intervals) == 1
        assert intervals[0].lo == 0.0 and intervals[0].hi == 1.0

    def test_empty_when_q_hopeless(self):
        pts = np.array([[1.0, 1.0], [1.5, 1.2], [1.2, 1.5]])
        assert mrtopk_2d(pts, [9.0, 9.0], 1) == []

    def test_k_equals_n_always_full(self, paper_points, paper_q):
        intervals = mrtopk_2d(paper_points, paper_q, 7)
        assert len(intervals) == 1
        assert intervals[0].width == pytest.approx(1.0)

    def test_beat_count_matches_rank(self, paper_points, paper_q):
        for w1 in (0.1, 1 / 6, 0.5, 0.75, 0.9):
            assert beat_count_at(paper_points, paper_q, w1) + 1 == \
                rank_of_scan(paper_points, [w1, 1 - w1], paper_q)

    def test_interval_vector_helpers(self, paper_points, paper_q):
        iv = mrtopk_2d(paper_points, paper_q, 3)[0]
        w = iv.midpoint_vector()
        assert w.sum() == pytest.approx(1.0)
        assert rank_of_scan(paper_points, w, paper_q) <= 3

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            mrtopk_2d(np.ones((3, 3)), [0, 0, 0], 1)

    def test_invalid_k(self, paper_points, paper_q):
        with pytest.raises(ValueError):
            mrtopk_2d(paper_points, paper_q, 0)


class TestBichromatic:
    def test_paper_example(self, paper_points, paper_weights, paper_q):
        """BRTOP3(q) = {Tony, Anna} (indices 1 and 2)."""
        out = brtopk_naive(paper_points, paper_weights, paper_q, 3)
        assert out.tolist() == [1, 2]

    def test_rta_equals_naive_paper(self, paper_points, paper_weights,
                                    paper_q):
        rta = brtopk_rta(paper_points, paper_weights, paper_q, 3)
        assert rta.tolist() == [1, 2]

    @pytest.mark.parametrize("k", [1, 5, 20])
    def test_rta_equals_naive_random(self, k):
        pts = independent(800, 3, seed=5)
        wts = preference_set(60, 3, seed=6)
        q = np.quantile(pts, 0.2, axis=0)
        naive = brtopk_naive(pts, wts, q, k)
        rta_arr = brtopk_rta(pts, wts, q, k)
        rta_tree = brtopk_rta(RTree(pts), wts, q, k)
        assert rta_arr.tolist() == naive.tolist()
        assert rta_tree.tolist() == naive.tolist()

    def test_rank_semantics(self, paper_points, paper_weights, paper_q):
        members = set(brtopk_naive(paper_points, paper_weights,
                                   paper_q, 3).tolist())
        for i, w in enumerate(paper_weights):
            rank = rank_of_scan(paper_points, w, paper_q)
            assert (rank <= 3) == (i in members)

    def test_k_one(self, paper_points, paper_weights):
        # q at the origin beats everything for every customer.
        out = brtopk_naive(paper_points, paper_weights, [0.0, 0.0], 1)
        assert out.tolist() == [0, 1, 2, 3]

    def test_empty_result(self, paper_points, paper_weights):
        out = brtopk_naive(paper_points, paper_weights, [20.0, 20.0], 1)
        assert out.size == 0

    def test_invalid_k(self, paper_points, paper_weights, paper_q):
        with pytest.raises(ValueError):
            brtopk_naive(paper_points, paper_weights, paper_q, 0)
        with pytest.raises(ValueError):
            brtopk_rta(paper_points, paper_weights, paper_q, -1)

    def test_why_not_candidates(self, paper_points, paper_weights,
                                paper_q):
        out = why_not_candidates(paper_points, paper_weights, paper_q, 3)
        assert out.tolist() == [0, 3]     # Julia and Kevin

    def test_rta_small_dataset_guard(self, paper_weights):
        with pytest.raises(ValueError):
            brtopk_rta(np.ones((2, 2)), paper_weights, [1.0, 1.0], 5)


class TestMonochromaticSampling:
    def test_hits_are_members(self, paper_points, paper_q, rng):
        hits, frac = mrtopk_sample(paper_points, paper_q, 3, 500, rng)
        for w in hits:
            assert rank_of_scan(paper_points, w, paper_q) <= 3

    def test_fraction_matches_2d_intervals(self, paper_points, paper_q,
                                           rng):
        """In 2-D the hit fraction estimates the interval measure of
        the exact sweep (under the Dirichlet(1,1) = uniform-w1 law)."""
        intervals = mrtopk_2d(paper_points, paper_q, 3)
        exact_measure = sum(iv.width for iv in intervals)
        _, frac = mrtopk_sample(paper_points, paper_q, 3, 20_000, rng)
        assert frac == pytest.approx(exact_measure, abs=0.02)

    def test_works_in_high_dimensions(self, rng):
        pts = independent(400, 5, seed=3)
        q = np.quantile(pts, 0.05, axis=0)
        hits, frac = mrtopk_sample(pts, q, 10, 300, rng)
        assert frac > 0
        for w in hits[:10]:
            assert rank_of_scan(pts, w, q) <= 10

    def test_zero_fraction_for_hopeless_q(self, paper_points, rng):
        hits, frac = mrtopk_sample(paper_points, [20.0, 20.0], 1, 200,
                                   rng)
        assert frac == 0.0
        assert hits.shape == (0, 2)

    def test_validates_arguments(self, paper_points, paper_q, rng):
        with pytest.raises(ValueError):
            mrtopk_sample(paper_points, paper_q, 0, 10, rng)
        with pytest.raises(ValueError):
            mrtopk_sample(paper_points, paper_q, 3, 0, rng)
