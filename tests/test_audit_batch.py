"""Unit tests for refinement auditing and batch answering."""

import numpy as np
import pytest

from repro.core.audit import audit_refinement, audit_result
from repro.core.batch import WhyNotBatch
from repro.core.mqp import modify_query_point
from repro.core.mqwk import modify_query_weights_and_k
from repro.core.mwk import modify_weights_and_k
from repro.core.types import WhyNotQuery
from repro.data import independent, preference_set, query_point_with_rank


@pytest.fixture()
def paper_query(paper_points, paper_q, paper_missing):
    return WhyNotQuery(points=paper_points, q=paper_q, k=3,
                       why_not=paper_missing)


class TestAuditRefinement:
    def test_paper_illustration_q_prime(self, paper_query):
        """q'(3, 2.5): valid, penalty 0.318 (Section 4.2)."""
        audit = audit_refinement(paper_query, q_new=[3.0, 2.5])
        assert audit.valid
        assert audit.kind == "mqp"
        assert audit.penalty == pytest.approx(0.318, abs=1e-3)

    def test_paper_illustration_k4(self, paper_query):
        """Raising k to 4 alone: valid, penalty alpha = 0.5."""
        audit = audit_refinement(paper_query, k_new=4)
        assert audit.valid
        assert audit.kind == "mwk"
        assert audit.penalty == pytest.approx(0.5)

    def test_invalid_proposal_detected(self, paper_query):
        """Keeping everything unchanged is invalid by construction."""
        audit = audit_refinement(paper_query)
        assert not audit.valid
        assert audit.ranks.tolist() == [4, 4]
        assert audit.penalty == 0.0

    def test_joint_proposal(self, paper_query):
        """The paper's Section 4.4 example: q'(3.8, 3.8) with
        (0.8, 0.2) and (0.135, 0.865)."""
        audit = audit_refinement(
            paper_query, q_new=[3.8, 3.8],
            weights_new=[[0.8, 0.2], [0.135, 0.865]])
        assert audit.valid
        assert audit.kind == "mqwk"
        assert 0.0 < audit.penalty < 0.2

    def test_shape_validation(self, paper_query):
        with pytest.raises(ValueError, match="shape"):
            audit_refinement(paper_query, weights_new=[[0.5, 0.5]])
        with pytest.raises(ValueError, match="positive"):
            audit_refinement(paper_query, k_new=0)

    def test_audit_result_round_trips(self, paper_query):
        rng = np.random.default_rng(0)
        for result in (
            modify_query_point(paper_query),
            modify_weights_and_k(paper_query, sample_size=100,
                                 rng=rng),
            modify_query_weights_and_k(paper_query, sample_size=50,
                                       rng=rng),
        ):
            audit = audit_result(paper_query, result)
            assert audit.valid, type(result)
            # The audited price never exceeds twice the reported
            # share-weighted penalty (MQWK blends with gamma/lambda).
            assert audit.penalty <= 2 * max(result.penalty, 1e-12) + 1e-9

    def test_audit_result_rejects_unknown(self, paper_query):
        with pytest.raises(TypeError):
            audit_result(paper_query, object())


class TestWhyNotBatch:
    @pytest.fixture()
    def batch(self):
        pts = independent(1_000, 3, seed=51)
        batch = WhyNotBatch(pts)
        wts = preference_set(6, 3, seed=52)
        for i in range(3):
            w = wts[i * 2:i * 2 + 1]
            q = query_point_with_rank(pts, w[0], 41)
            batch.add_question(q, 10, w)
        return batch

    @pytest.mark.parametrize("algorithm", ["mqp", "mwk", "mqwk"])
    def test_batch_answers_all(self, batch, algorithm):
        report = batch.run(algorithm, sample_size=60)
        assert len(batch) == 3
        assert report.n_answered == 3
        assert report.summary()["all_valid"]

    def test_invalid_question_is_isolated(self):
        pts = independent(500, 2, seed=61)
        batch = WhyNotBatch(pts)
        w = preference_set(1, 2, seed=62)
        good_q = query_point_with_rank(pts, w[0], 31)
        batch.add_question(good_q, 5, w)
        batch.add_question(np.zeros(2), 5, w)   # rank 1: not missing
        report = batch.run("mqp")
        assert report.n_answered == 1
        assert report.n_failed == 1
        assert "already has q" in report.items[1].error

    def test_summary_statistics(self, batch):
        report = batch.run("mqp")
        summary = report.summary()
        assert summary["answered"] == 3
        assert 0.0 <= summary["mean_penalty"] <= 1.0
        assert summary["max_penalty"] >= summary["mean_penalty"]

    def test_unknown_algorithm(self, batch):
        with pytest.raises(ValueError):
            batch.run("gradient-descent")

    def test_shared_tree(self, batch):
        """All questions ride the same R-tree instance."""
        report = batch.run("mqp")
        trees = {id(item.query.rtree) for item in report.items
                 if item.query is not None}
        assert len(trees) == 1
