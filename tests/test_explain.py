"""Unit tests for the why-not explanation (aspect (i))."""

import numpy as np
import pytest

from repro.core.explain import explain_why_not
from repro.index import RTree
from repro.topk.scan import rank_of_scan


class TestExplainPaperExample:
    def test_kevin_culprits(self, paper_points, paper_q):
        """Section 3: p1, p2, p4 exclude Kevin's vector from BRTOP3."""
        [expl] = explain_why_not(paper_points, paper_q, [[0.1, 0.9]], 3)
        assert expl.culprit_ids.tolist() == [0, 1, 3]
        assert expl.rank_of_q == 4
        assert expl.q_score == pytest.approx(4.0)

    def test_julia_culprits(self, paper_points, paper_q):
        [expl] = explain_why_not(paper_points, paper_q, [[0.9, 0.1]], 3)
        # Julia: p3 (1.8), p1 (1.9), p7 (3.4) score below 4.0.
        assert sorted(expl.culprit_ids.tolist()) == [0, 2, 6]
        # And they stream in rank order.
        assert expl.culprit_ids.tolist() == [2, 0, 6]

    def test_scores_ascending(self, paper_points, paper_q):
        [expl] = explain_why_not(paper_points, paper_q, [[0.9, 0.1]], 3)
        assert np.all(np.diff(expl.culprit_scores) >= 0)

    def test_describe_mentions_rank(self, paper_points, paper_q):
        [expl] = explain_why_not(paper_points, paper_q, [[0.1, 0.9]], 3)
        text = expl.describe(3)
        assert "ranks 4" in text and "top-3" in text


class TestExplainGeneral:
    def test_tree_and_array_agree(self, small_dataset, small_weights):
        q = np.full(3, 0.4)
        tree = RTree(small_dataset)
        for w in small_weights[:4]:
            [a] = explain_why_not(small_dataset, q, [w], 10)
            [b] = explain_why_not(tree, q, [w], 10)
            assert a.culprit_ids.tolist() == b.culprit_ids.tolist()

    def test_culprit_count_equals_rank_minus_one(self, small_dataset,
                                                 small_weights):
        q = np.full(3, 0.4)
        for w in small_weights[:4]:
            [expl] = explain_why_not(small_dataset, q, [w], 10)
            assert len(expl.culprit_ids) == \
                rank_of_scan(small_dataset, w, q) - 1

    def test_max_culprits_cap_keeps_true_rank(self, small_dataset):
        q = np.full(3, 0.9)
        [full] = explain_why_not(small_dataset, q, [[1 / 3] * 3], 10)
        [capped] = explain_why_not(small_dataset, q, [[1 / 3] * 3], 10,
                                   max_culprits=5)
        assert len(capped.culprit_ids) == 5
        assert capped.rank == full.rank            # rank unaffected
        assert capped.truncated and not full.truncated
        assert "showing 5" in capped.describe(10)

    def test_multiple_vectors(self, paper_points, paper_q,
                              paper_missing):
        out = explain_why_not(paper_points, paper_q, paper_missing, 3)
        assert len(out) == 2
        assert all(e.rank_of_q == 4 for e in out)

    def test_invalid_k(self, paper_points, paper_q):
        with pytest.raises(ValueError):
            explain_why_not(paper_points, paper_q, [[0.5, 0.5]], 0)

    def test_all_culprits_truly_beat_q(self, small_dataset,
                                       small_weights):
        q = np.full(3, 0.5)
        for w in small_weights[:3]:
            [expl] = explain_why_not(small_dataset, q, [w], 10)
            culprit_scores = small_dataset[expl.culprit_ids] @ np.asarray(w)
            assert np.all(culprit_scores < expl.q_score)
