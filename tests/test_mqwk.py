"""Unit tests for Algorithm 3 (MQWK)."""

import numpy as np
import pytest

from repro.core.mqp import modify_query_point
from repro.core.mqwk import modify_query_weights_and_k
from repro.core.mwk import modify_weights_and_k
from repro.core.types import WhyNotQuery
from repro.data import independent, preference_set, query_point_with_rank
from repro.topk.scan import rank_of_scan


def _paper_query(paper_points, paper_q, paper_missing):
    return WhyNotQuery(points=paper_points, q=paper_q, k=3,
                       why_not=paper_missing)


class TestMQWKPaperExample:
    def test_result_is_valid(self, paper_points, paper_q, paper_missing,
                             rng):
        query = _paper_query(paper_points, paper_q, paper_missing)
        res = modify_query_weights_and_k(query, sample_size=100,
                                         rng=rng)
        for w in res.weights_refined:
            assert rank_of_scan(paper_points, w, res.q_refined) <= \
                res.k_refined

    def test_subsumes_mqp_and_mwk(self, paper_points, paper_q,
                                  paper_missing):
        """Joint penalty <= gamma * MQP penalty and <= lam * MWK
        penalty (the endpoint candidates are always evaluated)."""
        query = _paper_query(paper_points, paper_q, paper_missing)
        rng = np.random.default_rng(11)
        joint = modify_query_weights_and_k(query, sample_size=100,
                                           rng=rng)
        mqp = modify_query_point(query)
        mwk = modify_weights_and_k(query, sample_size=100,
                                   rng=np.random.default_rng(11))
        assert joint.penalty <= 0.5 * mqp.penalty + 1e-9
        assert joint.penalty <= 0.5 * mwk.penalty + 1e-9

    def test_q_refined_in_box(self, paper_points, paper_q,
                              paper_missing, rng):
        query = _paper_query(paper_points, paper_q, paper_missing)
        res = modify_query_weights_and_k(query, sample_size=60, rng=rng)
        assert res.mqp is not None
        assert np.all(res.q_refined >= res.mqp.q_refined - 1e-9)
        assert np.all(res.q_refined <= paper_q + 1e-9)

    def test_penalty_shares_consistent(self, paper_points, paper_q,
                                       paper_missing, rng):
        query = _paper_query(paper_points, paper_q, paper_missing)
        res = modify_query_weights_and_k(query, sample_size=60, rng=rng)
        assert res.penalty == pytest.approx(
            0.5 * res.q_penalty_share + 0.5 * res.wk_penalty_share)

    def test_deterministic_given_seed(self, paper_points, paper_q,
                                      paper_missing):
        query = _paper_query(paper_points, paper_q, paper_missing)
        a = modify_query_weights_and_k(query, sample_size=50,
                                       rng=np.random.default_rng(2))
        b = modify_query_weights_and_k(query, sample_size=50,
                                       rng=np.random.default_rng(2))
        assert np.array_equal(a.q_refined, b.q_refined)
        assert a.penalty == b.penalty


class TestMQWKReuse:
    def test_reuse_matches_no_reuse(self, paper_points, paper_q,
                                    paper_missing):
        """The reuse cache is an optimization, not an approximation:
        identical seeds must give identical answers."""
        query = _paper_query(paper_points, paper_q, paper_missing)
        with_reuse = modify_query_weights_and_k(
            query, sample_size=40, rng=np.random.default_rng(4),
            use_reuse=True)
        without = modify_query_weights_and_k(
            query, sample_size=40, rng=np.random.default_rng(4),
            use_reuse=False)
        assert with_reuse.q_refined == pytest.approx(without.q_refined)
        assert with_reuse.penalty == pytest.approx(without.penalty)
        assert with_reuse.k_refined == without.k_refined

    def test_reuse_saves_tree_traversals(self):
        pts = independent(2000, 3, seed=31)
        wm = preference_set(1, 3, seed=32)
        q = query_point_with_rank(pts, wm[0], 60)
        query = WhyNotQuery(points=pts, q=q, k=10, why_not=wm)
        tree = query.rtree
        tree.stats.reset()
        modify_query_weights_and_k(query, sample_size=30,
                                   rng=np.random.default_rng(1),
                                   use_reuse=True)
        reuse_cost = tree.stats.node_accesses
        tree.stats.reset()
        modify_query_weights_and_k(query, sample_size=30,
                                   rng=np.random.default_rng(1),
                                   use_reuse=False)
        no_reuse_cost = tree.stats.node_accesses
        assert reuse_cost < no_reuse_cost


class TestMQWKRandom:
    def test_validity_and_bounds(self, rng):
        pts = independent(500, 3, seed=41)
        wm = preference_set(2, 3, seed=42)
        q = query_point_with_rank(pts, wm[0], 50)
        try:
            query = WhyNotQuery(points=pts, q=q, k=8, why_not=wm)
        except ValueError:
            pytest.skip("generated q not missing for all vectors")
        res = modify_query_weights_and_k(query, sample_size=60, rng=rng)
        assert 0.0 <= res.penalty <= 1.0
        for w in res.weights_refined:
            assert rank_of_scan(pts, w, res.q_refined) <= res.k_refined

    def test_q_sample_size_override(self, paper_points, paper_q,
                                    paper_missing, rng):
        query = _paper_query(paper_points, paper_q, paper_missing)
        res = modify_query_weights_and_k(query, sample_size=50,
                                         q_sample_size=7, rng=rng)
        assert res.q_samples == 7
