"""The Session facade: one front door over interactive/batch/serving.

Asserts the tentpole acceptance criteria at the library level:
``Session.ask``/``ask_batch`` answer identically to the deprecated
``WQRTQ``/``WhyNotBatch``/triple paths (which must still work, while
warning), dispatch goes through the algorithm registry only, and the
CLI's ``--json`` output is byte-identical to ``Answer.to_dict()``.
Everything except the explicitly-marked shim tests runs clean under
``-W error::DeprecationWarning``.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.protocol import Question
from repro.core.session import Session
from repro.data import independent, preference_set, query_point_with_rank
from repro.engine.context import DatasetContext

D = 3
K = 10
RANK = 41


@pytest.fixture(scope="module")
def points():
    return independent(500, D, seed=33)


def probe(points, j, *, rank=RANK):
    w = preference_set(1, D, seed=9100 + j)
    q = query_point_with_rank(points, w[0], rank)
    return q, w


def typed(points, j, *, rank=RANK, algorithm="mqp", options=None):
    q, w = probe(points, j, rank=rank)
    return Question(q=q, k=K, why_not=w, algorithm=algorithm,
                    options=options or {})


def payloads(answers):
    return [{key: value for key, value in a.to_dict().items()
             if key != "elapsed"} for a in answers]


class TestConstruction:
    def test_points_or_context_exclusively(self, points):
        with pytest.raises(ValueError,
                           match="points, a context or a catalogue"):
            Session()
        with pytest.raises(ValueError, match="exactly one"):
            Session(points, context=DatasetContext(points))

    def test_warm_builds_tree_once(self, points):
        session = Session(points)
        assert session.context.stats.tree_builds == 1
        cold = Session(points, warm=False)
        assert cold.context.stats.tree_builds == 0

    def test_shared_context_is_adopted(self, points):
        context = DatasetContext(points)
        session = Session(context=context)
        assert session.context is context
        assert session.points is context.points

    def test_algorithms_enumerates_registry(self, points):
        from repro.core.registry import algorithm_names

        assert Session(points).algorithms() == algorithm_names()


class TestAsk:
    def test_ask_answers_and_audits(self, points):
        session = Session(points)
        answer = session.ask(typed(points, 0))
        assert answer.ok and answer.valid
        assert answer.index == 0 and answer.algorithm == "mqp"
        assert 0.0 <= answer.penalty <= 1.0
        assert answer.elapsed > 0.0

    def test_catalogue_dependent_failure_is_answer_not_raise(
            self, points):
        session = Session(points)
        answer = session.ask(typed(points, 1, rank=3))  # not missing
        assert not answer.ok
        assert answer.error.type == "ValueError"
        assert "already has q" in answer.error.message
        assert np.isnan(answer.penalty)

    def test_k_larger_than_catalogue_is_answer_error(self, points):
        session = Session(points)
        q, w = probe(points, 2)
        answer = session.ask(Question(q=q, k=len(points) + 1,
                                      why_not=w))
        assert not answer.ok
        assert "out of range" in answer.error.message

    def test_seed_determinism(self, points):
        session = Session(points)
        question = typed(points, 3, algorithm="mwk",
                         options={"sample_size": 40})
        a = session.ask(question, seed=5)
        b = session.ask(question, seed=5)
        c = session.ask(question, seed=6)
        assert payloads([a]) == payloads([b])
        assert a.result.k_refined == b.result.k_refined
        assert c.ok    # different seed still answers

    def test_question_helper_builds_typed_question(self, points):
        session = Session(points)
        q, w = probe(points, 4)
        question = session.question(q, K, w, algorithm="mwk",
                                    options={"sample_size": 30},
                                    id="x1")
        assert isinstance(question, Question)
        assert question.id == "x1" and question.algorithm == "mwk"


class TestAskBatch:
    def test_serial_equals_parallel(self, points):
        session = Session(points)
        questions = [typed(points, 10 + j, algorithm="mwk",
                           options={"sample_size": 40})
                     for j in range(8)]
        serial = session.ask_batch(questions, seed=3, workers=1)
        threaded = session.ask_batch(questions, seed=3, workers=4)
        assert payloads(serial) == payloads(threaded)
        assert [a.index for a in serial] == list(range(8))

    def test_mixed_algorithms_in_one_batch(self, points):
        """Each Question carries its own algorithm — the registry
        dispatches per item, something the deprecated single-
        algorithm batch path could not express."""
        session = Session(points)
        questions = [
            typed(points, 20, algorithm="mqp"),
            typed(points, 21, algorithm="mwk",
                  options={"sample_size": 30}),
            typed(points, 22, algorithm="mqwk",
                  options={"sample_size": 20}),
        ]
        answers = session.ask_batch(questions, seed=2)
        assert [a.algorithm for a in answers] == ["mqp", "mwk",
                                                  "mqwk"]
        assert all(a.ok for a in answers)
        kinds = [a.to_dict()["result"]["kind"] for a in answers]
        assert kinds == ["mqp", "mwk", "mqwk"]

    def test_algorithm_unregistered_mid_batch_fails_item_only(
            self, points):
        """A registry lookup failure is captured per item (like any
        other per-question error), never aborting the batch."""
        from repro.core.registry import register_algorithm
        from repro.core.registry import unregister_algorithm

        @register_algorithm("vanishing")
        def vanish(query, *, context, rng, penalty_config, options):
            raise AssertionError("never runs")

        session = Session(points)
        doomed = typed(points, 24, algorithm="vanishing")
        unregister_algorithm("vanishing")
        answers = session.ask_batch([typed(points, 25), doomed],
                                    workers=2)
        assert answers[0].ok
        assert not answers[1].ok
        assert "unknown algorithm" in answers[1].error.message

    def test_triples_are_rejected_with_pointer_to_shim(self, points):
        session = Session(points)
        q, w = probe(points, 23)
        with pytest.raises(TypeError, match="Question objects"):
            session.ask_batch([(q, K, w)])

    def test_summarize(self, points):
        session = Session(points)
        questions = [typed(points, 30 + j) for j in range(3)]
        answers = session.ask_batch(questions)
        summary = session.summarize(answers)
        assert summary["answered"] == 3 and summary["failed"] == 0


class TestInteractiveParity:
    """Session covers the WQRTQ interactive surface."""

    def test_reverse_topk_and_missing_weights(self, points):
        session = Session(points)
        panel = preference_set(40, D, seed=9555)
        q, _ = probe(points, 40)
        members = session.reverse_topk(q, K, weights=panel)
        missing = session.missing_weights(q, K, panel)
        assert len(members) + len(missing) == len(panel)

    def test_explain_names_culprits(self, points):
        session = Session(points)
        question = typed(points, 41)
        (explanation,) = session.explain(question, max_culprits=3)
        assert explanation.rank_of_q > K
        assert len(explanation.culprit_ids) <= 3

    def test_monochromatic_needs_2d(self, points):
        with pytest.raises(ValueError, match="2-D"):
            Session(points).reverse_topk([0.5] * D, K)


class TestLegacyShimParity:
    """The deprecated entry points warn but answer identically."""

    def test_wqrtq_warns_and_matches_session(self, points):
        session = Session(points)
        q, w = probe(points, 50)
        with pytest.warns(DeprecationWarning, match="WQRTQ"):
            from repro import WQRTQ

            engine = WQRTQ(points, q, K)
        legacy = engine.modify_query_point(w)
        answer = session.ask(Question(q=q, k=K, why_not=w))
        assert legacy.penalty == answer.penalty
        np.testing.assert_array_equal(
            np.asarray(legacy.q_refined),
            np.asarray(answer.result.q_refined))

    def test_whynotbatch_warns_and_matches_ask_batch(self, points):
        session = Session(points)
        triples = [probe(points, 51 + j) for j in range(4)]
        with pytest.warns(DeprecationWarning, match="WhyNotBatch"):
            from repro import WhyNotBatch

            batch = WhyNotBatch(points)
        for q, w in triples:
            batch.add_question(q, K, w)
        report = batch.run("mwk", sample_size=40, seed=7)
        questions = [Question(q=q, k=K, why_not=w, algorithm="mwk",
                              options={"sample_size": 40})
                     for q, w in triples]
        answers = session.ask_batch(questions, seed=7)
        assert [item.penalty for item in report.items] == \
            [a.penalty for a in answers]
        assert [item.result.k_refined for item in report.items] == \
            [a.result.k_refined for a in answers]

    def test_executor_triple_shims_warn_and_match(self, points):
        from repro.engine.executor import (
            answer_one,
            answer_question,
            execute_batch,
        )

        q, w = probe(points, 60)
        with pytest.warns(DeprecationWarning, match="answer_one"):
            item = answer_one(DatasetContext(points), 0, q, K, w,
                              "mqp", rng=np.random.default_rng(0))
        answer = answer_question(
            DatasetContext(points), Question(q=q, k=K, why_not=w),
            rng=np.random.default_rng(0))
        assert item.penalty == answer.penalty
        assert item.query is not None     # legacy field still bound
        with pytest.warns(DeprecationWarning, match="execute_batch"):
            items = execute_batch(DatasetContext(points),
                                  [(q, K, w)], "mqp", seed=0)
        assert items[0].penalty == answer.penalty

    def test_legacy_construction_failure_is_item_not_raise(
            self, points):
        """The shims must keep reporting malformed triples as failed
        items (the typed path rejects them at construction)."""
        from repro.engine.executor import execute_batch

        q, w = probe(points, 61)
        with pytest.warns(DeprecationWarning):
            items = execute_batch(
                DatasetContext(points),
                [(q, K, w), (q, 0, w), (q, K, [[0.9, 0.9, 0.9]])],
                "mqp")
        assert items[0].error is None
        assert "k must be" in items[1].error
        assert "simplex" in items[2].error


class TestCliJsonParity:
    def test_cli_json_matches_session_payloads(self, capsys):
        """Acceptance criterion: ``wqrtq batch --json`` emits exactly
        the ``Answer.to_dict()`` payloads ``Session.ask_batch``
        produces for the same questions."""
        from repro.cli import build_batch_questions, main
        from repro.data import make_dataset

        args = ["batch", "-n", "400", "--questions", "6",
                "--products", "2", "-k", str(K), "--rank", "31",
                "--algorithm", "mwk", "--sample-size", "30",
                "--seed", "4", "--json"]
        assert main(args) == 0
        emitted = json.loads(capsys.readouterr().out)

        dataset = make_dataset("independent", 400, D, seed=4)
        session = Session(dataset)
        questions, _ = build_batch_questions(
            session, n_questions=6, products=2, dim=D, k=K, rank=31,
            algorithm="mwk", sample_size=30, seed=4)
        answers = session.ask_batch(questions, seed=4)
        assert emitted["schema_version"] == \
            answers[0].to_dict()["schema_version"]
        assert [{k: v for k, v in item.items() if k != "elapsed"}
                for item in emitted["answers"]] == payloads(answers)
