"""Cross-module integration tests.

These exercise complete pipelines on non-trivial datasets: every
substrate (R-tree, BRS, QP, samplers) participating in one WQRTQ
answer, on each of the four evaluation data distributions, in several
dimensionalities — plus invariants that tie *pairs* of modules
together (mono intervals vs. refinements, RTA vs. refined results).
"""

import numpy as np
import pytest

from repro import WQRTQ
from repro.core.types import WhyNotQuery
from repro.data import make_dataset, preference_set, query_point_with_rank
from repro.rtopk.bichromatic import brtopk_rta
from repro.rtopk.mono import mrtopk_2d
from repro.topk.scan import rank_of_scan


def _workload(kind: str, n: int, d: int, k: int, rank: int, seed: int):
    pts = make_dataset(kind, n, d, seed=seed)
    w = preference_set(1, d, seed=seed + 1)
    q = query_point_with_rank(pts, w[0], rank)
    return pts, w, q


@pytest.mark.parametrize("kind", ["independent", "anticorrelated",
                                  "correlated", "nba", "household"])
class TestFullPipelinePerDataset:
    def test_three_solutions_valid(self, kind):
        d = {"nba": 13, "household": 6}.get(kind, 3)
        pts, wm, q = _workload(kind, 2_000, d, 10, 41, seed=17)
        try:
            query = WhyNotQuery(points=pts, q=q, k=10, why_not=wm)
        except ValueError:
            pytest.skip("degenerate workload for this distribution")
        engine = WQRTQ(pts, q, 10, tree=query.rtree)

        mqp = engine.modify_query_point(wm)
        assert rank_of_scan(pts, wm[0], mqp.q_refined) <= 10

        # Matched sample budgets and rng streams: MQWK's endpoint
        # candidates then dominate both single-sided solutions.
        mwk = engine.modify_weights_and_k(
            wm, sample_size=100, rng=np.random.default_rng(17))
        for w in mwk.weights_refined:
            assert rank_of_scan(pts, w, q) <= mwk.k_refined

        mqwk = engine.modify_all(
            wm, sample_size=100, rng=np.random.default_rng(17))
        for w in mqwk.weights_refined:
            assert rank_of_scan(pts, w, mqwk.q_refined) <= \
                mqwk.k_refined
        assert mqwk.penalty <= 0.5 * mqp.penalty + 1e-9
        assert mqwk.penalty <= 0.5 * mwk.penalty + 1e-9


class TestBichromaticRefinementLoop:
    """Refine, then re-run the *original* reverse top-k machinery to
    confirm the refined query really contains the why-not vectors —
    the library eating its own dog food."""

    def test_mqp_closes_the_loop(self):
        pts, _, _ = _workload("independent", 3_000, 3, 10, 61, seed=23)
        panel = preference_set(40, 3, seed=24)
        q = np.quantile(pts, 0.35, axis=0)
        engine = WQRTQ(pts, q, 10, weights=panel)
        missing = engine.missing_weights()
        if len(missing) == 0:
            pytest.skip("no missing vectors in this panel")
        target = missing[:2]
        res = engine.modify_query_point(target)
        refined_members = brtopk_rta(engine.tree, panel,
                                     res.q_refined, 10)
        member_rows = panel[refined_members]
        for w in target:
            assert any(np.allclose(w, row) for row in member_rows)

    def test_mwk_closes_the_loop(self):
        pts, _, _ = _workload("independent", 3_000, 3, 10, 61, seed=29)
        panel = preference_set(40, 3, seed=30)
        q = np.quantile(pts, 0.35, axis=0)
        engine = WQRTQ(pts, q, 10, weights=panel)
        missing = engine.missing_weights()
        if len(missing) == 0:
            pytest.skip("no missing vectors in this panel")
        target = missing[:2]
        res = engine.modify_weights_and_k(
            target, sample_size=150, rng=np.random.default_rng(1))
        # Swap the refined vectors into the panel and re-query with k'.
        swapped = panel.copy()
        for orig, new in zip(target, res.weights_refined):
            idx = int(np.argmax(np.all(np.isclose(panel, orig),
                                       axis=1)))
            swapped[idx] = new
        members = brtopk_rta(engine.tree, swapped, q, res.k_refined)
        member_rows = swapped[members]
        for new in res.weights_refined:
            assert any(np.allclose(new, row) for row in member_rows)


class TestMonoBichromaticConsistency:
    def test_interval_midpoints_pass_rta(self):
        """Vectors inside the mono intervals are exactly those RTA
        returns when used as a panel."""
        pts = make_dataset("anticorrelated", 500, 2, seed=31)
        q = np.array([0.40, 0.40])
        intervals = mrtopk_2d(pts, q, 8)
        if not intervals:
            pytest.skip("empty mono result for this seed")
        probes, expected = [], []
        for iv in intervals:
            probes.append(iv.midpoint_vector())
            expected.append(True)
        probes.append(np.array([0.999, 0.001]))
        expected.append(any(iv.contains(0.999) for iv in intervals))
        members = set(
            brtopk_rta(pts, np.asarray(probes), q, 8).tolist())
        for i, expect in enumerate(expected):
            assert (i in members) == expect


class TestDimensionalitySweep:
    @pytest.mark.parametrize("d", [2, 3, 5, 8])
    def test_mqp_and_mwk_scale_in_d(self, d):
        pts = make_dataset("independent", 1_500, d, seed=d)
        wm = preference_set(2, d, seed=d + 50)
        q = query_point_with_rank(pts, wm[0], 31)
        try:
            query = WhyNotQuery(points=pts, q=q, k=5, why_not=wm)
        except ValueError:
            pytest.skip("q not missing for both vectors")
        engine = WQRTQ(pts, q, 5, tree=query.rtree)
        mqp = engine.modify_query_point(wm)
        assert mqp.kkt_residual < 1e-5
        mwk = engine.modify_weights_and_k(
            wm, sample_size=80, rng=np.random.default_rng(d))
        assert 0.0 <= mwk.penalty <= 1.0


class TestStress:
    def test_20k_points_full_stack(self):
        pts = make_dataset("independent", 20_000, 3, seed=77)
        wm = preference_set(1, 3, seed=78)
        q = query_point_with_rank(pts, wm[0], 101)
        query = WhyNotQuery(points=pts, q=q, k=10, why_not=wm)
        engine = WQRTQ(pts, q, 10, tree=query.rtree)
        rng = np.random.default_rng(79)
        mqwk = engine.modify_all(wm, sample_size=100, rng=rng)
        assert 0.0 <= mqwk.penalty <= 1.0
        for w in mqwk.weights_refined:
            assert rank_of_scan(pts, w, mqwk.q_refined) <= \
                mqwk.k_refined
