"""Tests for the PREFER-style materialized ranked views."""

import numpy as np
import pytest

from repro.data import independent, preference_set
from repro.topk import topk_scan
from repro.topk.views import PreferIndex, RankedView


class TestRankedView:
    def test_exact_for_view_vector_itself(self, rng):
        pts = rng.random((200, 3))
        v = np.array([0.3, 0.4, 0.3])
        view = RankedView(pts, v)
        ids, scanned = view.topk(v, 10)
        assert ids.tolist() == topk_scan(pts, v, 10).tolist()
        # Perfect coverage: the scan stops almost immediately.
        assert scanned <= 15

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_scan_for_nearby_vectors(self, seed):
        pts = independent(300, 3, seed=seed)
        v = np.array([1 / 3, 1 / 3, 1 / 3])
        view = RankedView(pts, v)
        rng = np.random.default_rng(seed)
        for _ in range(6):
            w = rng.dirichlet(np.ones(3) * 20)   # near the centre
            ids, scanned = view.topk(w, 8)
            assert ids.tolist() == topk_scan(pts, w, 8).tolist()
            assert scanned <= len(pts)

    def test_matches_scan_for_far_vectors(self, rng):
        """Correct even when coverage is poor (scan just goes deep)."""
        pts = independent(200, 2, seed=9)
        view = RankedView(pts, [0.9, 0.1])
        w = [0.05, 0.95]
        ids, _ = view.topk(w, 5)
        assert ids.tolist() == topk_scan(pts, w, 5).tolist()

    def test_coverage_properties(self, rng):
        pts = rng.random((50, 3))
        v = np.array([0.5, 0.25, 0.25])
        view = RankedView(pts, v)
        assert view.coverage(v) == pytest.approx(1.0)
        assert view.coverage([0.25, 0.5, 0.25]) == pytest.approx(0.5)

    def test_coverage_zero_view_column(self, rng):
        pts = rng.random((50, 2))
        view = RankedView(pts, [1.0, 0.0])
        assert view.coverage([0.5, 0.5]) == 0.0
        assert view.coverage([1.0, 0.0]) == pytest.approx(1.0)

    def test_deeper_scan_for_farther_query(self):
        pts = independent(1_000, 2, seed=17)
        view = RankedView(pts, [0.5, 0.5])
        _, near = view.topk([0.45, 0.55], 5)
        _, far = view.topk([0.05, 0.95], 5)
        assert near <= far

    def test_validation(self, rng):
        with pytest.raises(ValueError, match="non-negative"):
            RankedView(rng.random((10, 2)), [-0.5, 1.5])
        with pytest.raises(ValueError, match="non-negative"):
            RankedView(rng.random((10, 2)) - 5.0, [0.5, 0.5])
        view = RankedView(rng.random((10, 2)), [0.5, 0.5])
        with pytest.raises(ValueError):
            view.topk([0.5, 0.5], 0)


class TestPreferIndex:
    def test_routes_to_best_view(self):
        pts = independent(300, 2, seed=23)
        index = PreferIndex(pts, [[0.9, 0.1], [0.5, 0.5], [0.1, 0.9]])
        near_first = index.best_view([0.85, 0.15])
        assert np.allclose(near_first.view_vector, [0.9, 0.1])

    def test_matches_scan_over_weight_sweep(self):
        pts = independent(400, 3, seed=29)
        views = preference_set(4, 3, seed=30)
        index = PreferIndex(pts, views)
        queries = preference_set(10, 3, seed=31)
        for w in queries:
            assert index.topk(w, 12).tolist() == topk_scan(
                pts, w, 12).tolist()

    def test_fallback_when_uncovered(self, rng):
        pts = rng.random((100, 2))
        index = PreferIndex(pts, [[1.0, 0.0]])
        ids = index.topk([0.3, 0.7], 5)
        assert ids.tolist() == topk_scan(pts, [0.3, 0.7], 5).tolist()

    def test_requires_views(self, rng):
        with pytest.raises(ValueError):
            PreferIndex(rng.random((10, 2)), np.empty((0, 2)))
