"""Unit tests for the terminal visualization helpers."""

import numpy as np
import pytest

from repro.core.safe_region import safe_region_polygon
from repro.rtopk.mono import mrtopk_2d
from repro.viz import (
    format_markdown_table,
    log_interpolate,
    render_curve,
    render_intervals,
    render_plane,
)


class TestRenderPlane:
    def test_contains_query_marker(self, paper_points, paper_q):
        art = render_plane(paper_points, paper_q)
        assert "Q" in art
        assert "·" in art

    def test_polygon_shading(self, paper_points, paper_q,
                             paper_missing):
        poly = safe_region_polygon(paper_points, paper_q,
                                   paper_missing, 3)
        art = render_plane(paper_points, paper_q, polygon=poly,
                           lower=(0, 0), upper=(10, 10))
        assert "░" in art

    def test_fixed_dimensions(self, paper_points, paper_q):
        art = render_plane(paper_points, paper_q, width=30, height=10)
        lines = art.splitlines()
        # frame + 10 rows + frame + caption
        assert len(lines) == 13
        assert all(len(line) == 32 for line in lines[:-1])

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            render_plane(np.ones((3, 3)), np.zeros(3))


class TestRenderIntervals:
    def test_qualifying_region_shaded(self, paper_points, paper_q):
        intervals = mrtopk_2d(paper_points, paper_q, 3)
        art = render_intervals(intervals, width=40)
        assert "█" in art
        # Roughly (3/4 - 1/6) of 40 columns shaded.
        shaded = art.splitlines()[0].count("█")
        assert 18 <= shaded <= 28

    def test_marks_drawn(self, paper_points, paper_q):
        intervals = mrtopk_2d(paper_points, paper_q, 3)
        art = render_intervals(intervals, marks={"K": 0.1, "J": 0.9})
        assert "K" in art and "J" in art

    def test_empty_intervals(self):
        art = render_intervals([], width=20)
        assert "█" not in art


class TestRenderCurve:
    def test_series_glyphs_present(self):
        art = render_curve(
            {"MQP": [0.01, 0.02, 0.04], "MWK": [0.1, 0.3, 0.9]},
            xs=[10, 20, 30], title="demo")
        assert "demo" in art
        assert "M" in art
        assert "legend" in art

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            render_curve({"A": [1.0, 2.0]}, xs=[1, 2, 3])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            render_curve({}, xs=[1])

    def test_linear_scale(self):
        art = render_curve({"A": [1.0, 2.0]}, xs=[1, 2], logy=False)
        assert "log10" not in art


class TestMarkdownTable:
    def test_basic_table(self):
        rows = [{"a": 1, "b": 0.25}, {"a": 2, "b": 0.5}]
        table = format_markdown_table(rows, ["a", "b"])
        lines = table.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert "0.250" in lines[2]

    def test_missing_cells_blank(self):
        table = format_markdown_table([{"a": 1}], ["a", "b"])
        assert table.splitlines()[2] == "| 1 |  |"

    def test_empty_rows(self):
        assert format_markdown_table([], ["a"]) == "(no rows)"


class TestLogInterpolate:
    def test_buckets(self):
        assert log_interpolate(1.0) == 0
        assert log_interpolate(0.05) == -2
        assert log_interpolate(150.0) == 2
