"""Run the doctests embedded in the library's docstrings."""

import doctest

import pytest

import repro
import repro.core.penalty
import repro.geometry.dominance
import repro.geometry.hyperplane
import repro.geometry.vectors
import repro.topk.scan

MODULES = [
    repro,
    repro.core.penalty,
    repro.geometry.dominance,
    repro.geometry.hyperplane,
    repro.geometry.vectors,
    repro.topk.scan,
]


@pytest.mark.parametrize("module", MODULES,
                         ids=[m.__name__ for m in MODULES])
def test_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, (
        f"{results.failed} doctest failure(s) in {module.__name__}")


def test_package_quickstart_doctest_has_examples():
    """The package docstring must actually contain a worked example."""
    results = doctest.testmod(repro, verbose=False)
    assert results.attempted >= 4
