"""Anytime execution: budgets, steppers, streaming, interleaving.

The contract under test (DESIGN.md "Anytime execution & job
lifecycle"):

* penalties never increase across refinement rounds;
* chunked refinement is *equal* (not just similar) to the one-shot
  answer at the same total sample count and seed;
* ``Budget`` limits — sample budget, deadline, penalty tolerance —
  each stop refinement, and the answer always carries ``Quality``;
* ``Session.ask_stream`` yields at least two answers for a budgeted
  sampling question, ending on exactly ``Session.ask``'s answer;
* interleaved batch refinement returns the same answers as
  head-of-line execution for pure sample budgets.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.mqp import MQPStepper
from repro.core.mqwk import modify_query_weights_and_k
from repro.core.mqwk import make_stepper as make_mqwk_stepper
from repro.core.mwk import modify_weights_and_k
from repro.core.mwk import make_stepper as make_mwk_stepper
from repro.core.protocol import Budget, Quality, Question
from repro.core.registry import get_algorithm
from repro.core.session import Session
from repro.core.types import WhyNotQuery
from repro.data import independent, preference_set, query_point_with_rank
from repro.engine.context import DatasetContext
from repro.engine.executor import execute_questions, iter_answers

N = 900
D = 3
K = 10


@pytest.fixture(scope="module")
def points():
    return independent(N, D, seed=23)


@pytest.fixture(scope="module")
def context(points):
    ctx = DatasetContext(points)
    ctx.tree
    return ctx


def make_query(points, j, *, rank=61):
    w = preference_set(1, D, seed=4100 + j)
    q = query_point_with_rank(points, w[0], rank)
    return WhyNotQuery(points=points, q=q, k=K, why_not=w)


def make_question(points, j, *, algorithm="mwk", budget=None,
                  options=None, rank=61):
    query = make_query(points, j, rank=rank)
    return Question(q=query.q, k=K, why_not=query.why_not,
                    algorithm=algorithm, budget=budget,
                    options=options or {}, id=f"any-{j}")


class TestBudgetValidation:
    def test_empty_budget_means_none(self):
        q = Question(q=[0.2, 0.2], k=2, why_not=[[0.5, 0.5]],
                     budget=Budget())
        assert q.budget is None

    def test_budget_accepts_dict_form(self):
        q = Question(q=[0.2, 0.2], k=2, why_not=[[0.5, 0.5]],
                     budget={"sample_budget": 10})
        assert q.budget == Budget(sample_budget=10)

    @pytest.mark.parametrize("kwargs", [
        {"sample_budget": 0},
        {"sample_budget": 2.5},
        {"sample_budget": "lots"},
        {"deadline_ms": 0},
        {"deadline_ms": -5},
        {"deadline_ms": float("inf")},
        {"target_penalty_tolerance": -0.1},
        {"target_penalty_tolerance": float("nan")},
    ])
    def test_invalid_limits_rejected(self, kwargs):
        with pytest.raises(ValueError):
            Budget(**kwargs)

    def test_unknown_budget_field_rejected(self):
        with pytest.raises(ValueError, match="unknown field"):
            Budget.from_dict({"samples": 10})

    def test_budget_round_trips(self):
        budget = Budget(sample_budget=500, deadline_ms=50.0,
                        target_penalty_tolerance=0.05)
        assert Budget.from_dict(budget.to_dict()) == budget


class TestStepperContract:
    """start/refine semantics shared by all three algorithms."""

    def test_mwk_monotone_and_chunk_invariant(self, points):
        query = make_query(points, 0)
        one = modify_weights_and_k(query, sample_size=600,
                                   rng=np.random.default_rng(5))
        stepper = make_mwk_stepper(query,
                                   rng=np.random.default_rng(5))
        penalties = []
        for chunk in (100, 37, 163, 300):   # awkward, uneven chunks
            penalties.append(stepper.refine(chunk).penalty)
        assert all(b <= a for a, b in zip(penalties, penalties[1:]))
        final = stepper.result()
        assert final.penalty == one.penalty
        assert np.array_equal(final.weights_refined,
                              one.weights_refined)
        assert final.k_refined == one.k_refined
        assert stepper.samples_examined == 600

    def test_mqwk_monotone_and_chunk_invariant(self, points):
        query = make_query(points, 1)
        one = modify_query_weights_and_k(
            query, sample_size=40, q_sample_size=24,
            rng=np.random.default_rng(6))
        stepper = make_mqwk_stepper(query, sample_size=40,
                                    rng=np.random.default_rng(6))
        penalties = [stepper.refine(c).penalty for c in (7, 10, 7)]
        assert all(b <= a for a, b in zip(penalties, penalties[1:]))
        final = stepper.result()
        assert final.penalty == one.penalty
        assert np.array_equal(final.q_refined, one.q_refined)
        assert final.k_refined == one.k_refined
        assert stepper.samples_examined == 24

    def test_mqp_converges_in_one_round(self, points):
        stepper = MQPStepper(make_query(points, 2))
        assert not stepper.converged
        result = stepper.refine(0)
        assert stepper.converged and stepper.rounds == 1
        assert result.penalty >= 0.0
        assert stepper.refine(100) is result   # idempotent after

    def test_registry_start_refine_shape(self, points, context):
        """The functional spec.start/spec.refine contract."""
        query = make_query(points, 3)
        from repro.core.penalty import DEFAULT_PENALTY

        spec = get_algorithm("mwk")
        assert spec.supports_anytime
        state = spec.start(query, context=context,
                           rng=np.random.default_rng(1),
                           penalty_config=DEFAULT_PENALTY,
                           options={"sample_size": 200})
        state, first = spec.refine(state, 100)
        state, second = spec.refine(state, 100)
        assert second.penalty <= first.penalty
        assert state.samples_examined == 200
        assert state.sample_target == 200

    def test_unregistered_stepper_raises(self, points):
        from repro.core.registry import (
            register_algorithm,
            unregister_algorithm,
        )

        @register_algorithm("mqp-oneshot-test")
        def _one_shot(query, *, context, rng, penalty_config,
                      options):   # pragma: no cover - never run
            raise AssertionError
        try:
            spec = get_algorithm("mqp-oneshot-test")
            assert not spec.supports_anytime
            with pytest.raises(ValueError, match="anytime"):
                spec.start(make_query(points, 3))
        finally:
            unregister_algorithm("mqp-oneshot-test")


class TestAnytimeAsk:
    def test_sample_budget_caps_and_stamps_quality(self, points):
        session = Session(points)
        question = make_question(points, 4,
                                 budget=Budget(sample_budget=300))
        answer = session.ask(question, seed=2)
        assert answer.ok and answer.valid
        assert isinstance(answer.quality, Quality)
        assert answer.quality.samples_examined == 300
        assert answer.quality.converged
        assert answer.quality.rounds >= 1

    def test_budgeted_equals_one_shot_at_equal_samples(self, points):
        """The acceptance property: budget=N ≡ options sample_size=N."""
        session = Session(points)
        budgeted = session.ask(make_question(
            points, 5, budget=Budget(sample_budget=400)), seed=7)
        plain = session.ask(make_question(
            points, 5, options={"sample_size": 400}), seed=7)
        assert plain.quality is None        # legacy path untouched
        assert budgeted.penalty == plain.penalty
        assert budgeted.result.k_refined == plain.result.k_refined
        assert np.array_equal(budgeted.result.weights_refined,
                              plain.result.weights_refined)

    def test_tolerance_stops_early(self, points):
        session = Session(points)
        question = make_question(
            points, 6,
            budget=Budget(sample_budget=100_000,
                          target_penalty_tolerance=1.0))
        answer = session.ask(question, seed=1)
        # Tolerance 1.0 is met by the very first round (penalties
        # live in [0, 1]), so almost none of the budget is spent.
        assert answer.quality.converged
        assert answer.quality.samples_examined < 100_000

    def test_deadline_cuts_refinement_short(self, points):
        session = Session(points)
        question = make_question(
            points, 7,
            budget=Budget(deadline_ms=25.0, sample_budget=10_000_000))
        answer = session.ask(question, seed=1)
        assert answer.ok
        assert not answer.quality.converged
        assert 0 < answer.quality.samples_examined < 10_000_000

    def test_failed_budgeted_question_is_failed_answer(self, points):
        session = Session(points)
        # k > |P| is a catalogue-dependent failure: must surface as a
        # failed Answer on the anytime path too, never an exception.
        question = Question(q=points[0] * 0.9, k=N + 5,
                            why_not=[[1.0, 0.0, 0.0]],
                            algorithm="mwk",
                            budget=Budget(sample_budget=100))
        answer = session.ask(question)
        assert answer.error is not None
        assert np.isnan(answer.penalty)

    def test_mqp_budget_single_round(self, points):
        session = Session(points)
        answer = session.ask(make_question(
            points, 8, algorithm="mqp",
            budget=Budget(sample_budget=500)))
        assert answer.ok and answer.quality.converged
        assert answer.quality.rounds == 1


class TestAskStream:
    def test_stream_yields_monotone_answers(self, points):
        """Acceptance: >= 2 answers, non-increasing penalty, final
        equals ask()."""
        session = Session(points)
        question = make_question(points, 9,
                                 budget=Budget(sample_budget=480))
        answers = list(session.ask_stream(question, seed=11))
        assert len(answers) >= 2
        penalties = [a.penalty for a in answers]
        assert all(b <= a for a, b in zip(penalties, penalties[1:]))
        assert [a.quality.rounds for a in answers] == \
            list(range(1, len(answers) + 1))
        final = session.ask(question, seed=11)
        assert answers[-1].penalty == final.penalty
        assert answers[-1].quality.samples_examined == \
            final.quality.samples_examined == 480

    def test_stream_without_budget_still_streams(self, points):
        session = Session(points)
        question = make_question(points, 10,
                                 options={"sample_size": 320})
        answers = list(session.ask_stream(question, seed=3))
        assert len(answers) >= 2
        assert answers[-1].quality.samples_examined == 320
        one_shot = session.ask(question, seed=3)
        assert answers[-1].penalty == one_shot.penalty

    def test_stream_chunk_override(self, points):
        session = Session(points)
        question = make_question(points, 11,
                                 budget=Budget(sample_budget=300))
        answers = list(session.ask_stream(question, seed=3,
                                          chunk=100))
        assert len(answers) == 3
        assert answers[-1].quality.samples_examined == 300

    def test_stream_failed_question_yields_one_failure(self, context,
                                                       points):
        question = Question(q=points[0] * 0.9, k=N + 5,
                            why_not=[[1.0, 0.0, 0.0]],
                            budget=Budget(sample_budget=10))
        answers = list(iter_answers(context, question))
        assert len(answers) == 1
        assert answers[0].error is not None


class TestInterleavedBatch:
    def test_interleaved_equals_head_of_line_and_workers(
            self, context, points):
        questions = [make_question(points, 20 + j,
                                   budget=Budget(sample_budget=160))
                     for j in range(5)]
        interleaved = execute_questions(context, questions, seed=4)
        serial = execute_questions(context, questions, seed=4,
                                   interleave=False)
        pooled = execute_questions(context, questions, seed=4,
                                   workers=3)
        for a, b, c in zip(interleaved, serial, pooled):
            assert a.penalty == b.penalty == c.penalty
            assert a.quality == b.quality == c.quality

    def test_mixed_batch_budgeted_and_plain(self, context, points):
        """Budgeted and legacy questions coexist in one batch; the
        legacy ones keep quality=None and their exact answers."""
        budgeted = make_question(points, 26,
                                 budget=Budget(sample_budget=200))
        plain = make_question(points, 27,
                              options={"sample_size": 50})
        answers = execute_questions(context, [budgeted, plain],
                                    seed=6)
        assert answers[0].quality is not None
        assert answers[1].quality is None
        alone = execute_questions(context, [plain], seed=7)[0]
        # seed alignment: item index 1 uses seed 6 + 1 = 7 + 0.
        assert answers[1].penalty == alone.penalty

    def test_batch_deadline_every_item_answers(self, context,
                                               points):
        questions = [make_question(
            points, 30 + j,
            budget=Budget(sample_budget=5_000_000))
            for j in range(4)]
        answers = execute_questions(context, questions, seed=2,
                                    deadline_ms=120.0)
        assert all(a.ok for a in answers)
        assert all(a.quality is not None for a in answers)
        # The deadline cut the huge budgets short...
        assert all(a.quality.samples_examined < 5_000_000
                   for a in answers)
        # ...but every single item got at least one round.
        assert all(a.quality.rounds >= 1 for a in answers)

    def test_prefailed_entries_pass_through(self, context, points):
        from repro.core.protocol import Answer, ErrorInfo

        prefailed = Answer(index=0, algorithm="mwk", result=None,
                           penalty=float("nan"), valid=False,
                           error=ErrorInfo(type="ValueError",
                                           message="bad entry",
                                           category="validation"))
        questions = [make_question(points, 40,
                                   budget=Budget(sample_budget=100)),
                     prefailed,
                     make_question(points, 41,
                                   budget=Budget(sample_budget=100))]
        answers = execute_questions(context, questions, seed=1)
        assert answers[1].error.message == "bad entry"
        assert answers[1].index == 1
        assert answers[0].ok and answers[2].ok
