"""Shared-memory snapshots: pack/attach identity and lifecycle.

Satellite acceptance for the multi-process serving tier: a context
rebuilt from a shared segment must be *behaviourally identical* to
its source — same answers for every registered algorithm, same R-tree
traversal order and node-access counts — and the segment lifecycle
must be leak-free: owned segments are unlinked on demand, swept at
exit, and attaching never trips Python 3.11's ``resource_tracker``
into warning about (or destroying) a segment it does not own.
"""

from __future__ import annotations

import subprocess
import sys

import numpy as np
import pytest

from repro.core.protocol import Question
from repro.data import independent, preference_set, query_point_with_rank
from repro.engine.context import DatasetContext
from repro.engine.shm import (
    attach_snapshot,
    export_snapshot,
    owned_segments,
    sweep_owned_segments,
    unlink_snapshot,
)
from repro.index import RTree
from repro.topk.brs import BRSEngine

D = 3


@pytest.fixture(scope="module")
def points():
    base = independent(400, D, seed=21)
    # Duplicate a block so exact score ties are common: tie-breaking
    # must survive the shared-memory round trip bit-for-bit.
    return np.vstack([base, base[:120]])


@pytest.fixture()
def context(points):
    return DatasetContext(points, version=7)


def strip_elapsed(answer) -> dict:
    payload = answer.to_dict()
    payload.pop("elapsed")
    return payload


def make_question(points, j, *, algorithm="mqp", options=None, k=9):
    w = preference_set(2, D, seed=500 + j)
    q = query_point_with_rank(points, w[0], 41)
    return Question(q=q, k=k, why_not=w, algorithm=algorithm,
                    options=options or {})


class TestPackedTree:
    def test_from_packed_traversal_identical(self, points):
        tree = RTree(points, capacity=16)
        rebuilt = RTree.from_packed(tree.pack(), points, capacity=16)
        w = preference_set(1, D, seed=3)[0]

        ranked = list(BRSEngine(tree).iter_ranked(w))
        ranked2 = list(BRSEngine(rebuilt).iter_ranked(w))
        assert ranked == ranked2
        # Structural identity, not just output identity: the packed
        # form must reproduce the same node visit counts.
        assert tree.stats.node_accesses == rebuilt.stats.node_accesses
        assert tree.stats.leaf_accesses == rebuilt.stats.leaf_accesses

    def test_from_packed_adopts_points_zero_copy(self, points):
        tree = RTree(points, capacity=16)
        rebuilt = RTree.from_packed(tree.pack(), tree.points,
                                    capacity=16)
        assert rebuilt.points is tree.points


class TestSharedContext:
    def test_manifest_and_views(self, context):
        manifest = export_snapshot(context)
        try:
            assert manifest.version == 7
            assert manifest.n_points == context.n
            arrays, segment = attach_snapshot(manifest)
            try:
                np.testing.assert_array_equal(arrays["points"],
                                              context.points)
                assert not arrays["points"].flags.writeable
                # Zero-copy: the view's memory is the segment buffer.
                assert arrays["points"].base is not None
            finally:
                del arrays
                segment.close()
        finally:
            unlink_snapshot(manifest)

    @pytest.mark.parametrize("algorithm, options", [
        ("mqp", {}),
        ("mwk", {"sample_size": 60}),
        ("mqwk", {"sample_size": 40}),
    ])
    def test_from_shared_answers_identical(self, context, points,
                                           algorithm, options):
        from repro.engine.executor import answer_question

        manifest = export_snapshot(context)
        try:
            shared = DatasetContext.from_shared(manifest)
            question = make_question(points, 1, algorithm=algorithm,
                                     options=options)
            rng = lambda: np.random.default_rng(5)   # noqa: E731
            direct = answer_question(context, question, rng=rng())
            via_shm = answer_question(shared, question, rng=rng())
            assert direct.ok, direct.error
            assert strip_elapsed(direct) == strip_elapsed(via_shm)
            assert via_shm.catalogue_version == 7
        finally:
            unlink_snapshot(manifest)

    def test_from_shared_failure_identical(self, context, points):
        from repro.engine.executor import answer_question

        manifest = export_snapshot(context)
        try:
            shared = DatasetContext.from_shared(manifest)
            question = make_question(points, 2, k=10 ** 6)
            direct = answer_question(context, question)
            via_shm = answer_question(shared, question)
            assert not direct.ok
            assert strip_elapsed(direct) == strip_elapsed(via_shm)
        finally:
            unlink_snapshot(manifest)


class TestLifecycle:
    def test_unlink_is_idempotent_and_tracked(self, context):
        manifest = export_snapshot(context)
        assert manifest.segment in owned_segments()
        assert unlink_snapshot(manifest) is True
        assert manifest.segment not in owned_segments()
        assert unlink_snapshot(manifest) is False

    def test_sweep_collects_everything(self, context):
        export_snapshot(context)
        export_snapshot(context)
        swept = sweep_owned_segments()
        assert len(swept) >= 2
        assert owned_segments() == ()

    def test_no_resource_tracker_warnings(self, tmp_path):
        """Exporting, attaching from a child and exiting must leave
        no segment behind and emit no resource_tracker noise — the
        3.11 double-registration trap this repo works around."""
        script = tmp_path / "probe.py"
        script.write_text(
            "import numpy as np\n"
            "from multiprocessing import get_context\n"
            "from repro.engine.context import DatasetContext\n"
            "from repro.engine.shm import export_snapshot\n"
            "def child(manifest):\n"
            "    ctx = DatasetContext.from_shared(manifest)\n"
            "    assert ctx.n == manifest.n_points\n"
            "def main():\n"
            "    ctx = DatasetContext(\n"
            "        np.random.default_rng(0).random((200, 3)) + .01)\n"
            "    manifest = export_snapshot(ctx)\n"
            "    proc = get_context('spawn').Process(\n"
            "        target=child, args=(manifest,))\n"
            "    proc.start(); proc.join()\n"
            "    assert proc.exitcode == 0\n"
            "    # owner exits without explicit unlink: the atexit\n"
            "    # sweep must collect the segment silently.\n"
            "if __name__ == '__main__':\n"
            "    main()\n")
        result = subprocess.run(
            [sys.executable, str(script)], capture_output=True,
            text=True, timeout=110)
        assert result.returncode == 0, result.stderr
        assert "resource_tracker" not in result.stderr, result.stderr
        assert "leaked" not in result.stderr, result.stderr
