"""reprolint: the rule engine, every committed failing fixture, the
schema lock, suppressions, renderers and the CLI glue.

The fixture convention: each file in ``tests/fixtures/lint/`` is one
*failing* example for one rule, carrying two header comments —
``# fixture-rule: ID`` (the rule it must trip) and
``# fixture-dest: path`` (where in a scratch project it must live to
trip it).  The parametrized test below installs each fixture in a
throwaway project and proves its rule fires; a companion test proves
the fixture set covers every registered rule.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

import pytest

from repro.analysis import (
    EXIT_CLEAN,
    EXIT_FINDINGS,
    EXIT_USAGE,
    Finding,
    Project,
    discover_root,
    get_rule,
    register_rule,
    render_human,
    render_json,
    rule_ids,
    run_rules,
    update_lock,
)
from repro.analysis.framework import suppressed_ids
from repro.analysis.runner import main as lint_main

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURE_DIR = Path(__file__).resolve().parent / "fixtures" / "lint"

_RULE_RE = re.compile(r"#\s*fixture-rule:\s*(\S+)")
_DEST_RE = re.compile(r"#\s*fixture-dest:\s*(\S+)")


def make_project(tmp_path: Path, files: dict[str, str]) -> Project:
    """A scratch repo checkout: ``src/repro`` package plus ``files``
    (root-relative path → source)."""
    files = {"src/repro/__init__.py": "", **files}
    for rel, content in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(content, encoding="utf-8")
    return Project(tmp_path)


# ---------------------------------------------------------------------
# Rule registry
# ---------------------------------------------------------------------


EXPECTED_RULES = (
    "LAYERING", "SERVICE-PURITY", "DEPRECATED-API", "SCHEMA-LOCK",
    "DET-RNG", "DET-CLOCK", "SHM-LIFECYCLE", "LOCK-WITH",
    "THREAD-LIFECYCLE", "FROZEN-SETATTR", "CTX-MUTATE",
)


def test_registry_order_is_presentation_order():
    assert rule_ids() == EXPECTED_RULES


def test_every_rule_describes_its_contract():
    for rule_id in rule_ids():
        spec = get_rule(rule_id).describe()
        assert spec["id"] == rule_id
        assert spec["summary"]
        assert spec["contract"]


def test_unknown_rule_error_lists_the_registry():
    with pytest.raises(ValueError, match="LAYERING"):
        get_rule("NO-SUCH-RULE")


def test_lookup_is_case_insensitive():
    assert get_rule("det-rng").id == "DET-RNG"


def test_duplicate_registration_is_rejected():
    with pytest.raises(ValueError, match="already registered"):
        @register_rule("LAYERING", summary="imposter")
        def imposter(project):
            return []


def test_typoed_rule_fails_before_any_rule_runs(tmp_path):
    project = make_project(tmp_path, {})
    with pytest.raises(ValueError, match="unknown rule"):
        run_rules(project, rules=["DET-RGN"])


# ---------------------------------------------------------------------
# Committed failing fixtures — one per rule
# ---------------------------------------------------------------------


FIXTURES = sorted(FIXTURE_DIR.glob("*.py"))


def _fixture_header(path: Path) -> tuple[str, str]:
    source = path.read_text(encoding="utf-8")
    rule = _RULE_RE.search(source)
    dest = _DEST_RE.search(source)
    assert rule and dest, f"{path.name} lacks fixture headers"
    return rule.group(1), dest.group(1)


def test_fixture_set_covers_every_rule():
    covered = {_fixture_header(path)[0] for path in FIXTURES}
    assert covered == set(rule_ids())


@pytest.mark.parametrize("fixture", FIXTURES,
                         ids=lambda path: path.stem)
def test_fixture_trips_its_rule(fixture, tmp_path):
    rule, dest = _fixture_header(fixture)
    project = make_project(
        tmp_path, {dest: fixture.read_text(encoding="utf-8")})
    report = run_rules(project, rules=[rule])
    assert report.findings, f"{fixture.name} tripped nothing"
    assert {f.rule for f in report.findings} == {rule}
    # Every finding points into the installed fixture (or, for
    # project-level schema findings, at the missing lock).
    for finding in report.findings:
        assert finding.path in (dest, "schema_lock.json")


def test_fixtures_do_not_leak_into_other_rules(tmp_path):
    # A fixture must fail *its* rule, not splatter across the board:
    # install them all at once and check each rule's findings come
    # from its own fixture files.
    dests = {}
    files = {}
    for fixture in FIXTURES:
        rule, dest = _fixture_header(fixture)
        files[dest] = fixture.read_text(encoding="utf-8")
        dests.setdefault(rule, set()).add(dest)
    project = make_project(tmp_path, files)
    report = run_rules(project)
    assert report.findings
    for finding in report.findings:
        if finding.path == "schema_lock.json":
            continue   # project-level: the scratch repo has no lock
        expected = dests[finding.rule]
        assert finding.path in expected, (
            f"{finding.rule} fired on {finding.path}, expected one "
            f"of {sorted(expected)}")


# ---------------------------------------------------------------------
# Import-graph semantics
# ---------------------------------------------------------------------


def test_service_importing_numpy_is_rejected(tmp_path):
    project = make_project(tmp_path, {
        "src/repro/service/mod.py": "import numpy as np\n",
    })
    report = run_rules(project, rules=["SERVICE-PURITY"])
    assert len(report.findings) == 1
    assert "numpy-free" in report.findings[0].message


def test_engine_importing_numpy_is_allowed(tmp_path):
    project = make_project(tmp_path, {
        "src/repro/engine/mod.py": (
            "import numpy as np\n\n\n"
            "def scores(points, weights):\n"
            "    return np.asarray(points) @ np.asarray(weights).T\n"),
    })
    report = run_rules(project,
                       rules=["SERVICE-PURITY", "LAYERING"])
    assert report.clean


def test_deferred_imports_still_count(tmp_path):
    # Layering binds the import *graph*, not import time: hiding the
    # edge inside a function changes nothing.
    project = make_project(tmp_path, {
        "src/repro/topk/mod.py": (
            "def reach_up():\n"
            "    from repro.service.registry import "
            "CatalogueRegistry\n"
            "    return CatalogueRegistry\n"),
    })
    report = run_rules(project, rules=["LAYERING"])
    assert len(report.findings) == 1
    assert "topk/ must not import service/" in \
        report.findings[0].message


def test_unknown_package_segment_is_a_finding(tmp_path):
    project = make_project(tmp_path, {
        "src/repro/newthing/mod.py": "import json\n",
    })
    report = run_rules(project, rules=["LAYERING"])
    assert len(report.findings) == 1
    assert "not in the layer matrix" in report.findings[0].message


def test_shm_creation_must_reach_the_sweep_registry(tmp_path):
    # Even inside the owner module, a create that never records the
    # segment in _OWNED is invisible to the exit sweep.
    project = make_project(tmp_path, {
        "src/repro/engine/shm.py": (
            "from multiprocessing import shared_memory\n\n\n"
            "def export(nbytes):\n"
            "    return shared_memory.SharedMemory(create=True,\n"
            "                                      size=nbytes)\n"),
    })
    report = run_rules(project, rules=["SHM-LIFECYCLE"])
    assert len(report.findings) == 1
    assert "_OWNED" in report.findings[0].message


# ---------------------------------------------------------------------
# Schema lock
# ---------------------------------------------------------------------


def _protocol_project(tmp_path: Path) -> Project:
    """A scratch project carrying the *real* protocol module."""
    source = (REPO_ROOT / "src/repro/core/protocol.py").read_text(
        encoding="utf-8")
    return make_project(tmp_path,
                        {"src/repro/core/protocol.py": source})


def _edit_protocol(tmp_path: Path, old: str, new: str) -> Project:
    path = tmp_path / "src/repro/core/protocol.py"
    source = path.read_text(encoding="utf-8")
    assert old in source, f"edit anchor {old!r} not found"
    path.write_text(source.replace(old, new), encoding="utf-8")
    return Project(tmp_path)   # re-parse


def test_update_lock_writes_the_committed_shape(tmp_path):
    project = _protocol_project(tmp_path)
    lock_path = update_lock(project)
    lock = json.loads(lock_path.read_text(encoding="utf-8"))
    assert lock["schema_version"] == 5
    assert set(lock["classes"]) == {"Question", "Answer", "Budget",
                                    "Quality", "ErrorInfo",
                                    "WatchEvent", "CostEstimate",
                                    "Plan", "AdmissionDecision"}
    assert lock["classes"]["Question"] == [
        "q", "k", "why_not", "algorithm", "options", "budget", "id",
        "priority", "tenant"]
    assert run_rules(project, rules=["SCHEMA-LOCK"]).clean


def test_adding_answer_field_without_bump_is_caught(tmp_path):
    project = _protocol_project(tmp_path)
    update_lock(project)
    project = _edit_protocol(
        tmp_path,
        "    quality: Quality | None = None",
        "    quality: Quality | None = None\n"
        "    worker_id: int | None = None")
    report = run_rules(project, rules=["SCHEMA-LOCK"])
    assert len(report.findings) == 1
    finding = report.findings[0]
    assert finding.path == "src/repro/core/protocol.py"
    assert "Answer" in finding.message
    assert "worker_id" in finding.message
    assert "SCHEMA_VERSION" in finding.message


def test_field_change_with_bump_wants_lock_regen(tmp_path):
    project = _protocol_project(tmp_path)
    update_lock(project)
    project = _edit_protocol(
        tmp_path,
        "    quality: Quality | None = None",
        "    quality: Quality | None = None\n"
        "    worker_id: int | None = None")
    project = _edit_protocol(tmp_path, "SCHEMA_VERSION = 5",
                             "SCHEMA_VERSION = 6")
    report = run_rules(project, rules=["SCHEMA-LOCK"])
    assert len(report.findings) == 1
    finding = report.findings[0]
    assert finding.path == "schema_lock.json"
    assert "stale" in finding.message
    # ...and regenerating clears it.
    update_lock(project)
    assert run_rules(project, rules=["SCHEMA-LOCK"]).clean


def test_version_bump_without_field_change_is_flagged(tmp_path):
    project = _protocol_project(tmp_path)
    update_lock(project)
    project = _edit_protocol(tmp_path, "SCHEMA_VERSION = 5",
                             "SCHEMA_VERSION = 6")
    report = run_rules(project, rules=["SCHEMA-LOCK"])
    assert len(report.findings) == 1
    assert "identical" in report.findings[0].message


def test_unreadable_lock_is_a_finding(tmp_path):
    project = _protocol_project(tmp_path)
    (tmp_path / "schema_lock.json").write_text("not json",
                                               encoding="utf-8")
    report = run_rules(project, rules=["SCHEMA-LOCK"])
    assert len(report.findings) == 1
    assert "unreadable" in report.findings[0].message


def test_committed_lock_matches_the_real_protocol():
    # The actual repo guard: the checked-in schema_lock.json must be
    # fresh against the checked-in protocol module.
    project = Project(REPO_ROOT)
    assert run_rules(project, rules=["SCHEMA-LOCK"]).clean


# ---------------------------------------------------------------------
# Suppressions
# ---------------------------------------------------------------------


def test_suppressed_ids_parsing():
    assert suppressed_ids("x = 1") == frozenset()
    assert suppressed_ids(
        "import random  # reprolint: disable=DET-RNG") == {"DET-RNG"}
    assert suppressed_ids(
        "f()  # reprolint: disable=DET-RNG, LOCK-WITH") == \
        {"DET-RNG", "LOCK-WITH"}
    assert suppressed_ids("f()  # reprolint: disable=all") == {"ALL"}


def test_matching_suppression_drops_and_counts(tmp_path):
    project = make_project(tmp_path, {
        "src/repro/core/noisy.py": (
            "import random  # reprolint: disable=DET-RNG\n"),
    })
    report = run_rules(project, rules=["DET-RNG"])
    assert report.clean
    assert report.suppressed == 1


def test_all_keyword_suppresses_any_rule(tmp_path):
    project = make_project(tmp_path, {
        "src/repro/core/noisy.py": (
            "import random  # reprolint: disable=all\n"),
    })
    assert run_rules(project, rules=["DET-RNG"]).clean


def test_wrong_id_suppresses_nothing(tmp_path):
    project = make_project(tmp_path, {
        "src/repro/core/noisy.py": (
            "import random  # reprolint: disable=LOCK-WITH\n"),
    })
    report = run_rules(project, rules=["DET-RNG"])
    assert len(report.findings) == 1
    assert report.suppressed == 0


def test_project_level_findings_cannot_be_suppressed(tmp_path):
    # line 0 findings (missing lock) have no source line to carry a
    # directive; _is_suppressed must not die or drop them.
    fixture = FIXTURE_DIR / "schema_lock.py"
    _, dest = _fixture_header(fixture)
    project = make_project(
        tmp_path, {dest: fixture.read_text(encoding="utf-8")})
    report = run_rules(project, rules=["SCHEMA-LOCK"])
    assert report.findings
    assert report.findings[0].line == 0


# ---------------------------------------------------------------------
# Renderers and CLI
# ---------------------------------------------------------------------


def test_human_rendering_shape():
    finding = Finding(rule="DET-RNG", path="src/x.py", line=3,
                      col=4, message="boom")
    assert finding.render() == "src/x.py:3:4: DET-RNG: boom"


def test_json_report_shape(tmp_path, capsys):
    make_project(tmp_path, {
        "src/repro/core/noisy.py": "import random\n",
    })
    code = lint_main(["--root", str(tmp_path), "--json"])
    assert code == EXIT_FINDINGS
    payload = json.loads(capsys.readouterr().out)
    assert set(payload) == {"clean", "counts", "rules", "findings"}
    assert payload["clean"] is False
    assert payload["counts"]["findings"] == len(payload["findings"])
    assert payload["counts"]["files"] == 2
    assert list(payload["rules"]) == list(EXPECTED_RULES)
    (finding,) = [f for f in payload["findings"]
                  if f["rule"] == "DET-RNG"]
    assert set(finding) == {"rule", "path", "line", "col", "message"}
    assert finding["path"] == "src/repro/core/noisy.py"
    assert finding["line"] == 1


def test_cli_exit_codes(tmp_path, capsys):
    # A bare scratch project is only clean under rules that don't
    # need the protocol module (SCHEMA-LOCK rightly fails on it).
    make_project(tmp_path, {})
    clean_root = str(tmp_path)
    assert lint_main(["--root", clean_root,
                      "--rule", "DET-RNG"]) == EXIT_CLEAN
    assert lint_main(["--root", clean_root]) == EXIT_FINDINGS
    assert lint_main(["--root", clean_root,
                      "--rule", "NO-SUCH"]) == EXIT_USAGE
    assert lint_main(["--root", str(tmp_path / "nowhere")]) == \
        EXIT_USAGE
    capsys.readouterr()


def test_cli_single_rule_runs_only_that_rule(tmp_path, capsys):
    make_project(tmp_path, {
        "src/repro/core/noisy.py": "import random\n",
    })
    code = lint_main(["--root", str(tmp_path), "--json",
                      "--rule", "LOCK-WITH"])
    assert code == EXIT_CLEAN   # the DET-RNG violation is out of scope
    payload = json.loads(capsys.readouterr().out)
    assert payload["rules"] == ["LOCK-WITH"]


def test_cli_update_lock_then_clean(tmp_path, capsys):
    source = (REPO_ROOT / "src/repro/core/protocol.py").read_text(
        encoding="utf-8")
    make_project(tmp_path, {"src/repro/core/protocol.py": source})
    root = str(tmp_path)
    assert lint_main(["--root", root,
                      "--rule", "SCHEMA-LOCK"]) == EXIT_FINDINGS
    assert lint_main(["--root", root, "--rule", "SCHEMA-LOCK",
                      "--update-lock"]) == EXIT_CLEAN
    assert (tmp_path / "schema_lock.json").is_file()
    capsys.readouterr()


def test_cli_list_rules(capsys):
    assert lint_main(["--list-rules"]) == EXIT_CLEAN
    out = capsys.readouterr().out
    for rule_id in EXPECTED_RULES:
        assert rule_id in out


def test_render_human_tail_counts(tmp_path):
    project = make_project(tmp_path, {})
    report = run_rules(project, rules=["DET-RNG", "LOCK-WITH"])
    text = render_human(report)
    assert text == "reprolint: clean (1 files, 2 rules)"


def test_render_json_matches_report(tmp_path):
    project = make_project(tmp_path, {
        "src/repro/core/noisy.py": "import random\n",
    })
    report = run_rules(project, rules=["DET-RNG"])
    payload = render_json(report)
    assert payload["counts"]["findings"] == len(report.findings)
    assert payload["findings"][0]["rule"] == "DET-RNG"


# ---------------------------------------------------------------------
# Dogfood: the repo itself
# ---------------------------------------------------------------------


def test_repo_is_lint_clean():
    project = Project(discover_root(REPO_ROOT))
    report = run_rules(project)
    assert report.clean, "\n" + render_human(report)


def test_no_suppressions_in_core_or_engine():
    # Deliberate exceptions are allowed in examples/benchmarks (shim
    # demos) but core/ and engine/ hold the invariants themselves.
    for sub in ("src/repro/core", "src/repro/engine"):
        for path in (REPO_ROOT / sub).rglob("*.py"):
            assert "reprolint: disable" not in \
                path.read_text(encoding="utf-8"), path
