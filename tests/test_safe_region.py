"""Unit tests for safe-region construction (Definition 7, Lemma 3)."""

import numpy as np
import pytest

from repro.core.safe_region import (
    is_safe,
    kth_points_for,
    safe_region_polygon,
    safe_region_system,
)
from repro.index import RTree
from repro.topk.scan import rank_of_scan


class TestKthPoints:
    def test_paper_values(self, paper_points, paper_missing):
        """Kevin's top-3rd point is p4 (3.6); Julia's is p7 (3.4)."""
        tree = RTree(paper_points)
        ids, scores = kth_points_for(tree, paper_missing, 3)
        # paper_missing rows: [Julia(0.9,0.1), Kevin(0.1,0.9)].
        assert ids.tolist() == [6, 3]
        assert scores == pytest.approx([3.4, 3.6])

    def test_tree_matches_scan(self, small_dataset, small_tree,
                               small_weights):
        a = kth_points_for(small_tree, small_weights[:5], 10)
        b = kth_points_for(small_dataset, small_weights[:5], 10)
        assert a[0].tolist() == b[0].tolist()
        assert a[1] == pytest.approx(b[1])


class TestSafeRegionSystem:
    def test_membership_semantics(self, paper_points, paper_q,
                                  paper_missing, rng):
        """Every point of the system is safe (Definition 7) and
        every unsafe sampled point is outside the system."""
        system = safe_region_system(paper_points, paper_q,
                                    paper_missing, 3)
        for _ in range(300):
            cand = rng.random(2) * paper_q
            in_sys = system.contains(cand, atol=1e-12)
            safe = all(
                rank_of_scan(paper_points, w, cand) <= 3
                for w in paper_missing)
            if in_sys:
                assert safe, cand
            # The converse need not hold: the system is a *sufficient*
            # region (scores <= the k-th point's), not necessary.

    def test_origin_always_inside(self, paper_points, paper_q,
                                  paper_missing):
        system = safe_region_system(paper_points, paper_q,
                                    paper_missing, 3)
        assert system.contains(np.zeros(2))

    def test_q_outside_for_valid_whynot(self, paper_points, paper_q,
                                        paper_missing):
        system = safe_region_system(paper_points, paper_q,
                                    paper_missing, 3)
        assert not system.contains(paper_q)


class TestSafeRegionPolygon:
    def test_polygon_matches_system(self, paper_points, paper_q,
                                    paper_missing, rng):
        system = safe_region_system(paper_points, paper_q,
                                    paper_missing, 3)
        poly = safe_region_polygon(paper_points, paper_q,
                                   paper_missing, 3)
        for _ in range(300):
            cand = rng.random(2) * paper_q
            assert poly.contains(tuple(cand), atol=1e-9) == \
                system.contains(cand, atol=1e-9), cand

    def test_polygon_nonempty(self, paper_points, paper_q,
                              paper_missing):
        poly = safe_region_polygon(paper_points, paper_q,
                                   paper_missing, 3)
        assert not poly.is_empty
        assert poly.area() > 0

    def test_requires_2d(self, small_dataset):
        with pytest.raises(ValueError):
            safe_region_polygon(small_dataset, np.zeros(3),
                                np.ones((1, 3)) / 3, 5)


class TestLemma3Subset:
    def test_smaller_k_region_is_subset(self, paper_points, paper_q,
                                        paper_missing, rng):
        """SR'(q) built from top-(k-1)-th points is a subset of SR(q).

        This is the containment the paper argues below Lemma 3
        (Figure 5(b)): tighter thresholds shrink the region.
        """
        big = safe_region_polygon(paper_points, paper_q,
                                  paper_missing, 3)
        small = safe_region_polygon(paper_points, paper_q,
                                    paper_missing, 2)
        assert small.area() <= big.area() + 1e-12
        for _ in range(200):
            cand = tuple(rng.random(2) * paper_q)
            if small.contains(cand, atol=1e-12):
                assert big.contains(cand, atol=1e-9)


class TestIsSafe:
    def test_direct_check(self, paper_points, paper_q, paper_missing):
        assert is_safe(paper_points, [0.0, 0.0], paper_missing, 3)
        assert not is_safe(paper_points, paper_q, paper_missing, 3)
