"""Watch subsystem: delta relevance, event streams, both transports.

The delta-relevance tests pin the soundness contract of
:mod:`repro.engine.delta` — most importantly the *skip-correctness
oracle*: whenever a delta is judged unable to affect a cached
answer, a fresh ``Session.ask`` at the new version must produce a
byte-identical answer (timing and version stamp normalized).  The
HTTP tests drive a real server through both push transports
(long-poll with cursor resume, SSE with ``Last-Event-ID``) and
assert that pushed answers equal fresh asks at the same catalogue
version.
"""

from __future__ import annotations

import http.client
import json
import threading
import time

import numpy as np
import pytest

from repro.core.protocol import SCHEMA_VERSION, Answer, Question, WatchEvent
from repro.core.session import Session
from repro.data import independent, preference_set, query_point_with_rank
from repro.data.catalogue import Catalogue
from repro.engine.context import ContextStats
from repro.engine.delta import SnapshotDelta, answer_affected, delta_affects
from repro.service import (
    CatalogueRegistry,
    ServiceClient,
    create_server,
)
from repro.service.client import backoff_delays
from repro.service.watch import Watch, WatchManager

N = 400
D = 3
K = 10
RANK = 41


def make_typed(points, j, *, rank=RANK, algorithm="mqp",
               options=None):
    w = preference_set(1, D, seed=7000 + j)
    q = query_point_with_rank(points, w[0], rank)
    return Question(q=q, k=K, why_not=w, algorithm=algorithm,
                    options=options or {})


def normalized(answer) -> dict:
    """An Answer payload minus run-dependent timing and the version
    stamp — the byte-identity comparison for skipped watches, whose
    cached answer was computed at an older (but provably equivalent)
    version."""
    payload = answer.to_dict() if isinstance(answer, Answer) \
        else dict(answer)
    payload.pop("elapsed", None)
    payload.pop("catalogue_version", None)
    return payload


def strip_elapsed(answer) -> dict:
    payload = answer.to_dict() if isinstance(answer, Answer) \
        else dict(answer)
    payload.pop("elapsed", None)
    return payload


# ---------------------------------------------------------------------------
# Delta recording on the catalogue
# ---------------------------------------------------------------------------


class TestDeltaRecording:
    def test_mutations_record_chainable_deltas(self):
        catalogue = Catalogue(independent(50, D, seed=1))
        catalogue.add_products(np.full((2, D), 0.5))
        catalogue.update_products([0], np.full((1, D), 0.4))
        deltas = catalogue.deltas_since(0)
        assert [d.op for d in deltas] == ["add", "update"]
        assert [(d.parent_version, d.version) for d in deltas] == \
            [(0, 1), (1, 2)]
        assert deltas[0].changed.shape == (2, D)
        # Update deltas stack old AND new coordinates.
        assert deltas[1].changed.shape == (2, D)
        assert deltas[1].min_removed_row is None
        assert deltas[0].n_after == 52

    def test_remove_records_min_row(self):
        catalogue = Catalogue(independent(50, D, seed=1))
        catalogue.remove_products([10, 4, 30])
        (delta,) = catalogue.deltas_since(0)
        assert delta.min_removed_row == 4
        assert delta.changed.shape == (3, D)
        assert delta.n_after == 47

    def test_deltas_since_current_is_empty(self):
        catalogue = Catalogue(independent(20, D, seed=1))
        assert catalogue.deltas_since(0) == []
        catalogue.add_products(np.full((1, D), 0.5))
        assert catalogue.deltas_since(1) == []

    def test_deltas_since_truncated_history_is_none(self):
        catalogue = Catalogue(independent(20, D, seed=1),
                              delta_history=2)
        for _ in range(4):
            catalogue.add_products(np.full((1, D), 0.5))
        assert catalogue.deltas_since(0) is None      # truncated
        assert catalogue.deltas_since(1) is None      # gap at head
        chain = catalogue.deltas_since(2)
        assert [d.version for d in chain] == [3, 4]

    def test_delta_coords_are_immutable(self):
        delta = SnapshotDelta.from_mutation(
            parent_version=0, version=1, op="add",
            changed=[[0.1, 0.2, 0.3]], n_after=5)
        with pytest.raises(ValueError):
            delta.changed[0, 0] = 9.0


# ---------------------------------------------------------------------------
# Relevance rules
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def oracle_points():
    return independent(N, D, seed=17)


@pytest.fixture(scope="module")
def oracle_session(oracle_points):
    return Session(oracle_points)


class TestDeltaRelevance:
    def _delta(self, coords, *, n_after=N, removed=()):
        return SnapshotDelta.from_mutation(
            parent_version=0, version=1, op="add", changed=coords,
            removed_rows=removed, n_after=n_after)

    def test_mqp_far_point_is_skipped(self, oracle_session,
                                      oracle_points):
        question = make_typed(oracle_points, 0, algorithm="mqp")
        answer = oracle_session.ask(question)
        assert answer.valid
        stats = ContextStats()
        far = self._delta(np.full((1, D), 0.99))
        assert not delta_affects(far, question, answer, stats=stats)
        assert stats.delta_checks == 1

    def test_mqp_boundary_point_is_affected(self, oracle_session,
                                            oracle_points):
        question = make_typed(oracle_points, 0, algorithm="mqp")
        answer = oracle_session.ask(question)
        near = self._delta(np.full((1, D), 0.001))
        assert delta_affects(near, question, answer)

    def test_mqp_low_removal_is_affected(self, oracle_session,
                                         oracle_points):
        # Removing row 0 renumbers every row the kth_points ids may
        # refer to — always conservative, regardless of coordinates.
        question = make_typed(oracle_points, 0, algorithm="mqp")
        answer = oracle_session.ask(question)
        removal = self._delta(np.full((1, D), 0.99), removed=[0],
                              n_after=N - 1)
        assert delta_affects(removal, question, answer)

    @pytest.mark.parametrize("algorithm", ["mwk", "mqwk"])
    def test_dominated_point_is_skipped(self, oracle_session,
                                        oracle_points, algorithm):
        question = make_typed(oracle_points, 1, algorithm=algorithm)
        answer = oracle_session.ask(question)
        assert answer.valid
        dominated = self._delta(
            np.asarray(question.q)[None, :] * 1.5)
        undominated = self._delta(
            np.asarray(question.q)[None, :] * 0.5)
        assert not delta_affects(dominated, question, answer)
        assert delta_affects(undominated, question, answer)

    def test_shrunk_catalogue_is_affected(self, oracle_session,
                                          oracle_points):
        question = make_typed(oracle_points, 0, algorithm="mqp")
        answer = oracle_session.ask(question)
        tiny = self._delta(np.full((1, D), 0.99), n_after=K - 1)
        assert delta_affects(tiny, question, answer)

    def test_failed_answer_is_affected(self, oracle_points):
        question = make_typed(oracle_points, 0, algorithm="mqp")
        failed = Answer(index=0, algorithm="mqp", result=None,
                        penalty=float("nan"), valid=False,
                        error=None, elapsed=0.0)
        far = self._delta(np.full((1, D), 0.99))
        assert delta_affects(far, question, failed)
        assert delta_affects(far, question, None)

    def test_unknown_algorithm_is_affected(self, oracle_session,
                                           oracle_points):
        import dataclasses

        question = make_typed(oracle_points, 0, algorithm="mqp")
        answer = oracle_session.ask(question)
        exotic = dataclasses.replace(answer, algorithm="exotic")
        far = self._delta(np.full((1, D), 0.99))
        assert delta_affects(far, question, exotic)

    def test_chain_short_circuits(self, oracle_session,
                                  oracle_points):
        question = make_typed(oracle_points, 0, algorithm="mqp")
        answer = oracle_session.ask(question)
        stats = ContextStats()
        chain = [self._delta(np.full((1, D), 0.001)),
                 self._delta(np.full((1, D), 0.99))]
        assert answer_affected(question, answer, chain, stats=stats)
        assert stats.delta_checks == 1   # first delta decides


class TestSkipCorrectnessOracle:
    """The acceptance-criteria oracle: every *skipped* decision must
    leave the cached answer byte-identical to a fresh ask at the new
    version, across a randomized churn of adds, updates and
    removals, for every algorithm."""

    ALGORITHMS = ("mqp", "mwk", "mqwk")

    def test_skips_are_byte_identical_under_churn(self):
        points = independent(N, D, seed=23)
        catalogue = Catalogue(points)
        session = Session(catalogue=catalogue)
        questions = [make_typed(points, j, algorithm=algorithm,
                                rank=rank)
                     for j, (algorithm, rank) in enumerate(
                         (a, r) for a in self.ALGORITHMS
                         for r in (31, 61))]
        cached = [session.ask(q) for q in questions]
        checked = [a.catalogue_version for a in cached]
        assert all(a.valid for a in cached)

        rng = np.random.default_rng(5)
        skips = reanswers = 0
        for round_no in range(8):
            op = ("add", "update", "remove")[round_no % 3]
            if op == "add":
                catalogue.add_products(
                    rng.random((3, D)) * 0.5 + 0.5)
            elif op == "update":
                pool = catalogue.product_ids()
                ids = np.unique(pool[rng.integers(0, len(pool),
                                                  size=2)])
                catalogue.update_products(ids, rng.random(
                    (len(ids), D)))
            else:
                pool = catalogue.product_ids()
                ids = np.unique(pool[rng.integers(0, len(pool),
                                                  size=2)])
                catalogue.remove_products(ids)
            for i, question in enumerate(questions):
                deltas = catalogue.deltas_since(checked[i])
                assert deltas, "every round must produce a delta"
                affected = answer_affected(question, cached[i],
                                           deltas)
                fresh = session.ask(question,
                                    seed=0)   # same seed as cache
                if affected:
                    cached[i] = fresh
                    reanswers += 1
                else:
                    # THE oracle: a skip must be provably invisible.
                    assert normalized(cached[i]) == normalized(fresh)
                    skips += 1
                checked[i] = fresh.catalogue_version
        # The churn must actually exercise both branches or the
        # oracle proves nothing.
        assert skips > 0 and reanswers > 0


# ---------------------------------------------------------------------------
# Watch event-stream mechanics (no HTTP)
# ---------------------------------------------------------------------------


def _answer(version: int) -> Answer:
    return Answer(index=0, algorithm="mqp", result=None, penalty=0.5,
                  valid=True, error=None, elapsed=0.0,
                  catalogue_version=version)


class TestWatchStream:
    def _watch(self):
        question = Question(q=[0.5, 0.5], k=2,
                            why_not=[[0.5, 0.5]], algorithm="mqp")
        return Watch("w-1", "demo", question)

    def test_cursor_monotonicity(self):
        watch = self._watch()
        seqs = [watch.record(_answer(v)).seq for v in range(5)]
        assert seqs == sorted(seqs) == list(range(5))
        events = watch.events_after(1)
        assert [e.seq for e in events] == [2, 3, 4]
        assert watch.events_after(99, timeout=0.0) == []

    def test_timeout_returns_empty_not_error(self):
        watch = self._watch()
        start = time.monotonic()
        assert watch.events_after(-1, timeout=0.05) == []
        assert time.monotonic() - start >= 0.04

    def test_blocked_consumer_wakes_on_record(self):
        watch = self._watch()
        got = []

        def consume():
            got.extend(watch.events_after(-1, timeout=5.0))

        thread = threading.Thread(target=consume)
        thread.start()
        time.sleep(0.05)
        watch.record(_answer(1))
        thread.join(timeout=5)
        assert [e.seq for e in got] == [0]

    def test_end_is_terminal(self):
        watch = self._watch()
        watch.record(_answer(1))
        watch.end()
        watch.end()   # idempotent
        events = watch.events_after(-1)
        assert [e.kind for e in events] == ["answer", "end"]
        assert watch.record(_answer(2)) is None   # nothing follows
        assert [e.kind for e in watch.events_after(-1)] == \
            ["answer", "end"]
        # A consumer past the end returns immediately, empty.
        start = time.monotonic()
        assert watch.events_after(99, timeout=5.0) == []
        assert time.monotonic() - start < 1.0

    def test_mark_checked_is_a_cas(self):
        watch = self._watch()
        watch.record(_answer(3))
        assert not watch.mark_checked(5, expected=0)   # stale read
        assert watch.mark_checked(5, expected=3)
        _, checked = watch.state()
        assert checked == 5


class TestWatchEventSchema:
    def test_round_trip(self):
        event = WatchEvent(watch_id="w", seq=2, kind="answer",
                           catalogue_version=3, answer=_answer(3))
        again = WatchEvent.from_dict(
            json.loads(json.dumps(event.to_dict())))
        assert again == event
        assert event.to_dict()["schema_version"] == SCHEMA_VERSION

    def test_kind_and_payload_validation(self):
        with pytest.raises(ValueError, match="kind"):
            WatchEvent(watch_id="w", seq=0, kind="nope",
                       catalogue_version=0)
        with pytest.raises(ValueError, match="carry"):
            WatchEvent(watch_id="w", seq=0, kind="answer",
                       catalogue_version=0)
        with pytest.raises(ValueError, match="carry"):
            WatchEvent(watch_id="w", seq=0, kind="end",
                       catalogue_version=0, answer=_answer(0))


class TestBackoff:
    def test_deterministic_jittered_growth(self):
        a = list(zip(range(6), backoff_delays(initial=0.1, cap=2.0,
                                              salt="x")))
        b = list(zip(range(6), backoff_delays(initial=0.1, cap=2.0,
                                              salt="x")))
        assert a == b   # deterministic for one salt
        delays = [d for _, d in a]
        base = [min(2.0, 0.1 * 2 ** i) for i in range(6)]
        for delay, cap in zip(delays, base):
            assert 0.5 * cap <= delay <= cap
        assert delays[-1] != delays[-2]   # jitter varies per attempt

    def test_salts_desynchronize(self):
        a = next(backoff_delays(salt="watch-1"))
        b = next(backoff_delays(salt="watch-2"))
        assert a != b


# ---------------------------------------------------------------------------
# The HTTP surface
# ---------------------------------------------------------------------------


@pytest.fixture()
def points():
    return independent(N, D, seed=17)


@pytest.fixture()
def server(points):
    # Function-scoped: watch tests mutate their catalogue, so each
    # test gets a pristine version history.
    registry = CatalogueRegistry()
    registry.register("demo", points, meta={"kind": "independent"})
    srv = create_server(registry)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.shutdown()
    srv.server_close()
    thread.join(timeout=5)


@pytest.fixture()
def client(server):
    return ServiceClient(port=server.port)


FAR = [[0.99, 0.99, 0.99]]      # scores above any top-K boundary
NEAR = [[0.001, 0.001, 0.001]]  # dominates everything: must affect


def wait_for(predicate, *, timeout=10.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


class TestWatchHTTP:
    def test_registration_answers_immediately(self, client, points):
        question = make_typed(points, 0)
        descriptor, event = client.create_watch("demo", question,
                                                seed=3)
        assert event.seq == 0 and event.kind == "answer"
        fresh = client.ask("demo", question, seed=3)
        assert strip_elapsed(event.answer) == strip_elapsed(fresh)
        assert descriptor["catalogue"] == "demo"
        assert descriptor["id"].startswith("watch-")

    def test_unknown_catalogue_is_client_error(self, client, points):
        from repro.service import ServiceError

        with pytest.raises(ServiceError) as excinfo:
            client.create_watch("nope", make_typed(points, 0))
        assert excinfo.value.status == 400

    def test_long_poll_timeout_is_empty_batch(self, client, points):
        descriptor, event = client.create_watch(
            "demo", make_typed(points, 0))
        start = time.monotonic()
        events = client.watch_events(descriptor["id"],
                                     cursor=event.seq,
                                     timeout_ms=150)
        assert events == []
        assert time.monotonic() - start >= 0.1

    def test_relevant_mutation_pushes_identical_answer(
            self, client, points):
        question = make_typed(points, 0)
        descriptor, event = client.create_watch("demo", question,
                                                seed=1)
        response = client.add_products("demo", NEAR)
        events = client.watch_events(descriptor["id"],
                                     cursor=event.seq,
                                     timeout_ms=10_000)
        assert [e.kind for e in events] == ["answer"]
        refreshed = events[0].answer
        assert refreshed.catalogue_version == \
            response["catalogue_version"]
        fresh = client.ask("demo", question, seed=1)
        assert strip_elapsed(refreshed) == strip_elapsed(fresh)

    def test_irrelevant_mutation_is_skipped(self, client, server,
                                            points):
        descriptor, event = client.create_watch(
            "demo", make_typed(points, 0))
        client.add_products("demo", FAR)
        assert wait_for(lambda: server.watches.describe()
                        ["reanswers_skipped"] >= 1)
        assert client.watch_events(descriptor["id"],
                                   cursor=event.seq,
                                   timeout_ms=100) == []
        stats = client.stats()["watches"]
        assert stats["reanswers_performed"] == 0
        assert stats["deltas_seen"] == 1
        assert stats["delta_checks"] >= 1

    def test_cursor_resume_across_polls(self, client, points):
        descriptor, event = client.create_watch(
            "demo", make_typed(points, 0))
        cursor = event.seq
        seen = []
        for _ in range(3):
            client.add_products("demo", NEAR)
            events = client.watch_events(descriptor["id"],
                                         cursor=cursor,
                                         timeout_ms=10_000)
            assert events, "refresh must arrive within the poll leg"
            seen.extend(e.seq for e in events)
            cursor = events[-1].seq
        assert seen == sorted(seen) == list(range(1, len(seen) + 1))
        # Replays from an old cursor cover the same events.
        replay = client.watch_events(descriptor["id"], cursor=-1,
                                     timeout_ms=0)
        assert [e.seq for e in replay] == [0, *seen]

    def test_delete_pushes_terminal_event(self, client, points):
        descriptor, event = client.create_watch(
            "demo", make_typed(points, 0))
        got = []

        # The poll must be in flight when the delete lands: deletion
        # removes the descriptor, so only already-attached consumers
        # receive the terminal event.
        def poll():
            got.extend(client.watch_events(descriptor["id"],
                                           cursor=event.seq,
                                           timeout_ms=10_000))

        poller = threading.Thread(target=poll)
        poller.start()
        time.sleep(0.1)
        client.delete_watch(descriptor["id"])
        poller.join(timeout=10)
        assert [e.kind for e in got] == ["end"]
        from repro.service import ServiceError

        with pytest.raises(ServiceError) as excinfo:
            client.delete_watch(descriptor["id"])
        assert excinfo.value.status == 404
        assert all(w["id"] != descriptor["id"]
                   for w in client._request("/watches")["watches"])

    def test_stats_section_shape(self, client, points):
        client.create_watch("demo", make_typed(points, 0))
        stats = client.stats()["watches"]
        assert stats["registered"] == 1 and stats["created"] == 1
        assert set(stats) == {"registered", "created", "deltas_seen",
                              "delta_checks", "reanswers_skipped",
                              "reanswers_performed"}
        entry = client.catalogue("demo")["stats"]
        assert {"delta_checks", "watches_skipped",
                "watches_reanswered"} <= set(entry)

    def test_concurrent_mutate_while_watching(self, client, server,
                                              points):
        question = make_typed(points, 0)
        descriptor, event = client.create_watch("demo", question,
                                                seed=2)
        rounds = 4
        versions = []

        def mutate():
            for _ in range(rounds):
                versions.append(client.add_products(
                    "demo", NEAR)["catalogue_version"])
                time.sleep(0.01)

        mutator = threading.Thread(target=mutate)
        mutator.start()
        collected = []
        cursor = event.seq
        deadline = time.monotonic() + 30
        # Coalescing is legal (a refresh may cover several versions),
        # but the final event must reach the final version.
        while time.monotonic() < deadline:
            for e in client.watch_events(descriptor["id"],
                                         cursor=cursor,
                                         timeout_ms=2000):
                cursor = e.seq
                collected.append(e)
            mutator.join(timeout=0)
            if collected and not mutator.is_alive() and \
                    collected[-1].answer.catalogue_version >= \
                    max(versions):
                break
        mutator.join(timeout=5)
        seqs = [e.seq for e in collected]
        assert seqs == sorted(seqs)
        assert collected[-1].answer.catalogue_version == max(versions)
        fresh = client.ask("demo", question, seed=2)
        assert strip_elapsed(collected[-1].answer) == \
            strip_elapsed(fresh)

    def test_watch_iterator_end_to_end(self, client, points):
        question = make_typed(points, 1)
        answers = []

        def mutate_soon():
            time.sleep(0.2)
            client.add_products("demo", NEAR)

        thread = threading.Thread(target=mutate_soon)
        thread.start()
        for answer in client.watch("demo", question, seed=0,
                                   timeout_ms=2000, max_events=2):
            answers.append(answer)
        thread.join(timeout=5)
        assert len(answers) == 2
        assert answers[1].catalogue_version > \
            answers[0].catalogue_version
        # The iterator cleans up after itself.
        assert client._request("/watches")["watches"] == []


class TestSSE:
    def _open(self, server, watch_id, *, last_event_id=None,
              cursor=None):
        conn = http.client.HTTPConnection("127.0.0.1", server.port,
                                          timeout=30)
        path = f"/watches/{watch_id}/events"
        if cursor is not None:
            path += f"?cursor={cursor}"
        headers = {"Accept": "text/event-stream"}
        if last_event_id is not None:
            headers["Last-Event-ID"] = str(last_event_id)
        conn.request("GET", path, headers=headers)
        return conn, conn.getresponse()

    @staticmethod
    def _frames(raw: str) -> list[dict]:
        """Parse SSE frames into {id, event, data} dicts, ignoring
        comment keep-alives."""
        frames = []
        for block in raw.split("\n\n"):
            fields = {}
            for line in block.splitlines():
                if line.startswith(":"):
                    continue
                key, _, value = line.partition(": ")
                fields[key] = value
            if fields.get("event"):
                frames.append(fields)
        return frames

    @staticmethod
    def _read_until_end(response) -> str:
        data = b""
        while b"event: end" not in data:
            chunk = response.read(64)
            if not chunk:
                break
            data += chunk
        return data.decode("utf-8")

    def test_framing_and_terminal_event(self, client, server,
                                        points):
        descriptor, _ = client.create_watch("demo",
                                            make_typed(points, 0))
        client.add_products("demo", NEAR)
        conn, response = self._open(server, descriptor["id"],
                                    cursor=-1)
        assert response.status == 200
        assert response.getheader("Content-Type") == \
            "text/event-stream"

        def end_soon():
            time.sleep(0.2)
            client.delete_watch(descriptor["id"])

        threading.Thread(target=end_soon).start()
        frames = self._frames(self._read_until_end(response))
        conn.close()
        kinds = [frame["event"] for frame in frames]
        assert kinds[0] == "answer" and kinds[-1] == "end"
        assert [int(frame["id"]) for frame in frames] == \
            list(range(len(frames)))
        payload = json.loads(frames[0]["data"])
        event = WatchEvent.from_dict(payload)
        assert event.seq == 0 and event.answer is not None

    def test_last_event_id_resume(self, client, server, points):
        descriptor, _ = client.create_watch("demo",
                                            make_typed(points, 0))
        client.add_products("demo", NEAR)
        # Wait until seq 1 exists, then resume past seq 0.
        assert client.watch_events(descriptor["id"], cursor=0,
                                   timeout_ms=10_000)
        conn, response = self._open(server, descriptor["id"],
                                    last_event_id=0)

        def end_soon():
            time.sleep(0.2)
            client.delete_watch(descriptor["id"])

        threading.Thread(target=end_soon).start()
        frames = self._frames(self._read_until_end(response))
        conn.close()
        assert [int(frame["id"]) for frame in frames] == [1, 2]
        assert frames[0]["event"] == "answer"
        assert frames[-1]["event"] == "end"

    def test_unknown_watch_is_json_404(self, server):
        conn, response = self._open(server, "nope")
        assert response.status == 404
        body = json.loads(response.read().decode("utf-8"))
        assert "unknown watch" in body["error"]
        conn.close()


class TestDrain:
    def test_server_close_pushes_end_to_blocked_pollers(self,
                                                        points):
        registry = CatalogueRegistry()
        registry.register("demo", points)
        server = create_server(registry)
        thread = threading.Thread(target=server.serve_forever,
                                  daemon=True)
        thread.start()
        client = ServiceClient(port=server.port)
        descriptor, event = client.create_watch(
            "demo", make_typed(points, 0))
        got = []

        def poll():
            got.extend(client.watch_events(descriptor["id"],
                                           cursor=event.seq,
                                           timeout_ms=20_000))

        poller = threading.Thread(target=poll)
        poller.start()
        time.sleep(0.2)
        start = time.monotonic()
        server.shutdown()
        server.server_close()
        poller.join(timeout=10)
        assert not poller.is_alive()
        # Drain must beat the poll timeout by a wide margin.
        assert time.monotonic() - start < 10
        assert [e.kind for e in got] == ["end"]
        thread.join(timeout=5)


class TestManagerUnit:
    def test_create_after_shutdown_rejected(self, points):
        registry = CatalogueRegistry()
        registry.register("demo", points)

        class NoJobs:
            def defer(self, fn):
                return False

        manager = WatchManager(registry, NoJobs())
        manager.shutdown()
        with pytest.raises(ValueError, match="shut down"):
            manager.create("demo", make_typed(points, 0))

    def test_registration_race_defers_refresh(self, points):
        registry = CatalogueRegistry()
        registry.register("demo", points)
        deferred = []

        class RecordingJobs:
            def defer(self, fn):
                deferred.append(fn)
                return True

        manager = WatchManager(registry, RecordingJobs())
        question = make_typed(points, 0)
        real_ask = registry.session("demo").ask

        # Simulate a mutation landing between the initial ask and
        # the registration: the manager must notice the version gap
        # and defer a refresh instead of serving stale.
        def racing_ask(q, seed=0):
            answer = real_ask(q, seed=seed)
            if not deferred:
                registry.catalogue("demo").add_products(
                    np.asarray(NEAR))
            return answer

        registry.session("demo").ask = racing_ask
        try:
            watch, event = manager.create("demo", question)
        finally:
            registry.session("demo").ask = real_ask
        assert len(deferred) == 1
        deferred[0]()   # run the deferred refresh inline
        events = watch.events_after(event.seq)
        assert [e.kind for e in events] == ["answer"]
        assert events[0].answer.catalogue_version == 1
