"""Async job API: submit → progress → result → cancel, over real HTTP.

Everything here drives a real ``ThreadingHTTPServer`` through
:class:`ServiceClient` — the acceptance path for the job surface:
submit a budgeted batch, watch its progress converge, fetch the
result, and cancel a long job cooperatively between refinement
chunks.  The :class:`JobManager` is also exercised directly for the
lifecycle corners HTTP cannot reach (shutdown, eviction).
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.protocol import Budget, Question
from repro.data import independent, preference_set, query_point_with_rank
from repro.service import (
    CatalogueRegistry,
    JobManager,
    ServiceClient,
    ServiceError,
    create_server,
)

N = 600
D = 3
K = 10


@pytest.fixture(scope="module")
def points():
    return independent(N, D, seed=31)


@pytest.fixture(scope="module")
def registry(points):
    reg = CatalogueRegistry()
    reg.register("shop", points)
    return reg


@pytest.fixture(scope="module")
def server(registry):
    srv = create_server(registry, job_workers=2)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.shutdown()
    srv.server_close()
    thread.join(timeout=5)


@pytest.fixture(scope="module")
def client(server):
    return ServiceClient(port=server.port)


def make_question(points, j, *, budget=None, algorithm="mwk"):
    w = preference_set(1, D, seed=5200 + j)
    q = query_point_with_rank(points, w[0], 55)
    return Question(q=q, k=K, why_not=w, algorithm=algorithm,
                    budget=budget, id=f"job-q{j}")


#: A budget big enough that a job holds still long enough to observe
#: and cancel, yet each chunk stays fast.
SLOW = Budget(sample_budget=3_000_000)


class TestJobRoundTrip:
    def test_submit_poll_result(self, client, points):
        """The acceptance round trip: submit → progress → result."""
        questions = [make_question(points, j) for j in range(3)]
        job = client.submit("shop", questions,
                            budget=Budget(sample_budget=400), seed=5)
        assert job["status"] in ("queued", "running")
        assert job["total"] == 3 and job["done"] == 0
        final = client.wait(job["id"], timeout=60)
        assert final["status"] == "done"
        assert final["done"] == 3
        assert all(p is not None for p in final["penalties"])
        answers, summary = client.result(job["id"])
        assert summary["answered"] == 3 and summary["failed"] == 0
        assert summary["unrefined"] == 0
        for j, answer in enumerate(answers):
            assert answer.ok and answer.valid
            assert answer.question_id == f"job-q{j}"
            assert answer.quality.samples_examined == 400
            assert answer.quality.converged

    def test_job_answers_match_session(self, client, registry,
                                       points):
        """A job's answers are the library's answers — same seed,
        same budget, same penalty."""
        question = make_question(points, 10,
                                 budget=Budget(sample_budget=300))
        job = client.submit("shop", [question], seed=9)
        client.wait(job["id"], timeout=60)
        (answer,), _ = client.result(job["id"])
        local = registry.session("shop").ask(question, seed=9)
        assert answer.penalty == local.penalty
        # rounds is an execution detail (jobs refine in bounded
        # chunks); the budget-visible fields must agree exactly.
        assert answer.quality.samples_examined == \
            local.quality.samples_examined
        assert answer.quality.converged == local.quality.converged

    def test_progress_is_observable_mid_flight(self, client, points):
        questions = [make_question(points, 20 + j,
                                   budget=SLOW) for j in range(2)]
        job = client.submit("shop", questions)
        try:
            deadline = time.monotonic() + 30
            seen_penalty = False
            while time.monotonic() < deadline and not seen_penalty:
                progress = client.poll(job["id"])
                seen_penalty = any(p is not None
                                   for p in progress["penalties"])
                time.sleep(0.02)
            assert seen_penalty, "no per-item penalty ever surfaced"
        finally:
            client.cancel(job["id"])
            client.wait(job["id"], timeout=60)

    def test_jobs_listing_contains_submissions(self, client, points):
        job = client.submit("shop", [make_question(
            points, 30, budget=Budget(sample_budget=64))])
        client.wait(job["id"], timeout=60)
        assert job["id"] in [entry["id"] for entry in client.jobs()]


class TestJobCancellation:
    def test_cancel_between_chunks_keeps_partial_answers(
            self, client, points):
        """Acceptance: DELETE honors cancellation between chunks —
        the job stops refining, keeps what it has, and its result is
        collectible."""
        questions = [make_question(points, 40 + j, budget=SLOW)
                     for j in range(2)]
        job = client.submit("shop", questions)
        # Let refinement actually start before cancelling.
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            if client.poll(job["id"])["status"] == "running":
                break
            time.sleep(0.01)
        time.sleep(0.1)
        cancelled = client.cancel(job["id"])
        assert cancelled["status"] in ("cancelling", "cancelled")
        final = client.wait(job["id"], timeout=60)
        assert final["status"] == "cancelled"
        answers, summary = client.result(job["id"])
        refined = [a for a in answers if a is not None]
        assert refined, "cancellation should keep refined answers"
        for answer in refined:
            assert answer.ok
            # Cut short: far below the requested budget, not converged.
            assert answer.quality.samples_examined \
                < SLOW.sample_budget
            assert not answer.quality.converged

    def test_cancel_is_idempotent(self, client, points):
        job = client.submit("shop", [make_question(
            points, 50, budget=SLOW)])
        client.cancel(job["id"])
        client.cancel(job["id"])   # second DELETE is harmless
        final = client.wait(job["id"], timeout=60)
        assert final["status"] == "cancelled"

    def test_cancel_queued_job_never_runs(self, registry, points):
        manager = JobManager(registry, workers=1)
        try:
            blocker = manager.submit("shop", [make_question(
                points, 60, budget=SLOW)])
            queued = manager.submit("shop", [make_question(
                points, 61, budget=Budget(sample_budget=64))])
            manager.cancel(queued.id)
            manager.cancel(blocker.id)
            deadline = time.monotonic() + 30
            while (time.monotonic() < deadline
                   and not queued.is_finished):
                time.sleep(0.01)
            assert queued.status == "cancelled"
            assert queued.started is None   # never claimed a worker
        finally:
            manager.shutdown()


class TestJobErrors:
    def test_unknown_job_404(self, client):
        with pytest.raises(ServiceError) as err:
            client.poll("job-nope")
        assert err.value.status == 404
        with pytest.raises(ServiceError) as err:
            client.cancel("job-nope")
        assert err.value.status == 404

    def test_result_before_finished_409(self, client, points):
        job = client.submit("shop", [make_question(
            points, 70, budget=SLOW)])
        try:
            with pytest.raises(ServiceError) as err:
                client.result(job["id"])
            assert err.value.status == 409
        finally:
            client.cancel(job["id"])
            client.wait(job["id"], timeout=60)

    def test_unknown_catalogue_400(self, client, points):
        with pytest.raises(ServiceError) as err:
            client.submit("nope", [make_question(points, 71)])
        assert err.value.status == 400

    def test_empty_batch_400(self, client):
        with pytest.raises(ServiceError) as err:
            client.submit("shop", [])
        assert err.value.status == 400

    def test_poisoned_item_fails_per_item_not_job(self, client,
                                                  points):
        """A question that fails catalogue-dependent validation
        becomes a failed answer inside the job, like /batch."""
        bad = Question(q=points[0] * 0.9, k=N + 1,
                       why_not=[[1.0, 0.0, 0.0]],
                       budget=Budget(sample_budget=64))
        good = make_question(points, 72,
                             budget=Budget(sample_budget=64))
        job = client.submit("shop", [bad, good])
        final = client.wait(job["id"], timeout=60)
        assert final["status"] == "done"
        answers, summary = client.result(job["id"])
        assert summary["failed"] == 1 and summary["answered"] == 1
        assert answers[0].error is not None
        assert answers[1].ok


class TestJobManagerLifecycle:
    def test_shutdown_cancels_and_joins(self, registry, points):
        manager = JobManager(registry, workers=1)
        job = manager.submit("shop", [make_question(
            points, 80, budget=SLOW)])
        time.sleep(0.1)
        manager.shutdown()
        assert job.status in ("cancelled", "done")
        with pytest.raises(ValueError, match="shut down"):
            manager.submit("shop", [make_question(points, 81)])
        manager.shutdown()   # idempotent

    def test_finished_jobs_evicted_beyond_keep(self, registry,
                                               points):
        manager = JobManager(registry, workers=1, keep=2)
        try:
            ids = []
            for j in range(4):
                job = manager.submit("shop", [make_question(
                    points, 90 + j,
                    budget=Budget(sample_budget=64))])
                ids.append(job.id)
                deadline = time.monotonic() + 30
                while (time.monotonic() < deadline
                       and not job.is_finished):
                    time.sleep(0.01)
            remembered = [job.id for job in manager.jobs()]
            assert ids[-1] in remembered
            assert len(remembered) <= 3   # keep + in-flight slack
            assert ids[0] not in remembered
        finally:
            manager.shutdown()
