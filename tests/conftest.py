"""Shared fixtures: the paper's running example and random datasets.

Also installs a global per-test timeout (:data:`TEST_TIMEOUT_SECONDS`,
overridable via ``WQRTQ_TEST_TIMEOUT``): the suite exercises a
threaded HTTP daemon and an async job pool, and a stuck job or a
never-draining poll loop must fail one test loudly, not hang CI.
See :mod:`repro._testsupport` for the SIGALRM mechanism.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro._testsupport import alarm_timeout
from repro.data import independent, preference_set
from repro.index import RTree

TEST_TIMEOUT_SECONDS = int(os.environ.get("WQRTQ_TEST_TIMEOUT", "120"))


@pytest.fixture(autouse=True)
def _global_test_timeout(request):
    with alarm_timeout(TEST_TIMEOUT_SECONDS, request.node.nodeid):
        yield


@pytest.fixture(scope="session")
def paper_points() -> np.ndarray:
    """The seven computers of Figure 1(a): (price, heat)."""
    return np.array(
        [[2.0, 1.0],   # p1 Dell
         [6.0, 3.0],   # p2 Apple... (ids are 0-based: p_i = row i-1)
         [1.0, 9.0],   # p3
         [9.0, 3.0],   # p4
         [7.0, 5.0],   # p5
         [5.0, 8.0],   # p6
         [3.0, 7.0]])  # p7


@pytest.fixture(scope="session")
def paper_weights() -> np.ndarray:
    """Customer preferences of Figure 1(b): Julia, Tony, Anna, Kevin."""
    return np.array(
        [[0.9, 0.1],   # Julia
         [0.5, 0.5],   # Tony
         [0.3, 0.7],   # Anna
         [0.1, 0.9]])  # Kevin


@pytest.fixture(scope="session")
def paper_q() -> np.ndarray:
    """The query computer q(4, 4)."""
    return np.array([4.0, 4.0])


@pytest.fixture(scope="session")
def paper_missing(paper_weights) -> np.ndarray:
    """Kevin's and Julia's vectors — missing from BRTOP3(q)."""
    return paper_weights[[0, 3]]


@pytest.fixture(scope="session")
def small_dataset() -> np.ndarray:
    """A 500-point 3-d independent dataset (session-cached)."""
    return independent(500, 3, seed=42)


@pytest.fixture(scope="session")
def small_tree(small_dataset) -> RTree:
    return RTree(small_dataset, capacity=16)


@pytest.fixture(scope="session")
def small_weights() -> np.ndarray:
    return preference_set(20, 3, seed=7)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)
