"""Multi-process worker pool: scatter-gather byte-identity + lifecycle.

Satellite acceptance for the tentpole: answers served by the
:class:`~repro.service.workers.WorkerPool` — whole questions and
sharded scatter-gather alike — must be **byte-identical** to the
single-process session path for every registered algorithm, across
``k``, dimensionality and tie-heavy data; catalogue mutations publish
new versions to the workers and retire old shared segments; and a
shutdown leaves no worker process and no ``/dev/shm`` segment alive.

The pool spawns real processes, so fixtures are module-scoped: one
pool serves every identity test.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.protocol import Answer, ErrorInfo, Question
from repro.data import independent, preference_set, query_point_with_rank
from repro.engine.shm import owned_segments
from repro.service import CatalogueRegistry, WorkerPool, WorkerPoolError

D = 3


def tie_heavy(n: int, d: int, seed: int) -> np.ndarray:
    """A catalogue where exact score ties are common: duplicated rows
    force the k-th boundary and dominance partitions through the
    tie-break rules the shard merge must reproduce."""
    base = independent(n, d, seed=seed)
    return np.vstack([base, base[: n // 3]])


@pytest.fixture(scope="module")
def registry():
    reg = CatalogueRegistry()
    reg.register("tie", tie_heavy(360, D, seed=31))
    reg.register("d5", independent(300, 5, seed=32))
    reg.register("mut", independent(240, D, seed=33))
    return reg


@pytest.fixture(scope="module")
def pool(registry):
    pool = WorkerPool(registry, workers=2, shards=3)
    yield pool
    pool.shutdown()


def strip_elapsed(answer) -> dict:
    payload = answer.to_dict()
    payload.pop("elapsed")
    return payload


def make_question(points, j, *, algorithm, k, options=None, m=2):
    # The second why-not vector's rank for q is unconstrained, so a
    # large k must stick to the vector with the known rank.
    d = points.shape[1]
    w = preference_set(m, d, seed=900 + j)
    rank = min(max(41, 2 * k + 1), len(points) - 1)
    q = query_point_with_rank(points, w[0], rank)
    return Question(q=q, k=k, why_not=w, algorithm=algorithm,
                    options=options or {})


ALGORITHMS = [("mqp", {}), ("mwk", {"sample_size": 60}),
              ("mqwk", {"sample_size": 40})]


class TestAskIdentity:
    @pytest.mark.parametrize("name", ["tie", "d5"])
    @pytest.mark.parametrize("algorithm, options", ALGORITHMS)
    @pytest.mark.parametrize("k", [1, 5, 40])
    def test_sharded_equals_session(self, registry, pool, name,
                                    algorithm, options, k):
        points = registry.get(name).points
        question = make_question(points, k, algorithm=algorithm,
                                 k=k, options=options,
                                 m=2 if k <= 5 else 1)
        expected = registry.session(name).ask(question, seed=17)
        got = pool.ask(name, question, seed=17)
        assert expected.ok, expected.error
        assert strip_elapsed(expected) == strip_elapsed(got)

    def test_unshardable_question_runs_whole(self, registry, pool):
        # use_rtree=False selects the gemm scan path, which
        # shard_plan refuses (gemv/gemm bit divergence); the pool
        # must fall back to whole-question execution, identically.
        points = registry.get("tie").points
        question = make_question(points, 7, algorithm="mqp", k=9,
                                 options={"use_rtree": False})
        expected = registry.session("tie").ask(question, seed=2)
        got = pool.ask("tie", question, seed=2)
        assert expected.ok
        assert strip_elapsed(expected) == strip_elapsed(got)

    def test_failure_identity(self, registry, pool):
        points = registry.get("tie").points
        question = make_question(points, 8, algorithm="mqp",
                                 k=10 ** 6)
        expected = registry.session("tie").ask(question, seed=0)
        got = pool.ask("tie", question, seed=0)
        assert not expected.ok
        assert strip_elapsed(expected) == strip_elapsed(got)

    def test_unpublished_catalogue_rejected(self, pool):
        question = Question(q=[0.2] * D, k=3,
                            why_not=preference_set(1, D, seed=1))
        with pytest.raises((WorkerPoolError, KeyError)):
            pool.ask("nope", question, seed=0)


class TestBatchIdentity:
    def test_mixed_batch_equals_session(self, registry, pool):
        points = registry.get("tie").points
        questions = [
            make_question(points, 20 + j, algorithm=algorithm,
                          k=5 + j, options=options)
            for j, (algorithm, options) in enumerate(ALGORITHMS * 3)]
        expected = registry.session("tie").ask_batch(questions,
                                                     seed=40)
        got = pool.ask_batch("tie", questions, seed=40)
        assert [strip_elapsed(a) for a in expected] \
            == [strip_elapsed(a) for a in got]

    def test_prefailed_entries_ride_along(self, registry, pool):
        points = registry.get("tie").points
        prefailed = Answer(index=0, algorithm="mwk", result=None,
                           penalty=float("nan"), valid=False,
                           error=ErrorInfo(type="ValueError",
                                           message="bad entry"))
        items = [make_question(points, 30, algorithm="mwk", k=6,
                               options={"sample_size": 40}),
                 prefailed,
                 make_question(points, 31, algorithm="mqp", k=4)]
        expected = registry.session("tie").ask_batch(items, seed=9)
        got = pool.ask_batch("tie", items, seed=9)
        assert [strip_elapsed(a) for a in expected] \
            == [strip_elapsed(a) for a in got]
        assert got[1].error.message == "bad entry"
        assert got[1].index == 1

    def test_empty_batch(self, pool):
        assert pool.ask_batch("tie", []) == []


class TestPublish:
    def test_mutation_publish_retire(self, registry, pool):
        catalogue = registry.catalogue("mut")
        points = registry.get("mut").points
        question = make_question(points, 50, algorithm="mqwk", k=7,
                                 options={"sample_size": 40})
        before = pool.ask("mut", question, seed=3)
        assert before.catalogue_version == 0

        old_segment = pool.manifest("mut").segment
        assert old_segment in owned_segments()
        catalogue.add_products(independent(5, D, seed=60) + 0.01)
        manifest = pool.publish("mut")
        assert manifest.version == catalogue.version == 1
        assert pool.version("mut") == 1
        assert manifest.segment in owned_segments()
        assert old_segment not in owned_segments()   # retired

        after = pool.ask("mut", question, seed=3)
        expected = registry.session("mut").ask(question, seed=3)
        assert after.catalogue_version == 1
        assert strip_elapsed(after) == strip_elapsed(expected)

    def test_publish_is_idempotent_per_version(self, registry, pool):
        first = pool.publish("tie")
        again = pool.publish("tie")
        assert again is first


class TestStats:
    def test_counters(self, pool):
        stats = pool.stats()
        assert stats["workers"] == 2
        assert stats["shards"] == 3
        assert stats["questions"] > 0
        assert stats["partials"] > 0
        assert len(stats["per_worker"]) == 2
        for worker in stats["per_worker"]:
            assert worker["publishes"] >= 3     # three catalogues
            assert worker["throughput_qps"] >= 0.0
        assert set(stats["published"]) == {"tie", "d5", "mut"}


class TestServedOverHTTP:
    """The wire path: ``create_server(workers=...)`` routes /answer
    and /batch through the pool, mutations publish, /stats reports
    per-worker throughput — and the rendered items match the
    in-process session byte for byte."""

    @pytest.fixture(scope="class")
    def served(self):
        import threading

        from repro.service import ServiceClient, create_server

        registry = CatalogueRegistry()
        registry.register("wire", tie_heavy(240, D, seed=90))
        server = create_server(registry, workers=2, shards=2)
        thread = threading.Thread(target=server.serve_forever,
                                  daemon=True)
        thread.start()
        yield registry, server, ServiceClient(port=server.port)
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)

    def test_answer_matches_session(self, served):
        registry, server, client = served
        points = registry.get("wire").points
        question = make_question(points, 100, algorithm="mqwk", k=6,
                                 options={"sample_size": 40})
        expected = registry.session("wire").ask(question, seed=4)
        got = client.ask("wire", question, seed=4)
        assert strip_elapsed(expected) == strip_elapsed(got)

    def test_batch_matches_session(self, served):
        registry, server, client = served
        points = registry.get("wire").points
        questions = [make_question(points, 110 + j, algorithm="mwk",
                                   k=5, options={"sample_size": 40})
                     for j in range(5)]
        expected = registry.session("wire").ask_batch(questions,
                                                      seed=8)
        answers, summary = client.ask_batch("wire", questions, seed=8)
        assert summary["failed"] == 0
        assert [strip_elapsed(a) for a in expected] \
            == [strip_elapsed(a) for a in answers]

    def test_mutation_publishes_to_workers(self, served):
        registry, server, client = served
        points = registry.get("wire").points
        response = client.add_products(
            "wire", (independent(3, D, seed=91) + 0.01).tolist())
        version = response["catalogue_version"]
        assert server.pool.version("wire") == version
        question = make_question(points, 120, algorithm="mqp", k=5)
        answer = client.ask("wire", question, seed=1)
        assert answer.catalogue_version == version

    def test_stats_report_workers(self, served):
        registry, server, client = served
        stats = client.stats()
        workers = stats["workers"]
        assert workers["workers"] == 2
        assert workers["shards"] == 2
        assert workers["questions"] > 0
        assert len(workers["per_worker"]) == 2


def test_shutdown_releases_everything():
    """Full lifecycle of a private pool: processes exit, published
    segments unlink, later questions are refused."""
    registry = CatalogueRegistry()
    points = independent(120, D, seed=70)
    registry.register("solo", points)
    pool = WorkerPool(registry, workers=1, shards=1)
    segments = set()
    try:
        question = make_question(points, 80, algorithm="mqp", k=4)
        answer = pool.ask("solo", question, seed=1)
        assert answer.ok
        segments = {name for name in owned_segments()
                    if name == pool.publish("solo").segment}
        assert segments
    finally:
        pool.shutdown()
    pool.shutdown()   # idempotent
    for name in segments:
        assert name not in owned_segments()
    assert all(not handle.process.is_alive()
               for handle in pool._workers)
    with pytest.raises(WorkerPoolError):
        pool.ask("solo", make_question(points, 81, algorithm="mqp",
                                       k=4))
