"""Catalogue lifecycle: versioned snapshots, copy-on-write derivation,
epoch-based cache invalidation, snapshot isolation.

Uses only the typed Question/Answer API, so this module runs in CI
with ``-W error::DeprecationWarning``.
"""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

from repro.core.protocol import Question
from repro.core.session import Session
from repro.data import (
    Catalogue,
    independent,
    preference_set,
    query_point_with_rank,
)
from repro.engine.context import DatasetContext
from repro.engine.executor import answer_question, execute_questions
from repro.index.rtree import RTree

N = 400
D = 3
K = 10
RANK = 41

#: Coordinates every unit-cube query point dominates: mutations using
#: them cannot invalidate any cached partition (higher = worse).
FAR_AWAY = 3.0


@pytest.fixture(scope="module")
def points():
    return independent(N, D, seed=17)


def make_typed(points, j, *, rank=RANK, algorithm="mqp",
               options=None, id=None):
    w = preference_set(1, D, seed=7000 + j)
    q = query_point_with_rank(points, w[0], rank)
    return Question(q=q, k=K, why_not=w, algorithm=algorithm,
                    options=options or {}, id=id)


def payload_bytes(answer) -> bytes:
    """The Answer payload as canonical JSON, timing stripped."""
    payload = {key: value for key, value in answer.to_dict().items()
               if key != "elapsed"}
    return json.dumps(payload, sort_keys=True).encode()


class TestLifecycle:
    def test_initial_state(self, points):
        cat = Catalogue(points)
        assert cat.version == 0 and cat.n == N and cat.dim == D
        assert cat.snapshot.version == 0
        np.testing.assert_array_equal(cat.product_ids(), np.arange(N))
        described = cat.describe()
        assert described["version"] == 0
        assert described["mutations"] == {
            "count": 0, "adds": 0, "updates": 0, "removes": 0}
        assert cat.history() == ()

    def test_points_context_exclusive(self, points):
        with pytest.raises(ValueError, match="points or a context"):
            Catalogue()
        with pytest.raises(ValueError, match="not both"):
            Catalogue(points, context=DatasetContext(points))

    def test_add_assigns_fresh_monotonic_ids(self, points):
        cat = Catalogue(points)
        first = cat.add_products(np.full((3, D), FAR_AWAY))
        assert first.tolist() == [N, N + 1, N + 2]
        assert cat.version == 1 and cat.n == N + 3
        second = cat.add_products([[FAR_AWAY] * D])
        assert second.tolist() == [N + 3]
        assert cat.version == 2

    def test_update_replaces_coordinates(self, points):
        cat = Catalogue(points)
        replacement = np.full(D, FAR_AWAY)
        version = cat.update_products([7], [replacement])
        assert version == 1 and cat.n == N
        np.testing.assert_array_equal(cat.snapshot.points[7],
                                      replacement)

    def test_remove_compacts_and_keeps_survivor_ids(self, points):
        cat = Catalogue(points)
        version = cat.remove_products([0, 5])
        assert version == 1 and cat.n == N - 2
        ids = cat.product_ids()
        assert 0 not in ids and 5 not in ids
        assert ids[0] == 1
        # Survivor rows keep their coordinates, addressed by id.
        np.testing.assert_array_equal(cat.snapshot.points[0],
                                      points[1])
        np.testing.assert_array_equal(cat.snapshot.product_ids, ids)

    def test_ids_never_reused_after_removal(self, points):
        cat = Catalogue(points)
        cat.remove_products([N - 1])
        new = cat.add_products([[FAR_AWAY] * D])
        assert new.tolist() == [N]   # not N - 1: ids are never reused
        ids = cat.product_ids()
        assert len(np.unique(ids)) == len(ids)

    def test_history_records_every_mutation(self, points):
        cat = Catalogue(points)
        cat.add_products([[FAR_AWAY] * D])
        cat.update_products([2], [[FAR_AWAY] * D])
        cat.remove_products([3])
        ops = [(r.version, r.op, r.count, r.n_after)
               for r in cat.history()]
        assert ops == [(1, "add", 1, N + 1),
                       (2, "update", 1, N + 1),
                       (3, "remove", 1, N)]
        assert cat.history()[0].to_dict() == {
            "version": 1, "op": "add", "count": 1, "n_after": N + 1}

    def test_adopted_context_is_version_zero_snapshot(self, points):
        context = DatasetContext(points)
        cat = Catalogue(context=context)
        assert cat.snapshot is context
        assert cat.version == 0
        cat.add_products([[FAR_AWAY] * D])
        assert cat.snapshot is not context   # context itself untouched
        assert context.n == N


class TestValidation:
    @pytest.fixture()
    def cat(self, points):
        return Catalogue(points)

    def test_dim_mismatch_rejected(self, cat):
        with pytest.raises(ValueError, match=f"{D} coordinates"):
            cat.add_products([[0.5, 0.5]])

    def test_non_finite_rejected(self, cat):
        with pytest.raises(ValueError, match="finite"):
            cat.add_products([[np.nan] * D])

    def test_empty_products_rejected(self, cat):
        with pytest.raises(ValueError, match="non-empty"):
            cat.add_products(np.empty((0, D)))

    def test_unknown_ids_rejected(self, cat):
        with pytest.raises(ValueError, match=r"unknown product id\(s\): "
                                             r"\[9999\]"):
            cat.remove_products([9999])

    def test_duplicate_ids_rejected(self, cat):
        with pytest.raises(ValueError, match="duplicates"):
            cat.remove_products([1, 1])

    def test_remove_everything_rejected(self, cat):
        with pytest.raises(ValueError, match="non-empty"):
            cat.remove_products(list(range(N)))

    def test_update_count_mismatch_rejected(self, cat):
        with pytest.raises(ValueError, match="one coordinate row"):
            cat.update_products([1, 2], [[0.5] * D])

    def test_adopted_unsorted_product_ids_rejected(self, points):
        """Id lookup is a searchsorted over a strictly increasing
        array; an adopted context with out-of-order ids would
        silently mis-address rows, so it is rejected up front."""
        context = DatasetContext(points[:3],
                                 product_ids=[5, 3, 9])
        with pytest.raises(ValueError, match="strictly increasing"):
            Catalogue(context=context)

    def test_apply_is_atomic_description(self, cat):
        applied = cat.apply("add", products=[[FAR_AWAY] * D])
        assert applied == {"op": "add", "ids": [N], "version": 1,
                           "n": N + 1}
        applied = cat.apply("update", ids=[N],
                            products=[[FAR_AWAY] * D])
        assert applied["version"] == 2 and applied["ids"] == [N]
        applied = cat.apply("remove", ids=[N])
        assert applied == {"op": "remove", "ids": [N], "version": 3,
                           "n": N}
        with pytest.raises(ValueError, match="op must be"):
            cat.apply("zap")
        with pytest.raises(ValueError, match="requires 'products'"):
            cat.apply("add")


class TestSnapshotCorrectness:
    """After any mutation sequence, a derived snapshot must be
    *equivalent* to a context built from scratch over the same
    points: identical index contents, identical partition sets,
    valid answers with identical penalties for the deterministic
    paths.  (Byte-level answer identity holds when derivation
    started cold; inherited caches preserve the parent's traversal
    order, so the sampling-based refinements may legitimately pick a
    different — equally valid — optimum than a scratch rebuild.
    Within one snapshot, every answer stays fully deterministic.)"""

    def test_patched_tree_matches_fresh_tree(self, points):
        cat = Catalogue(points)
        cat.snapshot.tree   # force the patch path
        rng = np.random.default_rng(3)
        cat.add_products(rng.random((10, D)) + 0.5)
        cat.update_products([5, 50, 300], rng.random((3, D)))
        cat.remove_products([2, 7, N + 4])
        patched = cat.snapshot.tree
        fresh = RTree(cat.snapshot.points)
        assert len(patched) == len(fresh) == cat.n
        for seed in range(5):
            q = np.random.default_rng(seed).random(D)
            np.testing.assert_array_equal(
                np.sort(patched.knn_query(q, 15)),
                np.sort(fresh.knn_query(q, 15)))
            np.testing.assert_array_equal(
                patched.range_query(np.zeros(D), q),
                fresh.range_query(np.zeros(D), q))

    def test_derived_partitions_match_fresh(self, points):
        cat = Catalogue(points)
        probes = [points[i] * 1.01 for i in (3, 30, 60)]
        for q in probes:
            cat.snapshot.partition(q)
        rng = np.random.default_rng(4)
        cat.update_products([9], [rng.random(D)])
        cat.remove_products([11, 12])
        snapshot = cat.snapshot
        fresh = DatasetContext(snapshot.points)
        for q in probes:
            got = snapshot.partition(q)
            want = fresh.partition(q)
            np.testing.assert_array_equal(
                np.sort(got.dominating_ids),
                np.sort(want.dominating_ids))
            np.testing.assert_array_equal(
                np.sort(got.incomparable_ids),
                np.sort(want.incomparable_ids))

    def test_answers_match_fresh_context(self, points):
        cat = Catalogue(points)
        rng = np.random.default_rng(5)
        cat.add_products(rng.random((4, D)) + 0.2)
        cat.remove_products([1, 2, 3])
        snapshot = cat.snapshot
        questions = [make_typed(snapshot.points, j, algorithm=alg,
                                options=opts)
                     for j, (alg, opts) in enumerate([
                         ("mqp", {}),
                         ("mwk", {"sample_size": 30}),
                         ("mqwk", {"sample_size": 20})])]
        fresh = DatasetContext(snapshot.points,
                               version=snapshot.version)
        derived = execute_questions(snapshot, questions, seed=9)
        scratch = execute_questions(fresh, questions, seed=9)
        assert [payload_bytes(a) for a in derived] == \
            [payload_bytes(a) for a in scratch]
        assert all(a.ok for a in derived)

    def test_warm_derivation_answers_stay_valid_and_deterministic(
            self, points):
        """With warmed (inherited) caches, derived-snapshot answers
        remain audit-valid, penalty-identical on the deterministic
        MQP and order-insensitive MWK paths, and *fully* repeatable
        within the snapshot — the guarantee ``catalogue_version``
        stamps.  (MQWK's sampled optimum may differ from a scratch
        rebuild's: candidate traversal order is inherited.)"""
        cat = Catalogue(points)
        questions = [make_typed(points, j, algorithm=alg,
                                options=opts)
                     for j, (alg, opts) in enumerate([
                         ("mqp", {}),
                         ("mwk", {"sample_size": 30}),
                         ("mqwk", {"sample_size": 20})])]
        cat.snapshot.tree
        for question in questions:
            cat.snapshot.partition(question.q)
        cat.add_products(np.full((2, D), FAR_AWAY))
        snapshot = cat.snapshot
        assert snapshot.stats.partitions_inherited == 3

        derived = execute_questions(snapshot, questions, seed=9)
        scratch = execute_questions(
            DatasetContext(snapshot.points,
                           version=snapshot.version),
            questions, seed=9)
        assert all(a.ok and a.valid for a in derived)
        assert derived[0].penalty == scratch[0].penalty   # mqp
        assert payload_bytes(derived[0]) == payload_bytes(scratch[0])
        assert derived[1].penalty == scratch[1].penalty   # mwk
        assert scratch[2].ok and scratch[2].valid         # mqwk
        # Snapshot-internal determinism: byte-identical replays.
        replay = execute_questions(snapshot, questions, seed=9)
        assert [payload_bytes(a) for a in replay] == \
            [payload_bytes(a) for a in derived]


class TestSnapshotIsolation:
    """Satellite: a reader pinned at version N sees byte-identical
    answers while a writer advances the catalogue to N + 2."""

    def test_pinned_reader_unaffected_by_writer(self, points):
        cat = Catalogue(points)
        pinned = cat.snapshot                        # version N = 0
        questions = [make_typed(points, j) for j in range(4)]
        before = [payload_bytes(answer_question(
            pinned, question, rng=np.random.default_rng(2)))
            for question in questions]

        # Writer advances to N + 2, changing data the questions see:
        # near-origin products dominate everything.
        cat.add_products(np.full((2, D), 1e-3))      # version N + 1
        cat.update_products([0], [np.full(D, 1e-3)])  # version N + 2
        assert cat.version == 2

        after = [payload_bytes(answer_question(
            pinned, question, rng=np.random.default_rng(2)))
            for question in questions]
        assert before == after                       # byte-identical
        for raw in after:
            assert json.loads(raw)["catalogue_version"] == 0

        # The *current* snapshot answers against the new data and
        # stamps the new version.
        live = answer_question(cat.snapshot, questions[0],
                               rng=np.random.default_rng(2))
        assert live.catalogue_version == 2
        assert payload_bytes(live) != before[0]

    def test_session_pins_per_call_and_follows(self, points):
        cat = Catalogue(points)
        session = Session(catalogue=cat)
        assert session.catalogue_version == 0
        question = make_typed(points, 1)
        first = session.ask(question, seed=3)
        assert first.catalogue_version == 0
        cat.add_products([[FAR_AWAY] * D])
        assert session.catalogue_version == 1
        second = session.ask(question, seed=3)
        assert second.catalogue_version == 1
        # A far-away product changes no answer content, only version.
        assert second.penalty == first.penalty

    def test_session_rejects_catalogue_plus_points(self, points):
        with pytest.raises(ValueError, match="exactly one"):
            Session(points, catalogue=Catalogue(points))


class TestEpochInvalidation:
    """Satellite: a mutation drops exactly the cache entries it made
    stale — the mutated product's partitions — and retains the rest,
    observable through ContextStats."""

    def probes(self, points):
        # Three cached products, far apart in the unit cube.
        return [points[i] * 1.01 + 1e-4 for i in (5, 100, 200)]

    def test_untouched_partitions_retained(self, points):
        cat = Catalogue(points)
        # Pre-position the product that will mutate *outside* every
        # probe's candidate region, then warm the caches.
        cat.update_products([42], [np.full(D, FAR_AWAY)])
        for q in self.probes(points):
            cat.snapshot.partition(q)
        assert cat.snapshot.n_cached_partitions == 3

        # A far-away product moving farther away is invisible to
        # every probe before *and* after: everything is inherited.
        cat.update_products([42], [np.full(D, FAR_AWAY + 1.0)])
        snapshot = cat.snapshot
        assert snapshot.stats.partitions_inherited == 3
        assert snapshot.stats.partition_invalidations == 0
        assert snapshot.stats.box_caches_inherited == 3
        assert snapshot.stats.box_cache_invalidations == 0
        assert snapshot.n_cached_partitions == 3

        # Re-asking about an untouched product is a pure cache hit:
        # no FindIncom traversal on the new snapshot.
        for q in self.probes(points):
            snapshot.partition(q)
        assert snapshot.stats.partition_hits == 3
        assert snapshot.stats.findincom_traversals == 0

    def test_mutated_products_partitions_dropped(self, points):
        cat = Catalogue(points)
        probes = self.probes(points)
        for q in probes:
            cat.snapshot.partition(q)

        # A product moving to the origin dominates every probe: all
        # three cached partitions are now stale and must drop.
        cat.update_products([42], [np.full(D, 1e-6)])
        snapshot = cat.snapshot
        assert snapshot.stats.partition_invalidations == 3
        assert snapshot.stats.partitions_inherited == 0
        assert snapshot.n_cached_partitions == 0

        # Re-asking re-traverses (a true miss) and is *correct*: the
        # moved product now dominates each probe.
        moved_row = int(np.where(cat.product_ids() == 42)[0][0])
        for q in probes:
            partition = snapshot.partition(q)
            assert moved_row in partition.dominating_ids.tolist()
        assert snapshot.stats.findincom_traversals == 3

    def test_partial_invalidation_is_per_entry(self, points):
        """One probe's region mutated, the other probes' entries
        survive — invalidation is per ``q``, not a flush."""
        cat = Catalogue(points)
        probes = self.probes(points)
        for q in probes:
            cat.snapshot.partition(q)
        # Place the mutation *under* probe 0 only: dominated by the
        # other probes' corners it is not.
        target = probes[0] * 0.5
        assert not np.all(target >= probes[1])
        cat.update_products([42], [target])
        snapshot = cat.snapshot
        assert snapshot.stats.partitions_inherited \
            + snapshot.stats.partition_invalidations == 3
        assert snapshot.stats.partition_invalidations >= 1
        # Correctness for every probe regardless of retention.
        fresh = DatasetContext(snapshot.points)
        for q in probes:
            np.testing.assert_array_equal(
                np.sort(snapshot.partition(q).incomparable_ids),
                np.sort(fresh.partition(q).incomparable_ids))

    def test_removal_remaps_retained_entries(self, points):
        cat = Catalogue(points)
        probes = self.probes(points)
        # Park the product far away *before* warming, so removing it
        # later invalidates nothing — but still renumbers every row
        # above it (it occupies row 0).
        cat.update_products([0], [np.full(D, FAR_AWAY)])
        for q in probes:
            cat.snapshot.partition(q)
        cat.remove_products([0])
        snapshot = cat.snapshot
        assert snapshot.stats.partitions_inherited == 3
        assert snapshot.n == N - 1
        fresh = DatasetContext(snapshot.points)
        for q in probes:
            np.testing.assert_array_equal(
                np.sort(snapshot.partition(q).dominating_ids),
                np.sort(fresh.partition(q).dominating_ids))
        assert snapshot.stats.findincom_traversals == 0

    def test_whole_catalogue_update_counts_as_build(self, points):
        """Updating every row empties the copied tree; the patch
        falls back to a bulk load, which must be accounted as a
        build, not a patch."""
        cat = Catalogue(points)
        cat.snapshot.tree
        cat.update_products(cat.product_ids(),
                            np.ascontiguousarray(points[::-1]))
        snapshot = cat.snapshot
        assert snapshot.stats.tree_builds == 1
        assert snapshot.stats.tree_patches == 0
        fresh = RTree(snapshot.points)
        q = points[0]
        np.testing.assert_array_equal(
            np.sort(snapshot.tree.knn_query(q, 10)),
            np.sort(fresh.knn_query(q, 10)))

    def test_epoch_advances_per_derivation(self, points):
        cat = Catalogue(points)
        assert cat.snapshot.epoch == 0
        cat.add_products([[FAR_AWAY] * D])
        cat.add_products([[FAR_AWAY] * D])
        assert cat.snapshot.epoch == 2


class TestConcurrency:
    def test_readers_stay_consistent_under_writer(self, points):
        """Readers pinning snapshots mid-stream each see one
        consistent version per batch while a writer mutates."""
        cat = Catalogue(points)
        questions = [make_typed(points, j) for j in range(3)]
        stop = threading.Event()
        errors: list[Exception] = []

        def writer():
            try:
                ids = []
                while not stop.is_set():
                    ids.extend(cat.add_products(
                        [[FAR_AWAY] * D]).tolist())
                    if len(ids) > 4:
                        cat.remove_products(ids[:2])
                        ids = ids[2:]
            except Exception as exc:   # pragma: no cover
                errors.append(exc)

        def reader():
            try:
                session = Session(catalogue=cat, warm=False)
                for _ in range(10):
                    answers = session.ask_batch(questions, seed=1)
                    versions = {a.catalogue_version for a in answers}
                    assert len(versions) == 1   # one snapshot per batch
                    assert all(a.ok for a in answers)
            except Exception as exc:   # pragma: no cover
                errors.append(exc)

        writer_thread = threading.Thread(target=writer)
        reader_threads = [threading.Thread(target=reader)
                          for _ in range(3)]
        writer_thread.start()
        for thread in reader_threads:
            thread.start()
        for thread in reader_threads:
            thread.join(timeout=60)
        stop.set()
        writer_thread.join(timeout=60)
        assert not errors, errors
