"""DatasetContext: cache behaviour, counters, and correctness."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.incomparable import find_incomparable
from repro.data import independent, preference_set, query_point_with_rank
from repro.engine.context import DEFAULT_CACHE_CAP, DatasetContext
from repro.index.rtree import RTree


@pytest.fixture()
def context():
    return DatasetContext(independent(600, 3, seed=11))


@pytest.fixture()
def q(context):
    w = preference_set(1, 3, seed=12)[0]
    return query_point_with_rank(context.points, w, 41)


class TestConstruction:
    def test_points_are_immutable(self, context):
        with pytest.raises(ValueError):
            context.points[0, 0] = 99.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            DatasetContext(np.empty((0, 3)))

    def test_adopts_prebuilt_tree(self):
        pts = independent(200, 3, seed=13)
        tree = RTree(pts)
        ctx = DatasetContext(pts, tree=tree)
        assert ctx.tree is tree
        assert ctx.stats.tree_builds == 0

    def test_rejects_mismatched_tree(self):
        tree = RTree(independent(200, 3, seed=13))
        with pytest.raises(ValueError, match="does not index"):
            DatasetContext(independent(200, 3, seed=14), tree=tree)


class TestTreeCache:
    def test_tree_built_once(self, context):
        assert context.stats.tree_builds == 0
        t1 = context.tree
        t2 = context.tree
        assert t1 is t2
        assert context.stats.tree_builds == 1


class TestPartitionCache:
    def test_partition_matches_find_incomparable(self, context, q):
        cached = context.partition(q)
        direct = find_incomparable(context.tree, q)
        np.testing.assert_array_equal(cached.dominating_ids,
                                      direct.dominating_ids)
        np.testing.assert_array_equal(cached.incomparable_ids,
                                      direct.incomparable_ids)

    def test_repeat_q_is_a_hit(self, context, q):
        first = context.partition(q)
        assert context.stats.partition_misses == 1
        assert context.stats.findincom_traversals == 1
        second = context.partition(np.array(q))  # equal value, new obj
        assert second is first
        assert context.stats.partition_hits == 1
        assert context.stats.findincom_traversals == 1

    def test_distinct_q_is_a_miss(self, context, q):
        context.partition(q)
        context.partition(q * 0.9)
        assert context.stats.partition_misses == 2
        assert context.stats.findincom_traversals == 2

    def test_box_cache_shared_with_partition(self, context, q):
        """partition() and box_cache() ride one traversal per q."""
        context.partition(q)
        box = context.box_cache(q)
        assert context.stats.findincom_traversals == 1
        assert context.stats.box_cache_hits == 1
        assert context.stats.cache_hits == 1
        sub = box.partition(q * 0.8)
        direct = find_incomparable(context.tree, q * 0.8)
        np.testing.assert_array_equal(sub.incomparable_ids,
                                      direct.incomparable_ids)

    def test_index_work_counter(self, context, q):
        context.tree
        context.partition(q)
        context.partition(q)
        assert context.stats.index_work == 2  # 1 build + 1 traversal


class TestLRUBounds:
    def probes(self, context, count, *, seed=91):
        rng = np.random.default_rng(seed)
        return rng.random((count, context.dim)) * 0.5 + 0.25

    def test_default_cap_is_generous(self, context):
        assert context.max_partitions == DEFAULT_CACHE_CAP
        assert context.max_box_caches == DEFAULT_CACHE_CAP
        for q in self.probes(context, 20):
            context.partition(q)
        assert context.stats.evictions == 0

    def test_invalid_caps_rejected(self):
        pts = independent(50, 3, seed=1)
        with pytest.raises(ValueError, match="max_partitions"):
            DatasetContext(pts, max_partitions=0)
        with pytest.raises(ValueError, match="max_box_caches"):
            DatasetContext(pts, max_box_caches=-1)

    def test_none_disables_bound(self):
        context = DatasetContext(independent(100, 3, seed=2),
                                 max_partitions=None,
                                 max_box_caches=None)
        for q in self.probes(context, 12):
            context.partition(q)
        assert context.n_cached_partitions == 12
        assert context.stats.evictions == 0

    def test_partition_cache_bounded(self):
        context = DatasetContext(independent(200, 3, seed=3),
                                 max_partitions=4, max_box_caches=4)
        for q in self.probes(context, 10):
            context.partition(q)
        assert context.n_cached_partitions == 4
        assert context.n_cached_box_caches == 4
        assert context.stats.partition_evictions == 6
        assert context.stats.box_cache_evictions == 6

    def test_hit_refreshes_recency(self):
        """An LRU hit must move the entry to the back of the queue."""
        context = DatasetContext(independent(200, 3, seed=4),
                                 max_partitions=2, max_box_caches=2)
        q1, q2, q3 = self.probes(context, 3)
        context.partition(q1)
        context.partition(q2)
        first = context.partition(q1)        # refresh q1
        context.partition(q3)                # evicts q2, not q1
        assert context.partition(q1) is first
        assert context.stats.partition_hits == 2
        # q2's partition is gone: asking again is a miss (though it
        # may still ride a cached box traversal).
        misses = context.stats.partition_misses
        context.partition(q2)
        assert context.stats.partition_misses == misses + 1

    def test_eviction_never_serves_wrong_partition(self):
        """Every partition handed out — cached, evicted-and-rebuilt,
        or fresh — must be the FindIncom result for *that* q."""
        context = DatasetContext(independent(300, 3, seed=5),
                                 max_partitions=3, max_box_caches=3)
        probes = self.probes(context, 9)
        # Two passes with a small cap: the second pass re-asks every
        # q after it has been evicted at least once.
        for _ in range(2):
            for q in probes:
                got = context.partition(q)
                direct = find_incomparable(context.tree, q)
                np.testing.assert_array_equal(
                    got.dominating_ids, direct.dominating_ids)
                np.testing.assert_array_equal(
                    got.incomparable_ids, direct.incomparable_ids)
        assert context.stats.partition_evictions > 0

    def test_bounded_equals_unbounded_answers(self):
        """Acceptance criterion: a bounded context (cap 8) serving 50
        distinct products stays within its cap, reports evictions,
        and returns answers identical to an unbounded context."""
        from repro.engine.executor import execute_batch

        points = independent(400, 3, seed=6)
        bounded = DatasetContext(points, max_partitions=8,
                                 max_box_caches=8)
        unbounded = DatasetContext(points, max_partitions=None,
                                   max_box_caches=None)
        questions = []
        for j in range(50):
            w = preference_set(1, 3, seed=700 + j)
            q = query_point_with_rank(points, w[0], 41)
            questions.append((q, 10, w))
        kwargs = dict(algorithm="mwk", sample_size=25, seed=9)
        got = execute_batch(bounded, questions, **kwargs)
        want = execute_batch(unbounded, questions, **kwargs)
        assert len(bounded._partitions) <= 8
        assert bounded.stats.partition_evictions > 0
        for a, b in zip(got, want):
            assert a.error is None and b.error is None
            assert a.penalty == b.penalty
            assert a.result.k_refined == b.result.k_refined
            np.testing.assert_array_equal(a.result.weights_refined,
                                          b.result.weights_refined)


class TestScoreBuffer:
    def test_buffer_reuse_and_growth(self, context):
        a = context.score_buffer(10, 20)
        assert a.shape[0] >= 10 and a.shape[1] >= 20
        b = context.score_buffer(8, 20)
        assert b is a
        assert context.stats.buffer_reuses == 1
        c = context.score_buffer(4 * a.shape[0], 20)
        assert c.shape[0] >= 4 * a.shape[0]

    def test_defaults_to_catalogue_width(self, context):
        buf = context.score_buffer(5)
        assert buf.shape[1] >= context.n

    def test_ranks_uses_buffer_and_matches_kernel(self, context, q):
        from repro.data import preference_set
        from repro.engine.kernels import ranks_batch

        wts = preference_set(15, 3, seed=33)
        first = context.ranks(wts, q)
        np.testing.assert_array_equal(
            first, ranks_batch(wts, context.points, q))
        context.ranks(wts, q)
        assert context.stats.buffer_reuses >= 1

    def test_larger_request_after_growth_is_correct(self, context, q):
        """Buffer aliasing: a bigger follow-up request must not read
        stale rows from the geometrically-grown scratch buffer."""
        from repro.data import preference_set
        from repro.engine.kernels import ranks_batch

        sizes = [3, 5, 40, 17, 160, 160, 80]
        for i, m in enumerate(sizes):
            wts = preference_set(m, 3, seed=100 + i)
            np.testing.assert_array_equal(
                context.ranks(wts, q),
                ranks_batch(wts, context.points, q))
        # The repeated 160-row request and the shrinking 80-row one
        # must have been served from the grown buffer.
        assert context.stats.buffer_reuses >= 2

    def test_growth_keeps_both_axes(self):
        """Growing one axis must not shrink the other."""
        context = DatasetContext(independent(30, 3, seed=44))
        context.score_buffer(4, 100)
        buf = context.score_buffer(64, 10)
        assert buf.shape[0] >= 64 and buf.shape[1] >= 100


class TestQuestion:
    def test_question_binds_shared_tree(self, context, q):
        wm = preference_set(1, 3, seed=12)
        question = context.question(q, 10, wm)
        assert question.rtree is context.tree
        assert question.k == 10
