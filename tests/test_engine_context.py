"""DatasetContext: cache behaviour, counters, and correctness."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.incomparable import find_incomparable
from repro.data import independent, preference_set, query_point_with_rank
from repro.engine.context import DatasetContext
from repro.index.rtree import RTree


@pytest.fixture()
def context():
    return DatasetContext(independent(600, 3, seed=11))


@pytest.fixture()
def q(context):
    w = preference_set(1, 3, seed=12)[0]
    return query_point_with_rank(context.points, w, 41)


class TestConstruction:
    def test_points_are_immutable(self, context):
        with pytest.raises(ValueError):
            context.points[0, 0] = 99.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            DatasetContext(np.empty((0, 3)))

    def test_adopts_prebuilt_tree(self):
        pts = independent(200, 3, seed=13)
        tree = RTree(pts)
        ctx = DatasetContext(pts, tree=tree)
        assert ctx.tree is tree
        assert ctx.stats.tree_builds == 0

    def test_rejects_mismatched_tree(self):
        tree = RTree(independent(200, 3, seed=13))
        with pytest.raises(ValueError, match="does not index"):
            DatasetContext(independent(200, 3, seed=14), tree=tree)


class TestTreeCache:
    def test_tree_built_once(self, context):
        assert context.stats.tree_builds == 0
        t1 = context.tree
        t2 = context.tree
        assert t1 is t2
        assert context.stats.tree_builds == 1


class TestPartitionCache:
    def test_partition_matches_find_incomparable(self, context, q):
        cached = context.partition(q)
        direct = find_incomparable(context.tree, q)
        np.testing.assert_array_equal(cached.dominating_ids,
                                      direct.dominating_ids)
        np.testing.assert_array_equal(cached.incomparable_ids,
                                      direct.incomparable_ids)

    def test_repeat_q_is_a_hit(self, context, q):
        first = context.partition(q)
        assert context.stats.partition_misses == 1
        assert context.stats.findincom_traversals == 1
        second = context.partition(np.array(q))  # equal value, new obj
        assert second is first
        assert context.stats.partition_hits == 1
        assert context.stats.findincom_traversals == 1

    def test_distinct_q_is_a_miss(self, context, q):
        context.partition(q)
        context.partition(q * 0.9)
        assert context.stats.partition_misses == 2
        assert context.stats.findincom_traversals == 2

    def test_box_cache_shared_with_partition(self, context, q):
        """partition() and box_cache() ride one traversal per q."""
        context.partition(q)
        box = context.box_cache(q)
        assert context.stats.findincom_traversals == 1
        assert context.stats.box_cache_hits == 1
        assert context.stats.cache_hits == 1
        sub = box.partition(q * 0.8)
        direct = find_incomparable(context.tree, q * 0.8)
        np.testing.assert_array_equal(sub.incomparable_ids,
                                      direct.incomparable_ids)

    def test_index_work_counter(self, context, q):
        context.tree
        context.partition(q)
        context.partition(q)
        assert context.stats.index_work == 2  # 1 build + 1 traversal


class TestScoreBuffer:
    def test_buffer_reuse_and_growth(self, context):
        a = context.score_buffer(10, 20)
        assert a.shape[0] >= 10 and a.shape[1] >= 20
        b = context.score_buffer(8, 20)
        assert b is a
        assert context.stats.buffer_reuses == 1
        c = context.score_buffer(4 * a.shape[0], 20)
        assert c.shape[0] >= 4 * a.shape[0]

    def test_defaults_to_catalogue_width(self, context):
        buf = context.score_buffer(5)
        assert buf.shape[1] >= context.n

    def test_ranks_uses_buffer_and_matches_kernel(self, context, q):
        from repro.data import preference_set
        from repro.engine.kernels import ranks_batch

        wts = preference_set(15, 3, seed=33)
        first = context.ranks(wts, q)
        np.testing.assert_array_equal(
            first, ranks_batch(wts, context.points, q))
        context.ranks(wts, q)
        assert context.stats.buffer_reuses >= 1


class TestQuestion:
    def test_question_binds_shared_tree(self, context, q):
        wm = preference_set(1, 3, seed=12)
        question = context.question(q, 10, wm)
        assert question.rtree is context.tree
        assert question.k == 10
