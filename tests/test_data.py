"""Unit tests for the dataset generators."""

import numpy as np
import pytest

from repro.data import (
    anticorrelated,
    correlated,
    household_like,
    independent,
    make_dataset,
    nba_like,
    preference_set,
    query_point_with_rank,
)
from repro.geometry.dominance import pareto_front_mask
from repro.geometry.vectors import is_valid_weight
from repro.topk.scan import rank_of_scan


class TestSyntheticShapes:
    @pytest.mark.parametrize("gen", [independent, anticorrelated,
                                     correlated])
    def test_shape_and_range(self, gen):
        pts = gen(500, 4, seed=1)
        assert pts.shape == (500, 4)
        assert np.all(pts >= 0.0) and np.all(pts <= 1.0)

    @pytest.mark.parametrize("gen", [independent, anticorrelated,
                                     correlated])
    def test_deterministic(self, gen):
        assert np.array_equal(gen(100, 3, seed=7), gen(100, 3, seed=7))

    @pytest.mark.parametrize("gen", [independent, anticorrelated])
    def test_seed_changes_data(self, gen):
        assert not np.array_equal(gen(100, 3, seed=1),
                                  gen(100, 3, seed=2))

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            independent(0, 3)
        with pytest.raises(ValueError):
            anticorrelated(10, 0)


class TestCorrelationStructure:
    def test_anticorrelated_negative_correlation(self):
        pts = anticorrelated(3000, 2, seed=3)
        rho = np.corrcoef(pts[:, 0], pts[:, 1])[0, 1]
        assert rho < -0.4

    def test_correlated_positive_correlation(self):
        pts = correlated(3000, 2, seed=3)
        rho = np.corrcoef(pts[:, 0], pts[:, 1])[0, 1]
        assert rho > 0.4

    def test_independent_near_zero_correlation(self):
        pts = independent(3000, 2, seed=3)
        rho = np.corrcoef(pts[:, 0], pts[:, 1])[0, 1]
        assert abs(rho) < 0.1

    def test_anticorrelated_has_bigger_skyline(self):
        """The whole point of the anti-correlated workload."""
        anti = anticorrelated(400, 2, seed=5)
        corr = correlated(400, 2, seed=5)
        assert pareto_front_mask(anti).sum() > pareto_front_mask(
            corr).sum()


class TestRealisticStandIns:
    def test_nba_shape_defaults(self):
        pts = nba_like(n=1000)
        assert pts.shape == (1000, 13)
        assert np.all(pts >= 0.0) and np.all(pts <= 1.0)

    def test_nba_positively_correlated(self):
        pts = nba_like(n=3000, d=5, seed=2)
        corr = np.corrcoef(pts.T)
        off_diag = corr[~np.eye(5, dtype=bool)]
        assert off_diag.mean() > 0.2

    def test_household_shape_defaults(self):
        pts = household_like(n=1000)
        assert pts.shape == (1000, 6)
        assert np.all(pts >= 0.0) and np.all(pts <= 1.0)

    def test_realistic_deterministic(self):
        assert np.array_equal(nba_like(n=50, seed=1),
                              nba_like(n=50, seed=1))
        assert np.array_equal(household_like(n=50, seed=1),
                              household_like(n=50, seed=1))


class TestMakeDataset:
    @pytest.mark.parametrize("kind", ["independent", "anticorrelated",
                                      "correlated", "nba", "household"])
    def test_dispatch(self, kind):
        pts = make_dataset(kind, 200, 3, seed=1)
        assert len(pts) == 200

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown dataset"):
            make_dataset("mystery", 10, 2)


class TestPreferenceSet:
    def test_valid_weights(self):
        wts = preference_set(50, 4, seed=1)
        assert wts.shape == (50, 4)
        for w in wts:
            assert is_valid_weight(w)

    def test_concentration_effect(self):
        spread_out = preference_set(2000, 3, seed=1, concentration=0.3)
        centred = preference_set(2000, 3, seed=1, concentration=30.0)
        assert centred.std() < spread_out.std()

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            preference_set(0, 3)


class TestQueryPointWithRank:
    @pytest.mark.parametrize("target", [1, 11, 101])
    def test_exact_rank_distinct_scores(self, target):
        pts = independent(1000, 3, seed=9)
        w = preference_set(1, 3, seed=10)[0]
        q = query_point_with_rank(pts, w, target)
        assert rank_of_scan(pts, w, q) == target

    def test_out_of_range(self):
        pts = independent(10, 2, seed=1)
        with pytest.raises(ValueError):
            query_point_with_rank(pts, [0.5, 0.5], 11)
        with pytest.raises(ValueError):
            query_point_with_rank(pts, [0.5, 0.5], 0)
