"""Unit tests for WhyNotQuery validation."""

import numpy as np
import pytest

from repro.core.types import WhyNotQuery
from repro.index import RTree


class TestWhyNotQueryValidation:
    def test_valid_paper_question(self, paper_points, paper_q,
                                  paper_missing):
        query = WhyNotQuery(points=paper_points, q=paper_q, k=3,
                            why_not=paper_missing)
        assert query.dim == 2
        assert query.n_why_not == 2
        assert query.ranks().tolist() == [4, 4]

    def test_rejects_vector_already_in_result(self, paper_points,
                                              paper_q):
        tony = np.array([[0.5, 0.5]])
        with pytest.raises(ValueError, match="already has q"):
            WhyNotQuery(points=paper_points, q=paper_q, k=3,
                        why_not=tony)

    def test_require_missing_can_be_disabled(self, paper_points,
                                             paper_q):
        tony = np.array([[0.5, 0.5]])
        query = WhyNotQuery(points=paper_points, q=paper_q, k=3,
                            why_not=tony, require_missing=False)
        assert query.ranks().tolist() == [2]

    def test_rejects_off_simplex_vector(self, paper_points, paper_q):
        with pytest.raises(ValueError, match="simplex"):
            WhyNotQuery(points=paper_points, q=paper_q, k=3,
                        why_not=[[0.9, 0.9]])

    def test_rejects_dim_mismatch_q(self, paper_points, paper_missing):
        with pytest.raises(ValueError, match="dimensionality"):
            WhyNotQuery(points=paper_points, q=[1.0, 2.0, 3.0], k=3,
                        why_not=paper_missing)

    def test_rejects_dim_mismatch_wm(self, paper_points, paper_q):
        with pytest.raises(ValueError, match="dimensionality"):
            WhyNotQuery(points=paper_points, q=paper_q, k=3,
                        why_not=[[0.5, 0.25, 0.25]])

    def test_rejects_bad_k(self, paper_points, paper_q, paper_missing):
        with pytest.raises(ValueError, match="out of range"):
            WhyNotQuery(points=paper_points, q=paper_q, k=0,
                        why_not=paper_missing)
        with pytest.raises(ValueError, match="out of range"):
            WhyNotQuery(points=paper_points, q=paper_q, k=100,
                        why_not=paper_missing)

    def test_rejects_negative_coordinates(self, paper_missing):
        pts = np.array([[1.0, -1.0], [2.0, 2.0]])
        with pytest.raises(ValueError, match="non-negative"):
            WhyNotQuery(points=pts, q=[5.0, 5.0], k=1,
                        why_not=paper_missing)

    def test_rtree_lazily_built_and_reused(self, paper_points, paper_q,
                                           paper_missing):
        query = WhyNotQuery(points=paper_points, q=paper_q, k=3,
                            why_not=paper_missing)
        tree = query.rtree
        assert tree is query.rtree   # cached

    def test_accepts_prebuilt_tree(self, paper_points, paper_q,
                                   paper_missing):
        tree = RTree(paper_points)
        query = WhyNotQuery(points=paper_points, q=paper_q, k=3,
                            why_not=paper_missing, tree=tree)
        assert query.rtree is tree
