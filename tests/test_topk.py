"""Unit tests for the top-k engines (scan, BRS, progressive)."""

import numpy as np
import pytest

from repro.data import independent, preference_set
from repro.index import RTree
from repro.topk import (
    BRSEngine,
    kth_point_scan,
    progressive_topk,
    rank_of_point,
    rank_of_scan,
    topk_scan,
)


class TestScan:
    def test_paper_top3_kevin(self, paper_points):
        # TOP3 under Kevin (0.1, 0.9) = {p1, p2, p4} per Section 3
        # (scores 1.1, 3.3, 3.6 in Figure 1(c)); ids 0, 1, 3.
        ids = topk_scan(paper_points, [0.1, 0.9], 3)
        assert ids.tolist() == [0, 1, 3]

    def test_ordering_is_by_score(self, paper_points):
        ids = topk_scan(paper_points, [0.5, 0.5], 7)
        scores = paper_points[ids] @ np.array([0.5, 0.5])
        assert np.all(np.diff(scores) >= 0)

    def test_k_clamped(self, paper_points):
        assert len(topk_scan(paper_points, [0.5, 0.5], 100)) == 7

    def test_k_zero_raises(self, paper_points):
        with pytest.raises(ValueError):
            topk_scan(paper_points, [0.5, 0.5], 0)

    def test_tie_break_by_id(self):
        pts = np.array([[1.0, 1.0], [1.0, 1.0], [0.0, 0.0]])
        ids = topk_scan(pts, [0.5, 0.5], 2)
        assert ids.tolist() == [2, 0]

    def test_kth_point_scan(self, paper_points):
        # Tony (0.5, 0.5): scores 1.5, 4.5, then a 5.0 tie between p3
        # and p7 broken by id -> the 3rd point is p3 (id 2).
        pid, sc = kth_point_scan(paper_points, [0.5, 0.5], 3)
        assert pid == 2
        assert sc == pytest.approx(5.0)
        # Kevin (0.1, 0.9): 3rd point is p4 at 3.6.
        pid, sc = kth_point_scan(paper_points, [0.1, 0.9], 3)
        assert pid == 3
        assert sc == pytest.approx(3.6)

    def test_kth_point_too_large(self, paper_points):
        with pytest.raises(ValueError):
            kth_point_scan(paper_points, [0.5, 0.5], 8)


class TestRank:
    def test_paper_ranks(self, paper_points, paper_q):
        # Figure 1(c): q ranks 4th for Kevin and Julia (hence they are
        # why-not vectors for k=3), 2nd for Tony and 3rd for Anna
        # (hence both belong to BRTOP3(q)).
        assert rank_of_scan(paper_points, [0.1, 0.9], paper_q) == 4
        assert rank_of_scan(paper_points, [0.9, 0.1], paper_q) == 4
        assert rank_of_scan(paper_points, [0.5, 0.5], paper_q) == 2
        assert rank_of_scan(paper_points, [0.3, 0.7], paper_q) == 3

    def test_tie_favours_q(self):
        pts = np.array([[2.0, 2.0]])
        assert rank_of_scan(pts, [0.5, 0.5], [2.0, 2.0]) == 1

    def test_best_rank_is_one(self, paper_points):
        assert rank_of_scan(paper_points, [0.5, 0.5], [0.0, 0.0]) == 1


class TestBRS:
    @pytest.mark.parametrize("capacity", [4, 16, 64])
    def test_matches_scan(self, capacity, rng):
        pts = rng.random((300, 3))
        tree = RTree(pts, capacity=capacity)
        engine = BRSEngine(tree)
        for _ in range(10):
            w = rng.dirichlet(np.ones(3))
            k = int(rng.integers(1, 50))
            assert engine.topk(w, k).tolist() == topk_scan(
                pts, w, k).tolist()

    def test_matches_scan_insert_tree(self, rng):
        pts = rng.random((200, 2))
        tree = RTree(pts, capacity=6, method="insert")
        engine = BRSEngine(tree)
        w = [0.3, 0.7]
        assert engine.topk(w, 15).tolist() == topk_scan(
            pts, w, 15).tolist()

    def test_kth_point_matches_scan(self, small_tree, small_dataset,
                                    small_weights):
        engine = BRSEngine(small_tree)
        for w in small_weights[:5]:
            assert engine.kth_point(w, 10) == pytest.approx(
                kth_point_scan(small_dataset, w, 10))

    def test_kth_point_too_large_raises(self, paper_points):
        engine = BRSEngine(RTree(paper_points))
        with pytest.raises(ValueError):
            engine.kth_point([0.5, 0.5], 8)

    def test_rank_of_matches_scan(self, small_tree, small_dataset,
                                  small_weights, rng):
        engine = BRSEngine(small_tree)
        for w in small_weights[:5]:
            q = rng.random(3)
            assert engine.rank_of(w, q) == rank_of_scan(
                small_dataset, w, q)

    def test_progressive_is_lazy(self, small_dataset):
        """Consuming k results must not touch the whole tree."""
        tree = RTree(small_dataset, capacity=8)
        tree.stats.reset()
        BRSEngine(tree).topk([0.4, 0.3, 0.3], 3)
        assert tree.stats.node_accesses < tree.node_count

    def test_iter_ranked_streams_in_order(self, small_tree):
        scores = [sc for _, sc in BRSEngine(small_tree).iter_ranked(
            [1 / 3] * 3)]
        assert scores == sorted(scores)
        assert len(scores) == 500

    def test_k_nonpositive_raises(self, small_tree):
        with pytest.raises(ValueError):
            BRSEngine(small_tree).topk([1 / 3] * 3, 0)


class TestProgressiveHelpers:
    def test_until_score_stops_before_q(self, paper_points, paper_q):
        got = list(progressive_topk(paper_points, [0.1, 0.9],
                                    until_score=4.0))
        # Kevin: p1 (1.1), p2 (3.3), p4 (3.6) score below q's 4.0.
        assert [pid for pid, _ in got] == [0, 1, 3]

    def test_limit(self, paper_points):
        got = list(progressive_topk(paper_points, [0.5, 0.5], limit=2))
        assert len(got) == 2

    def test_rtree_and_array_agree(self, small_dataset, small_tree):
        w = [0.2, 0.4, 0.4]
        a = list(progressive_topk(small_dataset, w, limit=20))
        b = list(progressive_topk(small_tree, w, limit=20))
        assert [p for p, _ in a] == [p for p, _ in b]

    def test_rank_of_point_dispatch(self, small_dataset, small_tree):
        w = [0.5, 0.25, 0.25]
        q = np.array([0.4, 0.4, 0.4])
        assert rank_of_point(small_dataset, w, q) == rank_of_point(
            small_tree, w, q)


class TestScale:
    def test_brs_consistency_large(self):
        pts = independent(5000, 4, seed=11)
        tree = RTree(pts)
        wts = preference_set(3, 4, seed=12)
        engine = BRSEngine(tree)
        for w in wts:
            assert engine.topk(w, 25).tolist() == topk_scan(
                pts, w, 25).tolist()
