"""Unit tests for the benchmark harness and figure drivers."""

import numpy as np
import pytest

from repro.bench.config import PAPER_PARAMS, SCALED_PARAMS, ParameterGrid
from repro.bench.figures import _default_cell, ablation_topk
from repro.bench.harness import (
    ALGORITHMS,
    ExperimentCell,
    build_workload,
    run_cell,
)
from repro.topk.scan import rank_of_scan

TINY = ParameterGrid(
    dims=(2, 3), default_dim=3,
    cardinalities=(500,), default_cardinality=500,
    ks=(5,), default_k=5,
    ranks=(21,), default_rank=21,
    wm_sizes=(1, 2), default_wm_size=1,
    sample_sizes=(30,), default_sample_size=30,
    real_sizes={"nba": 500, "household": 500},
)


class TestTable1:
    def test_paper_grid_matches_table1(self):
        """Table 1 of the paper, verbatim."""
        assert PAPER_PARAMS.dims == (2, 3, 4, 5)
        assert PAPER_PARAMS.default_dim == 3
        assert PAPER_PARAMS.cardinalities == (
            10_000, 50_000, 100_000, 500_000, 1_000_000)
        assert PAPER_PARAMS.default_cardinality == 100_000
        assert PAPER_PARAMS.ks == (10, 20, 30, 40, 50)
        assert PAPER_PARAMS.default_k == 10
        assert PAPER_PARAMS.ranks == (11, 101, 501, 1001)
        assert PAPER_PARAMS.default_rank == 101
        assert PAPER_PARAMS.wm_sizes == (1, 2, 3, 4, 5)
        assert PAPER_PARAMS.default_wm_size == 1
        assert PAPER_PARAMS.sample_sizes == (100, 200, 400, 800, 1600)
        assert PAPER_PARAMS.default_sample_size == 800
        assert PAPER_PARAMS.real_sizes == {"nba": 17_000,
                                           "household": 127_000}

    def test_scaled_grid_same_shape(self):
        assert len(SCALED_PARAMS.cardinalities) == \
            len(PAPER_PARAMS.cardinalities)
        assert SCALED_PARAMS.ks == PAPER_PARAMS.ks
        assert SCALED_PARAMS.wm_sizes == PAPER_PARAMS.wm_sizes


class TestWorkloadBuilder:
    def test_rank_is_exact(self):
        cell = ExperimentCell(dataset="independent", n=500, d=3, k=5,
                              rank=21, wm_size=1, sample_size=30)
        query = build_workload(cell)
        assert rank_of_scan(query.points, query.why_not[0],
                            query.q) == 21

    def test_all_vectors_are_why_not(self):
        cell = ExperimentCell(dataset="independent", n=500, d=3, k=5,
                              rank=21, wm_size=3, sample_size=30)
        query = build_workload(cell)
        assert query.n_why_not == 3
        for w in query.why_not:
            assert rank_of_scan(query.points, w, query.q) > 5

    def test_rejects_rank_below_k(self):
        cell = ExperimentCell(dataset="independent", n=500, d=3, k=10,
                              rank=5, wm_size=1, sample_size=30)
        with pytest.raises(ValueError, match="must exceed"):
            build_workload(cell)

    def test_deterministic(self):
        cell = ExperimentCell(dataset="anticorrelated", n=300, d=2,
                              k=3, rank=15, wm_size=2, sample_size=30,
                              seed=5)
        a = build_workload(cell)
        b = build_workload(cell)
        assert np.array_equal(a.q, b.q)
        assert np.array_equal(a.why_not, b.why_not)


class TestRunCell:
    def test_all_algorithms_reported(self):
        cell = ExperimentCell(dataset="independent", n=500, d=3, k=5,
                              rank=21, wm_size=1, sample_size=30)
        result = run_cell(cell)
        for alg in ALGORITHMS:
            assert alg in result.times
            assert result.times[alg] > 0
            assert 0.0 <= result.penalties[alg] <= 1.0

    def test_subset_of_algorithms(self):
        cell = ExperimentCell(dataset="independent", n=500, d=3, k=5,
                              rank=21, wm_size=1, sample_size=30)
        result = run_cell(cell, algorithms=("MQP",))
        assert set(result.times) == {"MQP"}

    def test_row_is_flat(self):
        cell = ExperimentCell(dataset="independent", n=500, d=3, k=5,
                              rank=21, wm_size=1, sample_size=30)
        row = run_cell(cell, algorithms=("MQP",)).row()
        assert row["dataset"] == "independent"
        assert "MQP_time" in row and "MQP_penalty" in row

    def test_mqwk_never_worse_than_parts(self):
        """The headline cross-algorithm shape of every figure."""
        cell = ExperimentCell(dataset="independent", n=800, d=3, k=5,
                              rank=31, wm_size=1, sample_size=60)
        result = run_cell(cell)
        assert result.penalties["MQWK"] <= \
            0.5 * result.penalties["MQP"] + 1e-9
        assert result.penalties["MQWK"] <= \
            0.5 * result.penalties["MWK"] + 1e-9


class TestFigureDrivers:
    def test_default_cell_real_dataset_dims(self):
        nba = _default_cell(TINY, "nba")
        household = _default_cell(TINY, "household")
        assert nba.d == 13
        assert household.d == 6
        assert nba.n == 500

    def test_ablation_topk_runs(self):
        rows = ablation_topk(TINY, quiet=True)
        engines = {r["engine"] for r in rows}
        assert engines == {"BRS", "scan"}
        # Both engines find the same-quality answer.
        by_ds = {}
        for r in rows:
            by_ds.setdefault(r["dataset"], []).append(r["penalty"])
        for penalties in by_ds.values():
            assert penalties[0] == pytest.approx(penalties[1],
                                                 abs=1e-9)


class TestFigureShapes:
    """Run one figure driver on the tiny grid and assert the
    cross-algorithm shapes the paper reports (EXPERIMENTS.md)."""

    @pytest.fixture(scope="class")
    def fig7_rows(self):
        from repro.bench.figures import fig7
        return fig7(TINY, quiet=True)

    def test_all_cells_have_all_algorithms(self, fig7_rows):
        for row in fig7_rows:
            for alg in ALGORITHMS:
                assert f"{alg}_time" in row
                assert 0.0 <= row[f"{alg}_penalty"] <= 1.0

    def test_mqwk_is_slowest(self, fig7_rows):
        """MQWK = |Q| x MWK must dominate the other two in time."""
        for row in fig7_rows:
            assert row["MQWK_time"] >= row["MWK_time"]
            assert row["MQWK_time"] >= row["MQP_time"]

    def test_mqwk_penalty_dominates(self, fig7_rows):
        """MQP is deterministic, so the MQP bound is exact; the MWK
        bound gets slack because run_cell gives MWK and MQWK
        independent random streams (the endpoint-dominance invariant
        is exact only under matched streams, cf. test_mqwk.py)."""
        for row in fig7_rows:
            assert row["MQWK_penalty"] <= \
                0.5 * row["MQP_penalty"] + 1e-9
            assert row["MQWK_penalty"] <= \
                0.5 * row["MWK_penalty"] + 0.1

    def test_datasets_covered(self, fig7_rows):
        assert {r["dataset"] for r in fig7_rows} == \
            set(TINY.synthetic_datasets)
        assert {r["d"] for r in fig7_rows} == set(TINY.dims)
