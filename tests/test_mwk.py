"""Unit tests for Algorithm 2 (MWK)."""

import numpy as np
import pytest

from repro.core.mwk import modify_weights_and_k
from repro.core.penalty import PenaltyConfig
from repro.core.types import WhyNotQuery
from repro.data import independent, preference_set, query_point_with_rank
from repro.topk.scan import rank_of_scan


def _paper_query(paper_points, paper_q, paper_missing):
    return WhyNotQuery(points=paper_points, q=paper_q, k=3,
                       why_not=paper_missing)


class TestMWKPaperExample:
    def test_result_is_valid(self, paper_points, paper_q, paper_missing,
                             rng):
        query = _paper_query(paper_points, paper_q, paper_missing)
        res = modify_weights_and_k(query, sample_size=400, rng=rng)
        for w in res.weights_refined:
            assert rank_of_scan(paper_points, w, paper_q) <= \
                res.k_refined

    def test_kmax_is_lemma4(self, paper_points, paper_q, paper_missing,
                            rng):
        """k'_max = max rank of q under Wm = 4 (Figure 1)."""
        query = _paper_query(paper_points, paper_q, paper_missing)
        res = modify_weights_and_k(query, sample_size=100, rng=rng)
        assert res.k_max == 4

    def test_never_worse_than_pure_k(self, paper_points, paper_q,
                                     paper_missing, rng):
        """Penalty is bounded by the (Wm, k'_max) fallback = alpha."""
        query = _paper_query(paper_points, paper_q, paper_missing)
        res = modify_weights_and_k(query, sample_size=200, rng=rng)
        assert res.penalty <= 0.5 + 1e-12

    def test_beats_paper_k_only_alternative(self, paper_points, paper_q,
                                            paper_missing, rng):
        """The paper argues weight modification (penalty ~0.12 in its
        normalization) beats raising k (penalty 0.5)."""
        query = _paper_query(paper_points, paper_q, paper_missing)
        res = modify_weights_and_k(query, sample_size=800, rng=rng)
        assert res.penalty < 0.5
        assert res.delta_k == 0    # best answer keeps k = 3

    def test_refined_vectors_on_simplex(self, paper_points, paper_q,
                                        paper_missing, rng):
        query = _paper_query(paper_points, paper_q, paper_missing)
        res = modify_weights_and_k(query, sample_size=200, rng=rng)
        sums = res.weights_refined.sum(axis=1)
        assert sums == pytest.approx(np.ones(len(sums)), abs=1e-9)
        assert np.all(res.weights_refined >= -1e-12)

    def test_deterministic_given_seed(self, paper_points, paper_q,
                                      paper_missing):
        query = _paper_query(paper_points, paper_q, paper_missing)
        a = modify_weights_and_k(query, sample_size=100,
                                 rng=np.random.default_rng(5))
        b = modify_weights_and_k(query, sample_size=100,
                                 rng=np.random.default_rng(5))
        assert np.array_equal(a.weights_refined, b.weights_refined)
        assert a.k_refined == b.k_refined
        assert a.penalty == b.penalty


class TestMWKBehaviour:
    def test_larger_sample_not_worse_on_average(self, paper_points,
                                                paper_q, paper_missing):
        """Penalty trends down as |S| grows (Figure 12's shape).

        Compared under a common random stream so the small sample is a
        prefix-style subset in distribution; we only require the big
        sample to win on average across seeds.
        """
        query = _paper_query(paper_points, paper_q, paper_missing)
        small, big = [], []
        for seed in range(5):
            small.append(modify_weights_and_k(
                query, sample_size=20,
                rng=np.random.default_rng(seed)).penalty)
            big.append(modify_weights_and_k(
                query, sample_size=500,
                rng=np.random.default_rng(seed)).penalty)
        assert np.mean(big) <= np.mean(small) + 1e-9

    def test_alpha_zero_prefers_k_change(self, paper_points, paper_q,
                                         paper_missing, rng):
        """With alpha = 0 raising k is free, so the optimum is the
        pure-k fallback with zero weight change."""
        query = _paper_query(paper_points, paper_q, paper_missing)
        cfg = PenaltyConfig(alpha=0.0, beta=1.0)
        res = modify_weights_and_k(query, sample_size=100, rng=rng,
                                   config=cfg)
        assert res.penalty == pytest.approx(0.0, abs=1e-12)
        assert res.delta_w == pytest.approx(0.0)
        assert res.k_refined == res.k_max

    def test_beta_zero_prefers_weight_change(self, paper_points,
                                             paper_q, paper_missing,
                                             rng):
        """With beta = 0 weight changes are free: expect delta_k = 0."""
        query = _paper_query(paper_points, paper_q, paper_missing)
        cfg = PenaltyConfig(alpha=1.0, beta=0.0)
        res = modify_weights_and_k(query, sample_size=400, rng=rng,
                                   config=cfg)
        assert res.delta_k == 0
        assert res.penalty == pytest.approx(0.0, abs=1e-12)

    def test_include_originals_never_hurts(self, paper_points, paper_q,
                                           paper_missing):
        query = _paper_query(paper_points, paper_q, paper_missing)
        with_orig = modify_weights_and_k(
            query, sample_size=150, rng=np.random.default_rng(3),
            include_originals=True)
        without = modify_weights_and_k(
            query, sample_size=150, rng=np.random.default_rng(3),
            include_originals=False)
        assert with_orig.penalty <= without.penalty + 1e-12

    def test_random_dataset_validity(self, rng):
        pts = independent(600, 3, seed=21)
        wm = preference_set(3, 3, seed=22)
        q = query_point_with_rank(pts, wm[0], 60)
        try:
            query = WhyNotQuery(points=pts, q=q, k=10, why_not=wm)
        except ValueError:
            pytest.skip("generated q not missing for all vectors")
        res = modify_weights_and_k(query, sample_size=300, rng=rng)
        assert res.k_refined >= 10
        assert res.k_refined <= res.k_max
        for w in res.weights_refined:
            assert rank_of_scan(pts, w, q) <= res.k_refined
        assert 0.0 <= res.penalty <= 1.0
