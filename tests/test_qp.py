"""Unit tests for the interior-point QP solver and problem builders."""

import numpy as np
import pytest

from repro.qp import (
    QPStatus,
    closest_point_in_halfspaces,
    closest_weight_with_rank_plane,
    solve_qp,
)

scipy_opt = pytest.importorskip("scipy.optimize")


def _scipy_reference(h_mat, c_vec, g_mat=None, h_vec=None, a_mat=None,
                     b_vec=None, lb=None, ub=None):
    """SLSQP reference solution for cross-checking."""
    n = len(c_vec)

    def objective(x):
        return 0.5 * x @ h_mat @ x + c_vec @ x

    constraints = []
    if g_mat is not None:
        g_arr, h_arr = np.atleast_2d(g_mat), np.asarray(h_vec, float)
        constraints.append({
            "type": "ineq",
            "fun": lambda x: h_arr - g_arr @ x,
        })
    if a_mat is not None:
        a_arr, b_arr = np.atleast_2d(a_mat), np.asarray(b_vec, float)
        constraints.append({
            "type": "eq",
            "fun": lambda x: a_arr @ x - b_arr,
        })
    bounds = None
    if lb is not None or ub is not None:
        lo = np.full(n, -np.inf) if lb is None else np.broadcast_to(
            np.asarray(lb, float), (n,))
        hi = np.full(n, np.inf) if ub is None else np.broadcast_to(
            np.asarray(ub, float), (n,))
        bounds = list(zip(lo, hi))
    x0 = np.zeros(n) if bounds is None else np.array(
        [np.clip(0.0, b[0], b[1]) for b in bounds])
    res = scipy_opt.minimize(objective, x0, method="SLSQP",
                             bounds=bounds, constraints=constraints)
    assert res.success, res.message
    return res.x, res.fun


class TestUnconstrained:
    def test_quadratic_minimum(self):
        # min (x-3)^2 + (y+1)^2  ->  H=2I, c=(-6, 2).
        res = solve_qp(2 * np.eye(2), [-6.0, 2.0])
        assert res.ok
        assert res.x == pytest.approx([3.0, -1.0])


class TestBoxOnly:
    def test_projection_onto_box(self):
        res = solve_qp(2 * np.eye(2), [-6.0, 2.0], lb=[0, 0], ub=[1, 1])
        assert res.ok
        assert res.x == pytest.approx([1.0, 0.0], abs=1e-6)

    def test_partial_bounds_with_inf(self):
        res = solve_qp(2 * np.eye(2), [-6.0, 2.0],
                       lb=[0.0, -np.inf], ub=[np.inf, 0.5])
        assert res.ok
        assert res.x == pytest.approx([3.0, -1.0], abs=1e-6)


class TestInequalities:
    def test_single_halfspace(self):
        # Project (3, 3) onto x + y <= 2: optimum (1, 1).
        res = solve_qp(2 * np.eye(2), [-6.0, -6.0],
                       [[1.0, 1.0]], [2.0])
        assert res.ok
        assert res.x == pytest.approx([1.0, 1.0], abs=1e-6)

    def test_inactive_constraint(self):
        res = solve_qp(2 * np.eye(2), [-2.0, -2.0],
                       [[1.0, 1.0]], [100.0])
        assert res.x == pytest.approx([1.0, 1.0], abs=1e-6)

    def test_against_scipy_random(self, rng):
        for trial in range(8):
            n, m = 4, 6
            h_mat = 2 * np.eye(n)
            c_vec = rng.normal(size=n)
            g_mat = rng.normal(size=(m, n))
            # Keep origin strictly feasible: b > 0.
            h_vec = rng.random(m) + 0.5
            res = solve_qp(h_mat, c_vec, g_mat, h_vec)
            assert res.ok, trial
            ref_x, ref_f = _scipy_reference(h_mat, c_vec, g_mat, h_vec)
            got_f = 0.5 * res.x @ h_mat @ res.x + c_vec @ res.x
            assert got_f == pytest.approx(ref_f, abs=1e-5)

    def test_kkt_residual_small(self, rng):
        h_mat = 2 * np.eye(3)
        c_vec = [-2.0, -4.0, -1.0]
        g_mat = rng.normal(size=(4, 3))
        h_vec = rng.random(4) + 1.0
        res = solve_qp(h_mat, c_vec, g_mat, h_vec)
        assert res.kkt_residual < 1e-6

    def test_infeasible_detected(self):
        # x <= -1 and -x <= -2 (x >= 2): empty.
        res = solve_qp(2 * np.eye(1), [0.0],
                       [[1.0], [-1.0]], [-1.0, -2.0], max_iter=60)
        assert res.status in (QPStatus.INFEASIBLE, QPStatus.MAX_ITER)
        assert not res.ok


class TestEqualities:
    def test_projection_onto_plane(self):
        # Project (1, 1) onto x + y = 1 -> (0.5, 0.5).
        res = solve_qp(2 * np.eye(2), [-2.0, -2.0],
                       a_mat=[[1.0, 1.0]], b_vec=[1.0])
        assert res.ok
        assert res.x == pytest.approx([0.5, 0.5], abs=1e-6)

    def test_mixed_constraints_vs_scipy(self, rng):
        n = 3
        h_mat = 2 * np.eye(n)
        c_vec = rng.normal(size=n)
        a_mat = np.ones((1, n))
        b_vec = [1.0]
        res = solve_qp(h_mat, c_vec, a_mat=a_mat, b_vec=b_vec,
                       lb=np.zeros(n))
        assert res.ok
        ref_x, ref_f = _scipy_reference(h_mat, c_vec, a_mat=a_mat,
                                        b_vec=b_vec, lb=np.zeros(n))
        got_f = 0.5 * res.x @ h_mat @ res.x + c_vec @ res.x
        assert got_f == pytest.approx(ref_f, abs=1e-5)


class TestShapes:
    def test_h_shape_mismatch(self):
        with pytest.raises(ValueError):
            solve_qp(np.eye(3), [1.0, 2.0])

    def test_inequality_shape_mismatch(self):
        with pytest.raises(ValueError):
            solve_qp(np.eye(2), [0.0, 0.0], [[1.0, 0.0]], [1.0, 2.0])

    def test_equality_shape_mismatch(self):
        with pytest.raises(ValueError):
            solve_qp(np.eye(2), [0.0, 0.0],
                     a_mat=[[1.0, 0.0, 0.0]], b_vec=[1.0])


class TestProblemBuilders:
    def test_closest_point_matches_polygon_oracle(self, paper_points,
                                                  paper_q):
        """QP answer equals the exact 2-D polygon projection."""
        from repro.geometry.convex2d import halfplane_intersection

        kevin, julia = [0.1, 0.9], [0.9, 0.1]
        p4, p7 = paper_points[3], paper_points[6]
        a = np.array([kevin, julia])
        b = np.array([np.dot(kevin, p4), np.dot(julia, p7)])
        res = closest_point_in_halfspaces(paper_q, a, b,
                                          lower=[0, 0], upper=paper_q)
        assert res.ok
        poly = halfplane_intersection(a, b, lower=(0, 0),
                                      upper=tuple(paper_q))
        oracle = np.asarray(poly.closest_point_to(tuple(paper_q)))
        assert res.x == pytest.approx(oracle, abs=1e-5)

    def test_closest_point_objective_is_distance(self, paper_q):
        res = closest_point_in_halfspaces(
            paper_q, [[0.5, 0.5]], [2.0], lower=[0, 0], upper=paper_q)
        assert res.objective == pytest.approx(
            float(np.sum((res.x - paper_q) ** 2)), abs=1e-9)

    def test_weight_rank_plane_projection(self):
        w = np.array([0.1, 0.9])
        p = np.array([9.0, 3.0])
        q = np.array([4.0, 4.0])
        res = closest_weight_with_rank_plane(w, p, q)
        assert res.ok
        w_new = res.x
        assert w_new.sum() == pytest.approx(1.0, abs=1e-6)
        assert np.all(w_new >= -1e-8)
        assert w_new @ (p - q) == pytest.approx(0.0, abs=1e-6)

    def test_weight_rank_plane_is_minimal(self, rng):
        """No random feasible point beats the QP projection."""
        w = rng.dirichlet(np.ones(3))
        p = np.array([0.9, 0.1, 0.5])
        q = np.array([0.4, 0.5, 0.45])
        res = closest_weight_with_rank_plane(w, p, q)
        diff = p - q
        for _ in range(200):
            u, v = rng.dirichlet(np.ones(3)), rng.dirichlet(np.ones(3))
            gu, gv = u @ diff, v @ diff
            if gu * gv >= 0:
                continue
            t = gu / (gu - gv)
            cand = (1 - t) * u + t * v
            assert np.sum((cand - w) ** 2) >= res.objective - 1e-6
