"""Unit tests for the 2-D convex polygon engine."""

import numpy as np
import pytest

from repro.geometry.convex2d import (
    Polygon2D,
    clip_polygon_halfplane,
    halfplane_intersection,
)


class TestPolygonBasics:
    def test_box_area(self):
        poly = Polygon2D.box((0, 0), (2, 3))
        assert poly.area() == pytest.approx(6.0)

    def test_degenerate_box(self):
        poly = Polygon2D.box((1, 1), (0, 0))
        assert poly.is_empty

    def test_contains_inside_and_boundary(self):
        poly = Polygon2D.box((0, 0), (1, 1))
        assert poly.contains((0.5, 0.5))
        assert poly.contains((0.0, 0.5))     # boundary
        assert poly.contains((1.0, 1.0))     # corner
        assert not poly.contains((1.5, 0.5))

    def test_empty_polygon_contains_nothing(self):
        assert not Polygon2D(()).contains((0, 0))


class TestClipping:
    def test_clip_keeps_half(self):
        poly = Polygon2D.box((0, 0), (2, 2))
        clipped = clip_polygon_halfplane(poly, (1.0, 0.0), 1.0)  # x <= 1
        assert clipped.area() == pytest.approx(2.0)

    def test_clip_to_empty(self):
        poly = Polygon2D.box((0, 0), (1, 1))
        clipped = clip_polygon_halfplane(poly, (1.0, 0.0), -1.0)  # x <= -1
        assert clipped.is_empty

    def test_clip_no_op(self):
        poly = Polygon2D.box((0, 0), (1, 1))
        clipped = clip_polygon_halfplane(poly, (1.0, 0.0), 5.0)
        assert clipped.area() == pytest.approx(1.0)

    def test_diagonal_clip(self):
        poly = Polygon2D.box((0, 0), (1, 1))
        clipped = clip_polygon_halfplane(poly, (1.0, 1.0), 1.0)  # x+y<=1
        assert clipped.area() == pytest.approx(0.5)

    def test_repeated_clip_idempotent(self):
        poly = Polygon2D.box((0, 0), (1, 1))
        once = clip_polygon_halfplane(poly, (1.0, 2.0), 1.5)
        twice = clip_polygon_halfplane(once, (1.0, 2.0), 1.5)
        assert once.area() == pytest.approx(twice.area())


class TestHalfplaneIntersection:
    def test_matches_montecarlo(self, rng):
        """Clipped area agrees with rejection sampling."""
        normals = rng.random((4, 2))
        offsets = normals @ np.array([0.5, 0.5])  # all pass the centre
        poly = halfplane_intersection(normals, offsets,
                                      lower=(0, 0), upper=(1, 1))
        samples = rng.random((20000, 2))
        inside = np.all(samples @ normals.T <= offsets + 1e-12, axis=1)
        mc_area = inside.mean()
        assert poly.area() == pytest.approx(mc_area, abs=0.02)

    def test_infeasible_system_empty(self):
        poly = halfplane_intersection(
            [[1.0, 0.0], [-1.0, 0.0]], [0.2, -0.8],
            lower=(0, 0), upper=(1, 1))  # x <= .2 and x >= .8
        assert poly.is_empty

    def test_closest_point_interior(self):
        poly = Polygon2D.box((0, 0), (1, 1))
        assert poly.closest_point_to((0.3, 0.6)) == (0.3, 0.6)

    def test_closest_point_projection(self):
        poly = Polygon2D.box((0, 0), (1, 1))
        cx, cy = poly.closest_point_to((2.0, 0.5))
        assert (cx, cy) == pytest.approx((1.0, 0.5))

    def test_closest_point_corner(self):
        poly = Polygon2D.box((0, 0), (1, 1))
        assert poly.closest_point_to((2.0, 2.0)) == pytest.approx(
            (1.0, 1.0))

    def test_closest_point_empty_raises(self):
        with pytest.raises(ValueError):
            Polygon2D(()).closest_point_to((0, 0))

    def test_paper_safe_region_figure5b(self, paper_points, paper_q):
        """Figure 5(b): SR(q) clipped by HS(w1, p4) and HS(w4, p7).

        Kevin (0.1, 0.9) has top-3rd point p4(9,3) (score 3.6);
        Julia (0.9, 0.1) has top-3rd point p7(3,7) (score 3.4).
        The region must contain the origin, exclude q (whose scores
        4.0 exceed both thresholds), and its closest point to q must
        beat staying at q.
        """
        kevin, julia = [0.1, 0.9], [0.9, 0.1]
        p4, p7 = paper_points[3], paper_points[6]
        offsets = [np.dot(kevin, p4), np.dot(julia, p7)]
        poly = halfplane_intersection(
            [kevin, julia], offsets, lower=(0, 0), upper=tuple(paper_q))
        assert poly.contains((0.0, 0.0))
        assert not poly.contains(tuple(paper_q))
        qx, qy = poly.closest_point_to(tuple(paper_q))
        assert np.hypot(qx - 4, qy - 4) < np.hypot(4, 4)
