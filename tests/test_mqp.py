"""Unit tests for Algorithm 1 (MQP)."""

import numpy as np
import pytest

from repro.core.mqp import modify_query_point
from repro.core.safe_region import safe_region_polygon
from repro.core.types import WhyNotQuery
from repro.data import independent, preference_set, query_point_with_rank
from repro.topk.scan import rank_of_scan


def _paper_query(paper_points, paper_q, paper_missing):
    return WhyNotQuery(points=paper_points, q=paper_q, k=3,
                       why_not=paper_missing)


class TestMQPPaperExample:
    def test_refined_point_is_valid(self, paper_points, paper_q,
                                    paper_missing):
        res = modify_query_point(_paper_query(paper_points, paper_q,
                                              paper_missing))
        for w in paper_missing:
            assert rank_of_scan(paper_points, w, res.q_refined) <= 3

    def test_beats_paper_illustrations(self, paper_points, paper_q,
                                       paper_missing):
        """The optimum must be at least as cheap as the paper's two
        hand-picked refinements q'(3, 2.5) = 0.318 and
        q''(2.5, 3.5) = 0.279."""
        res = modify_query_point(_paper_query(paper_points, paper_q,
                                              paper_missing))
        assert res.penalty <= 0.279 + 1e-9

    def test_matches_2d_polygon_oracle(self, paper_points, paper_q,
                                       paper_missing):
        res = modify_query_point(_paper_query(paper_points, paper_q,
                                              paper_missing))
        poly = safe_region_polygon(paper_points, paper_q,
                                   paper_missing, 3)
        oracle = np.asarray(poly.closest_point_to(tuple(paper_q)))
        assert res.q_refined == pytest.approx(oracle, abs=1e-5)

    def test_kth_points_reported(self, paper_points, paper_q,
                                 paper_missing):
        res = modify_query_point(_paper_query(paper_points, paper_q,
                                              paper_missing))
        assert res.kth_points.tolist() == [6, 3]   # p7 and p4
        assert res.kth_scores == pytest.approx([3.4, 3.6])

    def test_only_shrinks(self, paper_points, paper_q, paper_missing):
        res = modify_query_point(_paper_query(paper_points, paper_q,
                                              paper_missing))
        assert np.all(res.q_refined <= paper_q + 1e-9)
        assert np.all(res.q_refined >= -1e-9)

    def test_scan_and_rtree_agree(self, paper_points, paper_q,
                                  paper_missing):
        query = _paper_query(paper_points, paper_q, paper_missing)
        a = modify_query_point(query, use_rtree=True)
        b = modify_query_point(query, use_rtree=False)
        assert a.q_refined == pytest.approx(b.q_refined, abs=1e-9)


class TestMQPRandom:
    @pytest.mark.parametrize("d", [2, 3, 4])
    def test_validity_many_dims(self, d):
        pts = independent(400, d, seed=d)
        wm = preference_set(2, d, seed=d + 10)
        q = query_point_with_rank(pts, wm[0], 40)
        try:
            query = WhyNotQuery(points=pts, q=q, k=5, why_not=wm)
        except ValueError:
            pytest.skip("random q not missing for both vectors")
        res = modify_query_point(query)
        for w in wm:
            assert rank_of_scan(pts, w, res.q_refined) <= 5
        assert 0.0 <= res.penalty <= 1.0
        assert res.kkt_residual < 1e-5

    def test_single_why_not_vector(self):
        pts = independent(300, 3, seed=2)
        wm = preference_set(1, 3, seed=3)
        q = query_point_with_rank(pts, wm[0], 30)
        query = WhyNotQuery(points=pts, q=q, k=5, why_not=wm)
        res = modify_query_point(query)
        assert rank_of_scan(pts, wm[0], res.q_refined) <= 5

    def test_penalty_grows_with_rank(self):
        """Deeper original ranks need bigger moves (same data/vector)."""
        pts = independent(500, 2, seed=8)
        wm = preference_set(1, 2, seed=9)
        penalties = []
        for rank in (20, 80, 300):
            q = query_point_with_rank(pts, wm[0], rank)
            try:
                query = WhyNotQuery(points=pts, q=q, k=5, why_not=wm)
            except ValueError:
                pytest.skip("generated q not a valid why-not case")
            penalties.append(modify_query_point(query).penalty)
        assert penalties[0] <= penalties[-1] + 1e-9
