"""Unit tests for repro.geometry.dominance."""

import numpy as np
import pytest

from repro.geometry.dominance import (
    dominance_partition,
    dominated_by_mask,
    dominates,
    dominates_mask,
    incomparable,
    pareto_front_mask,
)


class TestDominates:
    def test_strict_dominance(self):
        assert dominates([1, 2], [2, 3])

    def test_equal_not_strict(self):
        assert not dominates([1, 2], [1, 2])

    def test_equal_weak(self):
        assert dominates([1, 2], [1, 2], strict=False)

    def test_partial_improvement_counts(self):
        assert dominates([1, 3], [1, 4])

    def test_not_dominating(self):
        assert not dominates([1, 9], [4, 4])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            dominates([1, 2], [1, 2, 3])

    def test_antisymmetric(self):
        a, b = [1.0, 2.0], [2.0, 3.0]
        assert dominates(a, b) and not dominates(b, a)


class TestIncomparable:
    def test_paper_example(self):
        # Figure 2(a): q(4,4) dominated by p1(2,1), incomparable with
        # p3(1,9).
        q = [4.0, 4.0]
        assert dominates([2.0, 1.0], q)
        assert incomparable([1.0, 9.0], q)

    def test_symmetric(self):
        assert incomparable([1, 9], [9, 1])
        assert incomparable([9, 1], [1, 9])

    def test_self_incomparable(self):
        # A point neither strictly dominates itself nor is dominated.
        assert incomparable([3, 3], [3, 3])


class TestMasks:
    def test_masks_agree_with_scalar(self, rng):
        pts = rng.random((100, 3))
        q = np.array([0.5, 0.5, 0.5])
        dm = dominates_mask(pts, q)
        sm = dominated_by_mask(pts, q)
        for i, p in enumerate(pts):
            assert dm[i] == dominates(p, q)
            assert sm[i] == dominates(q, p)

    def test_disjoint(self, rng):
        pts = rng.random((200, 4))
        q = rng.random(4)
        dm = dominates_mask(pts, q)
        sm = dominated_by_mask(pts, q)
        assert not np.any(dm & sm)


class TestDominancePartition:
    def test_partition_covers_everything(self, rng):
        pts = rng.random((300, 3))
        q = np.array([0.4, 0.6, 0.5])
        d, i, s = dominance_partition(pts, q)
        combined = np.sort(np.concatenate([d, i, s]))
        assert combined.tolist() == list(range(300))

    def test_paper_figure2(self, paper_points, paper_q):
        d, i, s = dominance_partition(paper_points, paper_q)
        # Only p1(2,1) dominates q(4,4).
        assert d.tolist() == [0]
        # p7(3,7), p3(1,9) etc. are incomparable.
        assert 2 in i.tolist() and 6 in i.tolist()

    def test_equal_point_goes_to_dominated_bucket(self):
        pts = np.array([[1.0, 1.0], [2.0, 2.0]])
        d, i, s = dominance_partition(pts, [1.0, 1.0])
        assert 0 in s.tolist()
        assert 1 in s.tolist()

    def test_rank_semantics(self, rng):
        """|D| lower-bounds and |D|+|I| upper-bounds q's beat count."""
        pts = rng.random((200, 2))
        q = np.array([0.5, 0.5])
        d, i, _ = dominance_partition(pts, q)
        for w1 in (0.1, 0.5, 0.9):
            w = np.array([w1, 1 - w1])
            beats = int(np.count_nonzero(pts @ w < q @ w))
            assert len(d) <= beats <= len(d) + len(i)


class TestParetoFront:
    def test_single_point(self):
        assert pareto_front_mask([[1.0, 2.0]]).tolist() == [True]

    def test_dominated_point_excluded(self):
        mask = pareto_front_mask([[1, 1], [2, 2]])
        assert mask.tolist() == [True, False]

    def test_antichain_all_kept(self):
        pts = [[1, 4], [2, 3], [3, 2], [4, 1]]
        assert pareto_front_mask(pts).all()

    def test_front_members_mutually_incomparable(self, rng):
        pts = rng.random((80, 3))
        mask = pareto_front_mask(pts)
        front = pts[mask]
        for a in range(len(front)):
            for b in range(a + 1, len(front)):
                assert incomparable(front[a], front[b])

    def test_every_excluded_point_is_dominated(self, rng):
        pts = rng.random((60, 2))
        mask = pareto_front_mask(pts)
        front = pts[mask]
        for p in pts[~mask]:
            assert any(dominates(f, p) for f in front)
