"""Unit tests for the exact 2-D MWK oracle and MWK quality."""

import numpy as np
import pytest

from repro.core.exact import exact_mwk_2d
from repro.core.mwk import modify_weights_and_k
from repro.core.penalty import PenaltyConfig, penalty_weights_k
from repro.core.types import WhyNotQuery
from repro.data import anticorrelated, independent, query_point_with_rank
from repro.topk.scan import rank_of_scan


class TestExactOracle:
    def test_paper_example_kevin(self, paper_points, paper_q):
        """Exact optimum for Kevin's vector alone."""
        res = exact_mwk_2d(paper_points, paper_q, [0.1, 0.9], 3)
        assert res.k_max == 4
        # The refined vector must actually admit q.
        assert rank_of_scan(paper_points, res.weight_refined,
                            paper_q) <= res.k_refined
        # Beats the pure-k fallback (alpha = 0.5).
        assert res.penalty < 0.5

    def test_result_is_global_optimum_by_grid(self, paper_points,
                                              paper_q):
        """No grid point beats the oracle."""
        w0 = np.array([0.1, 0.9])
        k = 3
        res = exact_mwk_2d(paper_points, paper_q, w0, k)
        for w1 in np.linspace(0.0, 1.0, 2001):
            w = np.array([w1, 1 - w1])
            rank = rank_of_scan(paper_points, w, paper_q)
            if rank > res.k_max:
                continue
            penalty = penalty_weights_k(
                w0.reshape(1, -1), w.reshape(1, -1), k,
                max(k, rank), res.k_max)
            assert penalty >= res.penalty - 1e-9

    def test_degenerate_not_whynot(self, paper_points, paper_q):
        res = exact_mwk_2d(paper_points, paper_q, [0.5, 0.5], 3)
        assert res.penalty == 0.0
        assert res.k_refined == 3

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            exact_mwk_2d(np.ones((5, 3)), np.zeros(3),
                         [1 / 3, 1 / 3, 1 / 3], 2)

    def test_respects_alpha_beta(self, paper_points, paper_q):
        """alpha = 0 makes the pure-k fallback free."""
        cfg = PenaltyConfig(alpha=0.0, beta=1.0)
        res = exact_mwk_2d(paper_points, paper_q, [0.1, 0.9], 3, cfg)
        assert res.penalty == pytest.approx(0.0)


class TestMWKQualityAgainstOracle:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_mwk_close_to_exact(self, seed):
        """Sampled MWK must land within 0.1 of the exact optimum
        (paper Figure 12: quality improves with |S|; at |S| = 800 the
        sampled penalties sit close to their floor)."""
        pts = independent(800, 2, seed=seed)
        rng = np.random.default_rng(seed + 100)
        w0 = rng.dirichlet(np.ones(2))
        q = query_point_with_rank(pts, w0, 41)
        k = 10
        if rank_of_scan(pts, w0, q) <= k:
            pytest.skip("not a why-not case")
        exact = exact_mwk_2d(pts, q, w0, k)
        query = WhyNotQuery(points=pts, q=q, k=k,
                            why_not=w0.reshape(1, -1))
        approx = modify_weights_and_k(
            query, sample_size=800, rng=np.random.default_rng(seed))
        assert approx.penalty >= exact.penalty - 1e-9   # exact is a floor
        assert approx.penalty <= exact.penalty + 0.1

    def test_mwk_never_beats_exact(self):
        """Sanity: the oracle is a true lower bound."""
        pts = anticorrelated(500, 2, seed=9)
        w0 = np.array([0.35, 0.65])
        q = query_point_with_rank(pts, w0, 31)
        k = 5
        if rank_of_scan(pts, w0, q) <= k:
            pytest.skip("not a why-not case")
        exact = exact_mwk_2d(pts, q, w0, k)
        query = WhyNotQuery(points=pts, q=q, k=k,
                            why_not=w0.reshape(1, -1))
        for seed in range(5):
            approx = modify_weights_and_k(
                query, sample_size=200,
                rng=np.random.default_rng(seed))
            assert approx.penalty >= exact.penalty - 1e-9
