"""Unit tests for repro.index.mbr."""

import numpy as np
import pytest

from repro.index.mbr import MBR


class TestConstruction:
    def test_of_point_degenerate(self):
        box = MBR.of_point([1.0, 2.0])
        assert box.lower.tolist() == [1.0, 2.0]
        assert box.upper.tolist() == [1.0, 2.0]
        assert box.volume() == 0.0

    def test_of_points_tight(self, rng):
        pts = rng.random((50, 3))
        box = MBR.of_points(pts)
        assert np.all(box.lower <= pts.min(axis=0) + 1e-15)
        assert np.all(box.upper >= pts.max(axis=0) - 1e-15)

    def test_union(self):
        a = MBR.of_point([0.0, 0.0])
        b = MBR.of_point([2.0, 3.0])
        u = MBR.union([a, b])
        assert u.lower.tolist() == [0.0, 0.0]
        assert u.upper.tolist() == [2.0, 3.0]

    def test_union_empty_raises(self):
        with pytest.raises(ValueError):
            MBR.union([])


class TestGeometry:
    def test_expanded(self):
        box = MBR.of_point([1.0, 1.0]).expanded([0.0, 2.0])
        assert box.lower.tolist() == [0.0, 1.0]
        assert box.upper.tolist() == [1.0, 2.0]

    def test_enlargement_zero_when_inside(self):
        box = MBR(np.zeros(2), np.ones(2))
        assert box.enlargement([0.5, 0.5]) == 0.0

    def test_enlargement_positive_outside(self):
        box = MBR(np.zeros(2), np.ones(2))
        assert box.enlargement([2.0, 0.5]) > 0.0

    def test_contains_point(self):
        box = MBR(np.zeros(2), np.ones(2))
        assert box.contains_point([0.5, 1.0])
        assert not box.contains_point([1.1, 0.5])

    def test_intersects(self):
        a = MBR(np.zeros(2), np.ones(2))
        b = MBR(np.array([0.5, 0.5]), np.array([2.0, 2.0]))
        c = MBR(np.array([1.5, 1.5]), np.array([2.0, 2.0]))
        assert a.intersects(b)
        assert not a.intersects(c)

    def test_margin(self):
        box = MBR(np.zeros(3), np.array([1.0, 2.0, 3.0]))
        assert box.margin() == pytest.approx(6.0)


class TestScoreBounds:
    def test_min_score_at_lower_corner(self, rng):
        box = MBR(np.array([0.2, 0.3]), np.array([0.9, 0.8]))
        for _ in range(20):
            w = rng.dirichlet(np.ones(2))
            pts = box.lower + rng.random((100, 2)) * (box.upper
                                                      - box.lower)
            assert np.all(pts @ w >= box.min_score(w) - 1e-12)
            assert np.all(pts @ w <= box.max_score(w) + 1e-12)

    def test_min_le_max(self):
        box = MBR(np.zeros(2), np.ones(2))
        w = [0.4, 0.6]
        assert box.min_score(w) <= box.max_score(w)


class TestDominancePredicates:
    def test_fully_dominated_by(self):
        box = MBR(np.array([5.0, 5.0]), np.array([6.0, 6.0]))
        assert box.fully_dominated_by([4.0, 4.0])
        assert not box.fully_dominated_by([5.5, 5.5])

    def test_fully_dominates(self):
        box = MBR(np.array([1.0, 1.0]), np.array([2.0, 2.0]))
        assert box.fully_dominates([4.0, 4.0])
        assert not box.fully_dominates([1.5, 1.5])

    def test_may_dominate(self):
        box = MBR(np.array([1.0, 5.0]), np.array([2.0, 6.0]))
        assert box.may_dominate([3.0, 5.5])
        assert not box.may_dominate([0.5, 5.5])

    def test_boundary_equal_not_dominated(self):
        # A box whose lower corner equals q is NOT fully dominated:
        # the corner point ties with q and strict dominance requires
        # the lower corner to be strictly worse in some dimension.
        box = MBR(np.array([4.0, 4.0]), np.array([5.0, 5.0]))
        assert not box.fully_dominated_by([4.0, 4.0])
