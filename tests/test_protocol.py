"""The typed public API schema: Question/Answer/ErrorInfo + registry.

Satellite acceptance: every payload survives ``to_dict → json →
from_dict`` identically — including failed items and non-finite
penalties — and bad inputs fail at Question construction with
actionable messages.  This module runs in CI with
``-W error::DeprecationWarning`` (it must never touch a shim).
"""

from __future__ import annotations

import json
import math
import pickle

import numpy as np
import pytest

from repro.core.protocol import (
    SCHEMA_VERSION,
    Answer,
    Budget,
    ErrorInfo,
    Question,
    summarize_answers,
)
from repro.core.registry import (
    algorithm_names,
    get_algorithm,
    register_algorithm,
    unregister_algorithm,
)
from repro.core.session import Session
from repro.data import independent, preference_set, query_point_with_rank
from repro.data.io import result_from_dict, result_to_dict

D = 3
K = 8


@pytest.fixture(scope="module")
def points():
    return independent(300, D, seed=9)


def typed_question(points, j, *, rank=31, algorithm="mqp",
                   options=None, id=None):
    w = preference_set(1, D, seed=8000 + j)
    q = query_point_with_rank(points, w[0], rank)
    return Question(q=q, k=K, why_not=w, algorithm=algorithm,
                    options=options or {}, id=id)


def json_round_trip(payload: dict) -> dict:
    return json.loads(json.dumps(payload))


class TestQuestionValidation:
    def test_valid_question_is_immutable_and_normalized(self):
        question = Question(q=[1, 2, 3], k="4",
                            why_not=[0.2, 0.3, 0.5],
                            algorithm="mwk",
                            options={"sample_size": 9})
        assert question.k == 4
        assert question.q.dtype == np.float64
        assert question.why_not.shape == (1, 3)
        assert not question.q.flags.writeable
        with pytest.raises(AttributeError):
            question.k = 5   # frozen
        with pytest.raises(TypeError):
            # A mutable dict would bypass option-name validation.
            question.options["bogus"] = 1

    def test_k_must_be_positive_integer(self):
        with pytest.raises(ValueError, match="k must be >= 1"):
            Question(q=[1, 1], k=0, why_not=[[0.5, 0.5]])
        with pytest.raises(ValueError, match="k must be a positive"):
            Question(q=[1, 1], k=None, why_not=[[0.5, 0.5]])
        with pytest.raises(ValueError, match="k must be a positive"):
            Question(q=[1, 1], k="many", why_not=[[0.5, 0.5]])
        with pytest.raises(ValueError, match="k must be a positive"):
            # A fractional k must never silently truncate to int(k).
            Question(q=[1, 1], k=2.9, why_not=[[0.5, 0.5]])
        # Integral spellings remain accepted (wire JSON may say 3.0).
        assert Question(q=[1, 1], k=3.0, why_not=[[0.5, 0.5]]).k == 3

    def test_simplex_violation_names_the_row(self):
        with pytest.raises(ValueError,
                           match=r"why-not vector #1 .* simplex"):
            Question(q=[1, 1], k=2,
                     why_not=[[0.5, 0.5], [0.9, 0.5]])

    def test_dimension_mismatch_is_actionable(self):
        with pytest.raises(ValueError, match=r"\(m, 3\)"):
            Question(q=[1, 1, 1], k=2, why_not=[[0.5, 0.5]])

    def test_q_must_be_finite_non_negative_flat(self):
        with pytest.raises(ValueError, match="non-negative"):
            Question(q=[1, -1], k=2, why_not=[[0.5, 0.5]])
        with pytest.raises(ValueError, match="finite"):
            Question(q=[1, float("nan")], k=2, why_not=[[0.5, 0.5]])
        with pytest.raises(ValueError, match="flat"):
            Question(q=[[1, 1]], k=2, why_not=[[0.5, 0.5]])

    def test_unknown_algorithm_lists_registered_names(self):
        with pytest.raises(ValueError) as err:
            Question(q=[1, 1], k=2, why_not=[[0.5, 0.5]],
                     algorithm="simplex")
        message = str(err.value)
        assert "unknown algorithm" in message
        for name in algorithm_names():
            assert name in message

    def test_unknown_option_lists_accepted_names(self):
        with pytest.raises(ValueError,
                           match=r"unknown option.*use_rtree"):
            Question(q=[1, 1], k=2, why_not=[[0.5, 0.5]],
                     algorithm="mqp", options={"sample_size": 9})

    def test_id_must_be_string(self):
        with pytest.raises(ValueError, match="id must be"):
            Question(q=[1, 1], k=2, why_not=[[0.5, 0.5]], id=7)

    def test_equality_is_structural(self):
        a = Question(q=[1, 1], k=2, why_not=[[0.5, 0.5]])
        b = Question(q=np.array([1.0, 1.0]), k=2,
                     why_not=np.array([[0.5, 0.5]]))
        assert a == b and hash(a) == hash(b)
        assert a != Question(q=[1, 1], k=3, why_not=[[0.5, 0.5]])


class TestQuestionRoundTrip:
    def test_round_trip_is_identity(self, points):
        question = typed_question(
            points, 1, algorithm="mwk",
            options={"sample_size": 64}, id="q-001")
        payload = question.to_dict()
        assert payload["schema_version"] == SCHEMA_VERSION
        again = Question.from_dict(json_round_trip(payload))
        assert again == question
        assert again.to_dict() == payload

    def test_missing_fields_rejected(self):
        with pytest.raises(ValueError, match="missing field"):
            Question.from_dict({"q": [1, 1], "k": 2})

    def test_unknown_fields_rejected(self):
        """A misspelled key must not silently decode into a question
        with default options."""
        with pytest.raises(ValueError, match="unknown field.*optons"):
            Question.from_dict({"q": [1, 1], "k": 2,
                                "why_not": [[0.5, 0.5]],
                                "optons": {"sample_size": 50}})

    def test_foreign_version_rejected(self, points):
        payload = typed_question(points, 2).to_dict()
        payload["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="schema_version"):
            Question.from_dict(payload)


class TestErrorInfo:
    def test_from_exception_and_round_trip(self):
        info = ErrorInfo.from_exception(
            np.linalg.LinAlgError("singular KKT system"))
        assert info.type == "LinAlgError"
        assert ErrorInfo.from_dict(
            json_round_trip(info.to_dict())) == info

    def test_legacy_string_forms(self):
        plain = ErrorInfo.from_exception(ValueError("bad question"))
        internal = ErrorInfo.from_exception(RuntimeError("boom"))
        assert plain.as_legacy_string == "bad question"
        assert internal.as_legacy_string == "RuntimeError: boom"

    def test_non_builtin_valueerror_subclass_keeps_bare_message(self):
        """The old executor keyed on isinstance(exc, ValueError);
        np.linalg.LinAlgError is a ValueError subclass despite not
        living in builtins, so its legacy string stays bare."""
        info = ErrorInfo.from_exception(
            np.linalg.LinAlgError("singular matrix"))
        assert info.category == "validation"
        assert info.as_legacy_string == "singular matrix"
        # ...and the category survives the wire round trip.
        again = ErrorInfo.from_dict(json_round_trip(info.to_dict()))
        assert again.as_legacy_string == "singular matrix"


class TestAnswerRoundTrip:
    @pytest.mark.parametrize("algorithm, options", [
        ("mqp", {}),
        ("mwk", {"sample_size": 40}),
        ("mqwk", {"sample_size": 25}),
    ])
    def test_answered_round_trip_per_algorithm(self, points,
                                               algorithm, options):
        session = Session(points)
        answer = session.ask(typed_question(
            points, 3, algorithm=algorithm, options=options,
            id=f"{algorithm}-probe"))
        assert answer.ok, answer.error
        payload = answer.to_dict()
        assert payload["schema_version"] == SCHEMA_VERSION
        assert payload["id"] == f"{algorithm}-probe"
        again = Answer.from_dict(json_round_trip(payload))
        assert again.to_dict() == payload
        assert again == answer

    def test_failed_item_round_trip_keeps_nan_penalty(self, points):
        session = Session(points)
        answer = session.ask(typed_question(points, 4, rank=2))
        assert not answer.ok and math.isnan(answer.penalty)
        payload = answer.to_dict()
        assert payload["penalty"] is None
        assert payload["error"]["type"] == "ValueError"
        again = Answer.from_dict(json_round_trip(payload))
        assert math.isnan(again.penalty)
        assert again.to_dict() == payload

    @pytest.mark.parametrize("penalty, encoded", [
        (float("nan"), None),
        (float("inf"), "inf"),
        (float("-inf"), "-inf"),
        (0.25, 0.25),
    ])
    def test_non_finite_penalty_encodings(self, penalty, encoded):
        answer = Answer(index=0, algorithm="mqp", result=None,
                        penalty=penalty, valid=False,
                        error=ErrorInfo("RuntimeError", "x"))
        payload = answer.to_dict()
        assert payload["penalty"] == encoded
        again = Answer.from_dict(json_round_trip(payload))
        assert again.to_dict() == payload

    def test_result_payload_round_trip(self, points):
        answer = Session(points).ask(typed_question(points, 5))
        payload = result_to_dict(answer.result)
        rebuilt = result_from_dict(json_round_trip(payload))
        assert result_to_dict(rebuilt) == payload
        assert type(rebuilt) is type(answer.result)

    def test_result_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="result kind"):
            result_from_dict({"kind": "zap"})

    def test_foreign_version_rejected(self):
        with pytest.raises(ValueError, match="schema_version"):
            Answer.from_dict({"schema_version": 99, "index": 0})


class TestPickleRoundTrip:
    """Worker IPC ships Questions/Answers/Budgets over pipes —
    ``pickle`` must be lossless, exactly like the JSON wire schema.
    (``Question.options`` is a mappingproxy, which pickle rejects
    without the custom ``__reduce__``.)"""

    def test_question_round_trip(self, points):
        question = typed_question(
            points, 11, algorithm="mwk",
            options={"sample_size": 64}, id="pickled")
        again = pickle.loads(pickle.dumps(question))
        assert again == question
        assert again.to_dict() == question.to_dict()
        assert dict(again.options) == {"sample_size": 64}
        with pytest.raises(TypeError):
            again.options["sample_size"] = 1   # still read-only

    def test_budgeted_question_round_trip(self, points):
        budget = Budget(sample_budget=128, deadline_ms=40.0,
                        target_penalty_tolerance=0.25)
        question = Question(q=typed_question(points, 12).q, k=K,
                            why_not=preference_set(2, D, seed=77),
                            algorithm="mqwk", budget=budget)
        again = pickle.loads(pickle.dumps(question))
        assert again == question
        assert again.budget == budget
        assert pickle.loads(pickle.dumps(budget)) == budget

    @pytest.mark.parametrize("algorithm, options", [
        ("mqp", {}),
        ("mwk", {"sample_size": 40}),
        ("mqwk", {"sample_size": 25}),
    ])
    def test_answer_round_trip_per_algorithm(self, points, algorithm,
                                             options):
        answer = Session(points).ask(typed_question(
            points, 13, algorithm=algorithm, options=options))
        assert answer.ok, answer.error
        again = pickle.loads(pickle.dumps(answer))
        assert again == answer
        assert again.to_dict() == answer.to_dict()

    def test_failed_answer_round_trip(self, points):
        answer = Session(points).ask(typed_question(points, 14,
                                                    rank=2))
        assert not answer.ok
        again = pickle.loads(pickle.dumps(answer))
        assert math.isnan(again.penalty)
        assert again.to_dict() == answer.to_dict()

    def test_budgeted_answer_keeps_quality(self, points):
        question = Question(
            q=typed_question(points, 15).q, k=K,
            why_not=preference_set(1, D, seed=78), algorithm="mwk",
            options={"sample_size": 60},
            budget=Budget(sample_budget=30))
        answer = Session(points).ask(question)
        assert answer.quality is not None
        again = pickle.loads(pickle.dumps(answer))
        assert again.to_dict() == answer.to_dict()


class TestSummarize:
    def test_matches_legacy_batch_report_shape(self, points):
        session = Session(points)
        questions = [typed_question(points, 10 + j) for j in range(3)]
        questions.append(typed_question(points, 20, rank=2))  # fails
        answers = session.ask_batch(questions)
        summary = summarize_answers(answers, wall_seconds=0.5)
        assert summary["answered"] == 3 and summary["failed"] == 1
        assert summary["all_valid"]
        assert summary["mean_penalty"] is not None
        assert summary["max_penalty"] >= summary["mean_penalty"]
        assert summary["total_item_time"] >= summary["max_item_time"]
        assert summary["wall_seconds"] == 0.5


class TestAlgorithmRegistry:
    def test_builtins_registered_in_paper_order(self):
        assert algorithm_names()[:3] == ("mqp", "mwk", "mqwk")

    def test_get_algorithm_error_lists_names(self):
        with pytest.raises(ValueError) as err:
            get_algorithm("nope")
        assert "registered: mqp, mwk, mqwk" in str(err.value)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_algorithm("mqp")(lambda *a, **k: None)

    def test_custom_algorithm_served_by_every_entry_point(self,
                                                          points):
        """A registered extension is dispatchable through the typed
        executor without touching any front door."""

        @register_algorithm("echo-mqp", summary="test double",
                            option_names=("use_rtree",))
        def echo(query, *, context, rng, penalty_config, options):
            from repro.core.mqp import modify_query_point

            return modify_query_point(query, **options)

        try:
            assert "echo-mqp" in algorithm_names()
            session = Session(points)
            w = preference_set(1, D, seed=8200)
            q = query_point_with_rank(points, w[0], 31)
            ours = session.ask(Question(q=q, k=K, why_not=w,
                                        algorithm="echo-mqp"))
            builtin = session.ask(Question(q=q, k=K, why_not=w,
                                           algorithm="mqp"))
            assert ours.ok
            assert ours.penalty == builtin.penalty
        finally:
            unregister_algorithm("echo-mqp")
        assert "echo-mqp" not in algorithm_names()


class TestSchemaV3:
    """Budget on Question, Quality on Answer — wire round trips."""

    def test_question_budget_round_trips(self):
        from repro.core.protocol import Budget

        question = Question(
            q=[0.2, 0.3], k=3, why_not=[[0.5, 0.5]],
            algorithm="mwk",
            budget=Budget(sample_budget=500, deadline_ms=50.0),
            id="b1")
        payload = question.to_dict()
        assert payload["schema_version"] == SCHEMA_VERSION
        assert payload["budget"] == {
            "sample_budget": 500, "deadline_ms": 50.0,
            "target_penalty_tolerance": None}
        again = Question.from_dict(
            json.loads(json.dumps(payload)))
        assert again == question
        assert again.budget == question.budget

    def test_unbudgeted_question_serializes_null_budget(self):
        payload = Question(q=[0.2, 0.3], k=3,
                           why_not=[[0.5, 0.5]]).to_dict()
        assert payload["budget"] is None
        assert Question.from_dict(payload).budget is None

    def test_answer_quality_round_trips(self):
        from repro.core.protocol import Quality

        answer = Answer(index=0, algorithm="mwk", result=None,
                        penalty=0.25, valid=True,
                        quality=Quality(samples_examined=640,
                                        converged=False, rounds=3))
        payload = json.loads(json.dumps(answer.to_dict()))
        assert payload["quality"] == {
            "samples_examined": 640, "converged": False,
            "rounds": 3}
        again = Answer.from_dict(payload)
        assert again.quality == answer.quality
        assert again == answer

    def test_quality_none_round_trips(self):
        answer = Answer(index=0, algorithm="mqp", result=None,
                        penalty=0.1, valid=True)
        payload = answer.to_dict()
        assert payload["quality"] is None
        assert Answer.from_dict(payload).quality is None

    def test_budget_in_question_hash_and_eq(self):
        from repro.core.protocol import Budget

        base = dict(q=[0.2, 0.3], k=3, why_not=[[0.5, 0.5]])
        a = Question(**base, budget=Budget(sample_budget=10))
        b = Question(**base, budget=Budget(sample_budget=10))
        c = Question(**base, budget=Budget(sample_budget=11))
        assert a == b and hash(a) == hash(b)
        assert a != c
