"""Multi-seed validity stress: refinements must never be invalid.

The single most important guarantee of the library is that every
returned refinement actually answers the why-not question.  This
module hammers that guarantee across seeds, dataset shapes, |Wm|
sizes and tolerance configurations.
"""

import numpy as np
import pytest

from repro.core.audit import audit_result
from repro.core.framework import WQRTQ
from repro.core.mqp import modify_query_point
from repro.core.mqwk import modify_query_weights_and_k
from repro.core.mwk import modify_weights_and_k
from repro.core.penalty import PenaltyConfig
from repro.core.types import WhyNotQuery
from repro.data import make_dataset, preference_set, query_point_with_rank
from repro.topk.scan import rank_of_scan


def _try_build(kind, n, d, k, rank, wm_size, seed):
    pts = make_dataset(kind, n, d, seed=seed)
    wts = preference_set(wm_size * 4, d, seed=seed + 1)
    q = query_point_with_rank(pts, wts[0], rank)
    chosen = [wts[0]]
    for w in wts[1:]:
        if len(chosen) == wm_size:
            break
        if rank_of_scan(pts, w, q) > k:
            chosen.append(w)
    if len(chosen) < wm_size:
        return None
    return WhyNotQuery(points=pts, q=q, k=k, why_not=np.asarray(chosen))


@pytest.mark.parametrize("seed", range(6))
@pytest.mark.parametrize("kind", ["independent", "anticorrelated"])
def test_all_algorithms_always_valid(kind, seed):
    query = _try_build(kind, 800, 3, 8, 33, wm_size=2, seed=seed * 7)
    if query is None:
        pytest.skip("workload assembly failed for this seed")
    rng = np.random.default_rng(seed)
    results = [
        modify_query_point(query),
        modify_weights_and_k(query, sample_size=80, rng=rng),
        modify_query_weights_and_k(query, sample_size=40, rng=rng),
    ]
    for result in results:
        audit = audit_result(query, result)
        assert audit.valid, (kind, seed, type(result).__name__)


@pytest.mark.parametrize("alpha", [0.0, 0.25, 0.75, 1.0])
def test_mwk_valid_under_any_tolerance(alpha):
    query = _try_build("independent", 600, 3, 8, 41, wm_size=1,
                       seed=11)
    if query is None:
        pytest.skip("workload assembly failed")
    config = PenaltyConfig(alpha=alpha, beta=1.0 - alpha)
    res = modify_weights_and_k(query, sample_size=100,
                               rng=np.random.default_rng(3),
                               config=config)
    for w in res.weights_refined:
        assert rank_of_scan(query.points, w, query.q) <= res.k_refined
    assert 0.0 <= res.penalty <= 1.0


@pytest.mark.parametrize("gamma", [0.1, 0.5, 0.9])
def test_framework_respects_penalty_config(gamma):
    """The façade must thread its PenaltyConfig into MQWK: the joint
    penalty recomputes exactly from the reported shares."""
    pts = make_dataset("independent", 500, 2, seed=21)
    wts = preference_set(1, 2, seed=22)
    q = query_point_with_rank(pts, wts[0], 31)
    config = PenaltyConfig(gamma=gamma, lam=1.0 - gamma)
    engine = WQRTQ(pts, q, 5, penalty_config=config)
    res = engine.modify_all(wts, sample_size=40,
                            rng=np.random.default_rng(1))
    assert res.penalty == pytest.approx(
        gamma * res.q_penalty_share
        + (1 - gamma) * res.wk_penalty_share)


def test_extreme_k_edges():
    """k = 1 (hardest) and k = rank - 1 (easiest) both work."""
    pts = make_dataset("independent", 400, 3, seed=31)
    wts = preference_set(1, 3, seed=32)
    q = query_point_with_rank(pts, wts[0], 25)
    for k in (1, 24):
        query = WhyNotQuery(points=pts, q=q, k=k, why_not=wts)
        res = modify_query_point(query)
        assert rank_of_scan(pts, wts[0], res.q_refined) <= k
        mwk = modify_weights_and_k(query, sample_size=60,
                                   rng=np.random.default_rng(k))
        assert mwk.k_refined <= mwk.k_max


def test_identical_why_not_vectors():
    """Duplicated vectors in Wm are legal and refined consistently."""
    pts = make_dataset("independent", 400, 3, seed=41)
    wts = preference_set(1, 3, seed=42)
    q = query_point_with_rank(pts, wts[0], 31)
    dup = np.vstack([wts[0], wts[0]])
    query = WhyNotQuery(points=pts, q=q, k=5, why_not=dup)
    res = modify_weights_and_k(query, sample_size=80,
                               rng=np.random.default_rng(5))
    for w in res.weights_refined:
        assert rank_of_scan(pts, w, q) <= res.k_refined
