"""Integration test: the paper's running example, end to end.

Walks the complete narrative of Sections 1-4 on the Figure 1 data:
Apple's computer q(4, 4), the four customers, the reverse top-3 query,
Kevin and Julia's why-not question, and all three WQRTQ refinements.
Every intermediate value the paper states explicitly is asserted.
"""

import numpy as np
import pytest

from repro import WQRTQ
from repro.rtopk.mono import mrtopk_2d, mrtopk_contains
from repro.topk.scan import rank_of_scan, topk_scan


@pytest.fixture()
def engine(paper_points, paper_q, paper_weights) -> WQRTQ:
    return WQRTQ(paper_points, paper_q, 3, weights=paper_weights)


class TestPaperNarrative:
    def test_top3_per_customer(self, paper_points):
        """Figure 1(c) top-3 sets (over P, excluding q)."""
        per_customer = {
            (0.1, 0.9): [0, 1, 3],     # Kevin: p1, p2, p4
            (0.3, 0.7): [0, 1, 3],     # Anna:  p1 (1.3), p2 (3.9), p4 (4.8)
            (0.9, 0.1): [2, 0, 6],     # Julia: p3 (1.8), p1 (1.9), p7 (3.4)
        }
        for w, expected in per_customer.items():
            assert topk_scan(paper_points, list(w), 3).tolist() == \
                expected

    def test_reverse_top3_result(self, engine):
        """Tony and Anna rank q among their top-3 (Section 1)."""
        assert engine.reverse_topk().tolist() == [1, 2]

    def test_kevin_julia_are_why_not(self, engine, paper_weights):
        missing = engine.missing_weights()
        assert missing.tolist() == [[0.9, 0.1], [0.1, 0.9]]

    def test_explanation_matches_section3(self, engine):
        """Section 3: for Kevin, p1, p2 and p4 are responsible."""
        missing = engine.missing_weights()
        explanations = engine.explain(missing)
        kevin = explanations[1]
        assert kevin.culprit_ids.tolist() == [0, 1, 3]

    def test_mono_result_matches_figure2(self, paper_points, paper_q):
        """MRTOP3(q) = weighting vectors between B(1/6, 5/6) and
        C(3/4, 1/4)."""
        [interval] = mrtopk_2d(paper_points, paper_q, 3)
        assert interval.lo == pytest.approx(1 / 6)
        assert interval.hi == pytest.approx(3 / 4)

    def test_figure2_named_vectors(self, paper_points, paper_q):
        for w, inside in [((1 / 6, 5 / 6), True),
                          ((3 / 4, 1 / 4), True),
                          ((1 / 10, 9 / 10), False),
                          ((4 / 5, 1 / 5), False)]:
            assert mrtopk_contains(paper_points, paper_q, 3,
                                   list(w)) == inside


class TestPaperRefinements:
    def test_mqp_beats_both_illustrations(self, engine, paper_points):
        """Section 4.2 illustrates q'(3, 2.5) (0.318) and q''(2.5, 3.5)
        (0.279); the optimum must be cheaper and valid."""
        missing = engine.missing_weights()
        res = engine.modify_query_point(missing)
        assert res.penalty < 0.279
        for w in missing:
            assert rank_of_scan(paper_points, w, res.q_refined) <= 3

    def test_paper_illustrations_are_valid_refinements(self,
                                                       paper_points):
        """Sanity on the paper's own examples: q'(3, 2.5) and
        q''(2.5, 3.5) do put Kevin and Julia in the top-3."""
        for q_new in ([3.0, 2.5], [2.5, 3.5]):
            for w in ([0.9, 0.1], [0.1, 0.9]):
                assert rank_of_scan(paper_points, w, q_new) <= 3

    def test_mwk_finds_weight_only_refinement(self, engine,
                                              paper_points, paper_q):
        """Section 4.3: vectors near (0.18, 0.82) / (0.75, 0.25) fix
        the query with k unchanged; MWK should find such an answer and
        beat the k-only alternative (penalty 0.5)."""
        missing = engine.missing_weights()
        res = engine.modify_weights_and_k(
            missing, sample_size=800, rng=np.random.default_rng(0))
        assert res.k_refined == 3
        assert res.penalty < 0.5
        for w in res.weights_refined:
            assert rank_of_scan(paper_points, w, paper_q) <= 3

    def test_paper_mwk_illustration_is_valid(self, paper_points,
                                             paper_q):
        """(0.18, 0.82) and (0.75, 0.25) indeed admit q at k = 3."""
        assert rank_of_scan(paper_points, [0.18, 0.82], paper_q) <= 3
        assert rank_of_scan(paper_points, [0.75, 0.25], paper_q) <= 3

    def test_mqwk_compromise(self, engine, paper_points):
        """Section 4.4: the joint refinement must beat both single-
        sided ones under the joint penalty (gamma = lambda = 0.5)."""
        missing = engine.missing_weights()
        rng = np.random.default_rng(42)
        mqp = engine.modify_query_point(missing)
        mwk = engine.modify_weights_and_k(
            missing, sample_size=200, rng=np.random.default_rng(42))
        mqwk = engine.modify_all(missing, sample_size=200, rng=rng)
        assert mqwk.penalty <= 0.5 * mqp.penalty + 1e-9
        assert mqwk.penalty <= 0.5 * mwk.penalty + 1e-9
        for w in mqwk.weights_refined:
            assert rank_of_scan(paper_points, w, mqwk.q_refined) <= \
                mqwk.k_refined

    def test_paper_mqwk_illustration_is_valid(self, paper_points):
        """Section 4.4's example: q'(3.8, 3.8) with (0.135, 0.865) and
        (0.8, 0.2) puts both customers in the reverse top-3."""
        q_new = [3.8, 3.8]
        for w in ([0.135, 0.865], [0.8, 0.2]):
            assert rank_of_scan(paper_points, w, q_new) <= 3
