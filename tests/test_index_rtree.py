"""Unit tests for the R-tree (both construction paths)."""

import numpy as np
import pytest

from repro.data import anticorrelated, independent
from repro.index.rtree import RTree, default_capacity


class TestConstructionValidation:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            RTree(np.empty((0, 2)))

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            RTree([[0.0, np.nan]])

    def test_rejects_tiny_capacity(self):
        with pytest.raises(ValueError):
            RTree([[0.0, 1.0]], capacity=1)

    def test_rejects_unknown_method(self):
        with pytest.raises(ValueError):
            RTree([[0.0, 1.0]], method="bogus")

    def test_points_are_readonly(self, small_tree):
        with pytest.raises(ValueError):
            small_tree.points[0, 0] = 99.0

    def test_default_capacity_page_heuristic(self):
        # 3-d: entry = 2*3*8 + 8 = 56 bytes -> 4096 // 56 = 73.
        assert default_capacity(3) == 73
        # Clamped for absurd dimensionality.
        assert default_capacity(10_000) == 4


def _check_invariants(tree: RTree):
    """Structural invariants: MBR containment, capacity, coverage."""
    seen_ids = []
    for node in tree.iter_nodes():
        if node.is_leaf:
            assert 1 <= len(node.point_ids) <= tree.capacity
            seen_ids.extend(node.point_ids)
            for pid in node.point_ids:
                assert node.mbr.contains_point(tree.points[pid],
                                               atol=1e-12)
        else:
            assert 1 <= len(node.children) <= tree.capacity
            for child in node.children:
                assert np.all(node.mbr.lower <= child.mbr.lower + 1e-12)
                assert np.all(node.mbr.upper >= child.mbr.upper - 1e-12)
    assert sorted(seen_ids) == list(range(len(tree)))


class TestInvariants:
    @pytest.mark.parametrize("method", ["str", "insert"])
    @pytest.mark.parametrize("n", [1, 5, 64, 257])
    def test_structure(self, method, n):
        pts = independent(n, 3, seed=n)
        tree = RTree(pts, capacity=8, method=method)
        _check_invariants(tree)

    @pytest.mark.parametrize("method", ["str", "insert"])
    def test_anticorrelated_structure(self, method):
        pts = anticorrelated(300, 2, seed=3)
        _check_invariants(RTree(pts, capacity=16, method=method))

    def test_single_point_tree(self):
        tree = RTree([[0.5, 0.5]])
        assert tree.height == 1
        assert tree.root.is_leaf

    def test_height_grows_logarithmically(self):
        pts = independent(1000, 2, seed=1)
        tree = RTree(pts, capacity=10)
        # 1000 points / 10 per leaf = 100 leaves -> height 3.
        assert tree.height == 3

    def test_node_count_positive(self, small_tree):
        assert small_tree.node_count >= 1
        assert len(small_tree) == 500


class TestRangeQuery:
    @pytest.mark.parametrize("method", ["str", "insert"])
    def test_matches_brute_force(self, method, rng):
        pts = rng.random((400, 3))
        tree = RTree(pts, capacity=8, method=method)
        for _ in range(10):
            lo = rng.random(3) * 0.5
            hi = lo + rng.random(3) * 0.5
            expected = np.nonzero(
                np.all(pts >= lo, axis=1) & np.all(pts <= hi, axis=1))[0]
            got = tree.range_query(lo, hi)
            assert got.tolist() == expected.tolist()

    def test_empty_result(self, small_tree):
        out = small_tree.range_query([2.0, 2.0, 2.0], [3.0, 3.0, 3.0])
        assert out.size == 0

    def test_full_cover(self, small_tree):
        out = small_tree.range_query([0.0] * 3, [1.0] * 3)
        assert out.tolist() == list(range(500))


class TestStats:
    def test_access_counting(self, small_dataset):
        tree = RTree(small_dataset, capacity=16)
        tree.stats.reset()
        tree.range_query([0.0] * 3, [1.0] * 3)
        assert tree.stats.node_accesses >= tree.node_count
        assert tree.stats.leaf_accesses > 0

    def test_reset(self, small_tree):
        small_tree.stats.reset()
        assert small_tree.stats.node_accesses == 0


class TestKnnQuery:
    @pytest.mark.parametrize("method", ["str", "insert"])
    def test_matches_brute_force(self, method, rng):
        pts = rng.random((300, 3))
        tree = RTree(pts, capacity=8, method=method)
        for _ in range(10):
            q = rng.random(3)
            dists = np.linalg.norm(pts - q, axis=1)
            expected = np.lexsort((np.arange(len(pts)), dists))[:7]
            got = tree.knn_query(q, 7)
            assert np.allclose(dists[got], dists[expected])

    def test_ordered_by_distance(self, small_tree, rng):
        q = rng.random(3)
        got = small_tree.knn_query(q, 20)
        dists = np.linalg.norm(small_tree.points[got] - q, axis=1)
        assert np.all(np.diff(dists) >= -1e-12)

    def test_k_clamped(self, small_tree):
        assert len(small_tree.knn_query([0.5] * 3, 10_000)) == 500

    def test_invalid_k(self, small_tree):
        with pytest.raises(ValueError):
            small_tree.knn_query([0.5] * 3, 0)

    def test_lazy_traversal(self, small_dataset):
        tree = RTree(small_dataset, capacity=8)
        tree.stats.reset()
        tree.knn_query([0.5, 0.5, 0.5], 1)
        assert tree.stats.node_accesses < tree.node_count
