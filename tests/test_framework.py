"""Unit tests for the WQRTQ façade (bichromatic + monochromatic)."""

import numpy as np
import pytest

from repro.core.framework import WQRTQ
from repro.topk.scan import rank_of_scan


@pytest.fixture()
def bichromatic(paper_points, paper_q, paper_weights) -> WQRTQ:
    return WQRTQ(paper_points, paper_q, 3, weights=paper_weights)


@pytest.fixture()
def monochromatic(paper_points, paper_q) -> WQRTQ:
    return WQRTQ(paper_points, paper_q, 3)


class TestBichromaticMode:
    def test_reverse_topk(self, bichromatic):
        assert bichromatic.reverse_topk().tolist() == [1, 2]

    def test_missing_weights(self, bichromatic, paper_weights):
        missing = bichromatic.missing_weights()
        assert missing.tolist() == paper_weights[[0, 3]].tolist()

    def test_rejects_why_not_outside_w(self, bichromatic):
        with pytest.raises(ValueError, match="not in W"):
            bichromatic.make_question([[0.42, 0.58]])

    def test_explain(self, bichromatic):
        out = bichromatic.explain(bichromatic.missing_weights())
        assert [e.rank_of_q for e in out] == [4, 4]

    def test_three_solutions_run(self, bichromatic):
        missing = bichromatic.missing_weights()
        rng = np.random.default_rng(0)
        mqp = bichromatic.modify_query_point(missing)
        mwk = bichromatic.modify_weights_and_k(missing, sample_size=100,
                                               rng=rng)
        mqwk = bichromatic.modify_all(missing, sample_size=50, rng=rng)
        assert mqp.penalty > 0
        assert mwk.penalty <= 0.5
        assert mqwk.penalty <= 0.5 * mqp.penalty + 1e-9


class TestMonochromaticMode:
    def test_reverse_topk_intervals(self, monochromatic):
        intervals = monochromatic.reverse_topk()
        assert len(intervals) == 1
        assert intervals[0].lo == pytest.approx(1 / 6)

    def test_any_outside_vector_is_legal_why_not(self, monochromatic,
                                                 paper_points, paper_q):
        """Monochromatic mode accepts A(0.1, 0.9) and D(0.8, 0.2)
        (Figure 2(b)) even though no W exists."""
        question = monochromatic.make_question([[0.1, 0.9], [0.8, 0.2]])
        assert question.n_why_not == 2

    def test_missing_weights_requires_w(self, monochromatic):
        with pytest.raises(ValueError, match="bichromatic"):
            monochromatic.missing_weights()

    def test_mono_refinement_enters_intervals(self, monochromatic,
                                              paper_points, paper_q):
        """After MQP refinement the why-not vectors join MRTOPk(q')."""
        why_not = np.array([[0.1, 0.9], [0.8, 0.2]])
        res = monochromatic.modify_query_point(why_not)
        from repro.rtopk.mono import mrtopk_contains
        for w in why_not:
            assert mrtopk_contains(paper_points, res.q_refined, 3, w)

    def test_mono_mrtopk_requires_2d(self, small_dataset):
        engine = WQRTQ(small_dataset, np.full(3, 0.5), 5)
        with pytest.raises(ValueError, match="2-D"):
            engine.reverse_topk()


class TestFacadeBehaviour:
    def test_tree_is_cached(self, bichromatic):
        assert bichromatic.tree is bichromatic.tree

    def test_rejects_vector_already_in_result(self, bichromatic,
                                              paper_weights):
        with pytest.raises(ValueError, match="already has q"):
            bichromatic.make_question([paper_weights[1]])  # Tony

    def test_refinement_validity_end_to_end(self, bichromatic,
                                            paper_points):
        missing = bichromatic.missing_weights()
        rng = np.random.default_rng(1)
        res = bichromatic.modify_all(missing, sample_size=80, rng=rng)
        for w in res.weights_refined:
            assert rank_of_scan(paper_points, w, res.q_refined) <= \
                res.k_refined
