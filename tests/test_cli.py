"""Unit tests for the command-line interface."""

import os
import re
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cli import main

SRC = Path(__file__).resolve().parent.parent / "src"


class TestRefine:
    def test_refine_all(self, capsys):
        code = main(["refine", "-n", "500", "-k", "5", "--rank", "21",
                     "--sample-size", "30"])
        assert code == 0
        out = capsys.readouterr().out
        assert "MQP" in out and "MWK" in out and "MQWK" in out
        assert "penalty" in out

    def test_refine_single_algorithm(self, capsys):
        code = main(["refine", "-n", "500", "-k", "5", "--rank", "21",
                     "--algorithm", "mqp"])
        assert code == 0
        out = capsys.readouterr().out
        assert "MQP" in out and "MQWK" not in out

    def test_refine_with_explanation(self, capsys):
        code = main(["refine", "-n", "500", "-k", "5", "--rank", "21",
                     "--algorithm", "mqp", "--explain"])
        assert code == 0
        assert "q ranks 21" in capsys.readouterr().out

    def test_refine_multiple_whynot(self, capsys):
        code = main(["refine", "-n", "500", "-k", "5", "--rank", "21",
                     "--wm-size", "2", "--algorithm", "mwk",
                     "--sample-size", "30"])
        assert code == 0
        assert "k_max" in capsys.readouterr().out


class TestQuery:
    def test_query_runs(self, capsys):
        code = main(["query", "-n", "500", "-k", "5", "--rank", "21",
                     "--panel", "50"])
        assert code == 0
        out = capsys.readouterr().out
        assert "reverse top-5" in out

    def test_query_dataset_choice_validated(self):
        with pytest.raises(SystemExit):
            main(["query", "--dataset", "nope"])


class TestBench:
    def test_bench_requires_known_figure(self):
        with pytest.raises(SystemExit):
            main(["bench", "fig99"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            main([])


SUBCOMMANDS = ("query", "refine", "batch", "serve", "explain",
               "watch", "catalogue", "bench", "lint")


class TestHelp:
    def test_top_level_help_lists_every_subcommand(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        for name in SUBCOMMANDS:
            assert name in out

    @pytest.mark.parametrize("name", SUBCOMMANDS)
    def test_every_subcommand_parses_help(self, name, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([name, "--help"])
        assert excinfo.value.code == 0
        assert "usage:" in capsys.readouterr().out

    def test_help_registry_is_exhaustive(self, capsys):
        # A new subcommand must join SUBCOMMANDS (and so the smoke
        # test): parse the usage line's {a,b,c} set and compare.
        with pytest.raises(SystemExit):
            main(["--help"])
        out = capsys.readouterr().out
        match = re.search(r"\{([a-z,]+)\}", out)
        assert match, out
        assert set(match.group(1).split(",")) == set(SUBCOMMANDS)


class TestLint:
    def test_lint_subcommand_is_clean_on_this_repo(self, capsys):
        root = str(Path(__file__).resolve().parents[1])
        assert main(["lint", "--root", root]) == 0
        assert "reprolint: clean" in capsys.readouterr().out

    def test_lint_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        assert "SCHEMA-LOCK" in capsys.readouterr().out


class TestServe:
    def test_load_spec_validated(self, capsys):
        assert main(["serve", "--load", "no-equals-sign"]) == 2
        assert "NAME=PATH" in capsys.readouterr().err

    def test_load_missing_file_is_clean_error(self, capsys, tmp_path):
        missing = tmp_path / "nope.npz"
        assert main(["serve", "--load", f"cat={missing}"]) == 2
        assert "failed to register" in capsys.readouterr().err

    def test_load_corrupt_file_is_clean_error(self, capsys, tmp_path):
        bad = tmp_path / "bad.npz"
        bad.write_bytes(b"not a zip archive")
        assert main(["serve", "--load", f"cat={bad}"]) == 2
        assert "failed to register" in capsys.readouterr().err

    def test_serve_in_help(self, capsys):
        with pytest.raises(SystemExit):
            main(["--help"])
        assert "serve" in capsys.readouterr().out

    def test_serve_help_documents_daemon(self, capsys):
        with pytest.raises(SystemExit):
            main(["serve", "--help"])
        out = capsys.readouterr().out
        assert "--max-partitions" in out
        assert "ephemeral" in out

    def test_boot_answer_shutdown(self, tmp_path):
        """End-to-end: boot ``wqrtq serve`` on an ephemeral port as a
        real subprocess, answer one question through the client, and
        shut it down — the same sequence the CI smoke step runs."""
        from repro.service import ServiceClient

        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(SRC)] + ([env["PYTHONPATH"]]
                          if env.get("PYTHONPATH") else []))
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "-n", "400", "--seed", "2", "--name", "smoke",
             "--max-partitions", "32"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True, cwd=tmp_path, env=env)
        try:
            port = None
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                line = proc.stdout.readline()
                match = re.search(r"serving on http://[^:]+:(\d+)",
                                  line or "")
                if match:
                    port = int(match.group(1))
                    break
                assert proc.poll() is None, proc.stderr.read()
            assert port, "server never announced its port"
            client = ServiceClient(port=port)
            assert client.health() == {"status": "ok"}
            (entry,) = client.catalogues()
            assert entry["name"] == "smoke"
            assert entry["max_partitions"] == 32
            item = client.answer(
                "smoke", [0.2] * 3, 5, [[0.4, 0.3, 0.3]],
                algorithm="mqp")
            assert item["valid"] and item["error"] is None
        finally:
            proc.terminate()
            proc.wait(timeout=30)


class TestCatalogueCLI:
    """``wqrtq catalogue show/add/update/remove`` against an
    in-process server."""

    @pytest.fixture()
    def served(self):
        import threading

        import numpy as np

        from repro.service import CatalogueRegistry, create_server

        registry = CatalogueRegistry()
        registry.register(
            "shop", np.random.default_rng(5).random((200, 3)))
        server = create_server(registry)
        thread = threading.Thread(target=server.serve_forever,
                                  daemon=True)
        thread.start()
        try:
            yield registry, server.port
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)

    def test_show(self, served, capsys):
        _, port = served
        assert main(["catalogue", "show", "shop",
                     "--port", str(port)]) == 0
        out = capsys.readouterr().out
        assert "catalogue: shop" in out
        assert "version: 0  n: 200  d: 3" in out
        assert "mutations: adds=0" in out

    def test_add_update_remove_round_trip(self, served, capsys):
        registry, port = served
        assert main(["catalogue", "add", "shop", "--port", str(port),
                     "--products", "[[3.0, 3.0, 3.0]]"]) == 0
        assert "ids [200]" in capsys.readouterr().out
        assert main(["catalogue", "update", "shop",
                     "--port", str(port), "--ids", "200",
                     "--products", "[[4.0, 4.0, 4.0]]"]) == 0
        assert "version 2" in capsys.readouterr().out
        assert main(["catalogue", "remove", "shop",
                     "--port", str(port), "--ids", "200"]) == 0
        out = capsys.readouterr().out
        assert "version 3" in out and "n=200" in out
        assert registry.catalogue("shop").version == 3

    def test_add_from_npz(self, served, capsys, tmp_path):
        import numpy as np

        from repro.data.io import save_dataset

        _, port = served
        path = save_dataset(tmp_path / "extra.npz",
                            np.full((2, 3), 3.0), kind="extra")
        assert main(["catalogue", "add", "shop", "--port", str(port),
                     "--from-npz", str(path)]) == 0
        assert "added 2 product(s)" in capsys.readouterr().out

    def test_unknown_catalogue_fails_cleanly(self, served, capsys):
        _, port = served
        assert main(["catalogue", "show", "nope",
                     "--port", str(port)]) == 1
        assert "unknown catalogue" in capsys.readouterr().err

    def test_bad_products_json_fails_cleanly(self, served, capsys):
        _, port = served
        assert main(["catalogue", "add", "shop", "--port", str(port),
                     "--products", "{not json"]) == 1
        assert "not valid JSON" in capsys.readouterr().err

    def test_products_and_npz_exclusive(self, served, capsys):
        _, port = served
        assert main(["catalogue", "add", "shop",
                     "--port", str(port)]) == 1
        assert "exactly one" in capsys.readouterr().err

    def test_connection_refused_fails_cleanly(self, capsys):
        import socket

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        assert main(["catalogue", "show", "shop",
                     "--port", str(port)]) == 1
        assert "failed" in capsys.readouterr().err


class TestPlot:
    def test_plot_2d(self, capsys):
        code = main(["refine", "-n", "300", "-d", "2", "-k", "5",
                     "--rank", "21", "--algorithm", "mqp", "--plot"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Q" in out and "░" in out

    def test_plot_rejected_beyond_2d(self, capsys):
        code = main(["refine", "-n", "300", "-d", "3", "-k", "5",
                     "--rank", "21", "--algorithm", "mqp", "--plot"])
        assert code == 0
        assert "requires 2-dimensional" in capsys.readouterr().out
