"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main


class TestRefine:
    def test_refine_all(self, capsys):
        code = main(["refine", "-n", "500", "-k", "5", "--rank", "21",
                     "--sample-size", "30"])
        assert code == 0
        out = capsys.readouterr().out
        assert "MQP" in out and "MWK" in out and "MQWK" in out
        assert "penalty" in out

    def test_refine_single_algorithm(self, capsys):
        code = main(["refine", "-n", "500", "-k", "5", "--rank", "21",
                     "--algorithm", "mqp"])
        assert code == 0
        out = capsys.readouterr().out
        assert "MQP" in out and "MQWK" not in out

    def test_refine_with_explanation(self, capsys):
        code = main(["refine", "-n", "500", "-k", "5", "--rank", "21",
                     "--algorithm", "mqp", "--explain"])
        assert code == 0
        assert "q ranks 21" in capsys.readouterr().out

    def test_refine_multiple_whynot(self, capsys):
        code = main(["refine", "-n", "500", "-k", "5", "--rank", "21",
                     "--wm-size", "2", "--algorithm", "mwk",
                     "--sample-size", "30"])
        assert code == 0
        assert "k_max" in capsys.readouterr().out


class TestQuery:
    def test_query_runs(self, capsys):
        code = main(["query", "-n", "500", "-k", "5", "--rank", "21",
                     "--panel", "50"])
        assert code == 0
        out = capsys.readouterr().out
        assert "reverse top-5" in out

    def test_query_dataset_choice_validated(self):
        with pytest.raises(SystemExit):
            main(["query", "--dataset", "nope"])


class TestBench:
    def test_bench_requires_known_figure(self):
        with pytest.raises(SystemExit):
            main(["bench", "fig99"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            main([])


class TestPlot:
    def test_plot_2d(self, capsys):
        code = main(["refine", "-n", "300", "-d", "2", "-k", "5",
                     "--rank", "21", "--algorithm", "mqp", "--plot"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Q" in out and "░" in out

    def test_plot_rejected_beyond_2d(self, capsys):
        code = main(["refine", "-n", "300", "-d", "3", "-k", "5",
                     "--rank", "21", "--algorithm", "mqp", "--plot"])
        assert code == 0
        assert "requires 2-dimensional" in capsys.readouterr().out
