"""Property-based tests (hypothesis) on core invariants.

Each property captures a theorem or definition of the paper rather
than an implementation detail:

* dominance is a strict partial order;
* ranks from the (D, I) partition match full-scan ranks (Section 4.3);
* BRS equals sequential scan on arbitrary data (BRS correctness);
* any point of the safe-region system keeps q in every why-not top-k
  (Definition 7 / Lemma 3);
* MQP's answer is feasible and no sampled safe point is closer
  (optimality certificate);
* MWK/MQWK refinements are always *valid* (refined vectors admit q)
  and their penalties bounded as Lemmas 4-6 dictate.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.incomparable import find_incomparable
from repro.core.mqp import modify_query_point
from repro.core.mwk import modify_weights_and_k
from repro.core.penalty import penalty_weights_k
from repro.core.safe_region import safe_region_system
from repro.core.sampling import ranks_under_weights
from repro.core.types import WhyNotQuery
from repro.geometry.dominance import dominates, incomparable
from repro.index import RTree
from repro.topk.brs import BRSEngine
from repro.topk.scan import rank_of_scan, topk_scan

# ---------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------

_dims = st.integers(min_value=2, max_value=4)


def _points(n_min=5, n_max=60):
    return _dims.flatmap(lambda d: arrays(
        np.float64, st.tuples(st.integers(n_min, n_max), st.just(d)),
        elements=st.floats(0.0, 1.0, allow_nan=False, width=32),
    ))


def _point(dim):
    return arrays(np.float64, (dim,),
                  elements=st.floats(0.0, 1.0, allow_nan=False,
                                     width=32))


def _weight(dim):
    # 0.015625 = 2**-6 is exactly representable at width 32.
    return arrays(
        np.float64, (dim,),
        elements=st.floats(0.015625, 1.0, allow_nan=False, width=32),
    ).map(lambda v: v / v.sum())


# ---------------------------------------------------------------------
# Dominance: strict partial order
# ---------------------------------------------------------------------

@given(_dims.flatmap(lambda d: st.tuples(_point(d), _point(d))))
def test_dominance_asymmetric(pair):
    a, b = pair
    assert not (dominates(a, b) and dominates(b, a))


@given(_dims.flatmap(lambda d: st.tuples(_point(d), _point(d),
                                         _point(d))))
def test_dominance_transitive(triple):
    a, b, c = triple
    if dominates(a, b) and dominates(b, c):
        assert dominates(a, c)


@given(_dims.flatmap(lambda d: st.tuples(_point(d), _point(d),
                                         _weight(d))))
def test_dominance_implies_score_order(args):
    """If a dominates b, a scores no worse under any weighting vector."""
    a, b, w = args
    if dominates(a, b):
        assert float(w @ a) <= float(w @ b) + 1e-12


@given(_dims.flatmap(lambda d: st.tuples(_point(d), _point(d))))
def test_incomparable_symmetric(pair):
    a, b = pair
    assert incomparable(a, b) == incomparable(b, a)


# ---------------------------------------------------------------------
# Rank consistency: partition-based ranks == full-scan ranks
# ---------------------------------------------------------------------

@settings(max_examples=40, deadline=None)
@given(_points(), st.data())
def test_partition_rank_equals_scan_rank(pts, data):
    d = pts.shape[1]
    q = data.draw(_point(d))
    w = data.draw(_weight(d))
    res = find_incomparable(pts, q)
    inc = pts[res.incomparable_ids]
    dom = pts[res.dominating_ids]
    got = ranks_under_weights(w.reshape(1, -1), inc, dom, q)[0]
    assert got == rank_of_scan(pts, w, q)


# ---------------------------------------------------------------------
# BRS == scan on arbitrary data
# ---------------------------------------------------------------------

@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(_points(n_min=8), st.data())
def test_brs_equals_scan(pts, data):
    d = pts.shape[1]
    w = data.draw(_weight(d))
    k = data.draw(st.integers(1, len(pts)))
    tree = RTree(pts, capacity=5)
    brs_ids = BRSEngine(tree).topk(w, k)
    scan_ids = topk_scan(pts, w, k)
    # Scores must match element-wise (ids may differ only at ties).
    assert np.allclose(pts[brs_ids] @ w, pts[scan_ids] @ w)


# ---------------------------------------------------------------------
# Safe region: Definition 7
# ---------------------------------------------------------------------

@settings(max_examples=25, deadline=None)
@given(_points(n_min=10), st.data())
def test_safe_region_membership_implies_topk(pts, data):
    d = pts.shape[1]
    w = data.draw(_weight(d))
    k = data.draw(st.integers(1, max(1, len(pts) // 2)))
    q = np.asarray(pts.max(axis=0))          # a clearly-losing product
    if rank_of_scan(pts, w, q) <= k:
        return                               # not a why-not case
    system = safe_region_system(pts, q, w.reshape(1, -1), k)
    cand = data.draw(_point(d)) * q
    if system.contains(cand, atol=1e-12):
        assert rank_of_scan(pts, w, cand) <= k


# ---------------------------------------------------------------------
# MQP: feasibility + no sampled point in the region beats it
# ---------------------------------------------------------------------

@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(_points(n_min=20, n_max=50), st.data())
def test_mqp_feasible_and_locally_optimal(pts, data):
    d = pts.shape[1]
    w = data.draw(_weight(d))
    q = np.asarray(pts.max(axis=0)) * 0.95 + 0.05
    k = 3
    if rank_of_scan(pts, w, q) <= k:
        return
    query = WhyNotQuery(points=pts, q=q, k=k, why_not=w.reshape(1, -1))
    res = modify_query_point(query)
    # Feasible:
    assert rank_of_scan(pts, w, res.q_refined) <= k
    assert np.all(res.q_refined <= q + 1e-9)
    # No sampled safe point closer to q:
    system = safe_region_system(pts, q, w.reshape(1, -1), k)
    best = float(np.linalg.norm(res.q_refined - q))
    rng = np.random.default_rng(0)
    for cand in rng.random((200, d)) * q:
        if system.contains(cand, atol=1e-12):
            assert np.linalg.norm(cand - q) >= best - 1e-6


# ---------------------------------------------------------------------
# MWK: validity + Lemma 4/5 bounds
# ---------------------------------------------------------------------

@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(_points(n_min=20, n_max=50), st.data())
def test_mwk_valid_and_bounded(pts, data):
    d = pts.shape[1]
    w = data.draw(_weight(d))
    q = np.asarray(pts.max(axis=0)) * 0.9 + 0.1
    k = 2
    if rank_of_scan(pts, w, q) <= k:
        return
    query = WhyNotQuery(points=pts, q=q, k=k, why_not=w.reshape(1, -1))
    res = modify_weights_and_k(query, sample_size=60,
                               rng=np.random.default_rng(3))
    # Validity: every refined vector admits q at the refined k.
    for w_ref in res.weights_refined:
        assert rank_of_scan(pts, w_ref, q) <= res.k_refined
    # Lemma 4: k' never exceeds k'_max; never drops below k.
    assert k <= res.k_refined <= res.k_max
    # Pure-k fallback bound: penalty <= alpha.
    assert res.penalty <= 0.5 + 1e-12
    # Penalty self-consistency with the model.
    recomputed = penalty_weights_k(
        query.why_not, res.weights_refined, k, res.k_refined, res.k_max)
    assert abs(recomputed - res.penalty) < 1e-9


# ---------------------------------------------------------------------
# QP solver: KKT certificates on random strictly-feasible problems
# ---------------------------------------------------------------------

@settings(max_examples=25, deadline=None)
@given(st.integers(2, 5), st.integers(1, 6), st.integers(0, 10_000))
def test_qp_solver_kkt_certificate(n, m, seed):
    from repro.qp import solve_qp

    rng = np.random.default_rng(seed)
    h_mat = 2.0 * np.eye(n)
    c_vec = rng.normal(size=n)
    g_mat = rng.normal(size=(m, n))
    h_vec = rng.random(m) + 0.5          # origin strictly feasible
    res = solve_qp(h_mat, c_vec, g_mat, h_vec)
    assert res.ok
    assert res.kkt_residual < 1e-5
    # Primal feasibility of the returned point.
    assert np.all(g_mat @ res.x <= h_vec + 1e-6)
    # Dual feasibility.
    assert np.all(res.dual_ineq >= -1e-9)


# ---------------------------------------------------------------------
# Audit: algorithm outputs always audit as valid
# ---------------------------------------------------------------------

@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(_points(n_min=25, n_max=50), st.data())
def test_algorithm_outputs_audit_valid(pts, data):
    from repro.core.audit import audit_result
    from repro.core.mwk import modify_weights_and_k as mwk

    d = pts.shape[1]
    w = data.draw(_weight(d))
    q = np.asarray(pts.max(axis=0)) * 0.9 + 0.1
    k = 2
    if rank_of_scan(pts, w, q) <= k:
        return
    query = WhyNotQuery(points=pts, q=q, k=k, why_not=w.reshape(1, -1))
    mqp_res = modify_query_point(query)
    assert audit_result(query, mqp_res).valid
    mwk_res = mwk(query, sample_size=40, rng=np.random.default_rng(1))
    assert audit_result(query, mwk_res).valid


# ---------------------------------------------------------------------
# Exact oracle: grid search can never beat it
# ---------------------------------------------------------------------

@settings(max_examples=10, deadline=None)
@given(st.integers(0, 1000))
def test_exact_oracle_beats_grid(seed):
    from repro.core.exact import exact_mwk_2d
    from repro.core.penalty import penalty_weights_k

    rng = np.random.default_rng(seed)
    pts = rng.random((60, 2))
    w0 = rng.dirichlet(np.ones(2))
    q = rng.random(2) * 0.6 + 0.3
    k = 3
    if rank_of_scan(pts, w0, q) <= k:
        return
    oracle = exact_mwk_2d(pts, q, w0, k)
    for w1 in np.linspace(0, 1, 301):
        w = np.array([w1, 1 - w1])
        rank = rank_of_scan(pts, w, q)
        if rank > oracle.k_max:
            continue
        penalty = penalty_weights_k(w0.reshape(1, -1),
                                    w.reshape(1, -1), k, max(k, rank),
                                    oracle.k_max)
        assert penalty >= oracle.penalty - 1e-9


# ---------------------------------------------------------------------
# Geometry: polygon clipping and MBR algebra
# ---------------------------------------------------------------------

@settings(max_examples=50, deadline=None)
@given(st.data())
def test_clipping_never_grows_area(data):
    from repro.geometry.convex2d import Polygon2D, \
        clip_polygon_halfplane

    poly = Polygon2D.box((0.0, 0.0), (1.0, 1.0))
    nx = data.draw(st.floats(-1, 1, allow_nan=False, width=32))
    ny = data.draw(st.floats(-1, 1, allow_nan=False, width=32))
    off = data.draw(st.floats(-2, 2, allow_nan=False, width=32))
    clipped = clip_polygon_halfplane(poly, (nx, ny), off)
    assert clipped.area() <= poly.area() + 1e-9
    # Every vertex of the clipped polygon satisfies the constraint.
    for x, y in clipped.vertices:
        assert nx * x + ny * y <= off + 1e-6


@settings(max_examples=50, deadline=None)
@given(_points(n_min=2, n_max=30), st.data())
def test_mbr_union_covers_members(pts, data):
    from repro.index.mbr import MBR

    split = data.draw(st.integers(1, len(pts) - 1)) \
        if len(pts) > 1 else 1
    a = MBR.of_points(pts[:split])
    b = MBR.of_points(pts[split:]) if split < len(pts) else a
    u = MBR.union([a, b])
    for p in pts:
        assert u.contains_point(p, atol=1e-12)
    assert u.volume() >= max(a.volume(), b.volume()) - 1e-12


@settings(max_examples=30, deadline=None)
@given(_points(n_min=4, n_max=40), st.data())
def test_mbr_min_score_is_lower_bound(pts, data):
    from repro.index.mbr import MBR

    d = pts.shape[1]
    w = data.draw(_weight(d))
    box = MBR.of_points(pts)
    assert np.all(pts @ w >= box.min_score(w) - 1e-9)
    assert np.all(pts @ w <= box.max_score(w) + 1e-9)


# ---------------------------------------------------------------------
# PREFER views: watermark correctness under arbitrary vectors
# ---------------------------------------------------------------------

@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(_points(n_min=10, n_max=60), st.data())
def test_prefer_view_equals_scan(pts, data):
    from repro.topk.views import RankedView

    d = pts.shape[1]
    v = data.draw(_weight(d))
    w = data.draw(_weight(d))
    k = data.draw(st.integers(1, len(pts)))
    view = RankedView(pts, v)
    ids, _ = view.topk(w, k)
    expected = topk_scan(pts, w, k)
    assert np.allclose(pts[ids] @ w, pts[expected] @ w)
