"""Planner: analytic cost model, calibration, plans and EXPLAIN.

The properties pinned here are the ones the admission controller
relies on: estimates are *monotone* in catalogue size and ``k`` (so
ordering decisions are stable before calibration), the calibrated
coefficient *converges* onto real executor timings (so deadline
admission is trustworthy), and the deterministic planner modules
never read a clock (enforced separately by reprolint DET-CLOCK —
timings only flow in through the observer seam).
"""

from __future__ import annotations

import json
import pickle
import time

import numpy as np
import pytest

from repro.core.protocol import (
    Budget,
    CostEstimate,
    Plan,
    Question,
)
from repro.core.registry import algorithm_names
from repro.core.session import Session
from repro.data import independent, preference_set, query_point_with_rank
from repro.planner import (
    CALIBRATION_MIN_OBSERVATIONS,
    CostModel,
    build_plan,
    chunk_schedule,
    render_plan,
    work_units,
)
from repro.planner.model import sample_target

ALGORITHMS = list(algorithm_names())

N = 400
D = 3
K = 10


@pytest.fixture(scope="module")
def points():
    return independent(N, D, seed=23)


def make_typed(points, j, *, rank=41, algorithm="mqp", options=None,
               budget=None):
    w = preference_set(1, D, seed=8100 + j)
    q = query_point_with_rank(points, w[0], rank)
    return Question(q=q, k=K, why_not=w, algorithm=algorithm,
                    options=options or {}, budget=budget)


class TestWorkUnits:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_monotone_in_n(self, algorithm):
        units = [work_units(algorithm, n=n, d=3, k=10, m=1,
                            samples=200)
                 for n in (100, 1_000, 10_000, 100_000)]
        assert units == sorted(units)
        assert units[0] < units[-1]

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_monotone_in_k(self, algorithm):
        units = [work_units(algorithm, n=5_000, d=3, k=k, m=1,
                            samples=200)
                 for k in (1, 5, 20, 100)]
        assert units == sorted(units)
        assert units[0] < units[-1]

    def test_mqwk_sample_is_an_inner_mwk(self):
        cheap = work_units("mqwk", n=5_000, d=3, k=10, m=1,
                           samples=4, options={"sample_size": 100})
        rich = work_units("mqwk", n=5_000, d=3, k=10, m=1,
                          samples=4, options={"sample_size": 800})
        assert rich > cheap


class TestSampleTarget:
    def test_defaults_mirror_the_steppers(self):
        assert sample_target("mqp") == 1
        assert sample_target("mwk") == 800
        assert sample_target("mqwk") == 800

    def test_options_override(self):
        assert sample_target("mwk",
                             options={"sample_size": 300}) == 300
        assert sample_target(
            "mqwk", options={"q_sample_size": 64,
                             "sample_size": 500}) == 64

    def test_sample_budget_caps(self):
        budget = Budget(sample_budget=50)
        assert sample_target("mwk", budget=budget) == 50
        assert sample_target("mqp", budget=budget) == 1


class TestChunkSchedule:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_unbudgeted_is_one_chunk(self, algorithm):
        assert chunk_schedule(algorithm, samples=800) == (800,)

    def test_schedule_sums_to_samples(self):
        for budget in (Budget(sample_budget=500),
                       Budget(deadline_ms=50.0),
                       Budget(deadline_ms=50.0, sample_budget=500)):
            for algorithm in ALGORITHMS:
                schedule = chunk_schedule(algorithm, samples=777,
                                          budget=budget)
                assert sum(schedule) == 777
                assert all(c > 0 for c in schedule)

    def test_deadline_probes_min_chunk_first(self):
        schedule = chunk_schedule("mwk", samples=800,
                                  budget=Budget(deadline_ms=50.0))
        assert schedule[0] == 64          # the probe
        assert set(schedule[1:-1]) <= {256}


class TestEstimateMonotonicity:
    """Satellite: latency non-decreasing in n and in k, per
    algorithm — before *and* after calibration, with and without a
    deadline truncating the estimate."""

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    @pytest.mark.parametrize("calibrate", [False, True])
    def test_latency_monotone_in_n(self, algorithm, calibrate):
        model = CostModel()
        if calibrate:
            for _ in range(CALIBRATION_MIN_OBSERVATIONS):
                model.observe(algorithm=algorithm, n=1_000, d=3,
                              k=10, m=1, samples=200, elapsed=0.01)
        latencies = [
            model.estimate(algorithm=algorithm, n=n, d=3, k=10,
                           m=1).est_latency_ms
            for n in (100, 1_000, 10_000, 100_000)]
        assert latencies == sorted(latencies)
        assert latencies[0] < latencies[-1]

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    @pytest.mark.parametrize("calibrate", [False, True])
    def test_latency_monotone_in_k(self, algorithm, calibrate):
        model = CostModel()
        if calibrate:
            for _ in range(CALIBRATION_MIN_OBSERVATIONS):
                model.observe(algorithm=algorithm, n=5_000, d=3,
                              k=10, m=1, samples=200, elapsed=0.01)
        latencies = [
            model.estimate(algorithm=algorithm, n=5_000, d=3, k=k,
                           m=1).est_latency_ms
            for k in (1, 5, 20, 100)]
        assert latencies == sorted(latencies)
        assert latencies[0] < latencies[-1]

    def test_deadline_truncation_stays_monotone(self):
        model = CostModel()
        for _ in range(CALIBRATION_MIN_OBSERVATIONS):
            model.observe(algorithm="mwk", n=10_000, d=3, k=10, m=1,
                          samples=800, elapsed=0.1)
        budget = Budget(deadline_ms=20.0)
        latencies = [
            model.estimate(algorithm="mwk", n=n, d=3, k=10, m=1,
                           budget=budget).est_latency_ms
            for n in (100, 1_000, 10_000, 100_000, 1_000_000)]
        assert latencies == sorted(latencies)

    def test_deadline_never_raises_the_estimate(self):
        model = CostModel()
        for _ in range(CALIBRATION_MIN_OBSERVATIONS):
            model.observe(algorithm="mwk", n=10_000, d=3, k=10, m=1,
                          samples=800, elapsed=0.1)
        free = model.estimate(algorithm="mwk", n=10_000, d=3, k=10,
                              m=1)
        tight = model.estimate(algorithm="mwk", n=10_000, d=3, k=10,
                               m=1, budget=Budget(deadline_ms=5.0))
        assert tight.est_latency_ms <= free.est_latency_ms
        assert tight.est_samples <= free.est_samples


class TestCalibration:
    def test_uncalibrated_until_min_observations(self):
        model = CostModel()
        for i in range(CALIBRATION_MIN_OBSERVATIONS):
            estimate = model.estimate(algorithm="mwk", n=1_000, d=3,
                                      k=10, m=1)
            assert estimate.calibrated is (
                i >= CALIBRATION_MIN_OBSERVATIONS)
            model.observe(algorithm="mwk", n=1_000, d=3, k=10, m=1,
                          samples=800, elapsed=0.02)
        assert model.estimate(algorithm="mwk", n=1_000, d=3, k=10,
                              m=1).calibrated

    def test_converges_onto_a_synthetic_cost(self):
        """Feed timings that *are* ``coeff * work_units`` and check
        the estimate lands on them exactly (EWMA of a constant)."""
        model = CostModel()
        coeff = 3e-7
        for _ in range(20):
            units = work_units("mwk", n=2_000, d=3, k=10, m=1,
                               samples=800)
            model.observe(algorithm="mwk", n=2_000, d=3, k=10, m=1,
                          samples=800, elapsed=coeff * units)
        estimate = model.estimate(algorithm="mwk", n=2_000, d=3,
                                  k=10, m=1)
        units = work_units("mwk", n=2_000, d=3, k=10, m=1,
                           samples=800)
        assert estimate.est_latency_ms == pytest.approx(
            coeff * units * 1000.0, rel=1e-9)

    def test_converges_within_2x_of_real_executions(self, points):
        """Satellite: after 20 real executions the estimate is
        within 2x of the observed median latency."""
        session = Session(points)
        question = make_typed(points, 0, algorithm="mqp")
        elapsed = []
        for i in range(20):
            answer = session.ask(question, seed=i)
            assert answer.ok
            elapsed.append(answer.elapsed)
        estimate = session.cost_model.estimate(
            algorithm="mqp", n=session.context.n,
            d=session.context.dim, k=question.k,
            m=question.n_why_not, options=question.options)
        assert estimate.calibrated
        observed_ms = float(np.median(elapsed)) * 1000.0
        assert observed_ms / 2 <= estimate.est_latency_ms \
            <= observed_ms * 2

    def test_zero_elapsed_is_ignored(self):
        model = CostModel()
        model.observe(algorithm="mwk", n=1_000, d=3, k=10, m=1,
                      samples=800, elapsed=0.0)
        model.observe(algorithm="mwk", n=1_000, d=3, k=10, m=1,
                      samples=800, elapsed=float("nan"))
        assert model.observations("mwk") == 0

    def test_catalogue_coefficient_beats_global(self):
        model = CostModel()
        for _ in range(5):
            model.observe(algorithm="mwk", n=1_000, d=3, k=10, m=1,
                          samples=800, elapsed=0.01,
                          catalogue="slow")
        fast_units_est = model.estimate(
            algorithm="mwk", n=1_000, d=3, k=10, m=1,
            catalogue="other")
        slow_est = model.estimate(algorithm="mwk", n=1_000, d=3,
                                  k=10, m=1, catalogue="slow")
        # Both fall back to *some* observed coefficient; the unknown
        # catalogue rides the global aggregate.
        assert fast_units_est.observations > 0
        assert slow_est.observations == 5

    def test_state_round_trips_through_disk(self, tmp_path):
        model = CostModel()
        for _ in range(4):
            model.observe(algorithm="mqp", n=1_000, d=3, k=10, m=1,
                          samples=1, elapsed=0.005, catalogue="demo")
        path = tmp_path / "calibration.json"
        model.save(path)
        reloaded = CostModel.load(path)
        before = model.estimate(algorithm="mqp", n=1_000, d=3, k=10,
                                m=1, catalogue="demo")
        after = reloaded.estimate(algorithm="mqp", n=1_000, d=3,
                                  k=10, m=1, catalogue="demo")
        assert after.to_dict() == before.to_dict()
        assert json.loads(path.read_text())["version"] == 1

    def test_describe_is_json_safe(self):
        model = CostModel()
        model.observe(algorithm="mqp", n=100, d=2, k=5, m=1,
                      samples=1, elapsed=0.001, catalogue="demo")
        json.dumps(model.describe())


class TestPlan:
    def test_session_path_by_default(self, points):
        plan = build_plan(make_typed(points, 1), n=N, d=D,
                          model=CostModel())
        assert plan.path == "session"
        assert plan.workers == 0 and plan.shards == 1
        assert isinstance(plan.cost, CostEstimate)
        assert sum(plan.chunk_schedule) == plan.cost.est_samples

    def test_pooled_chooses_worker_or_scatter_gather(self, points):
        model = CostModel()
        sharded = build_plan(make_typed(points, 2, algorithm="mwk"),
                             n=N, d=D, model=model, workers=4,
                             shards=4, pooled=True)
        assert sharded.path == "scatter-gather"
        assert sharded.shards == 4
        # use_rtree=False has no shard plan (gemm/gemv float drift),
        # so the question runs whole on one worker.
        whole = build_plan(
            make_typed(points, 3, algorithm="mqp",
                       options={"use_rtree": False}),
            n=N, d=D, model=model, workers=4, shards=4, pooled=True)
        assert whole.path == "worker"
        assert whole.shards == 1
        unsharded = build_plan(make_typed(points, 3, algorithm="mwk"),
                               n=N, d=D, model=model, workers=4,
                               shards=1, pooled=True)
        assert unsharded.path == "worker"

    def test_plan_round_trips_and_pickles(self, points):
        plan = build_plan(
            make_typed(points, 4, algorithm="mwk",
                       budget=Budget(deadline_ms=40.0)),
            n=N, d=D, model=CostModel(), catalogue="demo",
            catalogue_version=3)
        again = Plan.from_dict(plan.to_dict())
        assert again.to_dict() == plan.to_dict()
        assert pickle.loads(pickle.dumps(plan)).to_dict() \
            == plan.to_dict()

    def test_render_mentions_the_load_bearing_facts(self, points):
        question = make_typed(points, 5, algorithm="mwk",
                              budget=Budget(deadline_ms=40.0))
        plan = build_plan(question, n=N, d=D, model=CostModel(),
                          catalogue="demo", catalogue_version=2)
        text = render_plan(plan, budget=question.budget)
        assert "PLAN-ROOT SINK" in text
        assert "01:REFINE [MWK, deadline=40ms]" in text
        assert "00:SCAN [in-process session]" in text
        assert "analytic prior" in text
        assert "'demo' v2" in text
        assert "chunk schedule:" in text

    def test_render_shows_calibration_state(self, points):
        model = CostModel()
        for _ in range(CALIBRATION_MIN_OBSERVATIONS):
            model.observe(algorithm="mqp", n=N, d=D, k=K, m=1,
                          samples=1, elapsed=0.004)
        text = render_plan(build_plan(make_typed(points, 6), n=N,
                                      d=D, model=model))
        assert "calibrated (3 observation(s))" in text


class TestSessionIntegration:
    def test_ask_feeds_the_cost_model(self, points):
        session = Session(points)
        assert session.cost_model.observations("mqp") == 0
        answer = session.ask(make_typed(points, 7), seed=1)
        assert answer.ok
        assert session.cost_model.observations("mqp") == 1

    def test_ask_batch_feeds_the_cost_model(self, points):
        session = Session(points)
        questions = [make_typed(points, 8 + j) for j in range(3)]
        answers = session.ask_batch(questions, seed=2)
        assert all(a.ok for a in answers)
        assert session.cost_model.observations("mqp") == 3

    def test_explain_plan_does_not_execute(self, points):
        session = Session(points)
        plan = session.explain_plan(make_typed(points, 11))
        assert plan.path == "session"
        assert plan.catalogue_version == session.catalogue_version
        assert session.cost_model.observations("mqp") == 0

    def test_explained_latency_within_2x_after_warmup(self, points):
        """Acceptance: the EXPLAIN estimate is within 2x of a
        subsequently measured execution."""
        session = Session(points)
        question = make_typed(points, 12, algorithm="mqp")
        for i in range(10):
            session.ask(question, seed=20 + i)
        plan = session.explain_plan(question)
        assert plan.cost.calibrated
        start = time.perf_counter()
        session.ask(question, seed=99)
        measured_ms = (time.perf_counter() - start) * 1000.0
        assert measured_ms / 2 <= plan.cost.est_latency_ms \
            <= measured_ms * 2
