"""Kernel-equivalence tests: ``engine.kernels`` vs. the legacy paths.

The engine layer consolidated the score/rank loops that used to live
in ``topk/scan.py``, ``rtopk/bichromatic.py``, ``core/sampling.py``
and ``core/types.py``.  These tests pin the kernels to independent
oracles (brute-force NumPy, BRS on the R-tree, the monolithic
un-chunked formulas) on random datasets, including adversarially
small chunk budgets so the chunked and un-chunked paths are both
exercised.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.incomparable import find_incomparable
from repro.core.sampling import ranks_under_weights
from repro.engine import kernels
from repro.index.rtree import RTree
from repro.topk.brs import BRSEngine
from repro.topk.scan import RANK_EPS, rank_of_scan, topk_scan


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(7)
    points = rng.random((400, 4))
    weights = rng.dirichlet(np.ones(4), size=60)
    q = rng.random(4)
    return points, weights, q


def brute_rank(points, w, q):
    scores = points @ w
    return 1 + int(np.count_nonzero(scores < float(w @ q) - RANK_EPS))


class TestScoreMatrix:
    def test_matches_blas(self, data):
        points, weights, _ = data
        expected = weights @ points.T
        np.testing.assert_allclose(
            kernels.score_matrix(weights, points), expected)

    @pytest.mark.parametrize("chunk_floats", [1, 7, 401, 10_000])
    def test_chunking_is_invisible(self, data, chunk_floats):
        # Different block shapes take different BLAS paths, which may
        # differ in the last ulp (the reason RANK_EPS exists) — so
        # allclose at float64 precision, not bitwise equality.
        points, weights, _ = data
        np.testing.assert_allclose(
            kernels.score_matrix(weights, points,
                                 chunk_floats=chunk_floats),
            kernels.score_matrix(weights, points),
            rtol=1e-14, atol=1e-15)

    def test_out_buffer(self, data):
        points, weights, _ = data
        buf = np.empty((100, 500))
        view = kernels.score_matrix(weights, points, out=buf)
        assert view.shape == (len(weights), len(points))
        assert view.base is buf
        np.testing.assert_allclose(view, weights @ points.T)

    def test_out_buffer_too_small(self, data):
        points, weights, _ = data
        with pytest.raises(ValueError, match="too small"):
            kernels.score_matrix(weights, points,
                                 out=np.empty((2, 2)))

    def test_block_iteration_covers_everything(self, data):
        points, weights, _ = data
        seen = []
        for start, stop, block in kernels.iter_score_blocks(
                weights, points, chunk_floats=800):
            assert block.shape == (stop - start, len(points))
            seen.append((start, stop))
        assert seen[0][0] == 0 and seen[-1][1] == len(weights)
        assert all(a[1] == b[0] for a, b in zip(seen, seen[1:]))


class TestTopk:
    def test_matches_full_sort(self, data):
        points, weights, _ = data
        for w in weights[:10]:
            scores = points @ w
            full = np.lexsort((np.arange(len(points)), scores))
            np.testing.assert_array_equal(
                kernels.topk_ids(points, w, 15), full[:15])

    def test_matches_legacy_scan(self, data):
        points, weights, _ = data
        for w in weights[:10]:
            np.testing.assert_array_equal(
                kernels.topk_ids(points, w, 7),
                topk_scan(points, w, 7))

    def test_k_clamped_and_validated(self, data):
        points, _, _ = data
        assert len(kernels.topk_ids(points, np.full(4, 0.25),
                                    10_000)) == len(points)
        with pytest.raises(ValueError):
            kernels.topk_ids(points, np.full(4, 0.25), 0)


class TestKthScoresBatch:
    def test_matches_brs(self, data):
        points, weights, _ = data
        engine = BRSEngine(RTree(points, capacity=16))
        ids, scores = kernels.kth_scores_batch(points, weights, k=9)
        for i, w in enumerate(weights):
            pid, sc = engine.kth_point(w, 9)
            assert ids[i] == pid
            assert scores[i] == pytest.approx(sc, abs=1e-12)

    @pytest.mark.parametrize("chunk_floats", [13, 5_000])
    def test_chunking_is_invisible(self, data, chunk_floats):
        points, weights, _ = data
        base = kernels.kth_scores_batch(points, weights, k=5)
        small = kernels.kth_scores_batch(points, weights, k=5,
                                         chunk_floats=chunk_floats)
        np.testing.assert_array_equal(base[0], small[0])
        # Scores may differ in the last ulp across BLAS block shapes.
        np.testing.assert_allclose(base[1], small[1], rtol=1e-14)

    def test_tie_break_matches_legacy_scan(self):
        # Three identical points: which two argpartition selects is
        # version-dependent, but the k-th must match the legacy
        # per-vector path bit-for-bit, and the (score, id) tie-break
        # never yields the smallest id when all three tie.
        from repro.topk.scan import kth_point_scan

        points = np.zeros((3, 2)) + 0.5
        ids, scores = kernels.kth_scores_batch(points, [[0.5, 0.5]],
                                               k=2)
        legacy_id, legacy_score = kth_point_scan(points, [0.5, 0.5], 2)
        assert ids[0] == legacy_id
        assert scores[0] == legacy_score
        assert ids[0] in (1, 2)

    def test_tie_straddling_partition_boundary(self):
        """Regression: ties across the k-th position must resolve by
        (score, id), not by whichever subset argpartition selected.

        With scores [1, 1, 1] and k=2 the ascending (score, id) order
        is (1,0), (1,1), (1,2) — the 2nd is id 1, but the old
        argpartition-based selection could return id 2.
        """
        points = np.ones((3, 2)) * 0.5
        ids, scores = kernels.kth_scores_batch(points, [[1.0, 1.0]],
                                               k=2)
        assert ids[0] == 1
        assert scores[0] == 1.0

    @pytest.mark.parametrize("k", [1, 2, 3, 4, 5, 7, 8])
    def test_duplicate_scores_cross_check_topk(self, k):
        """kth_scores_batch == last of topk_ids == brute lexsort, on
        a dataset engineered so score ties straddle every boundary."""
        rng = np.random.default_rng(3)
        # 8 points but only 3 distinct score levels under w=(1, 1):
        # heavy duplication guarantees boundary-straddling ties.
        levels = rng.choice([0.2, 0.5, 0.9], size=8)
        points = np.column_stack([levels * 0.25, levels * 0.75])
        weights = np.array([[1.0, 1.0], [2.0, 2.0]])
        ids, scores = kernels.kth_scores_batch(points, weights, k=k)
        for i, w in enumerate(weights):
            row = points @ w
            order = np.lexsort((np.arange(len(points)), row))
            assert ids[i] == order[k - 1]
            assert scores[i] == row[order[k - 1]]
            top = kernels.topk_ids(points, w, k)
            np.testing.assert_array_equal(top, order[:k])
            assert ids[i] == top[-1]

    def test_small_dataset_rejected(self, data):
        points, weights, _ = data
        with pytest.raises(ValueError, match="fewer than"):
            kernels.kth_scores_batch(points[:3], weights, k=5)


class TestRanks:
    def test_rank_of_matches_scan(self, data):
        points, weights, q = data
        for w in weights[:20]:
            assert kernels.rank_of(points, w, q) == \
                rank_of_scan(points, w, q) == brute_rank(points, w, q)

    def test_ranks_batch_matches_loop(self, data):
        points, weights, q = data
        batched = kernels.ranks_batch(weights, points, q)
        expected = [brute_rank(points, w, q) for w in weights]
        np.testing.assert_array_equal(batched, expected)

    def test_ranks_batch_matches_brs(self, data):
        points, weights, q = data
        engine = BRSEngine(RTree(points, capacity=16))
        batched = kernels.ranks_batch(weights, points, q)
        for i, w in enumerate(weights):
            assert batched[i] == engine.rank_of(w, q)

    @pytest.mark.parametrize("chunk_floats", [1, 997])
    def test_chunking_is_invisible(self, data, chunk_floats):
        points, weights, q = data
        np.testing.assert_array_equal(
            kernels.ranks_batch(weights, points, q,
                                chunk_floats=chunk_floats),
            kernels.ranks_batch(weights, points, q))

    def test_partitioned_equals_full(self, data):
        """Ranks from a FindIncom partition == ranks from all points."""
        points, weights, q = data
        inc = find_incomparable(points, q)
        partitioned = kernels.ranks_batch(
            weights, points[inc.incomparable_ids], q,
            dominating=points[inc.dominating_ids])
        np.testing.assert_array_equal(
            partitioned, kernels.ranks_batch(weights, points, q))

    def test_dominating_as_int(self, data):
        points, weights, q = data
        inc = find_incomparable(points, q)
        trusted = kernels.ranks_batch(
            weights, points[inc.incomparable_ids], q,
            dominating=inc.n_dominating)
        np.testing.assert_array_equal(
            trusted, kernels.ranks_batch(weights, points, q))

    def test_empty_incomparable_set(self, data):
        _, weights, q = data
        ranks = kernels.ranks_batch(weights,
                                    np.empty((0, 4)), q,
                                    dominating=5)
        np.testing.assert_array_equal(ranks, np.full(len(weights), 6))

    def test_legacy_sampling_wrapper_agrees(self, data):
        points, weights, q = data
        inc = find_incomparable(points, q)
        np.testing.assert_array_equal(
            ranks_under_weights(weights, points[inc.incomparable_ids],
                                points[inc.dominating_ids], q),
            kernels.ranks_batch(weights, points, q))

    def test_beats_count_threshold_validation(self, data):
        points, weights, _ = data
        with pytest.raises(ValueError, match="one threshold"):
            kernels.beats_count(weights, points, np.zeros(3))
