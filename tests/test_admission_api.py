"""Admission control: deadline/quota/queue policies and the typed 429.

Half of this module drives the :class:`AdmissionController` directly
(with a fake clock, so token-bucket math is exact and instant); the
other half goes through a real HTTP server to pin the wire contract:
a shed request gets a typed 429 carrying the
:class:`~repro.core.protocol.AdmissionDecision` and — for quota and
queue sheds — a ``Retry-After`` header, while every *admitted*
request's Answer payload is byte-identical to an unthrottled
server's.
"""

from __future__ import annotations

import http.server
import json
import threading
import time

import pytest

from repro.core.protocol import (
    SCHEMA_VERSION,
    AdmissionDecision,
    Budget,
    Question,
)
from repro.data import independent, preference_set, query_point_with_rank
from repro.planner import CALIBRATION_MIN_OBSERVATIONS, CostModel
from repro.service import (
    CatalogueRegistry,
    ServiceClient,
    ServiceError,
    create_server,
)
from repro.service.admission import AdmissionController

N = 400
D = 3
K = 10


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds: float):
        self.now += seconds


def make_typed(points, j, *, rank=41, algorithm="mqp", budget=None,
               priority=0, tenant=None):
    w = preference_set(1, D, seed=9200 + j)
    q = query_point_with_rank(points, w[0], rank)
    return Question(q=q, k=K, why_not=w, algorithm=algorithm,
                    budget=budget, priority=priority, tenant=tenant)


def calibrated_estimate(latency_ms: float):
    """A calibrated CostEstimate predicting ``latency_ms``."""
    model = CostModel()
    from repro.planner import work_units

    units = work_units("mqp", n=N, d=D, k=K, m=1, samples=1)
    coeff = latency_ms / 1000.0 / units
    for _ in range(CALIBRATION_MIN_OBSERVATIONS):
        model.observe(algorithm="mqp", n=N, d=D, k=K, m=1,
                      samples=1, elapsed=coeff * units)
    estimate = model.estimate(algorithm="mqp", n=N, d=D, k=K, m=1)
    assert estimate.calibrated
    return estimate


class TestControllerDefaults:
    def test_unconfigured_controller_admits_everything(self):
        controller = AdmissionController()
        for _ in range(100):
            decision = controller.decide()
            assert decision.admitted and decision.reason == "ok"
        stats = controller.describe()
        assert stats["admitted"] == 100
        assert stats["rejected"] == {"deadline": 0, "quota": 0,
                                     "queue-full": 0}

    def test_decision_round_trips(self):
        decision = AdmissionDecision(
            admitted=False, reason="quota", detail="over",
            retry_after_ms=1500.0, priority=3, tenant="team-a")
        again = AdmissionDecision.from_dict(decision.to_dict())
        assert again.to_dict() == decision.to_dict()
        assert decision.to_dict()["schema_version"] == SCHEMA_VERSION

    def test_config_validated(self):
        with pytest.raises(ValueError, match="max_concurrent"):
            AdmissionController(max_concurrent=0)
        with pytest.raises(ValueError, match="tenant_rate"):
            AdmissionController(tenant_rate=-1.0)


class TestQuota:
    def test_bucket_empties_and_refills_exactly(self):
        clock = FakeClock()
        controller = AdmissionController(tenant_rate=2.0,
                                         tenant_burst=3.0,
                                         clock=clock)
        for _ in range(3):
            assert controller.decide(tenant="a").admitted
        shed = controller.decide(tenant="a")
        assert not shed.admitted and shed.reason == "quota"
        # One token refills in 1/rate = 0.5s — the hint is exact.
        assert shed.retry_after_ms == pytest.approx(500.0)
        clock.advance(0.5)
        assert controller.decide(tenant="a").admitted

    def test_tenants_are_isolated(self):
        clock = FakeClock()
        controller = AdmissionController(tenant_rate=1.0,
                                         tenant_burst=1.0,
                                         clock=clock)
        assert controller.decide(tenant="a").admitted
        assert not controller.decide(tenant="a").admitted
        assert controller.decide(tenant="b").admitted
        assert controller.decide(tenant=None).admitted  # own bucket

    def test_batch_weight_drains_its_question_count(self):
        clock = FakeClock()
        controller = AdmissionController(tenant_rate=1.0,
                                         tenant_burst=10.0,
                                         clock=clock)
        assert controller.decide(tenant="a", weight=8).admitted
        shed = controller.decide(tenant="a", weight=8)
        assert shed.reason == "quota"
        # 6 missing tokens at 1/s.
        assert shed.retry_after_ms == pytest.approx(6000.0)


class TestDeadline:
    def test_rejects_only_calibrated_overruns(self):
        estimate = calibrated_estimate(50.0)
        budget = Budget(deadline_ms=10.0)
        off = AdmissionController()
        assert off.decide(estimate=estimate, budget=budget).admitted
        on = AdmissionController(enforce_deadlines=True)
        shed = on.decide(estimate=estimate, budget=budget)
        assert not shed.admitted and shed.reason == "deadline"
        assert shed.estimated_ms == pytest.approx(
            estimate.est_latency_ms)
        assert shed.deadline_ms == 10.0
        # Retrying an unmeetable deadline cannot help.
        assert shed.retry_after_ms is None

    def test_uncalibrated_estimates_never_reject(self):
        model = CostModel()
        estimate = model.estimate(algorithm="mqp", n=10**7, d=8,
                                  k=100, m=4)
        assert not estimate.calibrated
        controller = AdmissionController(enforce_deadlines=True)
        decision = controller.decide(estimate=estimate,
                                     budget=Budget(deadline_ms=0.001))
        assert decision.admitted

    def test_meetable_deadline_admitted(self):
        estimate = calibrated_estimate(5.0)
        controller = AdmissionController(enforce_deadlines=True)
        assert controller.decide(estimate=estimate,
                                 budget=Budget(deadline_ms=50.0)
                                 ).admitted


class TestQueue:
    def test_sheds_when_queue_full(self):
        controller = AdmissionController(max_concurrent=1,
                                         max_queue=0)
        with controller.slot():
            shed = controller.decide()
            assert not shed.admitted and shed.reason == "queue-full"
            assert shed.retry_after_ms is not None
        assert controller.decide().admitted

    def test_admits_while_headroom(self):
        controller = AdmissionController(max_concurrent=2,
                                         max_queue=5)
        with controller.slot():
            assert controller.decide().admitted

    def test_priority_order_with_periodic_aging(self):
        """Waiters drain highest-priority-first, but every
        ``fairness_window``-th grant goes to the oldest waiter, so
        the low-priority request is served mid-stream, not last."""
        controller = AdmissionController(max_concurrent=1,
                                         fairness_window=2)
        order = []
        lock = threading.Lock()
        release_first = threading.Event()

        def hold():
            with controller.slot():
                release_first.wait(timeout=10)

        def run(priority):
            with controller.slot(priority=priority):
                with lock:
                    order.append(priority)

        holder = threading.Thread(target=hold)
        holder.start()
        while controller.describe()["executing"] != 1:
            time.sleep(0.005)
        threads = []
        # The low-priority waiter arrives FIRST (oldest), then four
        # high-priority ones pile in behind it.
        for priority in (0, 10, 10, 10, 10):
            thread = threading.Thread(target=run, args=(priority,))
            thread.start()
            threads.append(thread)
            while controller.describe()["queued"] != len(threads):
                time.sleep(0.005)
        release_first.set()
        for thread in threads:
            thread.join(timeout=10)
        holder.join(timeout=10)
        # Two priority grants, then the aging grant rescues the
        # oldest (priority-0) waiter, then the remaining two.
        assert order == [10, 10, 0, 10, 10]
        assert controller.describe()["aging_grants"] == 1

    def test_low_priority_never_starves(self):
        """Sustained high-priority arrivals cannot hold the slot
        forever: the aging grant bounds the low-priority wait."""
        controller = AdmissionController(max_concurrent=1,
                                         fairness_window=4)
        done = threading.Event()
        grants_before_low = []

        def low():
            with controller.slot(priority=0):
                grants_before_low.append(
                    controller.describe()["grants"])
            done.set()

        stop = threading.Event()

        def high_pressure():
            while not stop.is_set():
                with controller.slot(priority=100):
                    pass

        with controller.slot():   # force the low waiter to queue
            low_thread = threading.Thread(target=low)
            low_thread.start()
            while controller.describe()["queued"] != 1:
                time.sleep(0.005)
            pressure = [threading.Thread(target=high_pressure)
                        for _ in range(4)]
            for thread in pressure:
                thread.start()
        assert done.wait(timeout=30), \
            "low-priority waiter starved behind high-priority load"
        stop.set()
        low_thread.join(timeout=10)
        for thread in pressure:
            thread.join(timeout=10)


@pytest.fixture(scope="module")
def points():
    return independent(N, D, seed=17)


@pytest.fixture(scope="module")
def registry(points):
    reg = CatalogueRegistry()
    reg.register("demo", points, meta={"kind": "independent"})
    return reg


def serve(registry, **kwargs):
    server = create_server(registry, **kwargs)
    thread = threading.Thread(target=server.serve_forever,
                              daemon=True)
    thread.start()
    return server, thread


@pytest.fixture()
def quota_server(registry):
    server, thread = serve(registry, tenant_rate=0.5, tenant_burst=3)
    yield server
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


class TestHTTPAdmission:
    def test_quota_flood_gets_typed_429(self, quota_server, points):
        client = ServiceClient(port=quota_server.port)
        question = make_typed(points, 0, tenant="flood")
        for _ in range(3):
            assert client.ask("demo", question).ok
        start = time.perf_counter()
        with pytest.raises(ServiceError) as excinfo:
            client.ask("demo", question)
        shed_seconds = time.perf_counter() - start
        error = excinfo.value
        assert error.status == 429
        assert "quota" in error.message
        assert error.retry_after is not None \
            and error.retry_after >= 1
        decision = AdmissionDecision.from_dict(error.admission)
        assert decision.reason == "quota"
        assert decision.tenant == "flood"
        # Shed requests fail fast — no execution happened.
        assert shed_seconds < 1.0

    def test_batch_weight_counts_questions(self, quota_server,
                                           points):
        client = ServiceClient(port=quota_server.port)
        questions = [make_typed(points, 1 + j, tenant="bulk")
                     for j in range(4)]
        with pytest.raises(ServiceError) as excinfo:
            client.ask_batch("demo", questions)
        assert excinfo.value.status == 429
        assert excinfo.value.admission["reason"] == "quota"

    def test_jobs_are_guarded_too(self, quota_server, points):
        client = ServiceClient(port=quota_server.port)
        questions = [make_typed(points, 5 + j, tenant="jobs")
                     for j in range(4)]
        with pytest.raises(ServiceError) as excinfo:
            client.submit("demo", questions)
        assert excinfo.value.status == 429

    def test_429_body_rides_the_request_schema_version(
            self, quota_server, points):
        client = ServiceClient(port=quota_server.port)
        question = make_typed(points, 9, tenant="versioned")
        payload = {"schema_version": 4, "catalogue": "demo",
                   "question": question.to_dict()}
        for _ in range(3):
            client._request("/answer", payload)
        with pytest.raises(ServiceError) as excinfo:
            client._request("/answer", payload)
        assert excinfo.value.status == 429
        assert excinfo.value.admission is not None

    def test_stats_expose_admission_and_planner(self, quota_server,
                                                points):
        client = ServiceClient(port=quota_server.port)
        stats = client.stats()
        assert stats["admission"]["config"]["tenant_rate"] == 0.5
        assert "rejected" in stats["admission"]
        assert stats["planner"]["min_observations"] \
            == CALIBRATION_MIN_OBSERVATIONS

    def test_admitted_answers_are_byte_identical(self, registry,
                                                 points):
        """Admission shaping must not change what an admitted
        request computes: same payload as an unthrottled server."""
        from repro.core.session import Session

        throttled, thread = serve(registry, max_concurrent=2,
                                  tenant_rate=1000.0,
                                  tenant_burst=1000.0)
        try:
            client = ServiceClient(port=throttled.port)
            question = make_typed(points, 20, priority=7,
                                  tenant="team-a")
            served = client.ask("demo", question, seed=3)
            local = Session(points).ask(question, seed=3)
            strip = lambda payload: {k: v for k, v in payload.items()
                                     if k != "elapsed"}
            assert strip(served.to_dict()) == strip(local.to_dict())
        finally:
            throttled.shutdown()
            throttled.server_close()
            thread.join(timeout=5)

    def test_deadline_enforcement_end_to_end(self, registry, points):
        server, thread = serve(registry, enforce_deadlines=True)
        try:
            client = ServiceClient(port=server.port)
            warm = make_typed(points, 30)
            for seed in range(CALIBRATION_MIN_OBSERVATIONS):
                assert client.ask("demo", warm, seed=seed).ok
            hopeless = make_typed(
                points, 30, budget=Budget(deadline_ms=0.0001))
            with pytest.raises(ServiceError) as excinfo:
                client.ask("demo", hopeless)
            error = excinfo.value
            assert error.status == 429
            assert error.admission["reason"] == "deadline"
            # No Retry-After for an unmeetable deadline.
            assert error.retry_after is None
            # A generous deadline still sails through.
            relaxed = make_typed(points, 30,
                                 budget=Budget(deadline_ms=60_000.0))
            assert client.ask("demo", relaxed).ok
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)


class TestHTTPExplain:
    def test_explain_over_the_wire(self, quota_server, points):
        client = ServiceClient(port=quota_server.port)
        plan, rendered = client.explain(
            "demo", make_typed(points, 40, algorithm="mwk"))
        assert plan.path == "session"
        assert plan.catalogue == "demo"
        assert plan.algorithm == "mwk"
        assert "PLAN-ROOT SINK" in rendered
        assert "00:SCAN [in-process session]" in rendered

    def test_explain_accepts_legacy_flat_body(self, quota_server,
                                              points):
        client = ServiceClient(port=quota_server.port)
        question = make_typed(points, 41)
        response = client._request("/explain", {
            "catalogue": "demo", "q": question.q.tolist(),
            "k": question.k, "why_not": question.why_not.tolist()})
        assert response["plan"]["path"] == "session"
        assert "rendered" in response

    def test_explain_does_not_consume_quota(self, quota_server,
                                            points):
        client = ServiceClient(port=quota_server.port)
        before = client.stats()["admission"]["admitted"]
        client.explain("demo", make_typed(points, 42))
        assert client.stats()["admission"]["admitted"] == before

    def test_explain_unknown_catalogue_is_400(self, quota_server,
                                              points):
        client = ServiceClient(port=quota_server.port)
        with pytest.raises(ServiceError) as excinfo:
            client.explain("nope", make_typed(points, 43))
        assert excinfo.value.status == 400


class _Flaky429Handler(http.server.BaseHTTPRequestHandler):
    """Sheds the first ``shed_count`` POSTs with a typed 429, then
    answers 200 — the shape of a server whose bucket refilled."""

    def do_POST(self):
        self.rfile.read(int(self.headers.get("Content-Length", 0)))
        server = self.server
        if server.seen < server.shed_count:
            server.seen += 1
            body = json.dumps({
                "schema_version": SCHEMA_VERSION,
                "error": "admission rejected (quota): test",
                "admission": AdmissionDecision(
                    admitted=False, reason="quota",
                    retry_after_ms=10.0).to_dict(),
            }).encode("utf-8")
            self.send_response(429)
            self.send_header("Retry-After", "0")
            self.send_header("Content-Length", str(len(body)))
            self.send_header("Content-Type", "application/json")
            self.end_headers()
            self.wfile.write(body)
            return
        body = json.dumps({"schema_version": SCHEMA_VERSION,
                           "echo": True}).encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Length", str(len(body)))
        self.send_header("Content-Type", "application/json")
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *args):   # pragma: no cover - silence
        pass


@pytest.fixture()
def flaky_server():
    server = http.server.ThreadingHTTPServer(("127.0.0.1", 0),
                                             _Flaky429Handler)
    server.shed_count = 1
    server.seen = 0
    thread = threading.Thread(target=server.serve_forever,
                              daemon=True)
    thread.start()
    yield server
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


class TestClientRetry429:
    def test_default_client_surfaces_the_429(self, flaky_server):
        client = ServiceClient(port=flaky_server.server_port)
        with pytest.raises(ServiceError) as excinfo:
            client._request("/answer", {"any": "thing"})
        error = excinfo.value
        assert error.status == 429
        assert error.retry_after == 0.0   # parsed from the header
        assert error.admission["reason"] == "quota"

    def test_retry_429_honors_retry_after_then_succeeds(
            self, flaky_server):
        client = ServiceClient(port=flaky_server.server_port,
                               retry_429=2)
        response = client._request("/answer", {"any": "thing"})
        assert response == {"schema_version": SCHEMA_VERSION,
                            "echo": True}
        assert flaky_server.seen == 1   # shed once, retried once

    def test_retries_exhausted_reraises(self, flaky_server):
        flaky_server.shed_count = 10
        client = ServiceClient(port=flaky_server.server_port,
                               retry_429=2)
        with pytest.raises(ServiceError) as excinfo:
            client._request("/answer", {"any": "thing"})
        assert excinfo.value.status == 429
        assert flaky_server.seen == 3   # initial + 2 retries
