"""Unit tests for repro.geometry.vectors."""

import numpy as np
import pytest

from repro.geometry.vectors import (
    MAX_SIMPLEX_DISTANCE,
    as_array,
    is_valid_weight,
    normalize_weight,
    score,
    score_many,
    score_matrix,
    weight_distance,
)


class TestAsArray:
    def test_converts_list(self):
        out = as_array([1, 2, 3])
        assert out.dtype == np.float64
        assert out.tolist() == [1.0, 2.0, 3.0]

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="finite"):
            as_array([1.0, np.nan])

    def test_rejects_inf(self):
        with pytest.raises(ValueError, match="finite"):
            as_array([np.inf, 0.0])


class TestIsValidWeight:
    def test_accepts_simplex_vector(self):
        assert is_valid_weight([0.3, 0.7])

    def test_accepts_vertex(self):
        assert is_valid_weight([1.0, 0.0, 0.0])

    def test_rejects_bad_sum(self):
        assert not is_valid_weight([0.5, 0.6])

    def test_rejects_negative(self):
        assert not is_valid_weight([-0.1, 1.1])

    def test_rejects_matrix(self):
        assert not is_valid_weight([[0.5, 0.5]])

    def test_rejects_empty(self):
        assert not is_valid_weight([])

    def test_rejects_nan(self):
        assert not is_valid_weight([np.nan, 1.0])

    def test_tolerates_float_noise(self):
        w = np.array([1.0 / 3] * 3)
        assert is_valid_weight(w)


class TestNormalizeWeight:
    def test_l1_normalization(self):
        assert normalize_weight([2.0, 2.0]).tolist() == [0.5, 0.5]

    def test_clips_negatives(self):
        out = normalize_weight([-1.0, 1.0])
        assert out.tolist() == [0.0, 1.0]

    def test_rejects_zero_vector(self):
        with pytest.raises(ValueError, match="all-zero"):
            normalize_weight([0.0, 0.0])

    def test_result_is_valid(self):
        out = normalize_weight([0.2, 5.0, 1.3])
        assert is_valid_weight(out)


class TestScore:
    def test_paper_example(self):
        # Kevin's score of p1 in Figure 1(c): 0.1*2 + 0.9*1 = 1.1
        assert score([0.1, 0.9], [2.0, 1.0]) == pytest.approx(1.1)

    def test_score_many_matches_score(self):
        pts = np.array([[2.0, 1.0], [6.0, 3.0], [1.0, 9.0]])
        w = [0.5, 0.5]
        out = score_many(w, pts)
        assert out.tolist() == [score(w, p) for p in pts]

    def test_score_many_single_point(self):
        out = score_many([0.5, 0.5], [4.0, 4.0])
        assert out.shape == (1,)
        assert out[0] == pytest.approx(4.0)

    def test_score_matrix_shape_and_values(self):
        wts = np.array([[1.0, 0.0], [0.0, 1.0]])
        pts = np.array([[2.0, 3.0], [5.0, 7.0], [1.0, 1.0]])
        mat = score_matrix(wts, pts)
        assert mat.shape == (2, 3)
        assert mat[0].tolist() == [2.0, 5.0, 1.0]
        assert mat[1].tolist() == [3.0, 7.0, 1.0]

    def test_figure1c_full_table(self):
        """Reproduce every score in the paper's Figure 1(c)."""
        pts = np.array([[2, 1], [6, 3], [1, 9], [9, 3], [7, 5],
                        [5, 8], [3, 7], [4, 4]], dtype=float)
        weights = {
            "julia": [0.9, 0.1],
            "tony": [0.5, 0.5],
            "anna": [0.3, 0.7],
            "kevin": [0.1, 0.9],
        }
        expected = {
            "kevin": [1.1, 3.3, 8.2, 3.6, 5.2, 7.7, 6.6, 4.0],
            "julia": [1.9, 5.7, 1.8, 8.4, 6.8, 5.3, 3.4, 4.0],
            "tony": [1.5, 4.5, 5.0, 6.0, 6.0, 6.5, 5.0, 4.0],
            "anna": [1.3, 3.9, 6.6, 4.8, 5.6, 7.1, 5.8, 4.0],
        }
        for name, w in weights.items():
            got = score_many(w, pts)
            assert got == pytest.approx(expected[name]), name


class TestWeightDistance:
    def test_zero_for_identical(self):
        assert weight_distance([0.5, 0.5], [0.5, 0.5]) == 0.0

    def test_euclidean(self):
        assert weight_distance([1.0, 0.0], [0.0, 1.0]) == pytest.approx(
            MAX_SIMPLEX_DISTANCE)

    def test_max_constant(self):
        assert MAX_SIMPLEX_DISTANCE == pytest.approx(np.sqrt(2.0))
