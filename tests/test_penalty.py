"""Unit tests for the penalty models (Equations 1, 3, 4, 5)."""

import numpy as np
import pytest

from repro.core.penalty import (
    DEFAULT_PENALTY,
    PenaltyConfig,
    delta_k,
    delta_weights,
    penalty_joint,
    penalty_query_point,
    penalty_weights_k,
)


class TestEquation1:
    def test_paper_example_qprime(self):
        """q(4,4) -> q'(3,2.5): the paper reports 0.318."""
        assert penalty_query_point([4, 4], [3, 2.5]) == pytest.approx(
            0.318, abs=1e-3)

    def test_paper_example_qdoubleprime(self):
        """q(4,4) -> q''(2.5,3.5): the paper reports 0.279."""
        assert penalty_query_point([4, 4], [2.5, 3.5]) == pytest.approx(
            0.279, abs=1e-3)

    def test_zero_for_unchanged(self):
        assert penalty_query_point([4, 4], [4, 4]) == 0.0

    def test_one_for_origin(self):
        assert penalty_query_point([4, 4], [0, 0]) == pytest.approx(1.0)

    def test_zero_q_raises(self):
        with pytest.raises(ValueError):
            penalty_query_point([0, 0], [1, 1])

    def test_monotone_in_distance(self):
        q = np.array([4.0, 4.0])
        p_near = penalty_query_point(q, [3.9, 3.9])
        p_far = penalty_query_point(q, [3.0, 3.0])
        assert p_near < p_far


class TestEquation3:
    def test_delta_k_increase(self):
        assert delta_k(3, 5) == 2

    def test_delta_k_decrease_is_free(self):
        """The paper: a smaller k' costs nothing (set Δk = 0)."""
        assert delta_k(6, 3) == 0

    def test_delta_weights_sum(self):
        w = np.array([[1.0, 0.0], [0.0, 1.0]])
        w2 = np.array([[0.0, 1.0], [0.0, 1.0]])
        assert delta_weights(w, w2) == pytest.approx(np.sqrt(2.0))

    def test_delta_weights_shape_mismatch(self):
        with pytest.raises(ValueError):
            delta_weights([[0.5, 0.5]], [[0.5, 0.5], [0.4, 0.6]])


class TestPenaltyConfig:
    def test_defaults_are_half(self):
        assert DEFAULT_PENALTY.alpha == DEFAULT_PENALTY.beta == 0.5
        assert DEFAULT_PENALTY.gamma == DEFAULT_PENALTY.lam == 0.5

    def test_rejects_bad_alpha_beta(self):
        with pytest.raises(ValueError):
            PenaltyConfig(alpha=0.7, beta=0.5)

    def test_rejects_bad_gamma_lambda(self):
        with pytest.raises(ValueError):
            PenaltyConfig(gamma=0.9, lam=0.5)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            PenaltyConfig(alpha=-0.5, beta=1.5)


class TestEquation4:
    def test_pure_k_modification_paper(self, paper_missing):
        """Keep Wm, raise k 3 -> 4 with k_max = 4: penalty 0.5.

        This is the paper's second worked alternative in Section 4.3.
        """
        penalty = penalty_weights_k(paper_missing, paper_missing,
                                    k=3, k_refined=4, k_max=4)
        assert penalty == pytest.approx(0.5)

    def test_pure_weight_modification_paper(self, paper_missing):
        """The paper's first alternative: w_kevin -> (0.18, 0.82),
        w_julia -> (0.75, 0.25), k unchanged.

        With ΔWm_max = |Wm|·√2 this model yields ≈0.058 (see DESIGN.md
        on the garbled normalization in the paper's copy, which reports
        0.121 — same order, same ranking of the two alternatives).
        """
        refined = np.array([[0.75, 0.25],    # Julia's refinement
                            [0.18, 0.82]])   # Kevin's refinement
        penalty = penalty_weights_k(paper_missing, refined,
                                    k=3, k_refined=3, k_max=4)
        assert penalty == pytest.approx(0.0575, abs=2e-3)
        # The ordering the paper derives must hold: modifying weights
        # beats modifying k.
        assert penalty < 0.5

    def test_bounds(self, rng):
        """Penalty is in [0, 1] for arbitrary simplex refinements."""
        for _ in range(50):
            m, d = int(rng.integers(1, 5)), int(rng.integers(2, 6))
            w = rng.dirichlet(np.ones(d), size=m)
            w2 = rng.dirichlet(np.ones(d), size=m)
            k = int(rng.integers(1, 20))
            k_max = k + int(rng.integers(1, 30))
            k_ref = int(rng.integers(1, k_max + 1))
            p = penalty_weights_k(w, w2, k, k_ref, k_max)
            assert 0.0 <= p <= 1.0

    def test_degenerate_kmax_equals_k(self, paper_missing):
        p = penalty_weights_k(paper_missing, paper_missing, 3, 3, 3)
        assert p == 0.0

    def test_alpha_beta_blend(self, paper_missing):
        cfg = PenaltyConfig(alpha=1.0, beta=0.0)
        p = penalty_weights_k(paper_missing, paper_missing, 3, 4, 5,
                              cfg)
        assert p == pytest.approx(0.5)   # alpha * 1/2


class TestEquation5:
    def test_zero_when_nothing_changes(self, paper_missing):
        p = penalty_joint([4, 4], [4, 4], paper_missing, paper_missing,
                          3, 3, 4)
        assert p == 0.0

    def test_additive_blend(self, paper_missing):
        p = penalty_joint([4, 4], [2, 2], paper_missing, paper_missing,
                          3, 4, 4)
        # gamma * 0.5 + lam * (alpha * 1.0) = 0.25 + 0.25.
        assert p == pytest.approx(0.5)

    def test_bounded_by_one(self, paper_missing, rng):
        for _ in range(20):
            q2 = rng.random(2) * 4
            w2 = rng.dirichlet(np.ones(2), size=2)
            p = penalty_joint([4, 4], q2, paper_missing, w2, 3,
                              int(rng.integers(1, 10)), 8)
            assert 0.0 <= p <= 1.0
