"""Service layer: registry, HTTP endpoints, wire schema, bounded serving.

The server under test is a real ``ThreadingHTTPServer`` bound to an
ephemeral loopback port and driven through the package's own
:class:`ServiceClient` — the same wire path ``wqrtq serve`` exposes.
This module runs in CI with ``-W error::DeprecationWarning``: it only
uses the typed Question/Answer API (raw dict payloads appear solely
to exercise the server's pre-schema wire compatibility).
"""

from __future__ import annotations

import socket
import threading

import numpy as np
import pytest

from repro.core.protocol import SCHEMA_VERSION, Answer, Question
from repro.core.registry import algorithm_names
from repro.core.session import Session
from repro.data import independent, preference_set, query_point_with_rank
from repro.engine.context import DatasetContext
from repro.engine.executor import answer_question, execute_questions
from repro.service import (
    CatalogueRegistry,
    ServiceClient,
    ServiceConnectionError,
    ServiceError,
    create_server,
)

N = 400
D = 3
K = 10
RANK = 41


@pytest.fixture(scope="module")
def points():
    return independent(N, D, seed=17)


@pytest.fixture(scope="module")
def registry(points):
    reg = CatalogueRegistry()
    reg.register("demo", points, meta={"kind": "independent"})
    reg.register("bounded", points, max_partitions=8,
                 max_box_caches=8)
    return reg


@pytest.fixture(scope="module")
def server(registry):
    srv = create_server(registry)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.shutdown()
    srv.server_close()
    thread.join(timeout=5)


@pytest.fixture(scope="module")
def client(server):
    return ServiceClient(port=server.port)


def make_question(points, j, *, rank=RANK):
    w = preference_set(1, D, seed=7000 + j)
    q = query_point_with_rank(points, w[0], rank)
    return q, K, w


def make_typed(points, j, *, rank=RANK, algorithm="mqp",
               options=None, id=None):
    q, k, w = make_question(points, j, rank=rank)
    return Question(q=q, k=k, why_not=w, algorithm=algorithm,
                    options=options or {}, id=id)


def strip_elapsed(payload: dict) -> dict:
    """An Answer payload minus its (run-dependent) timing."""
    return {key: value for key, value in payload.items()
            if key != "elapsed"}


class TestRegistry:
    def test_names_and_contains(self, registry):
        assert registry.names() == ["bounded", "demo"]
        assert "demo" in registry and "nope" not in registry
        assert len(registry) == 2

    def test_registration_warms_tree(self, registry):
        assert registry.get("demo").stats.tree_builds == 1

    def test_duplicate_name_rejected(self, registry, points):
        with pytest.raises(ValueError, match="already registered"):
            registry.register("demo", points)

    def test_empty_name_rejected(self, points):
        with pytest.raises(ValueError, match="non-empty"):
            CatalogueRegistry().register("", points)

    def test_unknown_name(self, registry):
        with pytest.raises(KeyError, match="unknown catalogue"):
            registry.get("nope")

    def test_load_from_archive(self, tmp_path, points):
        from repro.data.io import save_dataset

        path = save_dataset(tmp_path / "cat.npz", points,
                            kind="independent", seed=17)
        reg = CatalogueRegistry(max_partitions=16)
        context = reg.load("disk", path)
        assert np.array_equal(context.points, points)
        assert context.max_partitions == 16
        (entry,) = reg.describe()
        assert entry["meta"]["kind"] == "independent"
        assert entry["meta"]["path"] == str(path)

    def test_describe_is_json_safe(self, registry):
        import json

        json.dumps(registry.describe())


class TestPlumbingEndpoints:
    def test_health(self, client):
        assert client.health() == {"status": "ok"}

    def test_catalogues(self, client):
        entries = {e["name"]: e for e in client.catalogues()}
        assert set(entries) == {"demo", "bounded"}
        assert entries["demo"]["n"] == N
        assert entries["demo"]["d"] == D
        assert entries["bounded"]["max_partitions"] == 8

    def test_unknown_path_404(self, client):
        with pytest.raises(ServiceError) as err:
            client._request("/nope")
        assert err.value.status == 404

    def test_unknown_catalogue_400(self, client, points):
        q, k, wm = make_question(points, 0)
        with pytest.raises(ServiceError) as err:
            client.answer("nope", q, k, wm)
        assert err.value.status == 400
        assert "unknown catalogue" in err.value.message

    def test_malformed_json_400(self, client):
        import urllib.error
        import urllib.request

        request = urllib.request.Request(
            client.base_url + "/answer", data=b"{not json",
            headers={"Content-Type": "application/json"},
            method="POST")
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=10)
        assert err.value.code == 400

    def test_missing_field_400(self, client):
        with pytest.raises(ServiceError) as err:
            client._request("/answer", {"catalogue": "demo"})
        assert err.value.status == 400
        assert "missing" in err.value.message

    def test_mismatched_shapes_400(self, client):
        with pytest.raises(ServiceError) as err:
            client._request("/answer", {
                "catalogue": "demo", "q": [0.5] * D, "k": K,
                "why_not": [[0.5, 0.5]]})   # wrong dimensionality
        assert err.value.status == 400

    def test_unknown_algorithm_400_lists_registered(self, client,
                                                    points):
        """An unknown algorithm on the wire is a 400 whose message
        enumerates the registry — no hard-coded name list."""
        q, k, wm = make_question(points, 0)
        with pytest.raises(ServiceError) as err:
            client._request("/answer", {
                "catalogue": "demo", "q": q.tolist(), "k": k,
                "why_not": wm.tolist(), "algorithm": "simplex"})
        assert err.value.status == 400
        assert "unknown algorithm" in err.value.message
        for name in algorithm_names():
            assert name in err.value.message

    def test_unknown_algorithm_split_validation(self, client, points):
        """The dict-level client defers algorithm validation to the
        server (so server-only registrations stay reachable); the
        typed path rejects at Question construction."""
        q, k, wm = make_question(points, 0)
        with pytest.raises(ServiceError) as err:
            client.answer("demo", q, k, wm, algorithm="simplex")
        assert err.value.status == 400
        with pytest.raises(ValueError, match="unknown algorithm"):
            Question(q=q, k=k, why_not=wm, algorithm="simplex")

    def test_null_scalar_field_400(self, client):
        """Malformed scalar fields (k=null) are client errors."""
        with pytest.raises(ServiceError) as err:
            client._request("/answer", {
                "catalogue": "demo", "q": [0.5] * D, "k": None,
                "why_not": [[0.4, 0.3, 0.3]]})
        assert err.value.status == 400

    def test_unknown_post_path_keeps_connection_usable(self, server):
        """A 404'd POST must still drain its body, or the unread
        bytes desynchronize a keep-alive connection and the *next*
        request on it is garbage-parsed."""
        import http.client
        import json as jsonlib

        conn = http.client.HTTPConnection("127.0.0.1", server.port,
                                          timeout=10)
        try:
            conn.request("POST", "/nope", body=b'{"x": 1}',
                         headers={"Content-Type":
                                  "application/json"})
            response = conn.getresponse()
            assert response.status == 404
            response.read()
            # Same connection, next request: must parse cleanly.
            conn.request("GET", "/health")
            response = conn.getresponse()
            assert response.status == 200
            assert jsonlib.loads(response.read()) == {"status": "ok"}
        finally:
            conn.close()

    def test_empty_batch_400(self, client):
        with pytest.raises(ServiceError) as err:
            client._request("/batch", {"catalogue": "demo",
                                       "questions": []})
        assert err.value.status == 400


class TestAnswer:
    def test_wire_payload_is_byte_identical_to_library(self, client,
                                                       points):
        """Acceptance criterion: the HTTP item for a Question is the
        library's ``Answer.to_dict()`` for the same Question, byte
        for byte (timing excluded)."""
        q, k, wm = make_question(points, 1)
        item = client.answer("demo", q, k, wm, algorithm="mqp",
                             seed=3)
        local = answer_question(
            DatasetContext(points),
            Question(q=q, k=k, why_not=wm, algorithm="mqp"),
            rng=np.random.default_rng(3))
        assert item["valid"] and item["error"] is None
        assert item["schema_version"] == SCHEMA_VERSION
        assert item["penalty"] == local.penalty
        assert item["result"]["kind"] == "mqp"
        np.testing.assert_array_equal(item["result"]["q_refined"],
                                      np.asarray(local.result.q_refined))
        assert strip_elapsed(item) == \
            strip_elapsed(local.to_dict())

    def test_typed_ask_round_trips_answer(self, client, points):
        question = make_typed(points, 5, algorithm="mwk",
                              options={"sample_size": 30},
                              id="typed-5")
        answer = client.ask("demo", question, seed=7)
        assert isinstance(answer, Answer)
        assert answer.ok and answer.question_id == "typed-5"
        local = Session(points).ask(question, seed=7)
        assert strip_elapsed(answer.to_dict()) == \
            strip_elapsed(local.to_dict())

    def test_question_as_list_payload(self, client, points):
        q, k, wm = make_question(points, 2)
        response = client._request("/batch", {
            "catalogue": "demo",
            "questions": [[q.tolist(), k, wm.tolist()]]})
        assert response["summary"]["answered"] == 1

    def test_invalid_question_is_item_error_not_http_error(
            self, client, points):
        """A question that fails catalogue-dependent validation is an
        application-level failed item — the HTTP layer reports 200
        and the item carries a structured error."""
        q, k, wm = make_question(points, 3, rank=5)   # already top-k
        item = client.answer("demo", q, k, wm)
        assert item["error"] is not None
        assert item["error"]["type"] == "ValueError"
        assert "already has q" in item["error"]["message"]
        assert item["penalty"] is None and not item["valid"]

    def test_typed_construction_invalid_question_is_400(self,
                                                        client):
        """A *typed* question payload that fails construction-time
        validation is a strict client error (the typed client would
        have rejected it locally)."""
        with pytest.raises(ServiceError) as err:
            client._request("/answer", {
                "catalogue": "demo", "question": {
                    "schema_version": SCHEMA_VERSION,
                    "q": [0.5] * D, "k": K, "algorithm": "mqp",
                    "why_not": [[0.8, 0.8, 0.8]]}})
        assert err.value.status == 400
        assert "simplex" in err.value.message

    def test_legacy_construction_invalid_is_failed_item(self, client):
        """A *pre-schema* flat payload keeps the legacy error
        contract: content failures (off-simplex) are 200 items, not
        request errors."""
        response = client._request("/answer", {
            "catalogue": "demo", "q": [0.5] * D, "k": K,
            "why_not": [[0.8, 0.8, 0.8]]})
        item = response["item"]
        assert item["error"]["type"] == "ValueError"
        assert "simplex" in item["error"]["message"]
        assert item["penalty"] is None and not item["valid"]

    def test_legacy_batch_poisoned_construction_keeps_siblings(
            self, client, points):
        """One construction-invalid pre-schema entry in a batch must
        not lose the other answers (the old per-item contract)."""
        q, k, wm = make_question(points, 70)
        response = client._request("/batch", {
            "catalogue": "demo", "algorithm": "mqp",
            "questions": [
                {"q": q.tolist(), "k": k, "why_not": wm.tolist()},
                {"q": q.tolist(), "k": k,
                 "why_not": [[0.8, 0.8, 0.8]]},   # off simplex
                [q.tolist(), k, wm.tolist()],
            ]})
        summary = response["summary"]
        assert summary["answered"] == 2 and summary["failed"] == 1
        errors = [item["error"] for item in response["items"]]
        assert errors[0] is None and errors[2] is None
        assert "simplex" in errors[1]["message"]
        assert [item["index"] for item in response["items"]] == \
            [0, 1, 2]

    def test_legacy_entry_extra_keys_stay_legacy_and_are_honored(
            self, client, points):
        """A pre-schema entry carrying extra keys must not be
        mistaken for a typed payload (only the ``schema_version``
        stamp marks one): its ``id`` is echoed and an entry-level
        ``algorithm`` — a flat /answer shape reused in a batch — is
        honored rather than silently overridden by the body's."""
        q, k, wm = make_question(points, 71)
        response = client._request("/batch", {
            "catalogue": "demo", "algorithm": "mqp",
            "sample_size": 25,
            "questions": [
                {"q": q.tolist(), "k": k, "why_not": wm.tolist(),
                 "id": "x1", "algorithm": "mwk"},
                {"q": q.tolist(), "k": k, "why_not": wm.tolist()},
            ]})
        first, second = response["items"]
        assert first["algorithm"] == "mwk"
        assert first["id"] == "x1"
        assert first["result"]["kind"] == "mwk"
        assert second["algorithm"] == "mqp"   # body-level default

    def test_legacy_answer_echoes_id(self, client, points):
        """The flat /answer form echoes a caller-supplied ``id``,
        same as the equivalent /batch entry."""
        q, k, wm = make_question(points, 72)
        response = client._request("/answer", {
            "catalogue": "demo", "q": q.tolist(), "k": k,
            "why_not": wm.tolist(), "id": "a1"})
        assert response["item"]["id"] == "a1"


class TestBatch:
    @pytest.fixture(scope="class")
    def questions(self, points):
        return [make_question(points, 10 + j) for j in range(6)]

    @pytest.fixture(scope="class")
    def typed_questions(self, points):
        return [make_typed(points, 10 + j, algorithm="mwk",
                           options={"sample_size": 30})
                for j in range(6)]

    def test_matches_local_execution(self, client, points, questions,
                                     typed_questions):
        response = client.batch("demo", questions, algorithm="mwk",
                                sample_size=30, seed=5)
        local = execute_questions(DatasetContext(points),
                                  typed_questions, seed=5)
        assert response["summary"]["answered"] == len(questions)
        assert response["summary"]["all_valid"]
        for item, want in zip(response["items"], local):
            assert strip_elapsed(item) == strip_elapsed(want.to_dict())

    def test_typed_ask_batch(self, client, points, typed_questions):
        answers, summary = client.ask_batch("demo", typed_questions,
                                            seed=5, workers=2)
        local = Session(points).ask_batch(typed_questions, seed=5)
        assert summary["answered"] == len(typed_questions)
        assert [strip_elapsed(a.to_dict()) for a in answers] == \
            [strip_elapsed(a.to_dict()) for a in local]

    def test_workers_do_not_change_results(self, client, questions):
        serial = client.batch("demo", questions, algorithm="mwk",
                              sample_size=30, seed=5, workers=1)
        threaded = client.batch("demo", questions, algorithm="mwk",
                                sample_size=30, seed=5, workers=4)
        strip = lambda resp: [  # noqa: E731
            {k: v for k, v in item.items() if k != "elapsed"}
            for item in resp["items"]]
        assert strip(serial) == strip(threaded)

    def test_poisoned_item_does_not_kill_batch(self, client, points,
                                               questions):
        poisoned = (questions[:2]
                    + [make_question(points, 30, rank=5)]
                    + questions[2:4])
        response = client.batch("demo", poisoned, seed=2)
        summary = response["summary"]
        assert summary["answered"] == 4 and summary["failed"] == 1
        errors = [item["error"] for item in response["items"]]
        assert errors[2] is not None
        assert all(e is None for i, e in enumerate(errors) if i != 2)


class TestStatsEndpoint:
    def test_endpoint_latency_and_counts(self, client, points):
        q, k, wm = make_question(points, 40)
        client.answer("demo", q, k, wm)
        stats = client.stats()
        assert stats["uptime_seconds"] > 0
        answer_stats = stats["endpoints"]["POST /answer"]
        assert answer_stats["requests"] >= 1
        assert answer_stats["total_seconds"] > 0
        assert answer_stats["mean_seconds"] > 0
        assert answer_stats["max_seconds"] >= \
            answer_stats["mean_seconds"]
        assert answer_stats["throughput_rps"] > 0
        cache_stats = {e["name"]: e["stats"]
                       for e in stats["catalogues"]}
        assert cache_stats["demo"]["findincom_traversals"] >= 0

    def test_errors_are_counted(self, client):
        before = client.stats()["endpoints"].get(
            "POST /answer", {}).get("errors", 0)
        with pytest.raises(ServiceError):
            client._request("/answer", {"catalogue": "demo"})
        after = client.stats()["endpoints"]["POST /answer"]["errors"]
        assert after == before + 1


class TestBoundedServing:
    def test_fifty_products_stay_within_cap(self, client, registry,
                                            points):
        """Acceptance criterion, over the wire: 50 distinct products
        against a cap-8 catalogue keep at most 8 resident partitions,
        report evictions, and answer exactly like an unbounded
        context."""
        questions = [make_question(points, 100 + j)
                     for j in range(50)]
        response = client.batch("bounded", questions,
                                algorithm="mwk", sample_size=25,
                                seed=11)
        assert response["summary"]["answered"] == 50

        context = registry.get("bounded")
        assert len(context._partitions) <= 8
        assert context.stats.partition_evictions > 0

        unbounded = DatasetContext(points, max_partitions=None,
                                   max_box_caches=None)
        typed = [Question(q=q, k=k, why_not=wm, algorithm="mwk",
                          options={"sample_size": 25})
                 for q, k, wm in questions]
        local = execute_questions(unbounded, typed, seed=11)
        for item, want in zip(response["items"], local):
            assert item["error"] is None and want.error is None
            assert item["penalty"] == want.penalty
            assert item["result"]["k_refined"] == want.result.k_refined
            np.testing.assert_array_equal(
                item["result"]["weights_refined"],
                np.asarray(want.result.weights_refined))

        entries = {e["name"]: e for e in client.catalogues()}
        assert entries["bounded"]["cached_partitions"] <= 8
        assert entries["bounded"]["stats"]["partition_evictions"] > 0


class TestCatalogueLifecycleEndpoints:
    """Mutations over the wire: ``POST /catalogues/<name>/products``,
    ``GET /catalogues/<name>``, and ``catalogue_version`` stamping.

    Uses its own server so mutations cannot leak into the
    module-scoped fixtures other classes share.
    """

    @pytest.fixture()
    def live(self, points):
        registry = CatalogueRegistry()
        registry.register("mutable", points)
        server = create_server(registry)
        thread = threading.Thread(target=server.serve_forever,
                                  daemon=True)
        thread.start()
        try:
            yield registry, ServiceClient(port=server.port)
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)

    def test_get_catalogue_reports_lifecycle_state(self, live):
        _, client = live
        entry = client.catalogue("mutable")
        assert entry["schema_version"] == SCHEMA_VERSION
        assert entry["name"] == "mutable"
        assert entry["version"] == 0
        assert entry["n"] == N and entry["d"] == D
        assert entry["mutations"] == {"count": 0, "adds": 0,
                                      "updates": 0, "removes": 0}
        assert entry["next_product_id"] == N
        assert "tree_patches" in entry["stats"]

    def test_unknown_catalogue_is_404(self, live):
        _, client = live
        for call in (lambda: client.catalogue("nope"),
                     lambda: client.add_products("nope", [[0.5] * D]),
                     lambda: client.remove_products("nope", [1])):
            with pytest.raises(ServiceError) as err:
                call()
            assert err.value.status == 404
            assert "unknown catalogue" in err.value.message

    def test_mutations_advance_version_and_stamp_answers(self, live,
                                                         points):
        registry, client = live
        q, k, wm = make_question(points, 80)
        item = client.answer("mutable", q, k, wm)
        assert item["catalogue_version"] == 0

        response = client.add_products(
            "mutable", [[3.0] * D, [4.0] * D])
        assert response["op"] == "add"
        assert response["ids"] == [N, N + 1]
        assert response["catalogue_version"] == 1
        assert response["n"] == N + 2

        response = client.update_products("mutable", [N], [[5.0] * D])
        assert response["catalogue_version"] == 2
        response = client.remove_products("mutable", [N + 1])
        assert response["catalogue_version"] == 3
        assert response["n"] == N + 1

        # Subsequent answers carry the new version; a far-away
        # product changes no answer content.
        after = client.answer("mutable", q, k, wm)
        assert after["catalogue_version"] == 3
        assert after["penalty"] == item["penalty"]
        entry = client.catalogue("mutable")
        assert entry["version"] == 3
        assert entry["mutations"] == {"count": 3, "adds": 2,
                                      "updates": 1, "removes": 1}

    def test_mutation_affects_subsequent_answers(self, live, points):
        """End-to-end acceptance: a product mutation visibly changes
        what the service answers, while a reader pinned to the old
        snapshot is unaffected."""
        registry, client = live
        q, k, wm = make_question(points, 81)
        pinned = registry.get("mutable")          # snapshot at v0
        before = client.answer("mutable", q, k, wm)
        assert before["error"] is None

        # Add products that dominate q: they push q's rank beyond
        # reach, so the same question now fails validation ("already
        # has q" no longer, but k > reachable) — or at minimum the
        # answer changes.  Use products at the origin: they dominate
        # everything, raising every rank by 3.
        client.add_products("mutable", np.full((3, D), 1e-6).tolist())
        after = client.answer("mutable", q, k, wm)
        assert after["catalogue_version"] == 1
        assert strip_elapsed(after) != strip_elapsed(before)

        # The pinned snapshot still answers byte-identically.
        question = Question(q=q, k=k, why_not=wm)
        replay = answer_question(pinned, question,
                                 rng=np.random.default_rng(0))
        baseline = answer_question(DatasetContext(points), question,
                                   rng=np.random.default_rng(0))
        assert strip_elapsed(replay.to_dict()) == \
            strip_elapsed(baseline.to_dict())

    def test_bad_op_400(self, live):
        _, client = live
        with pytest.raises(ServiceError) as err:
            client._request("/catalogues/mutable/products",
                            {"op": "zap"})
        assert err.value.status == 400
        assert "op must be" in err.value.message

    def test_missing_fields_400(self, live):
        _, client = live
        for body in ({"op": "add"}, {"op": "update", "ids": [1]},
                     {"op": "remove"}):
            with pytest.raises(ServiceError) as err:
                client._request("/catalogues/mutable/products", body)
            assert err.value.status == 400

    def test_invalid_mutation_400(self, live):
        _, client = live
        with pytest.raises(ServiceError) as err:
            client.remove_products("mutable", [99999])
        assert err.value.status == 400
        assert "unknown product id" in err.value.message
        with pytest.raises(ServiceError) as err:
            client.add_products("mutable", [[0.5, 0.5]])   # wrong d
        assert err.value.status == 400

    def test_v1_request_gets_v1_response(self, live, points):
        """A client stamping schema_version 1 keeps working: the
        server speaks version 1 *back* — a v1 client's own version
        check would reject a reply stamped 2, and a v1 decoder has
        no ``catalogue_version`` field."""
        _, client = live
        q, k, wm = make_question(points, 82)
        response = client._request("/answer", {
            "schema_version": 1, "catalogue": "mutable",
            "q": q.tolist(), "k": k, "why_not": wm.tolist()})
        assert response["schema_version"] == 1
        assert response["item"]["schema_version"] == 1
        assert response["item"]["error"] is None
        assert "catalogue_version" not in response["item"]

    def test_v1_batch_negotiation(self, live, points):
        _, client = live
        q, k, wm = make_question(points, 83)
        response = client._request("/batch", {
            "schema_version": 1, "catalogue": "mutable",
            "questions": [[q.tolist(), k, wm.tolist()]]})
        assert response["schema_version"] == 1
        assert all(item["schema_version"] == 1
                   and "catalogue_version" not in item
                   for item in response["items"])
        # Unstamped and v2-stamped requests get the current schema.
        response = client._request("/batch", {
            "catalogue": "mutable",
            "questions": [[q.tolist(), k, wm.tolist()]]})
        assert response["schema_version"] == SCHEMA_VERSION
        assert response["items"][0]["catalogue_version"] >= 0

    def test_v1_answer_payload_decodes(self):
        """A version-1 Answer payload (no catalogue_version) decodes
        with catalogue_version 0 — the v1 producer's meaning."""
        payload = {"schema_version": 1, "id": None, "index": 0,
                   "algorithm": "mqp", "valid": False,
                   "penalty": None,
                   "error": {"type": "ValueError", "message": "x",
                             "category": "validation"},
                   "elapsed": 0.0, "result": None}
        answer = Answer.from_dict(payload)
        assert answer.catalogue_version == 0


class _FlakyHTTPStub:
    """A raw socket listener that kills its first ``fail`` connections
    without a response, then serves a canned HTTP 200 — the smallest
    thing that looks like a server restarting under a client."""

    RESPONSE = (b"HTTP/1.1 200 OK\r\n"
                b"Content-Type: application/json\r\n"
                b"Content-Length: 16\r\n"
                b"Connection: close\r\n\r\n"
                b'{"status": "ok"}')

    def __init__(self, fail: int):
        self.fail = fail
        self.connections = 0
        self.sock = socket.socket()
        self.sock.bind(("127.0.0.1", 0))
        self.sock.listen(8)
        self.port = self.sock.getsockname()[1]
        self.thread = threading.Thread(target=self._serve, daemon=True)
        self.thread.start()

    def _serve(self):
        while True:
            try:
                conn, _ = self.sock.accept()
            except OSError:
                return
            self.connections += 1
            with conn:
                if self.connections <= self.fail:
                    continue   # close without any response bytes
                conn.recv(65536)
                conn.sendall(self.RESPONSE)

    def close(self):
        self.sock.close()
        self.thread.join(timeout=5)


class TestClientTransportErrors:
    """Satellite: transport failures are typed, idempotent GETs are
    retried once, POSTs never are."""

    def test_get_retries_once_and_succeeds(self):
        stub = _FlakyHTTPStub(fail=1)
        try:
            client = ServiceClient(port=stub.port, timeout=5)
            assert client.health() == {"status": "ok"}
            assert stub.connections == 2   # one failure + one retry
        finally:
            stub.close()

    def test_get_gives_typed_error_after_retry(self):
        stub = _FlakyHTTPStub(fail=10)
        try:
            client = ServiceClient(port=stub.port, timeout=5)
            with pytest.raises(ServiceConnectionError) as err:
                client.health()
            assert err.value.attempts == 2
            assert err.value.status is None
            assert stub.connections == 2
        finally:
            stub.close()

    def test_post_is_never_retried(self, points):
        stub = _FlakyHTTPStub(fail=10)
        try:
            client = ServiceClient(port=stub.port, timeout=5)
            q, k, wm = make_question(points, 0)
            with pytest.raises(ServiceConnectionError) as err:
                client.answer("demo", q, k, wm)
            assert err.value.attempts == 1
            assert stub.connections == 1   # a mutation must not repeat
        finally:
            stub.close()

    def test_connection_refused_is_typed(self):
        # Bind-then-close guarantees an unused port.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        client = ServiceClient(port=port, timeout=5)
        with pytest.raises(ServiceConnectionError):
            client.health()
        # ...and stays catchable as the base ServiceError.
        with pytest.raises(ServiceError):
            client.health()


class TestRegistryConcurrency:
    """Satellite: the registry is hammered by ThreadingHTTPServer
    handler threads — registration, lookup and mutation must be safe
    to interleave."""

    def test_concurrent_register_answer_mutate(self, points):
        registry = CatalogueRegistry()
        registry.register("base", points)
        question = make_typed(points, 1)
        errors: list[Exception] = []
        barrier = threading.Barrier(7)

        def registrar(i):
            barrier.wait()
            try:
                for j in range(8):
                    registry.register(f"cat-{i}-{j}", points[:40],
                                      warm=False)
                    assert f"cat-{i}-{j}" in registry
                with pytest.raises(ValueError,
                                   match="already registered"):
                    registry.register(f"cat-{i}-0", points[:40],
                                      warm=False)
            except Exception as exc:   # pragma: no cover
                errors.append(exc)

        def answerer():
            barrier.wait()
            try:
                for _ in range(12):
                    answer = registry.session("base").ask(question,
                                                          seed=2)
                    assert answer.ok
            except Exception as exc:   # pragma: no cover
                errors.append(exc)

        def mutator():
            barrier.wait()
            try:
                catalogue = registry.catalogue("base")
                for _ in range(12):
                    ids = catalogue.add_products([[3.0] * D])
                    catalogue.remove_products(ids)
            except Exception as exc:   # pragma: no cover
                errors.append(exc)

        threads = ([threading.Thread(target=registrar, args=(i,))
                    for i in range(3)]
                   + [threading.Thread(target=answerer)
                      for _ in range(3)]
                   + [threading.Thread(target=mutator)])
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors, errors
        assert len(registry) == 1 + 3 * 8
        assert registry.get("base").n == N


class TestWireSchema:
    """Version negotiation and schema round-trips over the wire."""

    def test_responses_echo_schema_version(self, client, points):
        q, k, wm = make_question(points, 60)
        response = client._request("/answer", {
            "catalogue": "demo", "q": q.tolist(), "k": k,
            "why_not": wm.tolist()})
        assert response["schema_version"] == SCHEMA_VERSION
        assert response["item"]["schema_version"] == SCHEMA_VERSION

    def test_unsupported_request_version_400(self, client, points):
        q, k, wm = make_question(points, 61)
        with pytest.raises(ServiceError) as err:
            client._request("/answer", {
                "schema_version": 99, "catalogue": "demo",
                "q": q.tolist(), "k": k, "why_not": wm.tolist()})
        assert err.value.status == 400
        assert "schema_version" in err.value.message

    def test_algorithms_endpoint_enumerates_registry(self, client):
        names = [entry["name"] for entry in client.algorithms()]
        assert names == list(algorithm_names())
        for entry in client.algorithms():
            assert set(entry) == {"name", "summary", "options",
                                  "anytime"}
            assert entry["anytime"] is True   # all builtins step

    def test_wire_item_survives_round_trip(self, client, points):
        """to_dict → HTTP/json → from_dict → to_dict is the identity,
        for answered and failed items alike."""
        good = make_typed(points, 62)
        bad = make_typed(points, 63, rank=5)   # already in top-k
        answers, _ = client.ask_batch("demo", [good, bad], seed=1)
        assert answers[0].ok and not answers[1].ok
        assert np.isnan(answers[1].penalty)
        for answer in answers:
            again = Answer.from_dict(answer.to_dict())
            assert again.to_dict() == answer.to_dict()


class TestSchemaNegotiationMatrix:
    """Client stamps × server renders, across v1/v2/v3/v4/v5.

    The server negotiates *down*: a request stamped with an older
    supported version receives payloads rendered at that version —
    ``quality`` exists only in v3+, ``catalogue_version`` only in
    v2+ — while unstamped and current-version requests get the full
    current schema.
    """

    EXPECTATIONS = {
        1: {"quality": False, "catalogue_version": False},
        2: {"quality": False, "catalogue_version": True},
        # v3, v4 and v5 are field-identical for Answer payloads (v4
        # added the watch event envelope, v5 the planner/admission
        # types — neither touched Answer).
        3: {"quality": True, "catalogue_version": True},
        4: {"quality": True, "catalogue_version": True},
        SCHEMA_VERSION: {"quality": True, "catalogue_version": True},
    }

    @staticmethod
    def _flat(points, j):
        q, k, wm = make_question(points, 90 + j)
        return {"q": q.tolist(), "k": k, "why_not": wm.tolist()}

    @pytest.mark.parametrize("version", sorted(EXPECTATIONS))
    def test_answer_rendered_at_request_version(self, client, points,
                                                version):
        payload = self._flat(points, 0)
        payload.update(catalogue="demo", schema_version=version)
        response = client._request("/answer", payload)
        expect = self.EXPECTATIONS[version]
        assert response["schema_version"] == version
        item = response["item"]
        assert item["schema_version"] == version
        assert item["error"] is None
        assert ("quality" in item) == expect["quality"]
        assert ("catalogue_version" in item) == \
            expect["catalogue_version"]

    @pytest.mark.parametrize("version", sorted(EXPECTATIONS))
    def test_batch_rendered_at_request_version(self, client, points,
                                               version):
        response = client._request("/batch", {
            "schema_version": version, "catalogue": "demo",
            "questions": [self._flat(points, 1),
                          self._flat(points, 2)]})
        expect = self.EXPECTATIONS[version]
        assert response["schema_version"] == version
        for item in response["items"]:
            assert item["schema_version"] == version
            assert ("quality" in item) == expect["quality"]
            assert ("catalogue_version" in item) == \
                expect["catalogue_version"]

    def test_unstamped_request_gets_current_schema(self, client,
                                                   points):
        payload = self._flat(points, 3)
        payload.update(catalogue="demo")
        response = client._request("/answer", payload)
        assert response["schema_version"] == SCHEMA_VERSION
        assert "quality" in response["item"]
        assert "catalogue_version" in response["item"]

    def test_budgeted_v3_answer_carries_quality(self, client, points):
        from repro.core.protocol import Budget

        question = make_typed(points, 91)
        import dataclasses as _dc
        question = _dc.replace(question,
                               budget=Budget(sample_budget=128),
                               algorithm="mwk")
        answer = client.ask("demo", question, seed=2)
        assert answer.quality is not None
        assert answer.quality.samples_examined == 128

    def test_v2_question_payload_decodes_without_budget(self):
        payload = {"schema_version": 2, "q": [0.2, 0.2], "k": 2,
                   "why_not": [[0.5, 0.5]], "algorithm": "mqp"}
        question = Question.from_dict(payload)
        assert question.budget is None

    def test_v2_answer_payload_decodes_without_quality(self):
        payload = {"schema_version": 2, "id": None, "index": 0,
                   "algorithm": "mqp", "valid": False,
                   "penalty": None,
                   "error": {"type": "ValueError", "message": "x",
                             "category": "validation"},
                   "elapsed": 0.0, "catalogue_version": 3,
                   "result": None}
        answer = Answer.from_dict(payload)
        assert answer.quality is None
        assert answer.catalogue_version == 3

    def test_future_version_rejected_both_sides(self, client, points):
        future = {"schema_version": SCHEMA_VERSION + 1,
                  "catalogue": "demo"}
        future.update(self._flat(points, 4))
        with pytest.raises(ServiceError) as err:
            client._request("/answer", future)
        assert err.value.status == 400
        with pytest.raises(ValueError, match="schema_version"):
            Answer.from_dict({"schema_version": SCHEMA_VERSION + 1})
