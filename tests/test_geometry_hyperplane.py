"""Unit tests for repro.geometry.hyperplane (Lemma 1 / Definition 8)."""

import numpy as np
import pytest

from repro.geometry.hyperplane import HalfspaceSystem, Hyperplane, side_of
from repro.geometry.vectors import score


class TestHyperplane:
    def test_through_contains_anchor(self):
        h = Hyperplane.through([0.5, 0.5], [1.0, 9.0])
        assert h.contains([1.0, 9.0])

    def test_lemma1_cases(self, paper_points):
        """Figure 5(a): H(w2, p3) with w2 = Tony (0.5, 0.5)."""
        w2 = [0.5, 0.5]
        p3 = paper_points[2]          # (1, 9), score 5.0
        h = Hyperplane.through(w2, p3)
        p1, p5, p7 = paper_points[0], paper_points[4], paper_points[6]
        assert h.evaluate(p1) < 0     # below: smaller score
        assert h.evaluate(p5) > 0     # above: bigger score
        assert h.contains(p7)         # on: equal score (5.0)

    def test_evaluate_matches_score_difference(self, rng):
        w = rng.dirichlet(np.ones(4))
        p = rng.random(4)
        h = Hyperplane.through(w, p)
        for _ in range(10):
            x = rng.random(4)
            assert h.evaluate(x) == pytest.approx(
                score(w, x) - score(w, p))

    def test_evaluate_many(self, rng):
        w = rng.dirichlet(np.ones(3))
        p = rng.random(3)
        xs = rng.random((50, 3))
        h = Hyperplane.through(w, p)
        vec = h.evaluate_many(xs)
        assert vec == pytest.approx([h.evaluate(x) for x in xs])

    def test_halfspace_contains_definition8(self, paper_points):
        w2 = [0.5, 0.5]
        p3 = paper_points[2]
        h = Hyperplane.through(w2, p3)
        # HS(w2, p3) holds points scoring <= 5.0 under Tony.
        assert h.halfspace_contains(paper_points[0])   # p1, 1.5
        assert h.halfspace_contains(paper_points[6])   # p7, 5.0 (on)
        assert not h.halfspace_contains(paper_points[4])  # p5, 6.0

    def test_separating_plane_flips_order(self):
        p = np.array([1.0, 9.0])
        q = np.array([4.0, 4.0])
        h = Hyperplane.separating(p, q)
        # w on the plane scores p and q equally.
        # solve (p - q) . (w1, 1-w1) = 0 -> -3 w1 + 5 (1 - w1) = 0
        w1 = 5.0 / 8.0
        w = np.array([w1, 1 - w1])
        assert h.contains(w, atol=1e-9)
        assert score(w, p) == pytest.approx(score(w, q))


class TestSideOf:
    def test_three_sides(self, paper_points):
        w2, p3 = [0.5, 0.5], paper_points[2]
        assert side_of(w2, p3, paper_points[0]) == -1
        assert side_of(w2, p3, paper_points[4]) == 1
        assert side_of(w2, p3, paper_points[6]) == 0


class TestHalfspaceSystem:
    def test_contains_box_and_planes(self):
        sys = HalfspaceSystem.from_constraints(
            [[0.5, 0.5]], [4.0], lower=[0, 0], upper=[6, 6])
        assert sys.contains([2.0, 2.0])
        assert not sys.contains([5.0, 5.0])     # violates plane
        assert not sys.contains([-1.0, 0.0])    # violates lower
        assert not sys.contains([0.0, 7.0])     # violates upper

    def test_violations_sign(self):
        sys = HalfspaceSystem.from_constraints([[1.0, 0.0]], [2.0])
        assert sys.violations([3.0, 0.0])[0] == pytest.approx(1.0)
        assert sys.violations([1.0, 0.0])[0] == pytest.approx(-1.0)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            HalfspaceSystem.from_constraints([[1.0, 0.0]], [1.0, 2.0])
