"""Smoke tests: every shipped example must run cleanly.

Each example is executed as a subprocess (the way users run them) and
its key output lines are asserted, so a public-API break that only an
example exercises still fails CI.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"
SRC = EXAMPLES.parent / "src"


def _run(name: str, tmp_path) -> str:
    # The examples `import repro`; make the src/ layout importable in
    # the subprocess even when the package is not installed (the
    # subprocess runs from tmp_path, so a relative PYTHONPATH entry
    # inherited from the parent would not resolve).
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(SRC)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH")
                      else []))
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=300, cwd=tmp_path,
        env=env)
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


def test_quickstart(tmp_path):
    out = _run("quickstart.py", tmp_path)
    assert "Tony, Anna" in out
    assert "Kevin" in out and "Julia" in out
    assert "penalty" in out


def test_market_analysis(tmp_path):
    out = _run("market_analysis.py", tmp_path)
    assert "Current fans" in out
    assert "Cheapest strategy" in out


def test_nba_scouting(tmp_path):
    out = _run("nba_scouting.py", tmp_path)
    assert "coaching styles would draft" in out
    assert "Option 3" in out


def test_preference_negotiation(tmp_path):
    out = _run("preference_negotiation.py", tmp_path)
    assert "Monochromatic reverse top-8" in out
    assert "Bargaining curve" in out


def test_portfolio_dashboard(tmp_path):
    out = _run("portfolio_dashboard.py", tmp_path)
    assert "Market influence ranking" in out
    assert "influence:" in out
    assert (tmp_path / "dashboard_out" / "whynot_report.json").exists()


@pytest.mark.parametrize("name", [p.name for p in
                                  sorted(EXAMPLES.glob("*.py"))])
def test_every_example_has_docstring(name):
    text = (EXAMPLES / name).read_text()
    assert text.lstrip().startswith(('"""', "#!"))
    assert '"""' in text
