"""Cross-engine tests: TA and Onion against scan and BRS.

Four independent top-k implementations (scan, BRS, TA, Onion) must
return identical ranked ids on identical workloads — a strong mutual
correctness argument for the substrate every WQRTQ algorithm stands
on.
"""

import numpy as np
import pytest

from repro.data import anticorrelated, independent, preference_set
from repro.index import RTree
from repro.topk import (
    BRSEngine,
    OnionIndex,
    TAEngine,
    convex_hull_2d,
    topk_scan,
)


class TestTAEngine:
    def test_paper_example(self, paper_points):
        engine = TAEngine(paper_points)
        assert engine.topk([0.1, 0.9], 3).tolist() == [0, 1, 3]

    @pytest.mark.parametrize("d", [2, 3, 5])
    def test_matches_scan(self, d, rng):
        pts = rng.random((300, d))
        engine = TAEngine(pts)
        for _ in range(8):
            w = rng.dirichlet(np.ones(d))
            k = int(rng.integers(1, 40))
            assert engine.topk(w, k).tolist() == topk_scan(
                pts, w, k).tolist()

    def test_zero_weight_dimension_skipped(self, rng):
        pts = rng.random((100, 3))
        engine = TAEngine(pts)
        w = np.array([0.5, 0.5, 0.0])
        assert engine.topk(w, 10).tolist() == topk_scan(
            pts, w, 10).tolist()

    def test_all_zero_weight(self, rng):
        engine = TAEngine(rng.random((20, 2)))
        assert engine.topk([0.0, 0.0], 3).tolist() == [0, 1, 2]

    def test_early_termination(self, rng):
        """TA must stop well before n sorted accesses for small k."""
        pts = rng.random((2_000, 2))
        engine = TAEngine(pts)
        engine.topk([0.5, 0.5], 5)
        assert engine.last_sorted_accesses < 2 * len(pts)

    def test_kth_point(self, paper_points):
        engine = TAEngine(paper_points)
        pid, score = engine.kth_point([0.1, 0.9], 3)
        assert pid == 3
        assert score == pytest.approx(3.6)

    def test_k_clamped_and_validated(self, rng):
        engine = TAEngine(rng.random((10, 2)))
        assert len(engine.topk([0.5, 0.5], 100)) == 10
        with pytest.raises(ValueError):
            engine.topk([0.5, 0.5], 0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            TAEngine(np.empty((0, 2)))

    def test_weight_dim_mismatch(self, rng):
        engine = TAEngine(rng.random((10, 2)))
        with pytest.raises(ValueError):
            engine.topk([0.5, 0.3, 0.2], 2)


class TestConvexHull:
    def test_square_hull(self):
        pts = np.array([[0, 0], [1, 0], [1, 1], [0, 1], [0.5, 0.5]])
        hull = set(convex_hull_2d(pts).tolist())
        assert hull == {0, 1, 2, 3}

    def test_hull_is_ccw(self, rng):
        pts = rng.random((50, 2))
        hull = convex_hull_2d(pts)
        h = pts[hull]
        # shoelace > 0 for CCW.
        x, y = h[:, 0], h[:, 1]
        area = 0.5 * (np.dot(x, np.roll(y, -1))
                      - np.dot(y, np.roll(x, -1)))
        assert area > 0

    def test_degenerate_inputs(self):
        assert convex_hull_2d([[1.0, 2.0]]).tolist() == [0]
        assert len(convex_hull_2d([[0, 0], [1, 1]])) == 2
        collinear = np.array([[0, 0], [1, 1], [2, 2], [3, 3]],
                             dtype=float)
        hull = convex_hull_2d(collinear)
        assert set(hull.tolist()) <= {0, 3}

    def test_all_points_inside_hull(self, rng):
        pts = rng.random((80, 2))
        hull_ids = convex_hull_2d(pts)
        hull = pts[hull_ids]
        # Every point is a convex combination check via half-planes:
        # walk hull edges (CCW), all points must be left of each edge.
        for i in range(len(hull)):
            a, b = hull[i], hull[(i + 1) % len(hull)]
            cross = ((b[0] - a[0]) * (pts[:, 1] - a[1])
                     - (b[1] - a[1]) * (pts[:, 0] - a[0]))
            assert np.all(cross >= -1e-9)


class TestOnionIndex:
    def test_layers_partition_dataset(self, rng):
        pts = rng.random((120, 2))
        onion = OnionIndex(pts)
        all_ids = np.sort(np.concatenate(onion.layers))
        assert all_ids.tolist() == list(range(120))

    def test_paper_example(self, paper_points):
        onion = OnionIndex(paper_points)
        assert onion.topk([0.1, 0.9], 3).tolist() == [0, 1, 3]

    @pytest.mark.parametrize("gen", [independent, anticorrelated])
    def test_matches_scan(self, gen, rng):
        pts = gen(250, 2, seed=13)
        onion = OnionIndex(pts)
        for _ in range(8):
            w = rng.dirichlet(np.ones(2))
            k = int(rng.integers(1, 30))
            assert onion.topk(w, k).tolist() == topk_scan(
                pts, w, k).tolist()

    def test_early_termination_small_k(self):
        pts = independent(1_000, 2, seed=4)
        onion = OnionIndex(pts)
        onion.topk([0.5, 0.5], 1)
        assert onion.last_layers_scanned <= 2
        assert onion.depth > 5

    def test_requires_2d(self, rng):
        with pytest.raises(ValueError):
            OnionIndex(rng.random((10, 3)))

    def test_invalid_k(self, paper_points):
        with pytest.raises(ValueError):
            OnionIndex(paper_points).topk([0.5, 0.5], 0)


class TestFourEngineAgreement:
    def test_all_engines_agree(self):
        pts = independent(400, 2, seed=99)
        wts = preference_set(5, 2, seed=98)
        tree = RTree(pts, capacity=16)
        brs = BRSEngine(tree)
        ta = TAEngine(pts)
        onion = OnionIndex(pts)
        for w in wts:
            for k in (1, 7, 25):
                expected = topk_scan(pts, w, k).tolist()
                assert brs.topk(w, k).tolist() == expected
                assert ta.topk(w, k).tolist() == expected
                assert onion.topk(w, k).tolist() == expected
