"""Cost-based planning — estimate before executing.

The planner is the service's crystal ball, modeled on Impala's
cost-annotated query plans: given a :class:`~repro.core.protocol.Question`
and the catalogue's dimensions it predicts samples, refinement
chunks, wall latency and peak memory **before** running anything.

* :mod:`repro.planner.model` — the analytic per-algorithm
  :class:`CostModel`, whose latency coefficient is calibrated online
  from the per-execution timings the engine records (the planner
  itself never reads a clock — it sits in the deterministic zone and
  receives ``Answer.elapsed`` observations from the service tier).
* :mod:`repro.planner.plan` — :func:`build_plan` chooses the
  execution path (in-process session, worker pool, or scatter-gather
  across shards) and :func:`render_plan` prints the Impala-style
  ``EXPLAIN`` text.

The estimates power two surfaces: ``EXPLAIN`` (``POST /explain``,
``wqrtq explain``, ``Session.explain_plan``) and the service
admission controller's deadline-aware rejection
(:mod:`repro.service.admission`).
"""

from repro.planner.model import (
    CALIBRATION_MIN_OBSERVATIONS,
    CostModel,
    chunk_schedule,
    work_units,
)
from repro.planner.plan import build_plan, render_plan

__all__ = [
    "CALIBRATION_MIN_OBSERVATIONS",
    "CostModel",
    "build_plan",
    "chunk_schedule",
    "render_plan",
    "work_units",
]
