"""Analytic, online-calibrated per-algorithm cost model.

The model predicts what executing one Question will cost as a
function of the catalogue size ``n``, dimensionality ``d``, the
question's ``k`` and why-not count ``m``, the algorithm, and the
Budget.  It has two halves:

* an **analytic shape** — :func:`work_units` counts abstract work
  units with a fixed per-algorithm structure (setup cost per why-not
  vector over the catalogue, plus a per-sample refinement cost).
  The shape is monotone in ``n`` and ``k`` by construction, so
  estimates order sanely even before any calibration;
* a **calibrated scale** — one coefficient (seconds per work unit)
  per ``(catalogue, algorithm)`` pair, fit as an exponential moving
  average of ``elapsed / work_units`` over real executions.  The
  service tier feeds every completed Answer's ``elapsed`` and
  ``Quality.samples_examined`` back through :meth:`CostModel.observe`.

This module sits in the DET-CLOCK deterministic zone: it never reads
a wall clock — timings flow *in* from the executor (the only tier
allowed to time things) and the model only does arithmetic on them.
Calibration state is process-local, thread-safe, and serializable
(:meth:`CostModel.state_dict` / :meth:`CostModel.save`) so a daemon
can persist per-catalogue coefficients across restarts.
"""

from __future__ import annotations

import json
import math
import threading
from pathlib import Path
from typing import Mapping

from repro.core.protocol import Budget, CostEstimate

__all__ = [
    "CALIBRATION_MIN_OBSERVATIONS",
    "CostModel",
    "chunk_schedule",
    "work_units",
]

#: Observations of a ``(catalogue, algorithm)`` pair before its
#: estimates are marked ``calibrated`` (and trusted for admission).
CALIBRATION_MIN_OBSERVATIONS = 3

#: EWMA half-life of the calibrated coefficient, in observations:
#: after this many, an old regime's coefficient has half its weight.
DEFAULT_HALF_LIFE = 8.0

#: Analytic prior for the seconds-per-work-unit coefficient — the
#: scale used before any observation arrives.  Deliberately rough;
#: only calibrated estimates gate admission.
PRIOR_UNIT_SECONDS = 2.5e-8

#: Fraction of a deadline the executor actually spends refining
#: (mirrors ``repro.engine.executor.DEADLINE_SAFETY``).
DEADLINE_SAFETY = 0.8

#: Per-algorithm structure constants:
#: ``(sample_target, min_chunk, round_chunk, setup_factor,
#: sample_factor)``.  The first three mirror the steppers' defaults
#: (``MQPStepper`` is exact — one "sample"; ``MWKStepper`` streams
#: weight samples in 256-chunks after a 64 probe; ``MQWKStepper``
#: streams q'-candidates in 4-chunks, each running an inner MWK).
#: ``setup_factor`` scales the per-why-not catalogue precompute
#: (kth / FindIncom partitions); ``sample_factor`` scales the
#: per-sample refinement work relative to MWK's.
_ALGORITHM_SHAPE = {
    "mqp": (1, 1, 1, 4.0, 600.0),
    "mwk": (800, 64, 256, 1.0, 1.0),
    "mqwk": (800, 1, 4, 2.0, 1.0),
}
_DEFAULT_SHAPE = (800, 64, 256, 1.0, 1.0)

#: Rough R-tree + cache overhead over the raw point array.
_MEMORY_TREE_FACTOR = 1.25


def _shape(algorithm: str):
    return _ALGORITHM_SHAPE.get(algorithm, _DEFAULT_SHAPE)


def _per_sample_units(algorithm: str, *, n: int, d: int, k: int,
                      options: Mapping | None) -> float:
    """Work units consumed by one sample-stream element."""
    _, _, _, _, sample_factor = _shape(algorithm)
    base = sample_factor * (k + d + math.log2(n + 2.0))
    if algorithm == "mqwk":
        # One mqwk "sample" is a q' candidate whose inner MWK
        # examines ``sample_size`` weight samples.
        inner = int((options or {}).get("sample_size", 800))
        base *= max(inner, 1)
    return base


def _setup_units(algorithm: str, *, n: int, d: int, m: int) -> float:
    """Work units of per-why-not catalogue precompute."""
    _, _, _, setup_factor, _ = _shape(algorithm)
    return setup_factor * m * n * d


def sample_target(algorithm: str, *, budget: Budget | None = None,
                  options: Mapping | None = None) -> int:
    """The sample count a run aims for before budgets truncate it."""
    default_target, _, _, _, _ = _shape(algorithm)
    options = options or {}
    if algorithm == "mqwk":
        target = options.get("q_sample_size",
                             options.get("sample_size",
                                         default_target))
    else:
        target = options.get("sample_size", default_target)
    target = max(int(target), 1)
    if budget is not None and budget.sample_budget is not None:
        target = min(target, max(int(budget.sample_budget), 1))
    return target


def work_units(algorithm: str, *, n: int, d: int, k: int, m: int,
               samples: int, options: Mapping | None = None) -> float:
    """Abstract work units for one execution.

    ``setup + samples * per_sample``, with every term non-decreasing
    in ``n`` and ``k`` — the calibrated coefficient only scales this,
    so estimate ordering is monotone by construction.
    """
    n, d, k, m = max(int(n), 1), max(int(d), 1), max(int(k), 1), \
        max(int(m), 1)
    setup = _setup_units(algorithm, n=n, d=d, m=m)
    per_sample = _per_sample_units(algorithm, n=n, d=d, k=k,
                                   options=options)
    return setup + max(int(samples), 0) * per_sample


def chunk_schedule(algorithm: str, *, samples: int,
                   budget: Budget | None = None) -> tuple:
    """The executor's expected refinement chunk sizes.

    Mirrors the anytime chunk policy: unbudgeted questions run in a
    single chunk; a deadline budget probes ``min_chunk`` first and
    then streams ``round_chunk``-sized refinements; other budgets
    stream ``round_chunk``-sized chunks from the start.  Long
    schedules are summarized by the renderer, not truncated here.
    """
    samples = max(int(samples), 1)
    if budget is None or budget.is_unbounded:
        return (samples,)
    _, min_chunk, round_chunk, _, _ = _shape(algorithm)
    schedule = []
    if budget.deadline_ms is not None:
        schedule.append(min(min_chunk, samples))
    remaining = samples - sum(schedule)
    while remaining > 0:
        chunk = min(round_chunk, remaining)
        schedule.append(chunk)
        remaining -= chunk
    return tuple(schedule)


class _State:
    """EWMA coefficient for one ``(catalogue, algorithm)`` pair."""

    __slots__ = ("coeff", "observations")

    def __init__(self, coeff: float = 0.0, observations: int = 0):
        self.coeff = float(coeff)
        self.observations = int(observations)

    def update(self, observed: float, *, alpha: float) -> None:
        if self.observations == 0:
            self.coeff = observed
        else:
            self.coeff += alpha * (observed - self.coeff)
        self.observations += 1

    def to_dict(self) -> dict:
        return {"coeff": self.coeff,
                "observations": self.observations}


class CostModel:
    """Per-algorithm cost estimates, calibrated online per catalogue.

    Thread-safe: the HTTP server observes answers from handler and
    job-worker threads concurrently.  Estimates fall back from the
    catalogue-specific coefficient to a cross-catalogue aggregate to
    the analytic prior, so a fresh catalogue benefits from timings
    gathered on others (flagged ``calibrated`` only once *some*
    observations back the coefficient).
    """

    def __init__(self, *, half_life: float = DEFAULT_HALF_LIFE,
                 prior_unit_seconds: float = PRIOR_UNIT_SECONDS):
        if half_life <= 0:
            raise ValueError(f"half_life must be > 0, got {half_life}")
        self._alpha = 1.0 - 0.5 ** (1.0 / float(half_life))
        self._half_life = float(half_life)
        self._prior = float(prior_unit_seconds)
        self._states: dict[tuple[str, str], _State] = {}
        self._lock = threading.Lock()

    # -- calibration ---------------------------------------------------

    def observe(self, *, algorithm: str, n: int, d: int, k: int,
                m: int, samples: int, elapsed: float,
                options: Mapping | None = None,
                catalogue: str | None = None) -> None:
        """Fold one finished execution's timing into the coefficient.

        ``elapsed`` is the executor-recorded wall time in seconds
        (``Answer.elapsed``); ``samples`` the examined count from
        ``Answer.quality``.  Non-positive timings are ignored — they
        carry no scale information.
        """
        elapsed = float(elapsed)
        if not math.isfinite(elapsed) or elapsed <= 0.0:
            return
        units = work_units(algorithm, n=n, d=d, k=k, m=m,
                           samples=max(int(samples), 1),
                           options=options)
        observed = elapsed / units
        with self._lock:
            for key in self._keys(catalogue, algorithm):
                state = self._states.get(key)
                if state is None:
                    state = self._states[key] = _State()
                state.update(observed, alpha=self._alpha)

    @staticmethod
    def _keys(catalogue: str | None, algorithm: str):
        keys = [("", algorithm)]
        if catalogue:
            keys.insert(0, (str(catalogue), algorithm))
        return keys

    def _coefficient(self, catalogue: str | None,
                     algorithm: str) -> tuple[float, int]:
        with self._lock:
            for key in self._keys(catalogue, algorithm):
                state = self._states.get(key)
                if state is not None and state.observations > 0:
                    return state.coeff, state.observations
        return self._prior, 0

    def observations(self, algorithm: str,
                     catalogue: str | None = None) -> int:
        return self._coefficient(catalogue, algorithm)[1]

    # -- estimation ----------------------------------------------------

    def estimate(self, *, algorithm: str, n: int, d: int, k: int,
                 m: int, budget: Budget | None = None,
                 options: Mapping | None = None,
                 catalogue: str | None = None) -> CostEstimate:
        """Predict the cost of one execution before running it."""
        n, d = max(int(n), 1), max(int(d), 1)
        k, m = max(int(k), 1), max(int(m), 1)
        coeff, observed = self._coefficient(catalogue, algorithm)
        calibrated = observed >= CALIBRATION_MIN_OBSERVATIONS

        target = sample_target(algorithm, budget=budget,
                               options=options)
        setup_s = coeff * _setup_units(algorithm, n=n, d=d, m=m)
        per_sample_s = coeff * _per_sample_units(
            algorithm, n=n, d=d, k=k, options=options)
        full_s = setup_s + target * per_sample_s

        est_samples = target
        est_seconds = full_s
        deadline = None if budget is None else budget.deadline_ms
        if deadline is not None and calibrated:
            _, min_chunk, _, _, _ = _shape(algorithm)
            refine_s = max(deadline / 1000.0 * DEADLINE_SAFETY,
                           min_chunk * per_sample_s)
            # min() of two n-/k-monotone curves stays monotone.
            est_seconds = min(full_s, setup_s + refine_s)
            affordable = int(refine_s / max(per_sample_s, 1e-12))
            est_samples = max(min(target, affordable),
                              min(min_chunk, target))

        schedule = chunk_schedule(algorithm, samples=est_samples,
                                  budget=budget)
        est_bytes = 8 * (n * d * (1 + _MEMORY_TREE_FACTOR) + n
                         + est_samples * d + m * (k + d))
        return CostEstimate(
            algorithm=algorithm, n=n, d=d, k=k, m=m,
            est_samples=est_samples, est_chunks=len(schedule),
            est_latency_ms=est_seconds * 1000.0,
            est_peak_memory_bytes=int(est_bytes),
            calibrated=calibrated, observations=observed)

    # -- introspection / persistence -----------------------------------

    def describe(self) -> dict:
        """JSON-safe calibration summary for ``/stats``."""
        with self._lock:
            entries = [
                {"catalogue": catalogue or None,
                 "algorithm": algorithm,
                 "coeff": state.coeff,
                 "observations": state.observations}
                for (catalogue, algorithm), state
                in sorted(self._states.items())]
        return {
            "half_life": self._half_life,
            "prior_unit_seconds": self._prior,
            "min_observations": CALIBRATION_MIN_OBSERVATIONS,
            "observations": sum(e["observations"] for e in entries
                                if e["catalogue"] is None),
            "states": entries,
        }

    def state_dict(self) -> dict:
        with self._lock:
            states = {f"{catalogue}::{algorithm}": state.to_dict()
                      for (catalogue, algorithm), state
                      in self._states.items()}
        return {"version": 1, "half_life": self._half_life,
                "prior_unit_seconds": self._prior, "states": states}

    def load_state(self, payload: Mapping) -> None:
        states = payload.get("states") or {}
        with self._lock:
            for key, entry in states.items():
                catalogue, _, algorithm = str(key).partition("::")
                self._states[(catalogue, algorithm)] = _State(
                    coeff=float(entry.get("coeff", 0.0)),
                    observations=int(entry.get("observations", 0)))

    def save(self, path) -> None:
        Path(path).write_text(
            json.dumps(self.state_dict(), indent=2, sort_keys=True),
            encoding="utf-8")

    @classmethod
    def load(cls, path) -> "CostModel":
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
        model = cls(
            half_life=float(payload.get("half_life",
                                        DEFAULT_HALF_LIFE)),
            prior_unit_seconds=float(
                payload.get("prior_unit_seconds",
                            PRIOR_UNIT_SECONDS)))
        model.load_state(payload)
        return model
