"""Plan construction and the Impala-style ``EXPLAIN`` renderer.

:func:`build_plan` turns a Question plus the serving topology into a
frozen :class:`~repro.core.protocol.Plan`: which path executes it
(in-process session, whole-question fan-out to a pool worker, or
scatter-gather across catalogue shards), the anytime chunk schedule,
the :class:`~repro.core.protocol.CostEstimate` from the calibrated
:class:`~repro.planner.model.CostModel`, and the expected
:class:`~repro.core.protocol.Quality`.

:func:`render_plan` prints the plan the way Impala's ``EXPLAIN``
prints operator trees — a sink at the top, numbered operators below,
each annotated with its cost lines — because a one-glance text plan
is the difference between a tuning session and a guessing session.
"""

from __future__ import annotations

import math

from repro.core.protocol import (
    Budget,
    CostEstimate,
    Plan,
    Quality,
    Question,
    shard_plan,
)
from repro.planner.model import CostModel, chunk_schedule, \
    sample_target

__all__ = ["build_plan", "render_plan"]


def build_plan(question: Question, *, n: int, d: int,
               model: CostModel, catalogue: str = "",
               catalogue_version: int = 0, workers: int = 0,
               shards: int = 1, pooled: bool = False) -> Plan:
    """Choose the execution path and cost it.

    ``pooled`` says whether a worker pool serves this catalogue (the
    session path is the only choice without one).  Within the pool,
    a question whose algorithm publishes a shard plan scatter-gathers
    across ``shards``; otherwise it runs whole on one worker.
    """
    estimate = model.estimate(
        algorithm=question.algorithm, n=n, d=d, k=question.k,
        m=question.n_why_not, budget=question.budget,
        options=question.options, catalogue=catalogue or None)

    path = "session"
    if pooled and workers > 0:
        path = ("scatter-gather"
                if shards > 1 and shard_plan(question) is not None
                else "worker")

    schedule = chunk_schedule(question.algorithm,
                              samples=estimate.est_samples,
                              budget=question.budget)
    target = sample_target(question.algorithm, budget=question.budget,
                           options=question.options)
    expected_quality = Quality(
        samples_examined=estimate.est_samples,
        converged=estimate.est_samples >= target,
        rounds=len(schedule))

    return Plan(
        catalogue=catalogue,
        catalogue_version=int(catalogue_version),
        algorithm=question.algorithm,
        path=path,
        workers=int(workers),
        shards=int(shards if path == "scatter-gather" else 1),
        chunk_schedule=schedule,
        cost=estimate,
        expected_quality=expected_quality,
        question_id=question.id)


def _format_bytes(count: int) -> str:
    value = float(count)
    for unit in ("B", "KB", "MB", "GB"):
        if value < 1024.0 or unit == "GB":
            return (f"{value:.0f}{unit}" if unit == "B"
                    else f"{value:.2f}{unit}")
        value /= 1024.0
    return f"{value:.2f}GB"


def _format_schedule(schedule: tuple) -> str:
    if not schedule:
        return "none"
    parts = []
    index = 0
    while index < len(schedule):
        size = schedule[index]
        run = 1
        while index + run < len(schedule) and \
                schedule[index + run] == size:
            run += 1
        parts.append(f"{run} x {size}" if run > 1 else f"{size}")
        index += run
    return " + ".join(parts)


def _budget_line(budget: Budget | None) -> str:
    if budget is None:
        return "run-to-completion"
    parts = []
    if budget.sample_budget is not None:
        parts.append(f"samples<={budget.sample_budget}")
    if budget.deadline_ms is not None:
        parts.append(f"deadline={budget.deadline_ms:g}ms")
    if budget.target_penalty_tolerance is not None:
        parts.append(f"tol={budget.target_penalty_tolerance:g}")
    return ", ".join(parts) or "run-to-completion"


def _scan_label(plan: Plan) -> str:
    if plan.path == "scatter-gather":
        return (f"SCAN [scatter-gather, {plan.shards} shard(s) on "
                f"{plan.workers} worker(s)]")
    if plan.path == "worker":
        return f"SCAN [worker pool, {plan.workers} worker(s)]"
    return "SCAN [in-process session]"


def render_plan(plan: Plan, *, budget: Budget | None = None) -> str:
    """Render a :class:`Plan` as Impala-style ``EXPLAIN`` text."""
    cost: CostEstimate = plan.cost
    catalogue = plan.catalogue or "<anonymous>"
    calibration = (f"calibrated ({cost.observations} observation(s))"
                   if cost.calibrated else
                   f"analytic prior ({cost.observations} "
                   f"observation(s))")
    quality = plan.expected_quality
    latency = cost.est_latency_ms
    latency_line = (f"{latency:.2f}ms" if latency < 1000.0
                    else f"{latency / 1000.0:.2f}s")
    lines = [
        f"Query Plan — {plan.algorithm.upper()} on catalogue "
        f"'{catalogue}' v{plan.catalogue_version}",
        "",
        "PLAN-ROOT SINK",
        "|",
        "02:AUDIT [penalty, validity]",
        f"|  expected quality: {quality.samples_examined} sample(s), "
        f"{'converged' if quality.converged else 'truncated'} after "
        f"{quality.rounds} round(s)",
        "|",
        f"01:REFINE [{plan.algorithm.upper()}, "
        f"{_budget_line(budget)}]",
        f"|  chunk schedule: {_format_schedule(plan.chunk_schedule)}",
        f"|  est. samples: {cost.est_samples}  "
        f"est. latency: {latency_line}",
        f"|  est. peak memory: "
        f"{_format_bytes(cost.est_peak_memory_bytes)}",
        f"|  cost model: {calibration}",
        "|",
        f"00:{_scan_label(plan)}",
        f"   catalogue: {cost.n} row(s) x {cost.d} col(s), "
        f"k={cost.k}, {cost.m} why-not vector(s)",
    ]
    if not math.isfinite(latency):   # defensive: to_dict rejects it
        lines.append("   (non-finite latency estimate)")
    return "\n".join(lines)
