"""Unified score/rank kernels — the library's one hot loop.

Every rank, top-k and dominance computation in the library reduces to
the same primitive: a ``(m, n)`` block of linear scores ``W @ P.T``
compared against per-vector thresholds.  Before the engine layer that
primitive was re-implemented per call site (``topk/scan.py``,
``rtopk/bichromatic.py``, ``core/sampling.py``,
``core/types.py::WhyNotQuery.ranks``) with slightly different chunking
and tie handling.  This module is the single implementation; the old
entry points are thin wrappers over it.

All kernels

* are fully vectorized over the *weight* axis (the batch axis of the
  paper's workloads — many customers, one catalogue),
* chunk the score matrix to a fixed float budget so memory stays flat
  no matter how large ``|W| x |P|`` gets, and
* resolve ties within :data:`RANK_EPS` in the query point's favour,
  consistent with Definitions 2-3 (``f(w, q) <= f(w, p)``).
"""

from __future__ import annotations

import numpy as np

#: Tie tolerance for rank computations.  Scores within RANK_EPS of the
#: query point's score count as ties and resolve in the query point's
#: favour.  This keeps rank computations consistent across the
#: different (BLAS-path-dependent) ways the library evaluates
#: ``f(w, p)``: bit-identical inputs can differ by ~1e-17 between a
#: matrix product and a dot product.
RANK_EPS = 1e-12

#: Default float budget per score block (64 MB of float64).
CHUNK_FLOATS = 8_000_000


def _as2d(x) -> np.ndarray:
    return np.atleast_2d(np.asarray(x, dtype=np.float64))


def iter_score_blocks(weights, points, *,
                      chunk_floats: int = CHUNK_FLOATS):
    """Yield ``(start, stop, scores)`` blocks of the score matrix.

    ``scores`` has shape ``(stop - start, n)`` and holds
    ``f(weights[i], p)`` for ``i`` in ``[start, stop)``.  The block
    height is chosen so each block stays within ``chunk_floats``
    float64 entries.
    """
    wts = _as2d(weights)
    pts = _as2d(points)
    n = pts.shape[0]
    chunk = max(1, chunk_floats // max(n, 1))
    for start in range(0, len(wts), chunk):
        stop = min(start + chunk, len(wts))
        yield start, stop, wts[start:stop] @ pts.T


def score_matrix(weights, points, *, chunk_floats: int = CHUNK_FLOATS,
                 out: np.ndarray | None = None) -> np.ndarray:
    """Full ``(m, n)`` score matrix, assembled block-wise.

    ``out`` may supply a pre-allocated destination (e.g. a
    :class:`~repro.engine.context.DatasetContext` score buffer); it
    must be at least ``(m, n)`` and the leading ``(m, n)`` view is
    returned.
    """
    wts = _as2d(weights)
    pts = _as2d(points)
    m, n = len(wts), len(pts)
    if out is None:
        dest = np.empty((m, n), dtype=np.float64)
    else:
        if out.shape[0] < m or out.shape[1] < n:
            raise ValueError(f"out buffer {out.shape} too small for "
                             f"({m}, {n}) score matrix")
        dest = out[:m, :n]
    for start, stop, block in iter_score_blocks(
            wts, pts, chunk_floats=chunk_floats):
        dest[start:stop] = block
    return dest


# ----------------------------------------------------------------------
# Top-k selection
# ----------------------------------------------------------------------

def topk_ids(points, w, k: int) -> np.ndarray:
    """Ids of the k best-scoring rows of ``points`` under ``w``.

    Returns ids sorted by ascending ``(score, id)`` — the library's
    deterministic tie-break.  ``k`` is clamped to ``len(points)``.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    pts = _as2d(points)
    scores = pts @ np.asarray(w, dtype=np.float64)
    k = min(k, len(pts))
    # O(n + k log k): partition for the k-th score, then pick the
    # boundary members explicitly by (score, id).  argpartition alone
    # is not enough — when ties straddle the k-th position it selects
    # an arbitrary subset of the tied ids.
    kth_score = np.partition(scores, k - 1)[k - 1]
    below = np.nonzero(scores < kth_score)[0]
    tied = np.nonzero(scores == kth_score)[0][:k - len(below)]
    selected = np.concatenate([below, tied])
    order = np.lexsort((selected, scores[selected]))
    return selected[order]


def topk_pairs(points, weights, k: int, *, id_base: int = 0,
               ) -> tuple[np.ndarray, np.ndarray]:
    """Per-weight ``min(k, n)`` smallest ``(score, id)`` pairs.

    The shard-local half of the scatter-gather k-th-point merge: each
    row of the result is that weight's exact ``(score, id)``-ordered
    prefix, so the union of per-shard prefixes contains the global
    top-k.  Scores deliberately use the per-weight gemv ``points @ w``
    — the same BLAS call BRS applies to leaf rows — because the
    batched gemm of :func:`kth_scores_batch` can differ from it in the
    last bits and the merged k-th score is compared and reused
    verbatim.  ``id_base`` offsets row ids into the global catalogue.

    Returns ``(scores, ids)`` of shape ``(m, min(k, n))`` each.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    pts = _as2d(points)
    wts = _as2d(weights)
    n = len(pts)
    kk = min(int(k), n)
    out_scores = np.empty((len(wts), kk), dtype=np.float64)
    out_ids = np.empty((len(wts), kk), dtype=np.int64)
    for i, w in enumerate(wts):
        scores = pts @ w
        if kk < n:
            kth_score = np.partition(scores, kk - 1)[kk - 1]
            below = np.nonzero(scores < kth_score)[0]
            tied = np.nonzero(scores == kth_score)[0][:kk - len(below)]
            selected = np.concatenate([below, tied])
        else:
            selected = np.arange(n)
        order = np.lexsort((selected, scores[selected]))
        selected = selected[order]
        out_scores[i] = scores[selected]
        out_ids[i] = selected + id_base
    return out_scores, out_ids


def kth_scores_batch(points, weights, k: int, *,
                     chunk_floats: int = CHUNK_FLOATS,
                     ) -> tuple[np.ndarray, np.ndarray]:
    """Id and score of the k-th ranked point under *each* weight row.

    The batched form of ``kth_point_scan`` / ``BRSEngine.kth_point``:
    one chunked score matrix and one ``argpartition`` per block replace
    a progressive search per vector.  Ties resolve by ``(score, id)``
    like everything else.

    Returns ``(ids, scores)`` of shape ``(m,)`` each.
    """
    pts = _as2d(points)
    wts = _as2d(weights)
    if len(pts) < k:
        raise ValueError(f"dataset has fewer than k={k} points")
    if k <= 0:
        raise ValueError("k must be positive")
    ids = np.empty(len(wts), dtype=np.int64)
    scores = np.empty(len(wts), dtype=np.float64)
    for start, stop, block in iter_score_blocks(
            wts, pts, chunk_floats=chunk_floats):
        # Per row: the k-th score via partition, then the boundary
        # member by (score, id) explicitly.  argpartition's selected
        # set is arbitrary for ties that straddle the k-th position,
        # so the k-th *id* cannot be read off it: among the rows tied
        # at the k-th score, the correct id is the j-th smallest where
        # j = k - |{scores strictly below}|.
        kth_score = np.partition(block, k - 1, axis=1)[:, k - 1]
        n_below = np.count_nonzero(
            block < kth_score[:, None], axis=1)
        tied = block == kth_score[:, None]
        tie_rank = (k - n_below)[:, None]
        kth = np.argmax(
            (np.cumsum(tied, axis=1) == tie_rank) & tied, axis=1)
        ids[start:stop] = kth
        scores[start:stop] = kth_score
    return ids, scores


# ----------------------------------------------------------------------
# Rank computation
# ----------------------------------------------------------------------

def rank_of(points, w, q, *, eps: float = RANK_EPS) -> int:
    """Rank of the query point ``q`` among ``points`` under ``w``.

    ``rank = 1 + |{p : f(w, p) < f(w, q) - eps}|`` — ties resolved in
    q's favour.  ``q`` itself need not belong to ``points``; if it
    does, its own row ties with it and does not increase the rank.
    """
    return int(ranks_batch(np.asarray(w, dtype=np.float64)[None, :],
                           points, q, eps=eps)[0])


def ranks_batch(weights, points, q, *, dominating=0,
                eps: float = RANK_EPS,
                chunk_floats: int = CHUNK_FLOATS) -> np.ndarray:
    """Rank of ``q`` under every weight row, vectorized and chunked.

    ``rank(q, w) = 1 + beats(dominating) + beats(points)`` where
    ``beats(X)`` counts the members of ``X`` scoring below
    ``f(w, q) - eps``.  Two calling conventions:

    * ``points`` is the full dataset and ``dominating`` is 0 — the
      plain batched rank (what ``WhyNotQuery.ranks`` needs);
    * ``points`` is a ``FindIncom`` incomparable set ``I`` and
      ``dominating`` is either the ``(|D|, d)`` array of dominating
      points (scored exactly, same tie tolerance) or an ``int`` count
      trusted as-is — the partitioned rank MWK uses (dominated points
      never beat ``q``, so only ``D`` and ``I`` are scored).

    Returns an ``(m,)`` int64 array.
    """
    wts = _as2d(weights)
    pts = _as2d(points)
    qv = np.asarray(q, dtype=np.float64)
    q_scores = wts @ qv
    if isinstance(dominating, (int, np.integer)):
        base = np.full(len(wts), 1 + int(dominating), dtype=np.int64)
    else:
        dom = _as2d(dominating)
        if dom.shape[0] == 0:
            base = np.ones(len(wts), dtype=np.int64)
        else:
            base = 1 + beats_count(wts, dom, q_scores, eps=eps,
                                   chunk_floats=chunk_floats)
    if pts.shape[0] == 0:
        return base
    return base + beats_count(wts, pts, q_scores, eps=eps,
                              chunk_floats=chunk_floats)


def beats_count(weights, points, q_scores, *, eps: float = RANK_EPS,
                chunk_floats: int = CHUNK_FLOATS) -> np.ndarray:
    """Per weight row, how many of ``points`` score below the threshold.

    ``q_scores`` is the per-row threshold ``f(w, q)``; a point beats
    ``q`` when its score is strictly below ``f(w, q) - eps``.  This is
    the shared dominance-count core of every rank kernel.
    """
    wts = _as2d(weights)
    thresholds = np.asarray(q_scores, dtype=np.float64).reshape(-1)
    if thresholds.shape[0] != len(wts):
        raise ValueError("q_scores must provide one threshold per "
                         "weight row")
    out = np.empty(len(wts), dtype=np.int64)
    for start, stop, block in iter_score_blocks(
            wts, points, chunk_floats=chunk_floats):
        out[start:stop] = np.count_nonzero(
            block < thresholds[start:stop, None] - eps, axis=1)
    return out
