"""Answering typed Questions over one DatasetContext.

:func:`answer_question` / :func:`execute_questions` are the single
serving loop behind every front door — the
:class:`~repro.core.session.Session` facade, the CLI ``wqrtq batch``
subcommand and the HTTP service all call them, so one
:class:`~repro.core.protocol.Question` produces the same
:class:`~repro.core.protocol.Answer` payload no matter which surface
it entered through.  Algorithm dispatch goes through the
:mod:`~repro.core.registry` algorithm registry — there is no
algorithm-name ``if/elif`` here.

The pre-schema entry points — :func:`answer_one` /
:func:`execute_batch` over ``(q, k, Wm)`` triples, returning
:class:`ExecutionItem` — remain as thin shims that emit
``DeprecationWarning``.

Determinism and parallelism
---------------------------
Each item gets its own ``np.random.default_rng(seed + index)``, so the
answer to question *i* depends only on the context data and ``seed`` —
never on the order questions are processed in.  That makes the
``workers > 1`` path (a ``concurrent.futures.ThreadPoolExecutor``;
the heavy lifting is NumPy/BLAS, which releases the GIL) bit-identical
to the serial path, an invariant the test suite asserts.  Context
caches are internally locked; cache hits and misses return the same
immutable partition objects, so sharing them across workers cannot
change results.

One caveat: the shared R-tree's
:class:`~repro.index.rtree.RTreeStats` node-access counters (the
paper's I/O proxy) are plain unguarded increments — accurate in the
serial path, approximate (racy, possibly under-counted) when
``workers > 1``.  Benchmarks that assert on node accesses must run
serially; answers themselves are unaffected.
"""

from __future__ import annotations

import dataclasses
import time
import warnings
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.core.audit import audit_result
from repro.core.penalty import DEFAULT_PENALTY, PenaltyConfig
from repro.core.protocol import Answer, ErrorInfo, Question
from repro.core.registry import algorithm_names, get_algorithm
from repro.engine.context import DatasetContext

#: Snapshot of the registered algorithm names at import time, kept
#: for backward compatibility.  New code should call
#: :func:`repro.core.registry.algorithm_names`, which reflects
#: runtime registrations.
ALGORITHMS = algorithm_names()


# ---------------------------------------------------------------------
# Typed path — the one answering loop behind every entry point
# ---------------------------------------------------------------------

def _answer(context: DatasetContext, question: Question, *,
            index: int, rng, penalty_config: PenaltyConfig,
            ) -> tuple[Answer, object]:
    """Answer one Question; returns ``(answer, bound_query_or_None)``.

    Any per-item failure — catalogue-dependent validation (e.g. a
    vector that is not actually missing) as well as unexpected errors
    from deeper layers (e.g. a ``LinAlgError`` escaping the QP
    solver) — is captured as a failed :class:`Answer` instead of
    raised, so one poisoned question can never abort a batch and lose
    its completed siblings.
    """
    start = time.perf_counter()
    try:
        # The lookup sits inside the capture: an algorithm
        # unregistered mid-batch must fail that one item, not escape
        # pool.map and lose every completed sibling.
        spec = get_algorithm(question.algorithm)
        query = context.question(question.q, question.k,
                                 question.why_not)
        result = spec.run(query, context=context, rng=rng,
                          penalty_config=penalty_config,
                          options=question.options)
        audit = audit_result(query, result, config=penalty_config)
        answer = Answer(
            index=index, algorithm=spec.name, result=result,
            penalty=audit.penalty, valid=audit.valid, error=None,
            elapsed=time.perf_counter() - start,
            question_id=question.id,
            catalogue_version=context.version)
        return answer, query
    except Exception as exc:
        answer = Answer(
            index=index, algorithm=question.algorithm, result=None,
            penalty=float("nan"), valid=False,
            error=ErrorInfo.from_exception(exc),
            elapsed=time.perf_counter() - start,
            question_id=question.id,
            catalogue_version=context.version)
        return answer, None


def answer_question(context: DatasetContext, question: Question, *,
                    index: int = 0,
                    rng: np.random.Generator | None = None,
                    penalty_config: PenaltyConfig = DEFAULT_PENALTY,
                    ) -> Answer:
    """Answer a single typed :class:`Question` against a context."""
    if not isinstance(question, Question):
        raise TypeError(
            "answer_question expects a repro.Question; for raw "
            "(q, k, Wm) triples use the deprecated answer_one shim")
    answer, _ = _answer(context, question, index=index, rng=rng,
                        penalty_config=penalty_config)
    return answer


def _pooled(run, n_items: int, *, workers: int,
            context: DatasetContext) -> list:
    if workers <= 1 or n_items <= 1:
        return [run(index) for index in range(n_items)]
    # Build the shared artifacts once, up front: otherwise every
    # worker would race to be the first tree builder and the losers
    # would block on the context lock doing nothing.
    context.tree
    with ThreadPoolExecutor(max_workers=int(workers)) as pool:
        return list(pool.map(run, range(n_items)))


def execute_questions(context: DatasetContext, questions, *,
                      seed: int = 0, workers: int = 1,
                      penalty_config: PenaltyConfig = DEFAULT_PENALTY,
                      ) -> list[Answer]:
    """Answer every typed :class:`Question` in order.

    Parameters
    ----------
    context:
        The shared catalogue context (index + partition caches).
    questions:
        Sequence of :class:`~repro.core.protocol.Question` objects
        (each carries its own algorithm and options).  Entries may
        also be pre-failed :class:`Answer` objects — e.g. wire
        entries that failed construction-time validation — which are
        passed through at their slot (index corrected) without
        consuming work, so the siblings keep their exact per-index
        rng seeds.
    seed:
        Base seed; item ``i`` uses ``default_rng(seed + i)``.
    workers:
        Number of executor threads; 1 (default) answers serially.
        Results are identical either way.

    Returns
    -------
    list[Answer]
        One answer per question, ordered by question index.
    """
    items = list(questions)
    for question in items:
        if not isinstance(question, (Question, Answer)):
            raise TypeError(
                f"execute_questions expects Question objects (or "
                f"pre-failed Answers), got "
                f"{type(question).__name__}; for (q, k, Wm) triples "
                "use the deprecated execute_batch shim")

    def run(index: int) -> Answer:
        item = items[index]
        if isinstance(item, Answer):
            # Pre-failed entries are stamped with the snapshot the
            # batch ran against, like their answered siblings.
            return dataclasses.replace(
                item, index=index,
                catalogue_version=context.version)
        answer, _ = _answer(
            context, item, index=index,
            rng=np.random.default_rng(seed + index),
            penalty_config=penalty_config)
        return answer

    return _pooled(run, len(items), workers=workers, context=context)


# ---------------------------------------------------------------------
# Deprecated triple-based path (pre-schema API)
# ---------------------------------------------------------------------

@dataclass
class ExecutionItem:
    """One answered (or failed) question with its timing.

    The pre-schema item type; :class:`~repro.core.protocol.Answer`
    is its typed replacement (structured error, wire round-trip).
    """

    index: int
    query: object          # WhyNotQuery | None
    algorithm: str
    result: object
    penalty: float
    valid: bool
    error: str | None = None
    elapsed: float = 0.0   # seconds of answer time (validation incl.)


def _answer_triple(context: DatasetContext, index: int, q, k, wm,
                   spec, *, sample_size: int, rng,
                   penalty_config: PenaltyConfig) -> ExecutionItem:
    start = time.perf_counter()
    try:
        question = Question.from_legacy(q, k, wm, algorithm=spec.name,
                                        sample_size=sample_size)
    except Exception as exc:
        # The typed path rejects malformed questions at construction;
        # the legacy path reported them as failed items — preserve
        # that contract for the shims.
        return ExecutionItem(
            index=index, query=None, algorithm=spec.name, result=None,
            penalty=float("nan"), valid=False,
            error=ErrorInfo.from_exception(exc).as_legacy_string,
            elapsed=time.perf_counter() - start)
    answer, query = _answer(context, question, index=index, rng=rng,
                            penalty_config=penalty_config)
    return ExecutionItem(
        index=index, query=query, algorithm=answer.algorithm,
        result=answer.result, penalty=answer.penalty,
        valid=answer.valid,
        error=(None if answer.error is None
               else answer.error.as_legacy_string),
        elapsed=answer.elapsed)


def _execute_triples(context: DatasetContext, questions, algorithm, *,
                     sample_size: int, seed: int, workers: int,
                     penalty_config: PenaltyConfig,
                     ) -> list[ExecutionItem]:
    """Shared implementation of the deprecated triple-based batch."""
    spec = get_algorithm(algorithm)
    items = list(questions)

    def run(index: int) -> ExecutionItem:
        q, k, wm = items[index]
        return _answer_triple(
            context, index, q, k, wm, spec, sample_size=sample_size,
            rng=np.random.default_rng(seed + index),
            penalty_config=penalty_config)

    return _pooled(run, len(items), workers=workers, context=context)


def answer_one(context: DatasetContext, index: int, q, k: int, wm,
               algorithm: str, *, sample_size: int = 200,
               rng: np.random.Generator | None = None,
               penalty_config: PenaltyConfig = DEFAULT_PENALTY,
               ) -> ExecutionItem:
    """Deprecated: answer one raw ``(q, k, Wm)`` triple.

    Build a :class:`~repro.core.protocol.Question` and call
    :func:`answer_question` (or ``Session.ask``) instead.
    """
    warnings.warn(
        "answer_one(q, k, wm, algorithm) is deprecated; build a "
        "repro.Question and use Session.ask or answer_question",
        DeprecationWarning, stacklevel=2)
    spec = get_algorithm(algorithm)
    return _answer_triple(context, index, q, k, wm, spec,
                          sample_size=sample_size, rng=rng,
                          penalty_config=penalty_config)


def execute_batch(context: DatasetContext, questions, algorithm: str,
                  *, sample_size: int = 200, seed: int = 0,
                  workers: int = 1,
                  penalty_config: PenaltyConfig = DEFAULT_PENALTY,
                  ) -> list[ExecutionItem]:
    """Deprecated: answer ``(q, k, Wm)`` triples with one algorithm.

    Build :class:`~repro.core.protocol.Question` objects and call
    :func:`execute_questions` (or ``Session.ask_batch``) instead.
    """
    warnings.warn(
        "execute_batch(questions, algorithm) over (q, k, Wm) triples "
        "is deprecated; build repro.Question objects and use "
        "Session.ask_batch or execute_questions",
        DeprecationWarning, stacklevel=2)
    return _execute_triples(context, questions, algorithm,
                            sample_size=sample_size, seed=seed,
                            workers=workers,
                            penalty_config=penalty_config)
