"""Answering typed Questions over one DatasetContext.

:func:`answer_question` / :func:`execute_questions` are the single
serving loop behind every front door — the
:class:`~repro.core.session.Session` facade, the CLI ``wqrtq batch``
subcommand and the HTTP service all call them, so one
:class:`~repro.core.protocol.Question` produces the same
:class:`~repro.core.protocol.Answer` payload no matter which surface
it entered through.  Algorithm dispatch goes through the
:mod:`~repro.core.registry` algorithm registry — there is no
algorithm-name ``if/elif`` here.

Questions carrying a :class:`~repro.core.protocol.Budget` take the
*anytime* path: the algorithm's registered stepper is refined in
chunks (:class:`_AnytimeRun`) until the budget's first limit — sample
budget, deadline, penalty tolerance — and the best answer so far is
returned with :class:`~repro.core.protocol.Quality` metadata.
:func:`iter_answers` streams the per-round answers
(``Session.ask_stream``); :func:`execute_questions` interleaves
refinement chunks round-robin across a budgeted batch instead of
head-of-line blocking.

The pre-schema entry points — :func:`answer_one` /
:func:`execute_batch` over ``(q, k, Wm)`` triples, returning
:class:`ExecutionItem` — remain as thin shims that emit
``DeprecationWarning``.

Determinism and parallelism
---------------------------
Each item gets its own ``np.random.default_rng(seed + index)``, so the
answer to question *i* depends only on the context data and ``seed`` —
never on the order questions are processed in.  That makes the
``workers > 1`` path (a ``concurrent.futures.ThreadPoolExecutor``;
the heavy lifting is NumPy/BLAS, which releases the GIL) bit-identical
to the serial path, an invariant the test suite asserts.  Context
caches are internally locked; cache hits and misses return the same
immutable partition objects, so sharing them across workers cannot
change results.

One caveat: the shared R-tree's
:class:`~repro.index.rtree.RTreeStats` node-access counters (the
paper's I/O proxy) are plain unguarded increments — accurate in the
serial path, approximate (racy, possibly under-counted) when
``workers > 1``.  Benchmarks that assert on node accesses must run
serially; answers themselves are unaffected.
"""

from __future__ import annotations

import dataclasses
import time
import warnings
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.core.audit import audit_result
from repro.core.penalty import DEFAULT_PENALTY, PenaltyConfig
from repro.core.protocol import (
    Answer,
    Budget,
    ErrorInfo,
    Quality,
    Question,
)
from repro.core.registry import algorithm_names, get_algorithm
from repro.engine.context import DatasetContext

#: Default smallest refinement chunk the anytime loop schedules, for
#: steppers that do not declare their own ``min_chunk``: big enough
#: to amortize a kernel call, small enough that the first round —
#: which doubles as the sampling-rate probe for deadline chunk
#: sizing — lands quickly.  One algorithm's "sample" can be far more
#: expensive than another's (an MQWK candidate is a whole inner
#: MWK), so the built-in steppers override this per algorithm.
MIN_CHUNK = 64

#: Deadline chunk sizing aims at this fraction of the remaining time,
#: so estimation noise overshoots into the slack instead of past the
#: deadline.
DEADLINE_SAFETY = 0.8

#: Default per-round chunk cap for interleaved refinement (batch
#: round-robin and jobs), for steppers that do not declare their own
#: ``round_chunk``.  Interleaving and cooperative cancellation both
#: happen at chunk boundaries, so one item must never spend its whole
#: budget in a single round; the cap bounds the latency of both.
#: Results are unchanged — refinement is chunk-invariant.
INTERLEAVE_CHUNK = 256

#: Snapshot of the registered algorithm names at import time, kept
#: for backward compatibility.  New code should call
#: :func:`repro.core.registry.algorithm_names`, which reflects
#: runtime registrations.
ALGORITHMS = algorithm_names()


# ---------------------------------------------------------------------
# Typed path — the one answering loop behind every entry point
# ---------------------------------------------------------------------

def _answer(context: DatasetContext, question: Question, *,
            index: int, rng, penalty_config: PenaltyConfig,
            precompute=None) -> tuple[Answer, object]:
    """Answer one Question; returns ``(answer, bound_query_or_None)``.

    Any per-item failure — catalogue-dependent validation (e.g. a
    vector that is not actually missing) as well as unexpected errors
    from deeper layers (e.g. a ``LinAlgError`` escaping the QP
    solver) — is captured as a failed :class:`Answer` instead of
    raised, so one poisoned question can never abort a batch and lose
    its completed siblings.
    """
    start = time.perf_counter()
    try:
        # The lookup sits inside the capture: an algorithm
        # unregistered mid-batch must fail that one item, not escape
        # pool.map and lose every completed sibling.
        spec = get_algorithm(question.algorithm)
        query = context.question(question.q, question.k,
                                 question.why_not)
        result = spec.run(query, context=context, rng=rng,
                          penalty_config=penalty_config,
                          options=question.options,
                          precompute=precompute)
        audit = audit_result(query, result, config=penalty_config)
        answer = Answer(
            index=index, algorithm=spec.name, result=result,
            penalty=audit.penalty, valid=audit.valid, error=None,
            elapsed=time.perf_counter() - start,
            question_id=question.id,
            catalogue_version=context.version)
        return answer, query
    except Exception as exc:
        answer = Answer(
            index=index, algorithm=question.algorithm, result=None,
            penalty=float("nan"), valid=False,
            error=ErrorInfo.from_exception(exc),
            elapsed=time.perf_counter() - start,
            question_id=question.id,
            catalogue_version=context.version)
        return answer, None


# ---------------------------------------------------------------------
# Anytime path — budgeted, resumable, streaming refinement
# ---------------------------------------------------------------------

class _AnytimeRun:
    """One budgeted question being refined round by round.

    Owns the algorithm's stepper state, the chunk-sizing policy and
    the stop conditions; :meth:`step` runs one refinement round and
    returns the current-best :class:`Answer`.  The same object drives
    ``answer_question`` (step until done), ``Session.ask_stream``
    (yield each step) and the interleaved batch/job loops (round-robin
    ``step`` across many runs).

    Chunk policy: without a deadline, one round examines everything
    still allowed (or ``chunk`` samples when streaming).  With a
    deadline, the first round is a small probe (:data:`MIN_CHUNK`)
    that measures the sampling rate; later rounds size their chunk to
    fill :data:`DEADLINE_SAFETY` of the remaining time and the loop
    stops once even a minimum chunk would not fit.  At least one
    round always runs — a budgeted question never returns empty.
    """

    def __init__(self, context: DatasetContext, question: Question, *,
                 index: int = 0,
                 rng: np.random.Generator | None = None,
                 penalty_config: PenaltyConfig = DEFAULT_PENALTY,
                 chunk: int | None = None,
                 interleaved: bool = False,
                 shared_deadline: float | None = None,
                 precompute=None):
        self._context = context
        self._question = question
        self._index = index
        self._penalty_config = penalty_config
        self._precompute = precompute
        self._chunk = None if chunk is None else max(1, int(chunk))
        self._interleaved = interleaved
        self._min_chunk = MIN_CHUNK
        self._round_chunk = INTERLEAVE_CHUNK
        self._budget = question.budget or Budget()
        self._spent = 0.0           # seconds spent in this run's steps
        self._state = None
        self._query = None
        self.answer: Answer | None = None
        self.done = False

        start = time.perf_counter()
        deadline = None
        if self._budget.deadline_ms is not None:
            deadline = start + self._budget.deadline_ms / 1000.0
        if shared_deadline is not None:
            deadline = (shared_deadline if deadline is None
                        else min(deadline, shared_deadline))
        self._deadline = deadline

        try:
            self._spec = get_algorithm(question.algorithm)
            self._query = context.question(question.q, question.k,
                                           question.why_not)
            if self._spec.supports_anytime:
                self._state = self._spec.start(
                    self._query, context=context, rng=rng,
                    penalty_config=penalty_config,
                    options=question.options,
                    precompute=precompute)
                self._target = (self._budget.sample_budget
                                if self._budget.sample_budget
                                is not None
                                else self._state.sample_target)
                # Chunk units are per-algorithm: one MQWK "sample"
                # costs a whole inner MWK, so its stepper declares
                # much smaller probe/round chunks than MWK's.
                self._min_chunk = int(getattr(
                    self._state, "min_chunk", MIN_CHUNK))
                self._round_chunk = int(getattr(
                    self._state, "round_chunk", INTERLEAVE_CHUNK))
                if self._interleaved and self._chunk is None:
                    self._chunk = self._round_chunk
            else:
                self._rng = rng
                self._target = 0
        except Exception as exc:
            self.answer = self._failed(exc)
            self.done = True
        self._spent += time.perf_counter() - start

    # -- assembly ------------------------------------------------------

    def _failed(self, exc: BaseException) -> Answer:
        return Answer(
            index=self._index, algorithm=self._question.algorithm,
            result=None, penalty=float("nan"), valid=False,
            error=ErrorInfo.from_exception(exc), elapsed=self._spent,
            question_id=self._question.id,
            catalogue_version=self._context.version)

    def _finish(self, result, *, converged: bool) -> Answer:
        state = self._state
        audit = audit_result(self._query, result,
                             config=self._penalty_config)
        return Answer(
            index=self._index, algorithm=self._spec.name,
            result=result, penalty=audit.penalty, valid=audit.valid,
            error=None, elapsed=self._spent,
            question_id=self._question.id,
            catalogue_version=self._context.version,
            quality=Quality(
                samples_examined=(state.samples_examined
                                  if state is not None else 0),
                converged=converged,
                rounds=(state.rounds if state is not None else 1)))

    # -- chunk policy and stop conditions ------------------------------

    def _next_chunk(self) -> int | None:
        """Samples for the next round, or ``None`` to stop.

        The first round always runs (chunk 0 when the stepper
        converged at construction — ``refine(0)`` still returns its
        seed answer), so a budgeted question never produces nothing.
        """
        state = self._state
        first = state.rounds == 0
        remaining = self._target - state.samples_examined
        if state.converged or remaining <= 0:
            return 0 if first else None
        if self._deadline is None:
            chunk = remaining
            if self._budget.target_penalty_tolerance is not None:
                # The tolerance is only checked between chunks, so a
                # tolerance budget implies bounded rounds — otherwise
                # one all-remaining chunk would spend the whole
                # sample budget before the first check.
                chunk = min(chunk, self._round_chunk)
        else:
            if first:
                chunk = min(self._min_chunk, remaining)
            else:
                time_left = self._deadline - time.perf_counter()
                if time_left <= 0:
                    return None
                rate = state.samples_examined / max(self._spent, 1e-6)
                budgeted = int(rate * time_left * DEADLINE_SAFETY)
                if budgeted < self._min_chunk:
                    return None   # even a minimum chunk won't fit
                chunk = min(budgeted, remaining)
            chunk = max(1, chunk)
        if self._chunk is not None:
            chunk = max(1, min(chunk, self._chunk))
        return chunk

    def step(self) -> Answer | None:
        """One refinement round; returns the round's current-best
        Answer, or ``None`` when there was nothing left to do (the
        final answer stays in :attr:`answer`)."""
        if self.done:
            return None
        start = time.perf_counter()
        try:
            if self._state is None:
                # No stepper registered: run to completion, one round.
                result = self._spec.run(
                    self._query, context=self._context, rng=self._rng,
                    penalty_config=self._penalty_config,
                    options=self._question.options,
                    precompute=self._precompute)
                self._spent += time.perf_counter() - start
                self.answer = self._finish(result, converged=True)
                self.done = True
                return self.answer
            chunk = self._next_chunk()
            if chunk is None:
                self.done = True
                return None
            result = self._state.refine(chunk)
            self._spent += time.perf_counter() - start
        except Exception as exc:
            self._spent += time.perf_counter() - start
            self.answer = self._failed(exc)
            self.done = True
            return self.answer
        exhausted = (self._state.converged
                     or self._state.samples_examined >= self._target)
        self.answer = self._finish(result, converged=exhausted)
        tolerance = self._budget.target_penalty_tolerance
        if tolerance is not None and self.answer.penalty <= tolerance:
            self.answer = dataclasses.replace(
                self.answer,
                quality=dataclasses.replace(self.answer.quality,
                                            converged=True))
            self.done = True
        elif exhausted:
            self.done = True
        return self.answer


def iter_answers(context: DatasetContext, question: Question, *,
                 index: int = 0,
                 rng: np.random.Generator | None = None,
                 penalty_config: PenaltyConfig = DEFAULT_PENALTY,
                 chunk: int | None = None):
    """Stream successive refinements of one Question.

    Yields one :class:`Answer` per refinement round with
    non-increasing penalty; the last yielded answer is exactly what
    :func:`answer_question` would return for the same inputs.  The
    generator behind ``Session.ask_stream``.  ``chunk`` caps the
    samples examined per round; when omitted it defaults to an
    eighth of the question's sample target, so even an unbudgeted
    stream refines in several visible steps.
    """
    if not isinstance(question, Question):
        raise TypeError("iter_answers expects a repro.Question")
    run = _AnytimeRun(context, question, index=index, rng=rng,
                      penalty_config=penalty_config, chunk=chunk)
    if chunk is None and not run.done:
        # Default streaming granularity, decided here where the
        # stepper's sample target is known.
        run._chunk = max(1, -(-run._target // 8))
    if run.done:          # failed at start
        yield run.answer
        return
    while not run.done:
        answer = run.step()
        if answer is not None:
            yield answer
    if run.answer is None:   # defensive: never end without an answer
        yield run._failed(RuntimeError("refinement produced no "
                                       "answer"))   # pragma: no cover


def _run_anytime(context: DatasetContext, question: Question, *,
                 index: int, rng, penalty_config: PenaltyConfig,
                 shared_deadline: float | None = None,
                 precompute=None) -> Answer:
    run = _AnytimeRun(context, question, index=index, rng=rng,
                      penalty_config=penalty_config,
                      shared_deadline=shared_deadline,
                      precompute=precompute)
    while not run.done:
        run.step()
    return run.answer


def answer_question(context: DatasetContext, question: Question, *,
                    index: int = 0, seed: int | None = None,
                    rng: np.random.Generator | None = None,
                    penalty_config: PenaltyConfig = DEFAULT_PENALTY,
                    precompute=None, observer=None) -> Answer:
    """Answer a single typed :class:`Question` against a context.

    Questions carrying a :class:`~repro.core.protocol.Budget` take
    the anytime path: chunked refinement until the budget's first
    limit, with :class:`~repro.core.protocol.Quality` metadata on the
    answer.  Unbudgeted questions run to completion exactly as
    before.  ``precompute`` — a merged scatter-gather
    :class:`~repro.core.protocol.Precompute` — is forwarded to
    algorithms that declared ``shard_needs``.

    Randomness comes from ``rng``, or from ``default_rng(seed)`` when
    only ``seed`` is given — the seam that lets numpy-free callers
    (the service worker tier) stay deterministic without constructing
    a generator themselves.  Passing both is a contradiction and
    raises.

    ``observer`` is the timing-capture seam for cost-model
    calibration: ``observer(question, answer)`` fires once per
    successful answer, *after* execution, carrying the
    executor-recorded ``elapsed`` and ``quality`` — the only
    wall-clock readings the (clock-free) planner ever sees.
    Observer failures never fail the answer.
    """
    if not isinstance(question, Question):
        raise TypeError(
            "answer_question expects a repro.Question; for raw "
            "(q, k, Wm) triples use the deprecated answer_one shim")
    if seed is not None:
        if rng is not None:
            raise ValueError(
                "pass either seed= or rng=, not both")
        rng = np.random.default_rng(int(seed))
    if question.budget is not None:
        answer = _run_anytime(context, question, index=index, rng=rng,
                              penalty_config=penalty_config,
                              precompute=precompute)
    else:
        answer, _ = _answer(context, question, index=index, rng=rng,
                            penalty_config=penalty_config,
                            precompute=precompute)
    _observe_answer(observer, question, answer)
    return answer


def _observe_answer(observer, question, answer) -> None:
    """Invoke a calibration observer for one successful answer."""
    if observer is None or answer is None:
        return
    if not isinstance(question, Question) or not answer.ok:
        return
    try:
        observer(question, answer)
    except Exception:   # pragma: no cover - observers never fail asks
        pass


def _pooled(run, n_items: int, *, workers: int,
            context: DatasetContext) -> list:
    if workers <= 1 or n_items <= 1:
        return [run(index) for index in range(n_items)]
    # Build the shared artifacts once, up front: otherwise every
    # worker would race to be the first tree builder and the losers
    # would block on the context lock doing nothing.
    context.tree
    with ThreadPoolExecutor(max_workers=int(workers)) as pool:
        return list(pool.map(run, range(n_items)))


def execute_questions(context: DatasetContext, questions, *,
                      seed: int = 0, workers: int = 1,
                      penalty_config: PenaltyConfig = DEFAULT_PENALTY,
                      deadline_ms: float | None = None,
                      interleave: bool = True,
                      observer=None) -> list[Answer]:
    """Answer every typed :class:`Question` in order.

    Parameters
    ----------
    context:
        The shared catalogue context (index + partition caches).
    questions:
        Sequence of :class:`~repro.core.protocol.Question` objects
        (each carries its own algorithm and options).  Entries may
        also be pre-failed :class:`Answer` objects — e.g. wire
        entries that failed construction-time validation — which are
        passed through at their slot (index corrected) without
        consuming work, so the siblings keep their exact per-index
        rng seeds.
    seed:
        Base seed; item ``i`` uses ``default_rng(seed + i)``.
    workers:
        Number of executor threads; 1 (default) answers serially.
        Results are identical either way.
    deadline_ms:
        Optional batch-wide wall-clock deadline.  When set, *every*
        question takes the anytime path (its own
        :class:`~repro.core.protocol.Budget` deadline, if any, is
        tightened to the batch's) and refinement stops at the first
        limit hit.  Each question still gets at least one refinement
        round, so no item comes back empty.
    interleave:
        In the serial path, refine budgeted questions round-robin —
        one chunk each, repeatedly — instead of running each to its
        budget before starting the next (head-of-line blocking).
        Under a shared deadline this spreads the remaining time over
        the whole batch; for pure sample budgets the answers are
        identical either way (refinement is chunk-invariant), so the
        flag only exists to measure the difference.  Ignored when
        ``workers > 1`` (the pool already overlaps questions).
    observer:
        Optional ``observer(question, answer)`` timing-capture
        callback, fired once per successful answer after the batch
        completes (see :func:`answer_question`).

    Returns
    -------
    list[Answer]
        One answer per question, ordered by question index.
    """
    items = list(questions)
    for question in items:
        if not isinstance(question, (Question, Answer)):
            raise TypeError(
                f"execute_questions expects Question objects (or "
                f"pre-failed Answers), got "
                f"{type(question).__name__}; for (q, k, Wm) triples "
                "use the deprecated execute_batch shim")

    shared_deadline = (None if deadline_ms is None
                       else time.perf_counter()
                       + float(deadline_ms) / 1000.0)

    def is_anytime(item) -> bool:
        return isinstance(item, Question) and (
            item.budget is not None or shared_deadline is not None)

    def run(index: int) -> Answer:
        item = items[index]
        if isinstance(item, Answer):
            # Pre-failed entries are stamped with the snapshot the
            # batch ran against, like their answered siblings.
            return dataclasses.replace(
                item, index=index,
                catalogue_version=context.version)
        if is_anytime(item):
            return _run_anytime(
                context, item, index=index,
                rng=np.random.default_rng(seed + index),
                penalty_config=penalty_config,
                shared_deadline=shared_deadline)
        answer, _ = _answer(
            context, item, index=index,
            rng=np.random.default_rng(seed + index),
            penalty_config=penalty_config)
        return answer

    n_anytime = sum(1 for item in items if is_anytime(item))
    if workers <= 1 and interleave and n_anytime >= 2:
        answers = _interleaved(context, items, is_anytime, seed=seed,
                               penalty_config=penalty_config,
                               shared_deadline=shared_deadline)
    else:
        answers = _pooled(run, len(items), workers=workers,
                          context=context)
    if observer is not None:
        for item, answer in zip(items, answers):
            _observe_answer(observer, item, answer)
    return answers


def refine_questions(context: DatasetContext, questions, *,
                     seed: int = 0,
                     penalty_config: PenaltyConfig = DEFAULT_PENALTY,
                     deadline_ms: float | None = None,
                     should_stop=None, on_answer=None,
                     ) -> tuple[list[Answer | None], bool]:
    """Interleaved anytime refinement with cooperative cancellation.

    The engine loop behind the service's async job API: every
    :class:`Question` takes the anytime path (budgeted or not),
    refinement proceeds round-robin, ``on_answer(index, answer,
    done)`` fires after every refinement round, and ``should_stop()``
    is polled between chunks — never mid-kernel — so a ``DELETE`` on
    a job takes effect at the next chunk boundary.

    Returns ``(answers, stopped)``.  When stopped early, items whose
    first round never ran are ``None``; everything else holds its
    best answer so far.
    """
    items = list(questions)
    shared_deadline = (None if deadline_ms is None
                       else time.perf_counter()
                       + float(deadline_ms) / 1000.0)
    answers: list[Answer | None] = [None] * len(items)
    runs: list[tuple[int, _AnytimeRun]] = []
    stopped = False

    def notify(index: int, answer: Answer, done: bool) -> None:
        if on_answer is not None:
            on_answer(index, answer, done)

    for index, item in enumerate(items):
        if should_stop is not None and should_stop():
            stopped = True
            break
        if isinstance(item, Answer):
            answers[index] = dataclasses.replace(
                item, index=index, catalogue_version=context.version)
            notify(index, answers[index], True)
            continue
        run = _AnytimeRun(context, item, index=index,
                          rng=np.random.default_rng(seed + index),
                          penalty_config=penalty_config,
                          interleaved=True,
                          shared_deadline=shared_deadline)
        runs.append((index, run))
        if run.done:   # failed at start
            answers[index] = run.answer
            notify(index, run.answer, True)
    active = [pair for pair in runs if not pair[1].done]
    while active and not stopped:
        for index, run in active:
            if should_stop is not None and should_stop():
                stopped = True
                break
            answer = run.step()
            if answer is not None:
                answers[index] = answer
                notify(index, answer, run.done)
        active = [pair for pair in active if not pair[1].done]
    for index, run in runs:
        if run.answer is not None:
            answers[index] = run.answer
    return answers, stopped


def _interleaved(context: DatasetContext, items, is_anytime, *,
                 seed: int, penalty_config: PenaltyConfig,
                 shared_deadline: float | None) -> list[Answer]:
    """Serial round-robin refinement across a batch.

    Non-budgeted items answer immediately at their slot; budgeted
    ones are all started, then refined one chunk at a time in index
    order until every run is done.  Pure sample budgets produce
    exactly the head-of-line answers (chunk-invariant steppers);
    under a deadline every question reaches a first coarse answer
    before any question spends the remaining time refining.
    """
    answers: list[Answer | None] = [None] * len(items)
    runs: list[tuple[int, _AnytimeRun]] = []
    for index, item in enumerate(items):
        if isinstance(item, Answer):
            answers[index] = dataclasses.replace(
                item, index=index, catalogue_version=context.version)
        elif is_anytime(item):
            runs.append((index, _AnytimeRun(
                context, item, index=index,
                rng=np.random.default_rng(seed + index),
                penalty_config=penalty_config,
                interleaved=True,
                shared_deadline=shared_deadline)))
        else:
            answers[index], _ = _answer(
                context, item, index=index,
                rng=np.random.default_rng(seed + index),
                penalty_config=penalty_config)
    active = [pair for pair in runs if not pair[1].done]
    while active:
        for _, run in active:
            run.step()
        active = [pair for pair in active if not pair[1].done]
    for index, run in runs:
        answers[index] = run.answer
    return answers


# ---------------------------------------------------------------------
# Deprecated triple-based path (pre-schema API)
# ---------------------------------------------------------------------

@dataclass
class ExecutionItem:
    """One answered (or failed) question with its timing.

    The pre-schema item type; :class:`~repro.core.protocol.Answer`
    is its typed replacement (structured error, wire round-trip).
    """

    index: int
    query: object          # WhyNotQuery | None
    algorithm: str
    result: object
    penalty: float
    valid: bool
    error: str | None = None
    elapsed: float = 0.0   # seconds of answer time (validation incl.)


def _answer_triple(context: DatasetContext, index: int, q, k, wm,
                   spec, *, sample_size: int, rng,
                   penalty_config: PenaltyConfig) -> ExecutionItem:
    start = time.perf_counter()
    try:
        question = Question.from_legacy(q, k, wm, algorithm=spec.name,
                                        sample_size=sample_size)
    except Exception as exc:
        # The typed path rejects malformed questions at construction;
        # the legacy path reported them as failed items — preserve
        # that contract for the shims.
        return ExecutionItem(
            index=index, query=None, algorithm=spec.name, result=None,
            penalty=float("nan"), valid=False,
            error=ErrorInfo.from_exception(exc).as_legacy_string,
            elapsed=time.perf_counter() - start)
    answer, query = _answer(context, question, index=index, rng=rng,
                            penalty_config=penalty_config)
    return ExecutionItem(
        index=index, query=query, algorithm=answer.algorithm,
        result=answer.result, penalty=answer.penalty,
        valid=answer.valid,
        error=(None if answer.error is None
               else answer.error.as_legacy_string),
        elapsed=answer.elapsed)


def _execute_triples(context: DatasetContext, questions, algorithm, *,
                     sample_size: int, seed: int, workers: int,
                     penalty_config: PenaltyConfig,
                     ) -> list[ExecutionItem]:
    """Shared implementation of the deprecated triple-based batch."""
    spec = get_algorithm(algorithm)
    items = list(questions)

    def run(index: int) -> ExecutionItem:
        q, k, wm = items[index]
        return _answer_triple(
            context, index, q, k, wm, spec, sample_size=sample_size,
            rng=np.random.default_rng(seed + index),
            penalty_config=penalty_config)

    return _pooled(run, len(items), workers=workers, context=context)


def answer_one(context: DatasetContext, index: int, q, k: int, wm,
               algorithm: str, *, sample_size: int = 200,
               rng: np.random.Generator | None = None,
               penalty_config: PenaltyConfig = DEFAULT_PENALTY,
               ) -> ExecutionItem:
    """Deprecated: answer one raw ``(q, k, Wm)`` triple.

    Build a :class:`~repro.core.protocol.Question` and call
    :func:`answer_question` (or ``Session.ask``) instead.
    """
    warnings.warn(
        "answer_one(q, k, wm, algorithm) is deprecated; build a "
        "repro.Question and use Session.ask or answer_question",
        DeprecationWarning, stacklevel=2)
    spec = get_algorithm(algorithm)
    return _answer_triple(context, index, q, k, wm, spec,
                          sample_size=sample_size, rng=rng,
                          penalty_config=penalty_config)


def execute_batch(context: DatasetContext, questions, algorithm: str,
                  *, sample_size: int = 200, seed: int = 0,
                  workers: int = 1,
                  penalty_config: PenaltyConfig = DEFAULT_PENALTY,
                  ) -> list[ExecutionItem]:
    """Deprecated: answer ``(q, k, Wm)`` triples with one algorithm.

    Build :class:`~repro.core.protocol.Question` objects and call
    :func:`execute_questions` (or ``Session.ask_batch``) instead.
    """
    warnings.warn(
        "execute_batch(questions, algorithm) over (q, k, Wm) triples "
        "is deprecated; build repro.Question objects and use "
        "Session.ask_batch or execute_questions",
        DeprecationWarning, stacklevel=2)
    return _execute_triples(context, questions, algorithm,
                            sample_size=sample_size, seed=seed,
                            workers=workers,
                            penalty_config=penalty_config)
