"""Batch execution of why-not questions over one DatasetContext.

:func:`execute_batch` is the serving loop behind
:class:`~repro.core.batch.WhyNotBatch`: it answers a list of queued
``(q, k, Wm)`` questions with one of the three WQRTQ algorithms,
sharing a :class:`~repro.engine.context.DatasetContext` so the R-tree
and per-product ``FindIncom`` partitions are paid once per catalogue
rather than once per question.

Determinism and parallelism
---------------------------
Each item gets its own ``np.random.default_rng(seed + index)``, so the
answer to question *i* depends only on the context data and ``seed`` —
never on the order questions are processed in.  That makes the
``workers > 1`` path (a ``concurrent.futures.ThreadPoolExecutor``;
the heavy lifting is NumPy/BLAS, which releases the GIL) bit-identical
to the serial path, an invariant the test suite asserts.  Context
caches are internally locked; cache hits and misses return the same
immutable partition objects, so sharing them across workers cannot
change results.

One caveat: the shared R-tree's
:class:`~repro.index.rtree.RTreeStats` node-access counters (the
paper's I/O proxy) are plain unguarded increments — accurate in the
serial path, approximate (racy, possibly under-counted) when
``workers > 1``.  Benchmarks that assert on node accesses must run
serially; answers themselves are unaffected.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.core.audit import audit_result
from repro.core.mqp import modify_query_point
from repro.core.mqwk import modify_query_weights_and_k
from repro.core.mwk import modify_weights_and_k
from repro.core.penalty import DEFAULT_PENALTY, PenaltyConfig
from repro.engine.context import DatasetContext

ALGORITHMS = ("mqp", "mwk", "mqwk")


@dataclass
class ExecutionItem:
    """One answered (or failed) question with its timing."""

    index: int
    query: object          # WhyNotQuery | None
    algorithm: str
    result: object
    penalty: float
    valid: bool
    error: str | None = None
    elapsed: float = 0.0   # seconds of answer time (validation incl.)


def answer_one(context: DatasetContext, index: int, q, k: int, wm,
               algorithm: str, *, sample_size: int = 200,
               rng: np.random.Generator | None = None,
               penalty_config: PenaltyConfig = DEFAULT_PENALTY,
               ) -> ExecutionItem:
    """Answer a single question against a shared context.

    Any per-item failure — validation (e.g. a vector that is not
    actually missing) as well as unexpected errors from deeper layers
    (e.g. a ``LinAlgError`` escaping the QP solver) — is captured as a
    failed item instead of raised, so one poisoned question can never
    abort a batch and lose its completed siblings.
    """
    if algorithm not in ALGORITHMS:
        raise ValueError(f"unknown algorithm: {algorithm!r}")
    start = time.perf_counter()
    try:
        query = context.question(q, k, wm)
        if algorithm == "mqp":
            result = modify_query_point(query)
        elif algorithm == "mwk":
            result = modify_weights_and_k(
                query, sample_size=sample_size, rng=rng,
                config=penalty_config, context=context)
        else:
            result = modify_query_weights_and_k(
                query, sample_size=sample_size, rng=rng,
                config=penalty_config, context=context)
        audit = audit_result(query, result, config=penalty_config)
        return ExecutionItem(
            index=index, query=query, algorithm=algorithm,
            result=result, penalty=audit.penalty, valid=audit.valid,
            elapsed=time.perf_counter() - start)
    except Exception as exc:
        # ValueError is the expected validation-failure channel and
        # keeps its bare message; anything else is an internal error,
        # prefixed with its class so callers can tell the two apart.
        message = (str(exc) if isinstance(exc, ValueError)
                   else f"{type(exc).__name__}: {exc}")
        return ExecutionItem(
            index=index, query=None, algorithm=algorithm, result=None,
            penalty=float("nan"), valid=False, error=message,
            elapsed=time.perf_counter() - start)


def execute_batch(context: DatasetContext, questions, algorithm: str,
                  *, sample_size: int = 200, seed: int = 0,
                  workers: int = 1,
                  penalty_config: PenaltyConfig = DEFAULT_PENALTY,
                  ) -> list[ExecutionItem]:
    """Answer every question in ``questions`` with one algorithm.

    Parameters
    ----------
    context:
        The shared catalogue context (index + partition caches).
    questions:
        Iterable of ``(q, k, why_not)`` triples.
    algorithm:
        ``"mqp"``, ``"mwk"`` or ``"mqwk"``.
    sample_size:
        ``|S|`` forwarded to MWK / MQWK.
    seed:
        Base seed; item ``i`` uses ``default_rng(seed + i)``.
    workers:
        Number of executor threads; 1 (default) answers serially.
        Results are identical either way.

    Returns
    -------
    list[ExecutionItem]
        One item per question, ordered by question index.
    """
    if algorithm not in ALGORITHMS:
        raise ValueError(f"unknown algorithm: {algorithm!r}")
    items = list(questions)

    def run(index_question) -> ExecutionItem:
        index, (q, k, wm) = index_question
        return answer_one(
            context, index, q, k, wm, algorithm,
            sample_size=sample_size,
            rng=np.random.default_rng(seed + index),
            penalty_config=penalty_config)

    if workers <= 1 or len(items) <= 1:
        return [run(pair) for pair in enumerate(items)]

    # Build the shared artifacts once, up front: otherwise every
    # worker would race to be the first tree builder and the losers
    # would block on the context lock doing nothing.
    context.tree
    with ThreadPoolExecutor(max_workers=int(workers)) as pool:
        return list(pool.map(run, enumerate(items)))
