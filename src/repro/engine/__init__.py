"""Shared query-engine layer.

The engine sits between the public API
(:class:`~repro.core.session.Session`, the CLI, the HTTP service —
plus the deprecated ``WQRTQ``/``WhyNotBatch`` shims) and the paper's
algorithms.  It owns the three cross-cutting concerns every entry
point used to re-implement:

* :mod:`repro.engine.kernels` — the single vectorized, chunked
  score/rank kernel module (score matrices, batched ranks, top-k and
  k-th-point selection, dominance counts);
* :mod:`repro.engine.context` — :class:`DatasetContext`, the
  per-catalogue cache of the R-tree, ``FindIncom`` partitions and
  score buffers, with observable :class:`ContextStats`;
* :mod:`repro.engine.executor` — the (optionally parallel) batch
  serving loop with per-item timing, dispatching typed
  :class:`~repro.core.protocol.Question` objects through the
  algorithm registry.

See DESIGN.md for the architecture rationale.
"""

from repro.engine.context import (
    DEFAULT_CACHE_CAP,
    ContextStats,
    DatasetContext,
)
from repro.engine.kernels import (
    CHUNK_FLOATS,
    RANK_EPS,
    beats_count,
    iter_score_blocks,
    kth_scores_batch,
    rank_of,
    ranks_batch,
    score_matrix,
    topk_ids,
    topk_pairs,
)

_EXECUTOR_NAMES = ("ExecutionItem", "answer_one", "answer_question",
                   "execute_batch", "execute_questions")


def __getattr__(name: str):
    # The executor pulls in the three algorithm modules, which
    # themselves sit on top of the kernels; importing it lazily keeps
    # ``repro.engine.kernels`` importable from anywhere in the core
    # without a cycle.
    if name in _EXECUTOR_NAMES:
        from repro.engine import executor

        return getattr(executor, name)
    raise AttributeError(f"module {__name__!r} has no attribute "
                         f"{name!r}")


__all__ = [
    "CHUNK_FLOATS",
    "ContextStats",
    "DEFAULT_CACHE_CAP",
    "DatasetContext",
    "ExecutionItem",
    "RANK_EPS",
    "answer_one",
    "answer_question",
    "beats_count",
    "execute_batch",
    "execute_questions",
    "iter_score_blocks",
    "kth_scores_batch",
    "rank_of",
    "ranks_batch",
    "score_matrix",
    "topk_ids",
    "topk_pairs",
]
