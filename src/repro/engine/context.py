"""DatasetContext — shared, cached per-catalogue execution state.

The paper's workload is inherently multi-query: a manufacturer asks
many why-not questions (one per product / customer-set pair) against
one catalogue.  Answering each question from scratch re-pays the two
expensive per-catalogue artifacts every time:

* the **R-tree** over ``P`` (index construction), and
* the **FindIncom** dominance partition for each query point (one
  branch-and-bound traversal per ``q``).

A :class:`DatasetContext` is the immutable home of one catalogue plus
lazily-built, cached derivations of it.  Everything downstream —
:class:`~repro.core.framework.WQRTQ`,
:class:`~repro.core.batch.WhyNotBatch`, the CLI and the benchmark
harness — constructs (or receives) one context and shares it, so a
20-question batch builds the index once and traverses per *distinct*
product rather than per question.  Cache effectiveness is observable
through :class:`ContextStats`, which the acceptance tests and the
``benchmarks/test_batch_reuse.py`` micro-benchmark assert against.

Thread safety: all caches are guarded by one lock, so a context can be
shared by the parallel batch executor
(:mod:`repro.engine.executor`).  Cached artifacts are treated as
immutable after insertion.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.core.incomparable import IncomparableCache, IncomparableResult
from repro.geometry.dominance import dominated_by_mask
from repro.index.rtree import RTree, compacted_row_map

#: Default bound on the per-``q`` caches.  Generous enough that a
#: single-catalogue batch run never evicts (the existing tests and
#: benchmarks all stay far below it), while still guaranteeing that a
#: long-running serving process holds bounded resident state no matter
#: how many distinct products flow past it.
DEFAULT_CACHE_CAP = 4096


@dataclass
class ContextStats:
    """Cache-effectiveness counters of one :class:`DatasetContext`.

    ``tree_builds`` and ``findincom_traversals`` count the expensive
    work actually performed; ``partition_hits`` and
    ``box_cache_hits`` count the traversals *avoided* by the
    per-``q`` caches (MWK's exact partitions and MQWK's box caches
    respectively).  ``partition_evictions`` and
    ``box_cache_evictions`` count entries dropped by the LRU bound —
    nonzero means the working set exceeded ``max_partitions`` /
    ``max_box_caches`` and cold traversals are being re-paid.
    ``buffer_reuses`` counts score buffer requests served without a
    fresh allocation.

    A context *derived* from a parent snapshot (:meth:`DatasetContext
    .derive`, the catalogue mutation path) additionally reports how
    copy-on-write treated the parent's caches: ``tree_patches`` (the
    R-tree was patched, not rebuilt), ``partitions_inherited`` /
    ``box_caches_inherited`` (entries that survived the epoch check
    and were carried over) and ``partition_invalidations`` /
    ``box_cache_invalidations`` (entries the mutation made stale —
    the *only* ones dropped; everything else is retained).

    The delta-maintenance counters measure *answer*-level reuse (the
    watch subsystem, :mod:`repro.engine.delta`): ``delta_checks``
    relevance tests performed, ``watches_skipped`` standing answers
    proven untouched by a delta chain, ``watches_reanswered``
    answers actually recomputed.  A healthy low-churn workload shows
    skips dominating re-answers.
    """

    tree_builds: int = 0
    findincom_traversals: int = 0
    partition_hits: int = 0
    partition_misses: int = 0
    partition_evictions: int = 0
    box_cache_hits: int = 0
    box_cache_evictions: int = 0
    buffer_reuses: int = 0
    tree_patches: int = 0
    partitions_inherited: int = 0
    partition_invalidations: int = 0
    box_caches_inherited: int = 0
    box_cache_invalidations: int = 0
    delta_checks: int = 0
    watches_skipped: int = 0
    watches_reanswered: int = 0

    @property
    def index_work(self) -> int:
        """Total expensive index work: builds + traversals.

        This is the quantity the batch-reuse acceptance criterion
        compares between cold and warm serving paths.
        """
        return self.tree_builds + self.findincom_traversals

    @property
    def cache_hits(self) -> int:
        """Total traversals avoided, across both cache kinds."""
        return self.partition_hits + self.box_cache_hits

    @property
    def evictions(self) -> int:
        """Total LRU evictions, across both cache kinds."""
        return self.partition_evictions + self.box_cache_evictions


class DatasetContext:
    """Immutable catalogue + cached per-catalogue artifacts.

    Parameters
    ----------
    points:
        The catalogue ``P`` as an ``(n, d)`` array.  A read-only copy
        is stored; row index is the point id used across the library.
    tree:
        Optional pre-built R-tree over ``points`` (adopted as-is and
        not counted as a build).
    capacity:
        Node capacity forwarded to :class:`RTree` when the context
        builds the index itself.
    max_partitions, max_box_caches:
        LRU bound on the per-``q`` caches (default
        :data:`DEFAULT_CACHE_CAP`; ``None`` disables the bound).  A
        long-running serving process sees an unbounded stream of
        distinct products, so resident state must not grow with it:
        the least-recently-used entry is evicted once the cap is
        exceeded, counted in :class:`ContextStats`.
    version:
        Catalogue version this context is a snapshot of (0 for a
        standalone, non-catalogue context).  Stamped onto every
        :class:`~repro.core.protocol.Answer` produced against it.
    product_ids:
        Optional stable product id per row (what the catalogue
        lifecycle API addresses mutations by).  Defaults to the row
        index, which is what a standalone context has always meant.
    """

    def __init__(self, points, *, tree: RTree | None = None,
                 capacity: int | None = None,
                 max_partitions: int | None = DEFAULT_CACHE_CAP,
                 max_box_caches: int | None = DEFAULT_CACHE_CAP,
                 version: int = 0, product_ids=None):
        pts = np.atleast_2d(np.asarray(points, dtype=np.float64))
        if pts.ndim != 2 or pts.shape[0] == 0:
            raise ValueError("DatasetContext requires a non-empty "
                             "(n, d) array")
        if tree is not None and (tree.points.shape != pts.shape
                                 or not np.array_equal(tree.points, pts)):
            raise ValueError("pre-built tree does not index the given "
                             "points")
        for name, cap in (("max_partitions", max_partitions),
                          ("max_box_caches", max_box_caches)):
            if cap is not None and cap < 1:
                raise ValueError(f"{name} must be positive or None")
        if int(version) < 0:
            raise ValueError(f"version must be >= 0, got {version!r}")
        self.points = pts.copy()
        self.points.setflags(write=False)
        self._capacity = capacity
        self._tree = tree
        self._lock = threading.Lock()
        self.max_partitions = max_partitions
        self.max_box_caches = max_box_caches
        self.version = int(version)
        #: Derivation depth: how many copy-on-write steps separate
        #: this snapshot from its root context (0 = built from
        #: scratch).  The per-entry epoch check itself runs eagerly
        #: inside :meth:`derive` — every inherited entry passed the
        #: delta's dominance test for this epoch, so no per-entry
        #: stamp needs to be stored or re-checked on lookup.
        self.epoch = 0
        if product_ids is not None:
            ids = np.asarray(product_ids, dtype=np.int64).reshape(-1)
            if ids.shape[0] != pts.shape[0]:
                raise ValueError(
                    f"product_ids must have one id per row "
                    f"({pts.shape[0]}), got {ids.shape[0]}")
            product_ids = ids.copy()
            product_ids.setflags(write=False)
        self._product_ids: np.ndarray | None = product_ids
        self._box_caches: OrderedDict[bytes, IncomparableCache] = \
            OrderedDict()
        self._partitions: OrderedDict[bytes, IncomparableResult] = \
            OrderedDict()
        self._score_buffer: np.ndarray | None = None
        self.stats = ContextStats()

    # ------------------------------------------------------------------
    # Shared-memory reattachment (multi-process serving)
    # ------------------------------------------------------------------

    @classmethod
    def from_shared(cls, manifest) -> "DatasetContext":
        """Reattach a context exported with
        :func:`repro.engine.shm.export_snapshot` — zero-copy.

        The point array, product ids and the R-tree's packed arrays
        come back as read-only numpy views over the shared segment;
        the per-``q`` caches start empty and rebuild lazily in this
        process.  Version, epoch, cache caps and tree capacity are
        restored from the manifest, so answers computed here are
        byte-identical to the exporting process's (same data, same
        tree structure, same stamps).

        The attached segment handle is kept on the context
        (``_shm_segment``) so the mapping outlives every view; it is
        closed when the context is garbage collected, or explicitly
        by the worker pool when a version is retired.
        """
        from repro.engine import shm as shm_module

        arrays, segment = shm_module.attach_snapshot(manifest)
        ctx = object.__new__(cls)
        ctx.points = arrays["points"]
        ctx._capacity = manifest.capacity
        packed = {key[len("tree."):]: value
                  for key, value in arrays.items()
                  if key.startswith("tree.")}
        ctx._tree = RTree.from_packed(
            packed, ctx.points, capacity=manifest.tree_capacity)
        ctx._lock = threading.Lock()
        ctx.max_partitions = manifest.max_partitions
        ctx.max_box_caches = manifest.max_box_caches
        ctx.version = int(manifest.version)
        ctx.epoch = int(manifest.epoch)
        ctx._product_ids = arrays.get("product_ids")
        ctx._box_caches = OrderedDict()
        ctx._partitions = OrderedDict()
        ctx._score_buffer = None
        ctx.stats = ContextStats()
        ctx._shm_segment = segment
        return ctx

    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        return int(self.points.shape[0])

    @property
    def dim(self) -> int:
        return int(self.points.shape[1])

    @property
    def product_ids(self) -> np.ndarray:
        """Stable product id per row (row index when standalone)."""
        if self._product_ids is None:
            with self._lock:
                if self._product_ids is None:
                    ids = np.arange(self.n, dtype=np.int64)
                    ids.setflags(write=False)
                    self._product_ids = ids
        return self._product_ids

    @property
    def n_cached_partitions(self) -> int:
        """Resident ``FindIncom`` partitions (``<= max_partitions``)."""
        with self._lock:
            return len(self._partitions)

    @property
    def n_cached_box_caches(self) -> int:
        """Resident box caches (``<= max_box_caches``)."""
        with self._lock:
            return len(self._box_caches)

    @property
    def tree(self) -> RTree:
        """The shared R-tree (built once, on first use)."""
        with self._lock:
            if self._tree is None:
                self._tree = RTree(self.points,
                                   capacity=self._capacity)
                self.stats.tree_builds += 1
            return self._tree

    # ------------------------------------------------------------------
    # FindIncom caching
    # ------------------------------------------------------------------

    @staticmethod
    def _key(q) -> bytes:
        return np.ascontiguousarray(
            np.asarray(q, dtype=np.float64)).tobytes()

    def partition(self, q) -> IncomparableResult:
        """Cached ``FindIncom`` partition for the query point ``q``.

        The first request for a given ``q`` performs one R-tree
        traversal (via :class:`IncomparableCache`, so MQWK's box reuse
        rides the same artifact); repeated requests — the same product
        asked about by different customer sets — are LRU hits.  The
        cache holds at most ``max_partitions`` entries.
        """
        key = self._key(q)
        with self._lock:
            cached = self._partitions.get(key)
            if cached is not None:
                self._partitions.move_to_end(key)
                self.stats.partition_hits += 1
                return cached
        box = self.box_cache(q)
        result = box.partition(q)
        with self._lock:
            self.stats.partition_misses += 1
            self._partitions[key] = result
            self._partitions.move_to_end(key)
            if self.max_partitions is not None:
                while len(self._partitions) > self.max_partitions:
                    self._partitions.popitem(last=False)
                    self.stats.partition_evictions += 1
        return result

    def box_cache(self, q) -> IncomparableCache:
        """Cached :class:`IncomparableCache` for the box ``[0, q]``.

        One traversal serves every sample query point ``q' <= q`` —
        the paper's Section 4.4 reuse technique, now also shared
        *across* questions with the same ``q``.
        """
        key = self._key(q)
        with self._lock:
            cached = self._box_caches.get(key)
            if cached is not None:
                self._box_caches.move_to_end(key)
                self.stats.box_cache_hits += 1
                return cached
        tree = self.tree
        cache = IncomparableCache(tree, q)
        with self._lock:
            # The traversal was performed either way, so count it even
            # when another thread won the race and ours is discarded —
            # stats record work done, not cache contents.
            self.stats.findincom_traversals += cache.tree_traversals
            existing = self._box_caches.get(key)
            if existing is not None:
                self._box_caches.move_to_end(key)
                return existing
            self._box_caches[key] = cache
            if self.max_box_caches is not None:
                while len(self._box_caches) > self.max_box_caches:
                    self._box_caches.popitem(last=False)
                    self.stats.box_cache_evictions += 1
        return cache

    # ------------------------------------------------------------------
    # Copy-on-write snapshot derivation (catalogue mutations)
    # ------------------------------------------------------------------

    def derive(self, points, *, removed_rows=(), updated_rows=(),
               appended: int = 0, version: int | None = None,
               product_ids=None) -> "DatasetContext":
        """A successor snapshot of this context after a mutation.

        This is the engine half of the catalogue lifecycle API
        (:class:`repro.data.catalogue.Catalogue` is the front door):
        the new context is built **copy-on-write** from this one
        rather than from scratch —

        * the new point array is adopted as-is (unchanged rows must
          carry identical coordinates, which is validated);
        * the R-tree, if this snapshot has built one, is **patched**
          (:meth:`repro.index.rtree.RTree.patched`) instead of
          re-bulk-loaded, counted in ``stats.tree_patches``;
        * the per-``q`` partition/box caches advance one *epoch*:
          each entry is checked against the delta and either promoted
          to the new epoch (``stats.partitions_inherited`` /
          ``box_caches_inherited``) or dropped
          (``stats.partition_invalidations`` /
          ``box_cache_invalidations``) — never flushed wholesale.

        The epoch check is a dominance test: an entry keyed by query
        point ``q`` only describes points *not* dominated by ``q``,
        so it stays exact as long as every changed coordinate (old
        and new) is strictly dominated by ``q`` — such points were
        invisible to the entry before the mutation and remain so
        after.  Equality is treated conservatively (dropped).

        This context is not modified: readers pinned to it keep
        getting snapshot-consistent answers.

        Parameters
        ----------
        points:
            Full new ``(n', d)`` array — removed rows compacted away,
            appended rows at the tail.
        removed_rows, updated_rows:
            Row indices *in this snapshot* that the mutation deleted /
            changed (disjoint).
        appended:
            Number of rows appended at the tail of ``points``.
        version:
            Catalogue version of the new snapshot (defaults to this
            snapshot's version + 1; must be larger).
        product_ids:
            Stable ids for the new rows (forwarded to the
            constructor).
        """
        new_pts = np.atleast_2d(np.asarray(points, dtype=np.float64))
        removed = np.unique(np.asarray(removed_rows,
                                       dtype=np.int64).reshape(-1))
        updated = np.unique(np.asarray(updated_rows,
                                       dtype=np.int64).reshape(-1))
        appended = int(appended)
        for label, rows in (("removed_rows", removed),
                            ("updated_rows", updated)):
            if len(rows) and (rows[0] < 0 or rows[-1] >= self.n):
                raise ValueError(f"{label} must index rows of this "
                                 f"snapshot (0..{self.n - 1})")
        if np.intersect1d(removed, updated).size:
            raise ValueError("removed_rows and updated_rows must be "
                             "disjoint")
        if appended < 0:
            raise ValueError("appended must be >= 0")
        expected = self.n - len(removed) + appended
        if new_pts.ndim != 2 or new_pts.shape != (expected, self.dim):
            raise ValueError(
                f"derive expects a ({expected}, {self.dim}) array "
                f"(this snapshot is ({self.n}, {self.dim}) with "
                f"{len(removed)} removed and {appended} appended), "
                f"got {new_pts.shape}")
        if version is None:
            version = self.version + 1
        elif int(version) <= self.version:
            raise ValueError(
                f"version must advance monotonically: "
                f"{version!r} <= current {self.version}")

        # Old row -> new row (only removals renumber) — the same map
        # RTree.patched applies to its leaf ids, shared so inherited
        # cache entries and the patched index can never disagree.
        row_map = compacted_row_map(self.n, removed)

        unchanged = row_map >= 0
        unchanged[updated] = False
        if not np.array_equal(new_pts[row_map[unchanged]],
                              self.points[unchanged]):
            raise ValueError("unchanged rows must carry identical "
                             "coordinates in the derived snapshot")

        # Every coordinate the mutation touched, old and new: the
        # epoch check below compares cached entries against these.
        changed = np.vstack([
            self.points[removed], self.points[updated],
            new_pts[row_map[updated]], new_pts[expected - appended:],
        ]) if (len(removed) or len(updated) or appended) else \
            np.empty((0, self.dim))

        def survives(key: bytes) -> bool:
            if not len(changed):
                return True
            q = np.frombuffer(key, dtype=np.float64)
            return bool(dominated_by_mask(changed, q).all())

        with self._lock:
            tree = self._tree
            box_items = list(self._box_caches.items())
            part_items = list(self._partitions.items())

        if tree is not None:
            tree = RTree.patched(tree, new_pts, removed_rows=removed,
                                 updated_rows=updated,
                                 appended=appended)

        derived = DatasetContext(
            new_pts, tree=tree, capacity=self._capacity,
            max_partitions=self.max_partitions,
            max_box_caches=self.max_box_caches,
            version=int(version), product_ids=product_ids)
        derived.epoch = self.epoch + 1
        if tree is not None:
            # RTree.patched falls back to a full bulk load when the
            # delta touched every surviving point — account that
            # honestly as a build.
            if getattr(tree, "was_patched", False):
                derived.stats.tree_patches = 1
            else:
                derived.stats.tree_builds = 1

        renumber = bool(len(removed))
        for key, cache in box_items:
            if survives(key):
                derived._box_caches[key] = (cache.remapped(row_map)
                                            if renumber else cache)
                derived.stats.box_caches_inherited += 1
            else:
                derived.stats.box_cache_invalidations += 1
        for key, part in part_items:
            if survives(key):
                if renumber:
                    part = IncomparableResult(
                        dominating_ids=row_map[part.dominating_ids],
                        incomparable_ids=row_map[part.incomparable_ids])
                derived._partitions[key] = part
                derived.stats.partitions_inherited += 1
            else:
                derived.stats.partition_invalidations += 1
        return derived

    # ------------------------------------------------------------------
    # Reusable score buffers
    # ------------------------------------------------------------------

    def score_buffer(self, m: int, n: int | None = None) -> np.ndarray:
        """A reusable ``(>= m, >= n)`` float64 scratch buffer.

        Grown geometrically and kept for the context's lifetime, so
        repeated same-shaped score-matrix computations (one per
        round of a serving loop) stop churning the allocator.  The
        buffer is a *scratch* area for single-threaded callers like
        :meth:`ranks`: its contents do not survive across calls, and
        concurrent executor workers must allocate locally instead
        (the buffer is handed out under the lock but not reserved).
        """
        n = self.n if n is None else int(n)
        with self._lock:
            buf = self._score_buffer
            if (buf is None or buf.shape[0] < m or buf.shape[1] < n):
                shape = (max(m, 2 * (buf.shape[0] if buf is not None
                                     else 0), 1),
                         max(n, buf.shape[1] if buf is not None else 0))
                self._score_buffer = np.empty(shape, dtype=np.float64)
            else:
                self.stats.buffer_reuses += 1
            return self._score_buffer

    def ranks(self, weights, q) -> np.ndarray:
        """Rank of ``q`` among the catalogue under each weight row.

        The full ``(m, n)`` score matrix is materialized into the
        reusable :meth:`score_buffer` — the repeated-call fast path a
        serving loop wants (e.g. validating whole customer panels
        against each product).  Single-threaded callers only; for
        unbounded ``m × n`` or concurrent use, call
        :func:`repro.engine.kernels.ranks_batch` (chunked, allocation
        -local) instead.
        """
        from repro.engine.kernels import RANK_EPS, score_matrix

        wts = np.atleast_2d(np.asarray(weights, dtype=np.float64))
        qv = np.asarray(q, dtype=np.float64)
        buf = self.score_buffer(len(wts), self.n)
        scores = score_matrix(wts, self.points, out=buf)
        q_scores = wts @ qv
        return 1 + np.count_nonzero(
            scores < q_scores[:, None] - RANK_EPS, axis=1).astype(
                np.int64)

    # ------------------------------------------------------------------
    # Question construction
    # ------------------------------------------------------------------

    def question(self, q, k: int, why_not, *,
                 require_missing: bool = True):
        """A :class:`~repro.core.types.WhyNotQuery` bound to this
        context's shared R-tree."""
        from repro.core.types import WhyNotQuery

        return WhyNotQuery(points=self.points, q=q, k=k,
                           why_not=why_not, tree=self.tree,
                           require_missing=require_missing)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"DatasetContext(n={self.n}, d={self.dim}, "
                f"cached_partitions={len(self._partitions)}, "
                f"stats={self.stats})")
