"""Zero-copy shared-memory snapshots of :class:`DatasetContext`.

The multi-process serving tier (:mod:`repro.service.workers`) must
hand each worker process the current catalogue snapshot without
paying a per-worker copy of the point array and R-tree.  This module
packs a context's immutable artifacts — the product array, the packed
R-tree (:meth:`repro.index.rtree.RTree.pack`), optional product ids —
into **one** named ``multiprocessing.shared_memory`` segment, plus a
small picklable :class:`SnapshotManifest` describing the layout.
Workers reattach with :func:`attach_snapshot` /
:meth:`DatasetContext.from_shared`: every array comes back as a
read-only numpy view over the shared buffer (no data movement), and
the per-``q`` caches rebuild lazily per process.

Lifecycle
---------
Segments are owned by the *exporting* process.  Every export is
recorded in a module-level registry and swept by
:func:`sweep_owned_segments`, which is registered ``atexit`` and also
called from the server's graceful-drain path — ``wqrtq serve`` never
strands ``/dev/shm`` segments on a clean exit, a crash that unwinds
the interpreter, or a SIGTERM (the CLI's drain handler).  Retired
catalogue versions are unlinked eagerly by the worker pool once no
in-flight question pins them.

Resource-tracker fine print (Python 3.11): attaching registers the
segment with the process's ``resource_tracker``.  For a *spawned
child* the tracker is shared with the parent, so the duplicate
registration dedupes harmlessly — and must NOT be unregistered, or
the owner's registration vanishes with it.  A *top-level* process
attaching a foreign segment has its own tracker, which would unlink
the segment (with a warning) when that process exits; there we do
unregister after attach, leaving cleanup to the owner.
"""

from __future__ import annotations

import atexit
import multiprocessing
import secrets
import threading
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

import numpy as np

__all__ = [
    "SharedArraySpec",
    "SnapshotManifest",
    "attach_snapshot",
    "export_snapshot",
    "owned_segments",
    "sweep_owned_segments",
    "unlink_snapshot",
]

#: Array start offsets are rounded up to this many bytes, so every
#: attached view is at least cache-line aligned (and safely aligned
#: for float64/int64 regardless of what precedes it).
_ALIGN = 64

#: Segments created by this process, by name.  Guarded by
#: :data:`_OWNED_LOCK`; swept at exit.
_OWNED: dict[str, shared_memory.SharedMemory] = {}
_OWNED_LOCK = threading.Lock()


def _align(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


@dataclass(frozen=True)
class SharedArraySpec:
    """Location of one array inside the shared segment."""

    key: str
    dtype: str
    shape: tuple
    offset: int


@dataclass(frozen=True)
class SnapshotManifest:
    """Picklable description of one exported snapshot segment.

    Everything a worker needs to rebuild a behaviourally identical
    :class:`~repro.engine.context.DatasetContext`: the segment name
    and per-array layout, plus the context's version/epoch stamps,
    cache caps and tree node capacity.
    """

    segment: str
    nbytes: int
    arrays: tuple
    version: int
    epoch: int
    capacity: int | None
    tree_capacity: int
    max_partitions: int | None
    max_box_caches: int | None

    @property
    def n_points(self) -> int:
        for spec in self.arrays:
            if spec.key == "points":
                return int(spec.shape[0])
        raise ValueError("manifest has no points array")


def _tracker_name(segment: shared_memory.SharedMemory) -> str:
    # SharedMemory registers itself under its platform name (leading
    # slash on POSIX), kept in the private ``_name`` attribute.
    return getattr(segment, "_name", None) or segment.name


def export_snapshot(context, *, name: str | None = None,
                    ) -> SnapshotManifest:
    """Export one context snapshot into a fresh shared segment.

    Forces the context's R-tree build (workers always traverse it),
    packs it alongside the point array and optional product ids, and
    copies everything into one named segment.  The segment is owned
    by this process and recorded for the exit sweep; unlink it with
    :func:`unlink_snapshot` once every consumer detached.
    """
    arrays: dict[str, np.ndarray] = {"points": context.points}
    if context._product_ids is not None:
        arrays["product_ids"] = context.product_ids
    tree = context.tree
    for key, value in tree.pack().items():
        arrays[f"tree.{key}"] = value

    specs: list[SharedArraySpec] = []
    offset = 0
    for key, value in arrays.items():
        offset = _align(offset)
        specs.append(SharedArraySpec(
            key=key, dtype=value.dtype.str,
            shape=tuple(int(s) for s in value.shape), offset=offset))
        offset += value.nbytes
    # Tail pad: a zero-length trailing array must still find its
    # offset inside the buffer.
    nbytes = _align(offset) + _ALIGN

    segment_name = name or (f"wqrtq_{context.version}_"
                            f"{secrets.token_hex(4)}")
    segment = shared_memory.SharedMemory(
        create=True, size=nbytes, name=segment_name)
    try:
        for spec, value in zip(specs, arrays.values()):
            view = np.ndarray(spec.shape, dtype=spec.dtype,
                              buffer=segment.buf, offset=spec.offset)
            view[...] = value
            del view   # drop the buffer export before any close()
    except BaseException:
        segment.close()
        segment.unlink()
        raise

    with _OWNED_LOCK:
        _OWNED[segment_name] = segment
    return SnapshotManifest(
        segment=segment_name, nbytes=nbytes, arrays=tuple(specs),
        version=context.version, epoch=context.epoch,
        capacity=context._capacity, tree_capacity=tree.capacity,
        max_partitions=context.max_partitions,
        max_box_caches=context.max_box_caches)


def attach_snapshot(manifest: SnapshotManifest,
                    ) -> tuple[dict[str, np.ndarray],
                               shared_memory.SharedMemory]:
    """Attach to an exported segment; returns ``(arrays, segment)``.

    Every array is a read-only view over the shared buffer.  The
    returned segment handle must stay referenced for as long as the
    views are in use; close it (not unlink — the owner does that)
    when done.
    """
    segment = shared_memory.SharedMemory(name=manifest.segment)
    with _OWNED_LOCK:
        owner = manifest.segment in _OWNED
    if multiprocessing.parent_process() is None and not owner:
        # Top-level process with its own resource tracker: drop the
        # attach-time registration so *this* process's tracker never
        # unlinks (and warns about) a segment it does not own.  In a
        # spawned child the registration deduped into the parent's
        # tracker and must stay — as must the owner's own (attaching
        # your own export dedupes into the same tracker entry that
        # unlink will consume).
        try:
            resource_tracker.unregister(_tracker_name(segment),
                                        "shared_memory")
        except Exception:   # pragma: no cover - tracker internals
            pass
    arrays: dict[str, np.ndarray] = {}
    for spec in manifest.arrays:
        view = np.ndarray(spec.shape, dtype=spec.dtype,
                          buffer=segment.buf, offset=spec.offset)
        view.setflags(write=False)
        arrays[spec.key] = view
    return arrays, segment


def unlink_snapshot(manifest_or_name) -> bool:
    """Unlink an owned segment (idempotent); returns whether it was
    still registered.  Only the exporting process should call this."""
    name = (manifest_or_name.segment
            if isinstance(manifest_or_name, SnapshotManifest)
            else str(manifest_or_name))
    with _OWNED_LOCK:
        segment = _OWNED.pop(name, None)
    if segment is None:
        return False
    try:
        segment.close()
    except BufferError:   # pragma: no cover - exported views alive
        pass
    try:
        segment.unlink()
    except FileNotFoundError:   # pragma: no cover - already gone
        pass
    return True


def owned_segments() -> tuple[str, ...]:
    """Names of segments this process currently owns."""
    with _OWNED_LOCK:
        return tuple(_OWNED)


def sweep_owned_segments() -> tuple[str, ...]:
    """Unlink every segment this process still owns; returns their
    names.  Registered ``atexit``; also called by the service's
    graceful-drain path so SIGTERM never strands ``/dev/shm``."""
    swept = []
    for name in owned_segments():
        if unlink_snapshot(name):
            swept.append(name)
    return tuple(swept)


atexit.register(sweep_owned_segments)
