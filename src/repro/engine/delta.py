"""Delta relevance: which cached Answers can a mutation affect?

:meth:`DatasetContext.derive` already decides per *cache entry*
whether a mutation invalidated it — a dominance test against the
delta's changed coordinates.  This module lifts the same idea one
level up, from cache entries to whole :class:`~repro.core.protocol.
Answer`\\ s: given the coordinates a mutation touched and a standing
question's cached answer, decide **cheaply** (a few vectorized
dominance/score checks, no refinement) whether a fresh
``Session.ask`` at the new version could return anything different.
The watch subsystem (:mod:`repro.service.watch`) uses it to re-answer
only the standing questions a delta can actually reach — DBToaster's
higher-order delta processing, specialized to why-not maintenance.

Soundness, per algorithm (smaller-is-better scores, ties within
``RANK_EPS`` resolved in the query point's favour):

* **mqp** — the refined point is a pure function of ``(q, why_not,
  k)`` and the top-k boundary per why-not vector ``w`` (the k-th
  ranked score/id, carried on the cached ``MQPResult``).  A changed
  coordinate ``x`` with ``w·x > kth_score + RANK_EPS`` for every
  why-not ``w`` scores strictly outside the boundary: it cannot
  enter the top-k, cannot displace the k-th point, and cannot change
  the rank predicates the audit checks (``rank(q) > k``,
  ``rank(q_refined) <= k``) — the fresh answer is byte-identical.
  Removals additionally must not renumber the serialized
  ``kth_points`` row ids: every removed row must sit *above* the
  largest cached id (rows below it never compact).  Checking each
  delta's removals in its own frame suffices — as long as every
  removal is above the boundary ids, those ids never renumber, so
  the guard stays frame-independent across chained deltas.
* **mwk / mqwk** — both read the catalogue only through the
  ``FindIncom`` partition of ``q`` (dominating ``D`` + incomparable
  ``I``; sampled hyperplanes, rank scans, ``k_max = max rank of q``)
  and, for MQWK's endpoints, the top-k boundary under the why-not
  vectors.  A coordinate strictly dominated by ``q`` is invisible to
  the partition, and — because a *valid* cached answer certifies
  ``q`` was missing, i.e. ``kth_score < w·q - RANK_EPS <= w·x -
  RANK_EPS`` — it cannot perturb that boundary either.  This is
  exactly the ``derive`` epoch test, applied to the answer's own
  query point.

Everything else — failed or invalid cached answers, unknown
algorithms, a catalogue shrunk below ``k`` — is conservatively
*affected*: a wrong "skip" would freeze a stale answer, a wrong
"affected" only costs one re-answer.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.dominance import dominated_by_mask

__all__ = ["SnapshotDelta", "answer_affected", "delta_affects"]


@dataclass(frozen=True)
class SnapshotDelta:
    """One catalogue mutation, reduced to what relevance checks need.

    ``changed`` stacks every coordinate the mutation touched — old
    coords of removed and updated rows, new coords of updated and
    appended rows — exactly the array
    :meth:`~repro.engine.context.DatasetContext.derive` builds for
    its per-entry epoch check.  ``min_removed_row`` is the smallest
    removed row index *in the parent snapshot's frame* (``None`` when
    the mutation removed nothing); ``n_after`` the catalogue size the
    mutation left behind.
    """

    parent_version: int
    version: int
    op: str
    changed: np.ndarray
    min_removed_row: int | None
    n_after: int

    @classmethod
    def from_mutation(cls, *, parent_version: int, version: int,
                      op: str, changed, removed_rows=(),
                      n_after: int) -> "SnapshotDelta":
        coords = np.asarray(changed, dtype=np.float64)
        coords = (coords.reshape(0, 0) if coords.size == 0
                  else np.atleast_2d(coords)).copy()
        coords.setflags(write=False)
        removed = np.asarray(removed_rows, dtype=np.int64).reshape(-1)
        return cls(parent_version=int(parent_version),
                   version=int(version), op=str(op), changed=coords,
                   min_removed_row=(int(removed.min())
                                    if removed.size else None),
                   n_after=int(n_after))


def _mqp_unaffected(delta: SnapshotDelta, question, answer) -> bool:
    """True when the delta provably cannot touch an MQP answer."""
    from repro.engine.kernels import RANK_EPS

    kth_ids = getattr(answer.result, "kth_points", None)
    kth_scores = getattr(answer.result, "kth_scores", None)
    if kth_ids is None or kth_scores is None:
        return False
    kth_ids = np.asarray(kth_ids, dtype=np.int64).reshape(-1)
    kth_scores = np.asarray(kth_scores,
                            dtype=np.float64).reshape(-1)
    if not kth_ids.size:
        return False
    if delta.min_removed_row is not None and \
            delta.min_removed_row <= int(kth_ids.max()):
        # A removal at or below the boundary ids renumbers (or
        # deletes) rows the serialized kth_points refer to.
        return False
    if not delta.changed.size:
        return True
    why_not = np.asarray(question.why_not, dtype=np.float64)
    # (c, m): score of every changed coordinate under every why-not
    # vector, against that vector's k-th boundary score.
    scores = delta.changed @ why_not.T
    return bool(np.all(scores > kth_scores[None, :] + RANK_EPS))


def _dominated_unaffected(delta: SnapshotDelta, question) -> bool:
    """True when every changed coordinate is strictly dominated by
    ``q`` — invisible to the FindIncom partition (the ``derive``
    epoch test, applied to the question's query point)."""
    if not delta.changed.size:
        return True
    q = np.asarray(question.q, dtype=np.float64)
    return bool(dominated_by_mask(delta.changed, q).all())


def delta_affects(delta: SnapshotDelta, question, answer, *,
                  stats=None) -> bool:
    """Can ``delta`` change what ``question`` would answer afresh?

    ``question``/``answer`` are the typed protocol objects of one
    standing watch (``answer`` the cached
    :class:`~repro.core.protocol.Answer`, with its in-memory result
    object attached).  ``stats`` — a
    :class:`~repro.engine.context.ContextStats` — gets one
    ``delta_checks`` tick per call.  Returns ``True`` whenever a skip
    cannot be *proven* safe.
    """
    if stats is not None:
        stats.delta_checks += 1
    if answer is None or answer.error is not None or not answer.valid:
        # Failed/invalid answers carry no certificate to check the
        # delta against — and a mutation may well be what un-fails
        # them (e.g. the missing vector becomes answerable).
        return True
    if delta.n_after < int(question.k):
        return True
    algorithm = answer.algorithm
    if algorithm == "mqp":
        return not _mqp_unaffected(delta, question, answer)
    if algorithm in ("mwk", "mqwk"):
        return not _dominated_unaffected(delta, question)
    return True


def answer_affected(question, answer, deltas, *, stats=None) -> bool:
    """Fold :func:`delta_affects` over a chain of deltas.

    The chain is the catalogue's history since the version the
    answer is pinned to (see ``Catalogue.deltas_since``); the fold
    short-circuits on the first delta that reaches the answer.
    """
    return any(delta_affects(delta, question, answer, stats=stats)
               for delta in deltas)
