"""Serving layer: named catalogues behind a JSON-over-HTTP daemon.

The paper's workload is a *stream* of why-not questions against a
small set of catalogues, and the engine layer already made repeated
questions cheap — but only within one process invocation.  This
package turns the repro into a long-running service:

* :mod:`repro.service.registry` — :class:`CatalogueRegistry`, named
  catalogues each owning one warmed, LRU-bounded
  :class:`~repro.engine.context.DatasetContext` (served through a
  cached :class:`~repro.core.session.Session` per catalogue);
* :mod:`repro.service.server` — a stdlib-only
  (``http.server.ThreadingHTTPServer``) API speaking the versioned
  :mod:`repro.core.protocol` wire schema: ``/catalogues``,
  ``/algorithms``, ``/answer``, ``/batch`` and ``/stats``;
* :mod:`repro.service.client` — the matching ``urllib``-based client
  (typed ``ask``/``ask_batch`` plus dict-level wrappers) used by
  tests, benchmarks and the CI smoke check;
* :mod:`repro.service.workers` — :class:`WorkerPool`, the optional
  multi-process execution tier (``wqrtq serve --workers N --shards
  M``): spawned workers attach zero-copy shared-memory snapshots
  (:mod:`repro.engine.shm`) and answer questions whole or
  scatter-gathered over catalogue row ranges, byte-identically to
  the in-process path;
* :mod:`repro.service.watch` — :class:`WatchManager`, standing
  questions kept fresh by delta-driven maintenance
  (:mod:`repro.engine.delta`) and streamed to clients over
  long-poll or SSE (``POST /watches``, ``GET /watches/<id>/events``,
  ``wqrtq watch``).

``wqrtq serve`` (see :mod:`repro.cli`) is the command-line entry
point.  DESIGN.md's "service layer" section has the architecture
rationale.
"""

from repro.service.client import (
    ServiceClient,
    ServiceConnectionError,
    ServiceError,
)
from repro.service.jobs import Job, JobManager
from repro.service.registry import CatalogueRegistry
from repro.service.server import WhyNotServer, create_server
from repro.service.watch import Watch, WatchManager
from repro.service.workers import WorkerPool, WorkerPoolError

__all__ = [
    "CatalogueRegistry",
    "Job",
    "JobManager",
    "ServiceClient",
    "ServiceConnectionError",
    "ServiceError",
    "Watch",
    "WatchManager",
    "WhyNotServer",
    "WorkerPool",
    "WorkerPoolError",
    "create_server",
]
