"""Admission control — traffic shaping in front of the executors.

The :class:`AdmissionController` sits between the HTTP handlers and
execution for ``/answer``, ``/batch`` and ``POST /jobs``.  It makes
a fast, non-blocking :meth:`decide` per request — rejected requests
fail in microseconds instead of queueing — and then meters admitted
work through a bounded, priority-aware :meth:`slot` gate:

* **deadline-aware admission** — a Question whose *calibrated* cost
  estimate already exceeds its own ``deadline_ms`` is rejected up
  front (``reason="deadline"``, no ``Retry-After`` — retrying an
  unmeetable deadline cannot help).  Uncalibrated estimates never
  reject: the model must earn the right to say no.
* **per-tenant token buckets** — when a rate is configured, each
  ``Question.tenant`` refills at ``tenant_rate`` questions/second up
  to ``tenant_burst``; a batch consumes its question count.  Over
  quota → ``reason="quota"`` with the exact refill wait as
  ``Retry-After``.
* **bounded weighted-priority queue** — at most ``max_concurrent``
  requests execute; at most ``max_queue`` wait.  Waiters are granted
  highest-``priority``-first, but every ``fairness_window``-th grant
  goes to the longest-waiting request regardless of priority, so
  sustained high-priority load cannot starve the background tier.
  A full queue sheds (``reason="queue-full"``) with a drain-time
  ``Retry-After`` hint.

Every verdict is a typed
:class:`~repro.core.protocol.AdmissionDecision`; the server turns
rejections into 429 responses carrying it.  This module is service
tier: it may read the wall clock (token buckets need one), unlike
the planner that feeds it estimates.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

from repro.core.protocol import AdmissionDecision, Budget, CostEstimate

__all__ = ["AdmissionController"]

#: Priority grants between two aging (oldest-first) grants.
DEFAULT_FAIRNESS_WINDOW = 4


class _TokenBucket:
    """A classic leaky-ish token bucket with exact refill waits."""

    __slots__ = ("rate", "burst", "tokens", "stamp")

    def __init__(self, rate: float, burst: float, now: float):
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self.stamp = float(now)

    def consume(self, weight: float, now: float) -> tuple[bool, float]:
        self.tokens = min(self.burst,
                          self.tokens + (now - self.stamp) * self.rate)
        self.stamp = now
        if self.tokens >= weight:
            self.tokens -= weight
            return True, 0.0
        return False, (weight - self.tokens) / self.rate


class _Waiter:
    __slots__ = ("priority", "seq", "granted")

    def __init__(self, priority: int, seq: int):
        self.priority = int(priority)
        self.seq = int(seq)
        self.granted = False


class AdmissionController:
    """Deadline-, quota- and priority-aware request admission.

    With the default configuration (no concurrency bound, no tenant
    rate) every request is admitted immediately — the controller
    only observes — so wiring it in changes nothing until the
    operator turns a knob.
    """

    def __init__(self, *, max_concurrent: int | None = None,
                 max_queue: int = 64,
                 tenant_rate: float | None = None,
                 tenant_burst: float | None = None,
                 enforce_deadlines: bool = False,
                 fairness_window: int = DEFAULT_FAIRNESS_WINDOW,
                 clock=time.monotonic):
        if max_concurrent is not None and max_concurrent < 1:
            raise ValueError(f"max_concurrent must be >= 1 or None, "
                             f"got {max_concurrent}")
        if max_queue < 0:
            raise ValueError(f"max_queue must be >= 0, got {max_queue}")
        if tenant_rate is not None and tenant_rate <= 0:
            raise ValueError(f"tenant_rate must be > 0 or None, "
                             f"got {tenant_rate}")
        self._max_concurrent = max_concurrent
        self._max_queue = int(max_queue)
        self._tenant_rate = tenant_rate
        self._tenant_burst = float(
            tenant_burst if tenant_burst is not None
            else (tenant_rate or 0.0))
        self._enforce_deadlines = bool(enforce_deadlines)
        self._fairness_window = max(int(fairness_window), 0)
        self._clock = clock

        self._cond = threading.Condition()
        self._buckets: dict[str, _TokenBucket] = {}
        self._waiters: list[_Waiter] = []
        self._executing = 0
        self._seq = 0
        self._since_fair = 0
        self._grants = 0
        self._aging_grants = 0
        self._admitted = 0
        self._rejected = {"deadline": 0, "quota": 0, "queue-full": 0}

    @property
    def enforces_deadlines(self) -> bool:
        """Whether deadline admission is on (the server skips
        computing estimates for the guard when it is not)."""
        return self._enforce_deadlines

    # -- the fast, non-blocking verdict --------------------------------

    def decide(self, *, estimate: CostEstimate | None = None,
               budget: Budget | None = None, priority: int = 0,
               tenant: str | None = None,
               weight: int = 1) -> AdmissionDecision:
        """Admit or shed one request without blocking.

        ``weight`` is the quota cost (a batch's question count).
        The checks run cheapest-refusal-first: deadline math, then
        the tenant bucket, then queue headroom — a shed request
        never waits on the execution gate.
        """
        rejection = self._check_deadline(estimate, budget, priority,
                                         tenant)
        if rejection is None:
            rejection = self._check_quota(priority, tenant, weight)
        if rejection is None:
            rejection = self._check_queue(priority, tenant)
        if rejection is not None:
            with self._cond:
                self._rejected[rejection.reason] += 1
            return rejection
        with self._cond:
            self._admitted += 1
        return AdmissionDecision(admitted=True, reason="ok",
                                 priority=priority, tenant=tenant)

    def _check_deadline(self, estimate, budget, priority, tenant):
        if not self._enforce_deadlines or estimate is None or \
                budget is None or budget.deadline_ms is None or \
                not estimate.calibrated:
            return None
        deadline_ms = float(budget.deadline_ms)
        if estimate.est_latency_ms <= deadline_ms:
            return None
        return AdmissionDecision(
            admitted=False, reason="deadline",
            detail=(f"estimated {estimate.est_latency_ms:.1f}ms "
                    f"exceeds deadline {deadline_ms:g}ms"),
            estimated_ms=estimate.est_latency_ms,
            deadline_ms=deadline_ms, priority=priority, tenant=tenant)

    def _check_quota(self, priority, tenant, weight):
        if self._tenant_rate is None:
            return None
        key = tenant or ""
        now = self._clock()
        with self._cond:
            bucket = self._buckets.get(key)
            if bucket is None:
                bucket = self._buckets[key] = _TokenBucket(
                    self._tenant_rate, self._tenant_burst, now)
            ok, wait = bucket.consume(weight, now)
        if ok:
            return None
        return AdmissionDecision(
            admitted=False, reason="quota",
            detail=(f"tenant {key or '<anonymous>'!r} over quota "
                    f"({self._tenant_rate:g}/s, "
                    f"burst {self._tenant_burst:g})"),
            retry_after_ms=wait * 1000.0,
            priority=priority, tenant=tenant)

    def _check_queue(self, priority, tenant):
        if self._max_concurrent is None:
            return None
        with self._cond:
            if self._executing < self._max_concurrent or \
                    len(self._waiters) < self._max_queue:
                return None
            depth = len(self._waiters)
        retry_after = 1000.0 * (depth + 1) / self._max_concurrent
        return AdmissionDecision(
            admitted=False, reason="queue-full",
            detail=(f"{depth} request(s) already queued "
                    f"(max_queue={self._max_queue})"),
            retry_after_ms=retry_after,
            priority=priority, tenant=tenant)

    # -- the execution gate --------------------------------------------

    @contextmanager
    def slot(self, *, priority: int = 0, tenant: str | None = None):
        """Hold one of the ``max_concurrent`` execution slots.

        Waiting is priority-ordered with anti-starvation aging (see
        the module docstring); unbounded controllers only count.
        """
        self._acquire(priority)
        try:
            yield
        finally:
            self._release()

    def _acquire(self, priority: int) -> None:
        with self._cond:
            if self._max_concurrent is None:
                self._executing += 1
                return
            if self._executing < self._max_concurrent and \
                    not self._waiters:
                self._executing += 1
                self._grants += 1
                return
            waiter = _Waiter(priority, self._seq)
            self._seq += 1
            self._waiters.append(waiter)
            self._grant_waiters()
            while not waiter.granted:
                self._cond.wait()

    def _release(self) -> None:
        with self._cond:
            self._executing -= 1
            self._grant_waiters()

    def _grant_waiters(self) -> None:
        # Caller holds the condition.
        granted = False
        while self._waiters and (
                self._max_concurrent is None or
                self._executing < self._max_concurrent):
            waiter = self._pick_waiter()
            self._waiters.remove(waiter)
            waiter.granted = True
            self._executing += 1
            self._grants += 1
            granted = True
        if granted:
            self._cond.notify_all()

    def _pick_waiter(self) -> _Waiter:
        if self._fairness_window and \
                self._since_fair >= self._fairness_window:
            self._since_fair = 0
            self._aging_grants += 1
            return min(self._waiters, key=lambda w: w.seq)
        self._since_fair += 1
        return min(self._waiters,
                   key=lambda w: (-w.priority, w.seq))

    # -- introspection -------------------------------------------------

    def describe(self) -> dict:
        """JSON-safe counters and configuration for ``/stats``."""
        with self._cond:
            waiting = sorted(w.priority for w in self._waiters)
            tenants = {key or None: round(bucket.tokens, 3)
                       for key, bucket in sorted(self._buckets.items())}
            return {
                "config": {
                    "max_concurrent": self._max_concurrent,
                    "max_queue": self._max_queue,
                    "tenant_rate": self._tenant_rate,
                    "tenant_burst": (self._tenant_burst
                                     if self._tenant_rate is not None
                                     else None),
                    "enforce_deadlines": self._enforce_deadlines,
                    "fairness_window": self._fairness_window,
                },
                "admitted": self._admitted,
                "rejected": dict(self._rejected),
                "executing": self._executing,
                "queued": len(waiting),
                "queued_priorities": waiting,
                "grants": self._grants,
                "aging_grants": self._aging_grants,
                "tenants": tenants,
            }
