"""Stdlib-only JSON-over-HTTP server speaking the typed wire schema.

``http.server`` is not a production web stack, but it is the right
tool here: the repro must stay dependency-free, the payloads are tiny
JSON documents, and the actual work per request — NumPy/BLAS kernels
that release the GIL — parallelizes fine under
``ThreadingHTTPServer``'s thread-per-request model combined with the
executor's ``workers=`` thread pool for ``/batch``.

The wire format *is* the public schema of
:mod:`repro.core.protocol`: requests carry
``Question.to_dict()`` payloads, responses carry
``Answer.to_dict()`` payloads, and the schema-speaking endpoints echo
``schema_version`` so clients can verify they negotiated the same
encoding.  There is no server-private encoder/decoder pair — the same
``to_dict``/``from_dict`` methods the library uses do the wire work.

Endpoints
---------

``GET /health``
    Liveness probe: ``{"status": "ok"}``.
``GET /catalogues``
    Registered catalogues with shapes, LRU bounds and cache stats.
``GET /catalogues/<name>``
    One catalogue's lifecycle state: ``version``, size, mutation
    counters, cache stats.  Unknown names are ``404``.
``POST /catalogues/<name>/products``
    Mutate a catalogue in place: ``{"op": "add", "products": [...]}``
    (returns the assigned stable ids), ``{"op": "update", "ids":
    [...], "products": [...]}`` or ``{"op": "remove", "ids": [...]}``.
    Each mutation advances the catalogue one version; responses carry
    the new ``catalogue_version``.  In-flight requests pinned to an
    older snapshot are unaffected; subsequent ``/answer`` responses
    answer against — and are stamped with — the new version.
``GET /algorithms``
    The registered refinement algorithms (name, summary, accepted
    options) — enumerated from the algorithm registry, never
    hard-coded.
``GET /stats``
    Per-endpoint request counts / error counts / latency aggregates
    plus the per-catalogue cache stats — the observability surface the
    load benchmark and the CI smoke test read.
``POST /answer``
    One question: ``{"catalogue", "question": Question.to_dict(),
    "seed"}`` → ``{"schema_version", "item": Answer.to_dict()}``.
``POST /batch``
    Many questions: ``{"catalogue", "questions": [...], "seed",
    "workers"}`` → ``{"schema_version", "items": [...],
    "summary": {...}}``.
``POST /explain``
    The cost-based plan for one question *without executing it*:
    the same body as ``/answer`` → ``{"schema_version", "plan":
    Plan.to_dict(), "rendered": <Impala-style text>}``.  The latency
    estimate comes from the server's online-calibrated
    :class:`~repro.planner.model.CostModel`; ``/answer``, ``/batch``
    and job executions feed it.
``POST /jobs``
    Submit a batch *asynchronously*: ``{"catalogue", "questions":
    [...], "seed", "budget"}`` → ``202`` with the queued job's
    progress snapshot.  ``budget`` (a
    :class:`~repro.core.protocol.Budget` dict) becomes the default
    for every question that carries none; the batch refines
    interleaved on the :class:`~repro.service.jobs.JobManager`
    worker pool.
``GET /jobs`` / ``GET /jobs/<id>``
    All jobs' / one job's progress: status (``queued → running →
    done | cancelled | failed``), done/total counts, current
    per-item penalties.  Unknown ids are ``404``.
``GET /jobs/<id>/result``
    The finished job's answers + summary; ``409`` (with the progress
    snapshot) while the job is still queued or running.  A cancelled
    job returns every answer refined before the cancellation point
    (items never started render ``null``).
``DELETE /jobs/<id>``
    Cooperative cancellation: sets a flag the refinement loop polls
    between chunks — a running kernel is never interrupted and no
    partial state persists.
``POST /watches``
    Register a standing question: ``{"catalogue", "question":
    Question.to_dict(), "seed"}`` (or the pre-schema flat fields) →
    ``201`` with the watch descriptor and its ``seq`` 0 event — the
    immediate answer.  Subsequent catalogue mutations re-answer the
    watch *only* when the delta can reach it (see
    :mod:`repro.engine.delta`); refreshed answers append to the
    watch's event stream.
``GET /watches`` / ``GET /watches/<id>``
    All watch descriptors / one descriptor.  Unknown ids are ``404``.
``GET /watches/<id>/events?cursor=&timeout_ms=``
    The watch's events past ``cursor`` (default ``-1``: from the
    start of the retained buffer).  Long-poll: blocks up to
    ``timeout_ms`` (capped) for the first event; a lapse returns an
    *empty* batch, not an error.  With ``Accept: text/event-stream``
    the same path streams SSE frames (``id:`` = cursor, ``event:`` =
    kind, ``data:`` = the event payload) until the terminal ``end``
    event; ``Last-Event-ID`` resumes a dropped stream.
``DELETE /watches/<id>``
    Unregister: consumers receive a terminal ``end`` event.

Both POST endpoints also accept the pre-schema flat form
(``{"q", "k", "why_not", "algorithm", "sample_size"}`` fields, or
3-element ``[q, k, why_not]`` batch entries); those payloads are
upgraded to :class:`Question` objects on arrival, so old clients keep
working against one dispatch path — including the old error
contract: a pre-schema entry whose *content* fails validation (an
off-simplex row, ``k < 1``) still comes back as a failed item, never
as a request-level error that would lose its siblings' answers.

Client errors (malformed JSON, unknown catalogue/algorithm,
structurally malformed payloads, a *typed* question payload that
fails construction-time validation, an unsupported
``schema_version``) are ``400`` with ``{"error": ...}``; unknown
paths are ``404``.  Per-question failures at answer time —
catalogue-dependent validation or an algorithm error — are not HTTP
errors: they come back as answers with ``error`` set, exactly like
the library-level executor.

``/answer``, ``/batch`` and ``POST /jobs`` additionally pass through
the :class:`~repro.service.admission.AdmissionController` when one
is configured: shed requests are ``429`` with ``{"error", "admission":
AdmissionDecision.to_dict()}`` and — when retrying can help — a
``Retry-After`` header.  Admitted requests execute unchanged, so
admission never alters an Answer payload.
"""

from __future__ import annotations

import dataclasses
import json
import threading
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, unquote, urlsplit

from repro.core.protocol import (
    SCHEMA_VERSION,
    SUPPORTED_SCHEMA_VERSIONS,
    Answer,
    Budget,
    ErrorInfo,
    Question,
    check_schema_version,
    summarize_answers,
)
from repro.core.registry import algorithm_names, get_algorithm
from repro.planner import CostModel, build_plan, render_plan
from repro.planner.model import sample_target as planner_sample_target
from repro.service.admission import AdmissionController
from repro.service.jobs import JobManager
from repro.service.registry import CatalogueRegistry
from repro.service.watch import WatchManager

#: Upper bound on one long-poll / SSE wait leg.  Long-poll requests
#: asking for more are clamped; SSE waits this long between
#: keep-alive comments, so a dead peer is noticed within a leg.
MAX_POLL_TIMEOUT_MS = 30_000


@dataclass
class EndpointStats:
    """Latency/throughput aggregates for one endpoint."""

    requests: int = 0
    errors: int = 0
    total_seconds: float = 0.0
    max_seconds: float = 0.0

    def as_dict(self) -> dict:
        mean = (self.total_seconds / self.requests
                if self.requests else 0.0)
        return {
            "requests": self.requests,
            "errors": self.errors,
            "total_seconds": self.total_seconds,
            "mean_seconds": mean,
            "max_seconds": self.max_seconds,
            "throughput_rps": (1.0 / mean) if mean > 0 else 0.0,
        }


@dataclass
class ServiceStats:
    """Thread-safe per-endpoint request statistics."""

    started: float = field(default_factory=time.time)
    _lock: threading.Lock = field(default_factory=threading.Lock)
    _endpoints: dict[str, EndpointStats] = field(default_factory=dict)

    def record(self, endpoint: str, seconds: float, *,
               error: bool = False) -> None:
        with self._lock:
            stats = self._endpoints.setdefault(endpoint,
                                               EndpointStats())
            stats.requests += 1
            stats.errors += int(error)
            stats.total_seconds += seconds
            stats.max_seconds = max(stats.max_seconds, seconds)

    def snapshot(self) -> dict:
        with self._lock:
            endpoints = {name: stats.as_dict() for name, stats
                         in sorted(self._endpoints.items())}
        return {
            "uptime_seconds": time.time() - self.started,
            "endpoints": endpoints,
        }


def _numeric_vector(values) -> list | None:
    """``values`` as a list of floats, or ``None`` when it is not a
    flat numeric sequence (the structural-400 condition).  Honours
    ``.tolist()`` so in-process callers may still pass ndarrays; the
    server itself is numpy-free (SERVICE-PURITY) — real validation
    happens again inside the Question constructor, below the seam.
    """
    tolist = getattr(values, "tolist", None)
    if callable(tolist):
        values = tolist()
    if not isinstance(values, (list, tuple)):
        return None
    out = []
    for v in values:
        if isinstance(v, bool) or not isinstance(v, (int, float)):
            return None
        out.append(float(v))
    return out


def _weight_rows(values, d: int) -> list | None:
    """``values`` as an ``(m, d)`` list of float rows, promoting a
    flat vector to one row (the ``np.atleast_2d`` contract); ``None``
    when any row is non-numeric or of the wrong width."""
    tolist = getattr(values, "tolist", None)
    if callable(tolist):
        values = tolist()
    if not isinstance(values, (list, tuple)):
        return None
    flat = _numeric_vector(values)
    if flat is not None:
        values = [flat]
    rows = []
    for row in values:
        row = _numeric_vector(row)
        if row is None or len(row) != d:
            return None
        rows.append(row)
    return rows


def _legacy_question_or_failure(raw_q, raw_k, raw_wm, *, spec,
                                sample_size: int, index: int = 0,
                                entry_id=None):
    """Upgrade one pre-schema entry, preserving the legacy error
    contract.

    The old server split malformed input in two: structural problems
    (non-numeric/non-flat ``q``, mismatched ``why_not`` shape, a
    non-integer ``k``) were HTTP 400s — reproduced here by raising —
    while *content* problems (off-simplex rows, negative
    coordinates, ``k < 1``) surfaced per item at answer time.  The
    typed schema now catches the latter at Question construction, so
    they are converted into pre-failed :class:`Answer` placeholders
    instead of failing the whole request: one poisoned entry must
    not lose its siblings' answers.
    """
    q = _numeric_vector(raw_q)
    if q is None:
        raise ValueError("q must be a flat coordinate list")
    wm = _weight_rows(raw_wm, len(q))
    if wm is None:
        raise ValueError("why_not must be a (m, d) weight list "
                         "matching q's dimensionality")
    k = int(raw_k)
    identifier = entry_id if isinstance(entry_id, str) else None
    try:
        return Question.from_legacy(q, k, wm, algorithm=spec.name,
                                    sample_size=sample_size,
                                    id=identifier)
    except ValueError as exc:
        return Answer(index=index, algorithm=spec.name, result=None,
                      penalty=float("nan"), valid=False,
                      error=ErrorInfo.from_exception(exc),
                      elapsed=0.0, question_id=identifier)


def _parse_questions(body: dict, entries) -> list:
    """Typed Questions (or pre-failed Answers) from wire entries.

    An entry is a full ``Question.to_dict()`` payload (recognized by
    its explicit ``schema_version`` stamp, which ``to_dict`` always
    writes and pre-schema clients never did — any other key would
    widen the heuristic into legacy territory), a pre-schema
    ``{q, k, why_not}`` object, or a pre-schema 3-element list.  The
    pre-schema forms inherit the body-level ``sample_size`` and —
    unless the entry carries its own ``algorithm`` field (a flat
    ``/answer`` shape reused as a batch entry) — the body-level
    ``algorithm``.  Typed payloads validate strictly (a bad one
    fails the request); pre-schema entries keep the legacy per-item
    error contract.
    """
    spec = get_algorithm(body.get("algorithm", "mqp"))
    sample_size = int(body.get("sample_size", 200))
    questions = []
    for index, entry in enumerate(entries):
        entry_spec = spec
        if isinstance(entry, dict):
            if "schema_version" in entry:
                questions.append(Question.from_dict(entry))
                continue
            try:
                raw = (entry["q"], entry["k"], entry["why_not"])
            except KeyError as exc:
                raise ValueError(
                    f"question missing field {exc}") from None
            entry_id = entry.get("id")
            if "algorithm" in entry:
                # A flat /answer-style shape reused as a batch entry:
                # honor its algorithm rather than silently answering
                # with the body-level one.
                entry_spec = get_algorithm(entry["algorithm"])
        elif isinstance(entry, (list, tuple)) and len(entry) == 3:
            raw = tuple(entry)
            entry_id = None
        else:
            raise ValueError(
                "each question must be a Question payload, a "
                "{q, k, why_not} object or a 3-element list")
        questions.append(_legacy_question_or_failure(
            *raw, spec=entry_spec, sample_size=sample_size,
            index=index, entry_id=entry_id))
    return questions


class WhyNotRequestHandler(BaseHTTPRequestHandler):
    """Routes requests against the owning server's registry."""

    protocol_version = "HTTP/1.1"
    server: "WhyNotServer"

    # -- plumbing ------------------------------------------------------

    def log_message(self, format, *args):   # noqa: A002
        if getattr(self.server, "verbose", False):  # pragma: no cover
            super().log_message(format, *args)

    def _send_json(self, status: int, payload: dict,
                   headers: dict | None = None) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for key, value in (headers or {}).items():
            self.send_header(key, str(value))
        self.end_headers()
        self.wfile.write(body)

    def _drain_body(self) -> None:
        """Consume an unused request body.

        Keep-alive (HTTP/1.1) requires every handler to read the full
        body before responding — leftover bytes would be parsed as the
        start of the connection's next request.
        """
        length = int(self.headers.get("Content-Length") or 0)
        if length:
            self.rfile.read(length)

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        try:
            body = json.loads(raw.decode("utf-8")) if raw else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ValueError(f"request body is not valid JSON: {exc}")
        if not isinstance(body, dict):
            raise ValueError("request body must be a JSON object")
        check_schema_version(body, where="request")
        return body

    def _handle(self, endpoint: str, fn) -> None:
        start = time.perf_counter()
        error = False
        headers = None
        try:
            result = fn()
            if len(result) == 3:   # (status, payload, headers)
                status, payload, headers = result
            else:
                status, payload = result
        except (ValueError, TypeError, KeyError) as exc:
            # TypeError covers malformed scalar payload fields, e.g.
            # ``"seed": null`` hitting int() — a client error, not
            # ours.
            error = True
            message = (str(exc.args[0]) if isinstance(exc, KeyError)
                       and exc.args else str(exc))
            status, payload = 400, {"error": message}
        except Exception as exc:   # pragma: no cover - defensive
            error = True
            status, payload = 500, {
                "error": f"{type(exc).__name__}: {exc}"}
        try:
            self._send_json(status, payload, headers)
        finally:
            self.server.service_stats.record(
                endpoint, time.perf_counter() - start,
                error=error or status >= 400)

    # -- routing -------------------------------------------------------

    @staticmethod
    def _catalogue_path(path: str, *, suffix: str = "") -> str | None:
        """The catalogue name in ``/catalogues/<name>[/suffix]``,
        or ``None`` when ``path`` has a different shape."""
        prefix = "/catalogues/"
        if not path.startswith(prefix) or not path.endswith(suffix):
            return None
        name = path[len(prefix):len(path) - len(suffix)]
        if not name or "/" in name:
            return None
        return unquote(name)

    @staticmethod
    def _job_path(path: str, *, suffix: str = "") -> str | None:
        """The job id in ``/jobs/<id>[/suffix]``, or ``None``."""
        prefix = "/jobs/"
        if not path.startswith(prefix) or not path.endswith(suffix):
            return None
        job_id = path[len(prefix):len(path) - len(suffix)]
        if not job_id or "/" in job_id:
            return None
        return unquote(job_id)

    @staticmethod
    def _watch_path(path: str, *, suffix: str = "") -> str | None:
        """The watch id in ``/watches/<id>[/suffix]``, or ``None``.

        ``path`` must already be query-stripped — the events route
        is the one endpoint family that takes query parameters.
        """
        prefix = "/watches/"
        if not path.startswith(prefix) or not path.endswith(suffix):
            return None
        watch_id = path[len(prefix):len(path) - len(suffix)]
        if not watch_id or "/" in watch_id:
            return None
        return unquote(watch_id)

    def do_GET(self) -> None:   # noqa: N802 (http.server API)
        name = self._catalogue_path(self.path)
        job_id = self._job_path(self.path)
        result_id = self._job_path(self.path, suffix="/result")
        plain = urlsplit(self.path).path
        events_id = self._watch_path(plain, suffix="/events")
        watch_id = self._watch_path(plain)
        if self.path == "/health":
            self._handle("GET /health",
                         lambda: (200, {"status": "ok"}))
        elif self.path == "/catalogues":
            self._handle("GET /catalogues", self._get_catalogues)
        elif name is not None:
            # The stats key stays templated: one aggregate per route,
            # not one per catalogue name.
            self._handle("GET /catalogues/<name>",
                         lambda: self._get_catalogue(name))
        elif self.path == "/algorithms":
            self._handle("GET /algorithms", self._get_algorithms)
        elif self.path == "/stats":
            self._handle("GET /stats", self._get_stats)
        elif self.path == "/jobs":
            self._handle("GET /jobs", self._get_jobs)
        elif result_id is not None:
            self._handle("GET /jobs/<id>/result",
                         lambda: self._get_job_result(result_id))
        elif job_id is not None:
            self._handle("GET /jobs/<id>",
                         lambda: self._get_job(job_id))
        elif self.path == "/watches":
            self._handle("GET /watches", self._get_watches)
        elif events_id is not None:
            self._get_watch_events(events_id)
        elif watch_id is not None:
            self._handle("GET /watches/<id>",
                         lambda: self._get_watch(watch_id))
        else:
            self._not_found()

    def do_POST(self) -> None:   # noqa: N802 (http.server API)
        name = self._catalogue_path(self.path, suffix="/products")
        if self.path == "/answer":
            self._handle("POST /answer", self._post_answer)
        elif self.path == "/batch":
            self._handle("POST /batch", self._post_batch)
        elif self.path == "/explain":
            self._handle("POST /explain", self._post_explain)
        elif self.path == "/jobs":
            self._handle("POST /jobs", self._post_jobs)
        elif self.path == "/watches":
            self._handle("POST /watches", self._post_watches)
        elif name is not None:
            self._handle("POST /catalogues/<name>/products",
                         lambda: self._post_products(name))
        else:
            self._not_found()

    def do_DELETE(self) -> None:   # noqa: N802 (http.server API)
        job_id = self._job_path(self.path)
        watch_id = self._watch_path(self.path)
        if job_id is not None:
            self._handle("DELETE /jobs/<id>",
                         lambda: self._delete_job(job_id))
        elif watch_id is not None:
            self._handle("DELETE /watches/<id>",
                         lambda: self._delete_watch(watch_id))
        else:
            self._not_found()

    def _not_found(self) -> None:
        self._drain_body()
        self._handle("404", lambda: (404, {
            "error": f"unknown path {self.path!r}"}))

    # -- endpoints -----------------------------------------------------

    def _get_catalogues(self) -> tuple[int, dict]:
        return 200, {"catalogues": self.server.registry.describe()}

    def _get_catalogue(self, name: str) -> tuple[int, dict]:
        try:
            entry = self.server.registry.describe_one(name)
        except KeyError as exc:
            # A missing *resource* is a 404 — unlike /answer, where an
            # unknown catalogue is a malformed request body (400).
            return 404, {"error": str(exc.args[0])}
        entry["schema_version"] = SCHEMA_VERSION
        return 200, entry

    def _post_products(self, name: str) -> tuple[int, dict]:
        body = self._read_json()
        try:
            catalogue = self.server.registry.catalogue(name)
        except KeyError as exc:
            return 404, {"error": str(exc.args[0])}
        # apply() validates the op and its required fields, commits
        # the mutation and reports version/size as one atomic unit —
        # a concurrent mutation cannot mis-stamp this response with
        # its own version.
        applied = catalogue.apply(body.get("op"),
                                  ids=body.get("ids"),
                                  products=body.get("products"))
        if self.server.pool is not None:
            # Publish before responding: the next request must answer
            # against (and be stamped with) the committed version.
            self.server.pool.publish(name)
        # Watch maintenance is asynchronous by design: the sweep is
        # deferred to the job pool, so the mutation response never
        # waits on re-answers.
        self.server.watches.publish(name)
        return 200, {
            "schema_version": SCHEMA_VERSION,
            "catalogue": name,
            "op": applied["op"],
            "catalogue_version": applied["version"],
            "n": applied["n"],
            "ids": applied["ids"],
        }

    def _get_algorithms(self) -> tuple[int, dict]:
        return 200, {
            "schema_version": SCHEMA_VERSION,
            "algorithms": [get_algorithm(name).describe()
                           for name in algorithm_names()],
        }

    def _get_stats(self) -> tuple[int, dict]:
        payload = self.server.service_stats.snapshot()
        payload["catalogues"] = self.server.registry.describe()
        payload["watches"] = self.server.watches.describe()
        payload["admission"] = self.server.admission.describe()
        payload["planner"] = self.server.cost_model.describe()
        if self.server.pool is not None:
            payload["workers"] = self.server.pool.stats()
        return 200, payload

    def _executor(self, body: dict):
        """The execution surface for ``/answer`` / ``/batch``: the
        worker pool when one serves the named catalogue, else the
        in-process session.  Both are returned — the session stamps
        pre-failed legacy entries either way."""
        name = self._required(body, "catalogue")
        session = self.server.registry.session(name)
        pool = self.server.pool
        if pool is not None and pool.serves(name):
            return name, session, pool
        return name, session, None

    @staticmethod
    def _response_version(body: dict) -> int:
        """The schema version to speak back: the one the request
        declared (a version-1 client must receive version-1 payloads
        or its own version check rejects the reply), current when
        unstamped."""
        version = body.get("schema_version")
        return (version if version in SUPPORTED_SCHEMA_VERSIONS
                else SCHEMA_VERSION)

    @staticmethod
    def _render_item(answer: Answer, version: int) -> dict:
        """``Answer.to_dict()`` rendered at the negotiated version.

        Each downgrade step drops exactly the fields the older
        schema never had: version 2 lacked ``quality``, version 1
        additionally lacked ``catalogue_version``.  Version 3 is
        field-identical to 4 for Answer payloads (4 only *added* the
        watch event envelope), so re-stamping is the whole
        downgrade."""
        item = answer.to_dict()
        if version < SCHEMA_VERSION:
            item["schema_version"] = version
        if version < 3:
            item.pop("quality", None)
        if version < 2:
            item.pop("catalogue_version", None)
        return item

    # -- planning & admission ------------------------------------------

    def _estimate(self, name: str, session, question: Question):
        """The cost model's prediction for one typed question."""
        context = session.context
        return self.server.cost_model.estimate(
            algorithm=question.algorithm, n=context.n, d=context.dim,
            k=question.k, m=question.n_why_not,
            budget=question.budget, options=question.options,
            catalogue=name)

    def _admission_guard(self, name: str, session, questions,
                         version: int):
        """Run the admission controller over a request's questions.

        Returns ``(decision, None)`` when admitted, or ``(decision,
        (429, payload, headers))`` ready to send when shed.  The
        deadline check uses the worst estimate-vs-deadline offender;
        quota consumption is the typed-question count.
        """
        typed = [q for q in questions if isinstance(q, Question)]
        controller = self.server.admission
        priority = max((q.priority for q in typed), default=0)
        tenant = next((q.tenant for q in typed
                       if q.tenant is not None), None)
        estimate = budget = worst = None
        if controller.enforces_deadlines:
            for question in typed:
                if question.budget is None or \
                        question.budget.deadline_ms is None:
                    continue
                candidate = self._estimate(name, session, question)
                over = candidate.est_latency_ms \
                    - float(question.budget.deadline_ms)
                if worst is None or over > worst:
                    worst = over
                    estimate = candidate
                    budget = question.budget
        decision = controller.decide(
            estimate=estimate, budget=budget, priority=priority,
            tenant=tenant, weight=max(len(typed), 1))
        if decision.admitted:
            return decision, None
        payload = {
            "schema_version": version,
            "error": (f"admission rejected ({decision.reason}): "
                      f"{decision.detail}"),
            "admission": decision.to_dict(),
        }
        headers = None
        if decision.retry_after_ms is not None:
            seconds = max(-(-int(decision.retry_after_ms) // 1000), 1)
            headers = {"Retry-After": seconds}
        return decision, (429, payload, headers)

    def _observe_answers(self, name: str, session, questions,
                         answers) -> None:
        """Feed executed answers' timings back into the cost model."""
        model = self.server.cost_model
        context = session.context
        for question, answer in zip(questions, answers):
            if not isinstance(question, Question) or answer is None \
                    or not answer.ok:
                continue
            quality = answer.quality
            samples = (quality.samples_examined
                       if quality is not None else
                       planner_sample_target(
                           question.algorithm, budget=question.budget,
                           options=question.options))
            model.observe(
                algorithm=question.algorithm, n=context.n,
                d=context.dim, k=question.k, m=question.n_why_not,
                samples=samples, elapsed=answer.elapsed,
                options=question.options, catalogue=name)

    def _post_explain(self) -> tuple[int, dict]:
        body = self._read_json()
        version = self._response_version(body)
        name, session, pool = self._executor(body)
        if "question" in body:
            question = Question.from_dict(body["question"])
        else:
            missing = [key for key in ("q", "k", "why_not")
                       if key not in body]
            if missing:
                raise ValueError(f"request is missing "
                                 f"{', '.join(map(repr, missing))}")
            # EXPLAIN has no legacy error contract to honor: a
            # content-invalid question cannot be planned, so the
            # ValueError surfaces as a 400.
            question = Question.from_legacy(
                body["q"], body["k"], body["why_not"],
                algorithm=body.get("algorithm", "mqp"),
                sample_size=body.get("sample_size"),
                id=body.get("id"))
        context = session.context
        pool_workers = 0
        shards = 1
        pooled = pool is not None
        if pooled:
            pool_workers = pool.workers
            shards = pool.shards
        plan = build_plan(
            question, n=context.n, d=context.dim,
            model=self.server.cost_model, catalogue=name,
            catalogue_version=session.catalogue_version,
            workers=pool_workers, shards=shards, pooled=pooled)
        return 200, {
            "schema_version": version,
            "plan": plan.to_dict(),
            "rendered": render_plan(plan, budget=question.budget),
        }

    def _post_answer(self) -> tuple[int, dict]:
        body = self._read_json()
        version = self._response_version(body)
        name, session, pool = self._executor(body)
        if "question" in body:
            question = Question.from_dict(body["question"])
        else:
            # Pre-schema flat body: q/k/why_not + algorithm/sample_size
            # as sibling top-level fields (legacy error contract:
            # content failures are 200 items, not 400s).
            missing = [key for key in ("q", "k", "why_not")
                       if key not in body]
            if missing:
                raise ValueError(f"request is missing "
                                 f"{', '.join(map(repr, missing))}")
            question = _legacy_question_or_failure(
                body["q"], body["k"], body["why_not"],
                spec=get_algorithm(body.get("algorithm", "mqp")),
                sample_size=int(body.get("sample_size", 200)),
                entry_id=body.get("id"))
        if isinstance(question, Answer):   # pre-failed legacy entry
            question = dataclasses.replace(
                question,
                catalogue_version=session.catalogue_version)
            return 200, {"schema_version": version,
                         "item": self._render_item(question, version)}
        decision, shed = self._admission_guard(name, session,
                                               [question], version)
        if shed is not None:
            return shed
        seed = int(body.get("seed", 0))
        with self.server.admission.slot(priority=question.priority,
                                        tenant=question.tenant):
            if pool is not None:
                answer = pool.ask(name, question, seed=seed)
            else:
                answer = session.ask(question, seed=seed)
        self._observe_answers(name, session, [question], [answer])
        return 200, {"schema_version": version,
                     "item": self._render_item(answer, version)}

    def _post_batch(self) -> tuple[int, dict]:
        body = self._read_json()
        version = self._response_version(body)
        name, session, pool = self._executor(body)
        entries = body.get("questions")
        if not isinstance(entries, list) or not entries:
            raise ValueError("questions must be a non-empty list")
        questions = _parse_questions(body, entries)
        decision, shed = self._admission_guard(name, session,
                                               questions, version)
        if shed is not None:
            return shed
        start = time.perf_counter()
        with self.server.admission.slot(priority=decision.priority,
                                        tenant=decision.tenant):
            if pool is not None:
                # The process pool supersedes the request's
                # thread-pool hint: the batch splits into per-worker
                # slices instead.
                answers = pool.ask_batch(
                    name, questions, seed=int(body.get("seed", 0)))
            else:
                answers = session.ask_batch(
                    questions, seed=int(body.get("seed", 0)),
                    workers=int(body.get("workers", 1)))
        self._observe_answers(name, session, questions, answers)
        summary = summarize_answers(
            answers, wall_seconds=time.perf_counter() - start)
        return 200, {
            "schema_version": version,
            "items": [self._render_item(answer, version)
                      for answer in answers],
            "summary": summary,
        }

    # -- async jobs ----------------------------------------------------

    def _post_jobs(self) -> tuple[int, dict]:
        body = self._read_json()
        catalogue = self._required(body, "catalogue")
        entries = body.get("questions")
        if not isinstance(entries, list) or not entries:
            raise ValueError("questions must be a non-empty list")
        questions = _parse_questions(body, entries)
        default_budget = body.get("budget")
        if default_budget is not None:
            default_budget = Budget.from_dict(default_budget)
            questions = [
                dataclasses.replace(question, budget=default_budget)
                if isinstance(question, Question)
                and question.budget is None else question
                for question in questions]
        # Jobs are asynchronous: the deadline/quota verdict applies
        # at submission, but execution is metered by the job pool
        # itself rather than an admission slot.
        session = self.server.registry.session(catalogue)
        _, shed = self._admission_guard(
            catalogue, session, questions, SCHEMA_VERSION)
        if shed is not None:
            return shed
        try:
            job = self.server.jobs.submit(
                catalogue, questions, seed=int(body.get("seed", 0)))
        except KeyError as exc:
            raise ValueError(str(exc.args[0])) from None
        return 202, {"schema_version": SCHEMA_VERSION,
                     "job": job.progress()}

    def _get_jobs(self) -> tuple[int, dict]:
        return 200, {
            "schema_version": SCHEMA_VERSION,
            "jobs": [job.progress()
                     for job in self.server.jobs.jobs()],
        }

    def _job_or_404(self, job_id: str):
        try:
            return self.server.jobs.get(job_id), None
        except KeyError as exc:
            return None, (404, {"error": str(exc.args[0])})

    def _get_job(self, job_id: str) -> tuple[int, dict]:
        job, missing = self._job_or_404(job_id)
        if missing:
            return missing
        payload = job.progress()
        payload["schema_version"] = SCHEMA_VERSION
        return 200, payload

    def _get_job_result(self, job_id: str) -> tuple[int, dict]:
        job, missing = self._job_or_404(job_id)
        if missing:
            return missing
        if not job.is_finished:
            # 409: the resource exists but is not collectible yet —
            # the progress snapshot tells the client when to retry.
            return 409, {"error": f"job {job_id!r} is not finished",
                         "job": job.progress()}
        return 200, {
            "schema_version": SCHEMA_VERSION,
            "job": job.progress(),
            "items": [None if answer is None
                      else self._render_item(answer, SCHEMA_VERSION)
                      for answer in job.answers()],
            "summary": job.summary(),
        }

    def _delete_job(self, job_id: str) -> tuple[int, dict]:
        self._drain_body()
        job, missing = self._job_or_404(job_id)
        if missing:
            return missing
        job = self.server.jobs.cancel(job_id)
        payload = job.progress()
        payload["schema_version"] = SCHEMA_VERSION
        return 200, payload

    # -- watches -------------------------------------------------------

    def _post_watches(self) -> tuple[int, dict]:
        body = self._read_json()
        catalogue = self._required(body, "catalogue")
        if "question" in body:
            question = Question.from_dict(body["question"])
        else:
            # The flat pre-schema shape, accepted for symmetry with
            # /answer — but watches are a schema-4 surface, so a
            # content-invalid question is a 400, not a failed item.
            missing = [key for key in ("q", "k", "why_not")
                       if key not in body]
            if missing:
                raise ValueError(f"request is missing "
                                 f"{', '.join(map(repr, missing))}")
            q = _numeric_vector(body["q"])
            if q is None:
                raise ValueError("q must be a flat coordinate list")
            wm = _weight_rows(body["why_not"], len(q))
            if wm is None:
                raise ValueError("why_not must be a (m, d) weight "
                                 "list matching q's dimensionality")
            entry_id = body.get("id")
            question = Question.from_legacy(
                q, int(body["k"]), wm,
                algorithm=get_algorithm(
                    body.get("algorithm", "mqp")).name,
                sample_size=int(body.get("sample_size", 200)),
                id=entry_id if isinstance(entry_id, str) else None)
        watch, event = self.server.watches.create(
            catalogue, question, seed=int(body.get("seed", 0)))
        return 201, {
            "schema_version": SCHEMA_VERSION,
            "watch": watch.describe(),
            "event": event.to_dict(),
        }

    def _watch_or_404(self, watch_id: str):
        try:
            return self.server.watches.get(watch_id), None
        except KeyError as exc:
            return None, (404, {"error": str(exc.args[0])})

    def _get_watches(self) -> tuple[int, dict]:
        return 200, {
            "schema_version": SCHEMA_VERSION,
            "watches": [watch.describe() for watch
                        in self.server.watches.watches()],
        }

    def _get_watch(self, watch_id: str) -> tuple[int, dict]:
        watch, missing = self._watch_or_404(watch_id)
        if missing:
            return missing
        payload = watch.describe()
        payload["schema_version"] = SCHEMA_VERSION
        return 200, payload

    def _delete_watch(self, watch_id: str) -> tuple[int, dict]:
        self._drain_body()
        try:
            watch = self.server.watches.delete(watch_id)
        except KeyError as exc:
            return 404, {"error": str(exc.args[0])}
        payload = watch.describe()
        payload["schema_version"] = SCHEMA_VERSION
        return 200, payload

    def _get_watch_events(self, watch_id: str) -> None:
        """Dispatch the events route by transport: SSE when the
        client accepts ``text/event-stream``, long-poll JSON
        otherwise."""
        query = parse_qs(urlsplit(self.path).query)
        accept = self.headers.get("Accept", "")
        if "text/event-stream" in accept:
            self._stream_watch_events(watch_id, query)
        else:
            self._handle(
                "GET /watches/<id>/events",
                lambda: self._poll_watch_events(watch_id, query))

    @staticmethod
    def _query_int(query: dict, key: str, default: int) -> int:
        values = query.get(key)
        if not values:
            return default
        return int(values[-1])

    def _poll_watch_events(self, watch_id: str,
                           query: dict) -> tuple[int, dict]:
        watch, missing = self._watch_or_404(watch_id)
        if missing:
            return missing
        cursor = self._query_int(query, "cursor", -1)
        timeout_ms = min(max(0, self._query_int(query, "timeout_ms",
                                                0)),
                         MAX_POLL_TIMEOUT_MS)
        events = watch.events_after(cursor,
                                    timeout=timeout_ms / 1000.0)
        return 200, {
            "schema_version": SCHEMA_VERSION,
            "watch_id": watch.id,
            "cursor": events[-1].seq if events else cursor,
            "events": [event.to_dict() for event in events],
        }

    def _stream_watch_events(self, watch_id: str,
                             query: dict) -> None:
        """SSE transport: stream frames until the terminal event.

        Handled outside ``_handle`` — the response is not one JSON
        document.  ``Last-Event-ID`` (the standard SSE resume
        header) wins over the ``cursor`` query parameter.
        """
        watch, missing = self._watch_or_404(watch_id)
        if missing:
            self._handle("GET /watches/<id>/events",
                         lambda: missing)
            return
        last_id = self.headers.get("Last-Event-ID")
        if last_id not in (None, ""):
            cursor = int(last_id)
        else:
            cursor = self._query_int(query, "cursor", -1)
        start = time.perf_counter()
        self.close_connection = True   # stream ends by closing
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        self.send_header("Connection", "close")
        self.end_headers()
        try:
            while True:
                batch = watch.events_after(
                    cursor, timeout=MAX_POLL_TIMEOUT_MS / 1000.0)
                for event in batch:
                    cursor = event.seq
                    frame = (f"id: {event.seq}\n"
                             f"event: {event.kind}\n"
                             f"data: {json.dumps(event.to_dict())}"
                             f"\n\n")
                    self.wfile.write(frame.encode("utf-8"))
                if not batch:
                    if watch.closed:
                        return
                    # Keep-alive comment: flushes through proxies and
                    # surfaces a dead peer as a write error.
                    self.wfile.write(b": keep-alive\n\n")
                self.wfile.flush()
                if any(event.kind == "end" for event in batch):
                    return
        except (BrokenPipeError, ConnectionResetError):
            return   # client went away; nothing to report
        finally:
            self.server.service_stats.record(
                "GET /watches/<id>/events (sse)",
                time.perf_counter() - start)

    @staticmethod
    def _required(body: dict, key: str):
        try:
            return body[key]
        except KeyError:
            raise ValueError(f"request is missing {key!r}") from None


class WhyNotServer(ThreadingHTTPServer):
    """``ThreadingHTTPServer`` owning a registry, request stats, the
    async job pool and — when ``workers > 0`` — the multi-process
    :class:`~repro.service.workers.WorkerPool`.

    With a worker pool, ``/answer`` and ``/batch`` execute in worker
    processes attached to shared-memory snapshots (see
    :mod:`repro.service.workers`); catalogue mutations publish the
    new version to the pool before responding, so the next request
    answers against it.  Answers are byte-identical to the in-process
    path.

    ``server_close`` drains gracefully: ``block_on_close`` (the
    ``socketserver`` default) joins every in-flight handler thread,
    the job manager cancels outstanding jobs cooperatively and joins
    its workers, the worker pool stops its processes, and every
    shared-memory segment this process still owns is unlinked — no
    partial job state survives, and ``/dev/shm`` is left clean."""

    daemon_threads = True

    def __init__(self, address, registry: CatalogueRegistry, *,
                 verbose: bool = False, job_workers: int = 2,
                 workers: int = 0, shards: int = 1,
                 max_concurrent: int | None = None,
                 max_queue: int = 64,
                 tenant_rate: float | None = None,
                 tenant_burst: float | None = None,
                 enforce_deadlines: bool = False,
                 calibration_path: str | None = None):
        super().__init__(address, WhyNotRequestHandler)
        self.registry = registry
        self.service_stats = ServiceStats()
        self.verbose = verbose
        self.cost_model = self._load_cost_model(calibration_path)
        self._calibration_path = calibration_path
        self.admission = AdmissionController(
            max_concurrent=max_concurrent, max_queue=max_queue,
            tenant_rate=tenant_rate, tenant_burst=tenant_burst,
            enforce_deadlines=enforce_deadlines)
        self.jobs = JobManager(registry, workers=job_workers,
                               observer=self._observe_job_answer)
        self.watches = WatchManager(registry, self.jobs)
        self.pool = None
        if workers > 0:
            from repro.service.workers import WorkerPool

            try:
                self.pool = WorkerPool(registry, workers=workers,
                                       shards=shards)
            except BaseException:
                self.jobs.shutdown()
                super().server_close()
                raise

    def server_close(self) -> None:
        # Drain the watches FIRST: long-poll and SSE handlers block
        # on watch condition variables, and super().server_close()
        # joins every in-flight handler thread — the terminal events
        # must be pushed before the join, or the drain stalls a full
        # poll timeout.  Then stop accepting + join handler threads,
        # then drain the job pool (a handler blocked on /jobs
        # submission must not race a closing manager), then the
        # process pool, then sweep any shm segment still owned (belt
        # and braces: shutdown() already unlinked the published
        # ones).
        self.watches.shutdown()
        super().server_close()
        self.jobs.shutdown()
        if self.pool is not None:
            self.pool.shutdown()
        from repro.engine.shm import sweep_owned_segments

        sweep_owned_segments()
        if self._calibration_path is not None:
            try:
                self.cost_model.save(self._calibration_path)
            except OSError:   # pragma: no cover - best-effort persist
                pass

    @staticmethod
    def _load_cost_model(path: str | None) -> CostModel:
        if path is not None:
            try:
                return CostModel.load(path)
            except (OSError, ValueError):
                pass   # first boot, or an unreadable state file
        return CostModel()

    def _observe_job_answer(self, catalogue: str, context,
                            question: Question,
                            answer: Answer) -> None:
        """Job-pool completions feed the same calibration stream as
        the synchronous endpoints."""
        quality = answer.quality
        samples = (quality.samples_examined if quality is not None
                   else planner_sample_target(
                       question.algorithm, budget=question.budget,
                       options=question.options))
        self.cost_model.observe(
            algorithm=question.algorithm, n=context.n, d=context.dim,
            k=question.k, m=question.n_why_not, samples=samples,
            elapsed=answer.elapsed, options=question.options,
            catalogue=catalogue)

    @property
    def port(self) -> int:
        return int(self.server_address[1])

    @property
    def url(self) -> str:
        host = self.server_address[0]
        return f"http://{host}:{self.port}"


def create_server(registry: CatalogueRegistry, *,
                  host: str = "127.0.0.1", port: int = 0,
                  verbose: bool = False, job_workers: int = 2,
                  workers: int = 0, shards: int = 1,
                  max_concurrent: int | None = None,
                  max_queue: int = 64,
                  tenant_rate: float | None = None,
                  tenant_burst: float | None = None,
                  enforce_deadlines: bool = False,
                  calibration_path: str | None = None
                  ) -> WhyNotServer:
    """Bind a :class:`WhyNotServer` (``port=0`` → ephemeral port).

    ``workers > 0`` starts a multi-process
    :class:`~repro.service.workers.WorkerPool`: ``/answer`` and
    ``/batch`` execute in spawned worker processes attached to
    zero-copy shared-memory snapshots, ``shards > 1`` additionally
    scatter-gathers each shardable question over catalogue row
    ranges.  ``workers=0`` (default) keeps the single-process
    threaded execution path.

    The caller drives it: ``serve_forever()`` to block (the CLI), or
    a daemon thread + ``shutdown()`` for embedding in tests:

    >>> from repro.service import CatalogueRegistry, create_server
    >>> import numpy as np, threading
    >>> registry = CatalogueRegistry()
    >>> _ = registry.register("demo", np.random.default_rng(0)
    ...                       .random((64, 2)))
    >>> server = create_server(registry)
    >>> thread = threading.Thread(target=server.serve_forever,
    ...                           daemon=True)
    >>> thread.start()
    >>> server.port > 0
    True
    >>> server.shutdown(); server.server_close()

    The admission knobs (``max_concurrent``/``max_queue`` execution
    gating, per-tenant ``tenant_rate``/``tenant_burst`` token
    buckets, ``enforce_deadlines``) default to off: an unconfigured
    server admits everything, exactly as before the controller
    existed.  ``calibration_path`` persists the cost model's
    coefficients across restarts (loaded at boot, saved on drain).
    """
    return WhyNotServer((host, port), registry, verbose=verbose,
                        job_workers=job_workers, workers=workers,
                        shards=shards, max_concurrent=max_concurrent,
                        max_queue=max_queue, tenant_rate=tenant_rate,
                        tenant_burst=tenant_burst,
                        enforce_deadlines=enforce_deadlines,
                        calibration_path=calibration_path)
