"""Stdlib-only JSON-over-HTTP server for why-not questions.

``http.server`` is not a production web stack, but it is the right
tool here: the repro must stay dependency-free, the payloads are tiny
JSON documents, and the actual work per request — NumPy/BLAS kernels
that release the GIL — parallelizes fine under
``ThreadingHTTPServer``'s thread-per-request model combined with the
executor's ``workers=`` thread pool for ``/batch``.

Endpoints
---------

``GET /health``
    Liveness probe: ``{"status": "ok"}``.
``GET /catalogues``
    Registered catalogues with shapes, LRU bounds and cache stats.
``GET /stats``
    Per-endpoint request counts / error counts / latency aggregates
    plus the per-catalogue cache stats — the observability surface the
    load benchmark and the CI smoke test read.
``POST /answer``
    One question: ``{"catalogue", "q", "k", "why_not",
    "algorithm", "sample_size", "seed"}`` → one execution item.
``POST /batch``
    Many questions through
    :func:`repro.engine.executor.execute_batch`:
    ``{"catalogue", "questions": [{"q", "k", "why_not"}, ...],
    "algorithm", "sample_size", "seed", "workers"}`` → items plus a
    summary.

Client errors (malformed JSON, unknown catalogue/algorithm, bad
shapes) are ``400`` with ``{"error": ...}``; unknown paths are
``404``.  Per-question failures inside a batch are *not* HTTP errors:
they come back as items with ``error`` set, exactly like the
library-level executor.
"""

from __future__ import annotations

import json
import math
import threading
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import numpy as np

from repro.service.registry import CatalogueRegistry


@dataclass
class EndpointStats:
    """Latency/throughput aggregates for one endpoint."""

    requests: int = 0
    errors: int = 0
    total_seconds: float = 0.0
    max_seconds: float = 0.0

    def as_dict(self) -> dict:
        mean = (self.total_seconds / self.requests
                if self.requests else 0.0)
        return {
            "requests": self.requests,
            "errors": self.errors,
            "total_seconds": self.total_seconds,
            "mean_seconds": mean,
            "max_seconds": self.max_seconds,
            "throughput_rps": (1.0 / mean) if mean > 0 else 0.0,
        }


@dataclass
class ServiceStats:
    """Thread-safe per-endpoint request statistics."""

    started: float = field(default_factory=time.time)
    _lock: threading.Lock = field(default_factory=threading.Lock)
    _endpoints: dict[str, EndpointStats] = field(default_factory=dict)

    def record(self, endpoint: str, seconds: float, *,
               error: bool = False) -> None:
        with self._lock:
            stats = self._endpoints.setdefault(endpoint,
                                               EndpointStats())
            stats.requests += 1
            stats.errors += int(error)
            stats.total_seconds += seconds
            stats.max_seconds = max(stats.max_seconds, seconds)

    def snapshot(self) -> dict:
        with self._lock:
            endpoints = {name: stats.as_dict() for name, stats
                         in sorted(self._endpoints.items())}
        return {
            "uptime_seconds": time.time() - self.started,
            "endpoints": endpoints,
        }


def _item_to_dict(item) -> dict:
    """JSON-safe form of one :class:`ExecutionItem`."""
    from repro.data.io import result_to_dict

    penalty = item.penalty
    return {
        "index": item.index,
        "algorithm": item.algorithm,
        "valid": bool(item.valid),
        "error": item.error,
        "elapsed": float(item.elapsed),
        "penalty": (None if penalty is None
                    or (isinstance(penalty, float)
                        and math.isnan(penalty))
                    else float(penalty)),
        "result": (None if item.result is None
                   else result_to_dict(item.result)),
    }


def _parse_question(entry) -> tuple[np.ndarray, int, np.ndarray]:
    """One ``(q, k, why_not)`` triple from a JSON dict or 3-list."""
    if isinstance(entry, dict):
        try:
            raw_q, raw_k, raw_wm = (entry["q"], entry["k"],
                                    entry["why_not"])
        except KeyError as exc:
            raise ValueError(f"question missing field {exc}") from None
    elif isinstance(entry, (list, tuple)) and len(entry) == 3:
        raw_q, raw_k, raw_wm = entry
    else:
        raise ValueError("each question must be a "
                         "{q, k, why_not} object or a 3-element list")
    q = np.asarray(raw_q, dtype=np.float64)
    wm = np.atleast_2d(np.asarray(raw_wm, dtype=np.float64))
    if q.ndim != 1:
        raise ValueError("q must be a flat coordinate list")
    if wm.ndim != 2 or wm.shape[1] != q.shape[0]:
        raise ValueError("why_not must be a (m, d) weight list "
                         "matching q's dimensionality")
    return q, int(raw_k), wm


class WhyNotRequestHandler(BaseHTTPRequestHandler):
    """Routes requests against the owning server's registry."""

    protocol_version = "HTTP/1.1"
    server: "WhyNotServer"

    # -- plumbing ------------------------------------------------------

    def log_message(self, format, *args):   # noqa: A002
        if getattr(self.server, "verbose", False):  # pragma: no cover
            super().log_message(format, *args)

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _drain_body(self) -> None:
        """Consume an unused request body.

        Keep-alive (HTTP/1.1) requires every handler to read the full
        body before responding — leftover bytes would be parsed as the
        start of the connection's next request.
        """
        length = int(self.headers.get("Content-Length") or 0)
        if length:
            self.rfile.read(length)

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        try:
            body = json.loads(raw.decode("utf-8")) if raw else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ValueError(f"request body is not valid JSON: {exc}")
        if not isinstance(body, dict):
            raise ValueError("request body must be a JSON object")
        return body

    def _handle(self, endpoint: str, fn) -> None:
        start = time.perf_counter()
        error = False
        try:
            status, payload = fn()
        except (ValueError, TypeError, KeyError) as exc:
            # TypeError covers malformed scalar payload fields, e.g.
            # ``"k": null`` hitting int() — a client error, not ours.
            error = True
            message = (str(exc.args[0]) if isinstance(exc, KeyError)
                       and exc.args else str(exc))
            status, payload = 400, {"error": message}
        except Exception as exc:   # pragma: no cover - defensive
            error = True
            status, payload = 500, {
                "error": f"{type(exc).__name__}: {exc}"}
        try:
            self._send_json(status, payload)
        finally:
            self.server.service_stats.record(
                endpoint, time.perf_counter() - start,
                error=error or status >= 400)

    # -- routing -------------------------------------------------------

    def do_GET(self) -> None:   # noqa: N802 (http.server API)
        if self.path == "/health":
            self._handle("GET /health",
                         lambda: (200, {"status": "ok"}))
        elif self.path == "/catalogues":
            self._handle("GET /catalogues", self._get_catalogues)
        elif self.path == "/stats":
            self._handle("GET /stats", self._get_stats)
        else:
            self._not_found()

    def do_POST(self) -> None:   # noqa: N802 (http.server API)
        if self.path == "/answer":
            self._handle("POST /answer", self._post_answer)
        elif self.path == "/batch":
            self._handle("POST /batch", self._post_batch)
        else:
            self._not_found()

    def _not_found(self) -> None:
        self._drain_body()
        self._handle("404", lambda: (404, {
            "error": f"unknown path {self.path!r}"}))

    # -- endpoints -----------------------------------------------------

    def _get_catalogues(self) -> tuple[int, dict]:
        return 200, {"catalogues": self.server.registry.describe()}

    def _get_stats(self) -> tuple[int, dict]:
        payload = self.server.service_stats.snapshot()
        payload["catalogues"] = self.server.registry.describe()
        return 200, payload

    def _post_answer(self) -> tuple[int, dict]:
        from repro.engine.executor import answer_one

        body = self._read_json()
        context = self.server.registry.get(
            self._required(body, "catalogue"))
        q, k, wm = _parse_question(body)
        item = answer_one(
            context, 0, q, k, wm,
            body.get("algorithm", "mqp"),
            sample_size=int(body.get("sample_size", 200)),
            rng=np.random.default_rng(int(body.get("seed", 0))))
        return 200, {"item": _item_to_dict(item)}

    def _post_batch(self) -> tuple[int, dict]:
        from repro.core.batch import BatchReport
        from repro.engine.executor import execute_batch

        body = self._read_json()
        context = self.server.registry.get(
            self._required(body, "catalogue"))
        questions = body.get("questions")
        if not isinstance(questions, list) or not questions:
            raise ValueError("questions must be a non-empty list")
        triples = [_parse_question(entry) for entry in questions]
        start = time.perf_counter()
        items = execute_batch(
            context, triples, body.get("algorithm", "mqp"),
            sample_size=int(body.get("sample_size", 200)),
            seed=int(body.get("seed", 0)),
            workers=int(body.get("workers", 1)))
        wall = time.perf_counter() - start
        summary = BatchReport(items=items).summary()
        summary["wall_seconds"] = wall
        return 200, {
            "items": [_item_to_dict(item) for item in items],
            "summary": summary,
        }

    @staticmethod
    def _required(body: dict, key: str):
        try:
            return body[key]
        except KeyError:
            raise ValueError(f"request is missing {key!r}") from None


class WhyNotServer(ThreadingHTTPServer):
    """``ThreadingHTTPServer`` owning a registry and request stats."""

    daemon_threads = True

    def __init__(self, address, registry: CatalogueRegistry, *,
                 verbose: bool = False):
        super().__init__(address, WhyNotRequestHandler)
        self.registry = registry
        self.service_stats = ServiceStats()
        self.verbose = verbose

    @property
    def port(self) -> int:
        return int(self.server_address[1])

    @property
    def url(self) -> str:
        host = self.server_address[0]
        return f"http://{host}:{self.port}"


def create_server(registry: CatalogueRegistry, *,
                  host: str = "127.0.0.1", port: int = 0,
                  verbose: bool = False) -> WhyNotServer:
    """Bind a :class:`WhyNotServer` (``port=0`` → ephemeral port).

    The caller drives it: ``serve_forever()`` to block (the CLI), or
    a daemon thread + ``shutdown()`` for embedding in tests:

    >>> from repro.service import CatalogueRegistry, create_server
    >>> import numpy as np, threading
    >>> registry = CatalogueRegistry()
    >>> _ = registry.register("demo", np.random.default_rng(0)
    ...                       .random((64, 2)))
    >>> server = create_server(registry)
    >>> thread = threading.Thread(target=server.serve_forever,
    ...                           daemon=True)
    >>> thread.start()
    >>> server.port > 0
    True
    >>> server.shutdown(); server.server_close()
    """
    return WhyNotServer((host, port), registry, verbose=verbose)
