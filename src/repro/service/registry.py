"""Named catalogues, each a versioned, mutable :class:`Catalogue`.

A serving process typically fronts a handful of catalogues (one per
market / data product).  The registry is the single place they are
loaded, warmed, looked up — and now *mutated*: every registration is
wrapped in a :class:`~repro.data.catalogue.Catalogue`, so the HTTP
daemon can accept product add/update/remove mutations while readers
keep answering against their pinned snapshots.  Every request for the
same catalogue name rides the same R-tree and the same LRU-bounded
partition caches, carried copy-on-write across versions.

Thread safety: the registry serves ``ThreadingHTTPServer`` handler
threads, so *every* access to its maps — registration, lookup,
enumeration, description — sits behind one re-entrant lock.  The
check-then-insert in :meth:`CatalogueRegistry.register_catalogue` is
atomic, and the per-name :class:`~repro.core.session.Session` cache
cannot hand two threads different sessions for one catalogue.
Mutations are serialized per catalogue by the catalogue's own lock.
"""

from __future__ import annotations

import threading
from pathlib import Path

from repro.core.session import Session
from repro.data.catalogue import Catalogue
from repro.engine.context import DEFAULT_CACHE_CAP, DatasetContext


class CatalogueRegistry:
    """Thread-safe name → :class:`Catalogue` mapping.

    Catalogues enter the registry four ways: an in-process array
    (:meth:`register`), an existing context (:meth:`register_context`,
    e.g. to share a cache with an embedding application — the context
    becomes the catalogue's version-0 snapshot), an existing
    :class:`Catalogue` (:meth:`register_catalogue`), or a ``.npz``
    archive written by :func:`repro.data.io.save_dataset`
    (:meth:`load`).  Registration warms the R-tree by default so the
    first request does not pay index construction.

    The pre-catalogue accessors stay: :meth:`get` returns the named
    catalogue's *current snapshot* (a plain
    :class:`~repro.engine.context.DatasetContext`), which is exactly
    what it returned when catalogues were immutable — an unmutated
    catalogue is a single-snapshot catalogue.

    Parameters
    ----------
    max_partitions, max_box_caches:
        Default LRU bounds applied to every context the registry
        constructs (overridable per catalogue).
    """

    def __init__(self, *,
                 max_partitions: int | None = DEFAULT_CACHE_CAP,
                 max_box_caches: int | None = DEFAULT_CACHE_CAP):
        self.max_partitions = max_partitions
        self.max_box_caches = max_box_caches
        self._lock = threading.RLock()
        self._catalogues: dict[str, Catalogue] = {}
        self._sessions: dict[str, Session] = {}
        self._meta: dict[str, dict] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def register(self, name: str, points, *, warm: bool = True,
                 max_partitions: int | None = None,
                 max_box_caches: int | None = None,
                 meta: dict | None = None) -> DatasetContext:
        """Register an in-process point array under ``name``."""
        catalogue = Catalogue(
            points,
            max_partitions=(self.max_partitions if max_partitions
                            is None else max_partitions),
            max_box_caches=(self.max_box_caches if max_box_caches
                            is None else max_box_caches))
        self.register_catalogue(name, catalogue, warm=warm, meta=meta)
        return catalogue.snapshot

    def register_context(self, name: str, context: DatasetContext, *,
                         warm: bool = True,
                         meta: dict | None = None) -> DatasetContext:
        """Adopt an existing context as a catalogue's first snapshot."""
        catalogue = Catalogue(context=context)
        self.register_catalogue(name, catalogue, warm=warm, meta=meta)
        return context

    def register_catalogue(self, name: str, catalogue: Catalogue, *,
                           warm: bool = True,
                           meta: dict | None = None) -> Catalogue:
        """Adopt an existing :class:`Catalogue` under ``name``."""
        if not name:
            raise ValueError("catalogue name must be non-empty")
        if warm:
            catalogue.snapshot.tree   # build before serving traffic
        with self._lock:
            if name in self._catalogues:
                raise ValueError(f"catalogue {name!r} already "
                                 "registered")
            self._catalogues[name] = catalogue
            self._meta[name] = dict(meta or {})
        return catalogue

    def load(self, name: str, path, *, warm: bool = True,
             max_partitions: int | None = None,
             max_box_caches: int | None = None) -> DatasetContext:
        """Register a catalogue from a ``save_dataset`` archive."""
        from repro.data.io import load_dataset

        points, meta = load_dataset(path)
        meta["path"] = str(Path(path))
        return self.register(name, points, warm=warm,
                             max_partitions=max_partitions,
                             max_box_caches=max_box_caches, meta=meta)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def catalogue(self, name: str) -> Catalogue:
        """The named :class:`Catalogue` handle (mutations go here)."""
        with self._lock:
            try:
                return self._catalogues[name]
            except KeyError:
                known = ", ".join(sorted(self._catalogues)) or "<none>"
                raise KeyError(f"unknown catalogue {name!r} "
                               f"(registered: {known})") from None

    def get(self, name: str) -> DatasetContext:
        """The named catalogue's *current snapshot*."""
        return self.catalogue(name).snapshot

    def session(self, name: str) -> Session:
        """The (cached) :class:`~repro.core.session.Session` serving
        ``name`` — the object behind the ``/answer`` and ``/batch``
        endpoints, and the one to embed when an application wants to
        share a catalogue's caches with the HTTP daemon.  The session
        follows the catalogue: each ``ask``/``ask_batch`` call pins
        the snapshot current at its entry."""
        catalogue = self.catalogue(name)
        with self._lock:
            session = self._sessions.get(name)
            if session is None:
                # warm=False: registration already built the tree.
                session = Session(catalogue=catalogue, warm=False)
                self._sessions[name] = session
            return session

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._catalogues)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._catalogues

    def __len__(self) -> int:
        with self._lock:
            return len(self._catalogues)

    # ------------------------------------------------------------------
    # Description
    # ------------------------------------------------------------------

    def describe(self) -> list[dict]:
        """JSON-safe description of every catalogue, with cache stats
        — the payload behind the ``/catalogues`` endpoint."""
        with self._lock:
            names = sorted(self._catalogues)
        return [self.describe_one(name) for name in names]

    def describe_one(self, name: str) -> dict:
        """One catalogue's description: shape, version, mutation
        counters, LRU bounds and cache stats — the payload behind
        ``GET /catalogues/<name>``."""
        with self._lock:
            catalogue = self.catalogue(name)
            meta = dict(self._meta.get(name, {}))
        # One atomic read: the stats must belong to the same snapshot
        # the version/size fields describe.
        lifecycle, context = catalogue.describe(with_snapshot=True)
        stats = context.stats
        return {
            "name": name,
            "n": lifecycle["n"],
            "d": lifecycle["d"],
            "version": lifecycle["version"],
            "mutations": lifecycle["mutations"],
            "next_product_id": lifecycle["next_product_id"],
            "max_partitions": context.max_partitions,
            "max_box_caches": context.max_box_caches,
            "cached_partitions": context.n_cached_partitions,
            "cached_box_caches": context.n_cached_box_caches,
            # Allowlist JSON-safe scalars instead of excluding
            # ndarray: describe() feeds json.dumps, and the service
            # tier is numpy-free (SERVICE-PURITY), so it cannot name
            # the array type to exclude it.
            "meta": {k: v for k, v in meta.items()
                     if isinstance(v, (str, int, float, bool))
                     or v is None},
            "stats": {
                "tree_builds": stats.tree_builds,
                "tree_patches": stats.tree_patches,
                "findincom_traversals": stats.findincom_traversals,
                "partition_hits": stats.partition_hits,
                "partition_misses": stats.partition_misses,
                "partition_evictions": stats.partition_evictions,
                "partitions_inherited": stats.partitions_inherited,
                "partition_invalidations":
                    stats.partition_invalidations,
                "box_cache_hits": stats.box_cache_hits,
                "box_cache_evictions": stats.box_cache_evictions,
                "box_caches_inherited": stats.box_caches_inherited,
                "box_cache_invalidations":
                    stats.box_cache_invalidations,
                "buffer_reuses": stats.buffer_reuses,
                "delta_checks": stats.delta_checks,
                "watches_skipped": stats.watches_skipped,
                "watches_reanswered": stats.watches_reanswered,
                "cache_hits": stats.cache_hits,
                "evictions": stats.evictions,
                "index_work": stats.index_work,
            },
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CatalogueRegistry({self.names()})"
