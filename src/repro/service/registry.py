"""Named catalogues, each owning one warmed ``DatasetContext``.

A serving process typically fronts a handful of catalogues (one per
market / data product).  The registry is the single place they are
loaded, warmed and looked up, so every request for the same catalogue
name rides the same R-tree and the same LRU-bounded partition caches.
"""

from __future__ import annotations

import threading
from pathlib import Path

import numpy as np

from repro.core.session import Session
from repro.engine.context import DEFAULT_CACHE_CAP, DatasetContext


class CatalogueRegistry:
    """Thread-safe name → :class:`DatasetContext` mapping.

    Catalogues enter the registry three ways: an in-process array
    (:meth:`register`), an existing context (:meth:`register_context`,
    e.g. to share a cache with an embedding application), or a
    ``.npz`` archive written by :func:`repro.data.io.save_dataset`
    (:meth:`load`).  Registration warms the R-tree by default so the
    first request does not pay index construction.

    Parameters
    ----------
    max_partitions, max_box_caches:
        Default LRU bounds applied to every context the registry
        constructs (overridable per catalogue).
    """

    def __init__(self, *,
                 max_partitions: int | None = DEFAULT_CACHE_CAP,
                 max_box_caches: int | None = DEFAULT_CACHE_CAP):
        self.max_partitions = max_partitions
        self.max_box_caches = max_box_caches
        self._lock = threading.Lock()
        self._contexts: dict[str, DatasetContext] = {}
        self._sessions: dict[str, Session] = {}
        self._meta: dict[str, dict] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def register(self, name: str, points, *, warm: bool = True,
                 max_partitions: int | None = None,
                 max_box_caches: int | None = None,
                 meta: dict | None = None) -> DatasetContext:
        """Register an in-process point array under ``name``."""
        context = DatasetContext(
            points,
            max_partitions=(self.max_partitions if max_partitions
                            is None else max_partitions),
            max_box_caches=(self.max_box_caches if max_box_caches
                            is None else max_box_caches))
        return self.register_context(name, context, warm=warm,
                                     meta=meta)

    def register_context(self, name: str, context: DatasetContext, *,
                         warm: bool = True,
                         meta: dict | None = None) -> DatasetContext:
        """Adopt an existing context under ``name``."""
        if not name:
            raise ValueError("catalogue name must be non-empty")
        if warm:
            context.tree     # build the index before serving traffic
        with self._lock:
            if name in self._contexts:
                raise ValueError(f"catalogue {name!r} already "
                                 "registered")
            self._contexts[name] = context
            self._meta[name] = dict(meta or {})
        return context

    def load(self, name: str, path, *, warm: bool = True,
             max_partitions: int | None = None,
             max_box_caches: int | None = None) -> DatasetContext:
        """Register a catalogue from a ``save_dataset`` archive."""
        from repro.data.io import load_dataset

        points, meta = load_dataset(path)
        meta["path"] = str(Path(path))
        return self.register(name, points, warm=warm,
                             max_partitions=max_partitions,
                             max_box_caches=max_box_caches, meta=meta)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def get(self, name: str) -> DatasetContext:
        with self._lock:
            try:
                return self._contexts[name]
            except KeyError:
                known = ", ".join(sorted(self._contexts)) or "<none>"
                raise KeyError(f"unknown catalogue {name!r} "
                               f"(registered: {known})") from None

    def session(self, name: str) -> Session:
        """The (cached) :class:`~repro.core.session.Session` serving
        ``name`` — the object behind the ``/answer`` and ``/batch``
        endpoints, and the one to embed when an application wants to
        share a catalogue's caches with the HTTP daemon."""
        context = self.get(name)
        with self._lock:
            session = self._sessions.get(name)
            if session is None or session.context is not context:
                # warm=False: registration already built the tree.
                session = Session(context=context, warm=False)
                self._sessions[name] = session
            return session

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._contexts)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._contexts

    def __len__(self) -> int:
        with self._lock:
            return len(self._contexts)

    def describe(self) -> list[dict]:
        """JSON-safe description of every catalogue, with cache stats
        — the payload behind the ``/catalogues`` endpoint."""
        with self._lock:
            items = sorted(self._contexts.items())
            metas = dict(self._meta)
        out = []
        for name, context in items:
            stats = context.stats
            out.append({
                "name": name,
                "n": context.n,
                "d": context.dim,
                "max_partitions": context.max_partitions,
                "max_box_caches": context.max_box_caches,
                "cached_partitions": context.n_cached_partitions,
                "cached_box_caches": context.n_cached_box_caches,
                "meta": {k: v for k, v in metas.get(name, {}).items()
                         if not isinstance(v, np.ndarray)},
                "stats": {
                    "tree_builds": stats.tree_builds,
                    "findincom_traversals": stats.findincom_traversals,
                    "partition_hits": stats.partition_hits,
                    "partition_misses": stats.partition_misses,
                    "partition_evictions": stats.partition_evictions,
                    "box_cache_hits": stats.box_cache_hits,
                    "box_cache_evictions": stats.box_cache_evictions,
                    "buffer_reuses": stats.buffer_reuses,
                    "cache_hits": stats.cache_hits,
                    "evictions": stats.evictions,
                    "index_work": stats.index_work,
                },
            })
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CatalogueRegistry({self.names()})"
