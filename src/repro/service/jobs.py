"""Asynchronous jobs: budgeted batches refined by a worker pool.

The synchronous ``/batch`` endpoint holds its HTTP connection open for
the whole batch — fine for a dozen questions, hopeless for a long
converging workload.  A *job* decouples submission from collection:

* ``submit`` validates the batch, assigns an id and enqueues it;
* a fixed pool of worker threads pulls jobs and refines them through
  :func:`repro.engine.executor.refine_questions` — interleaved
  anytime refinement, so a job's progress (per-item current
  penalties) is observable while it runs;
* ``progress`` / ``result`` expose the state machine
  ``queued → running → done | cancelled | failed``;
* ``cancel`` sets a cooperative flag the refinement loop polls
  *between* chunks — a running kernel is never interrupted, no
  partial state is left behind, and the job keeps every answer
  refined up to the cancellation point.

The manager holds no persistent state: jobs live in memory, and a
graceful daemon shutdown cancels what is running and joins the pool —
by design there is nothing to recover on restart.

Jobs always refine **in-process** (thread pool), even when the daemon
runs a multi-process :class:`~repro.service.workers.WorkerPool` for
``/answer``/``/batch``: interleaved anytime refinement needs the
stepper state resident across rounds, which does not ship over a
pipe.  The two tiers coexist — jobs on threads, synchronous traffic
on worker processes.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
import uuid

from repro.core.protocol import Answer, summarize_answers
from repro.engine.executor import refine_questions

__all__ = ["Job", "JobManager"]

#: Job states.  ``cancelling`` is transient: the flag is set but the
#: worker has not yet reached a chunk boundary (or the job is still
#: queued and will be dropped when popped).
JOB_STATES = ("queued", "running", "cancelling", "done", "cancelled",
              "failed")

_FINISHED = ("done", "cancelled", "failed")


class Job:
    """One submitted batch and its refinement state.

    All mutable fields sit behind one lock; readers (``progress`` /
    ``result`` endpoints) take a consistent snapshot while a worker
    thread records per-round answers.
    """

    def __init__(self, job_id: str, catalogue: str, questions, *,
                 seed: int = 0):
        self.id = job_id
        self.catalogue = catalogue
        self.questions = list(questions)
        self.seed = int(seed)
        self.created = time.time()
        self.started: float | None = None
        self.finished: float | None = None
        self._lock = threading.Lock()
        self._cancel = threading.Event()
        self._status = "queued"
        self._answers: list[Answer | None] = [None] * len(
            self.questions)
        self._done_flags = [False] * len(self.questions)
        self._error: str | None = None

    # -- worker-side transitions ---------------------------------------

    def cancel_requested(self) -> bool:
        return self._cancel.is_set()

    def request_cancel(self) -> None:
        with self._lock:
            self._cancel.set()
            if self._status in ("queued", "running"):
                self._status = "cancelling"

    def mark_running(self) -> bool:
        """Claim the job for a worker; False when already cancelled."""
        with self._lock:
            if self._cancel.is_set():
                self._status = "cancelled"
                self.finished = time.time()
                return False
            self._status = "running"
            self.started = time.time()
            return True

    def record(self, index: int, answer: Answer, done: bool) -> None:
        """One refinement round's result for one item (worker hook)."""
        with self._lock:
            self._answers[index] = answer
            self._done_flags[index] = done

    def mark_finished(self, answers, stopped: bool) -> None:
        with self._lock:
            self._answers = list(answers)
            if stopped:
                # Keep the per-round flags: a cancelled job's "done"
                # count must say how many items *finished refining*,
                # not how many have a partial answer to show.
                self._done_flags = [
                    done and answer is not None
                    for done, answer in zip(self._done_flags, answers)]
            else:
                self._done_flags = [a is not None for a in answers]
            self._status = "cancelled" if stopped else "done"
            self.finished = time.time()

    def mark_failed(self, exc: BaseException) -> None:
        with self._lock:
            self._error = f"{type(exc).__name__}: {exc}"
            self._status = "failed"
            self.finished = time.time()

    # -- reader side ---------------------------------------------------

    @property
    def status(self) -> str:
        with self._lock:
            return self._status

    @property
    def is_finished(self) -> bool:
        return self.status in _FINISHED

    def progress(self) -> dict:
        """JSON-safe progress snapshot (the ``GET /jobs/<id>``
        payload): state, done/total counts and the current per-item
        penalties (``None`` for items with no round yet)."""
        with self._lock:
            penalties = [None if a is None or a.error is not None
                         else a.penalty for a in self._answers]
            done = sum(self._done_flags)
            status = self._status
            error = self._error
        now = time.time()
        return {
            "id": self.id,
            "catalogue": self.catalogue,
            "status": status,
            "total": len(self.questions),
            "done": done,
            "penalties": penalties,
            "error": error,
            "created": self.created,
            "elapsed": ((self.finished or now) - (self.started or now)
                        if self.started is not None else 0.0),
        }

    def answers(self) -> list[Answer | None]:
        with self._lock:
            return list(self._answers)

    def summary(self) -> dict:
        refined = [a for a in self.answers() if a is not None]
        summary = summarize_answers(refined)
        summary["unrefined"] = len(self.questions) - len(refined)
        return summary


class JobManager:
    """Fixed worker pool draining a FIFO of submitted jobs.

    Parameters
    ----------
    registry:
        The :class:`~repro.service.registry.CatalogueRegistry` jobs
        answer against; each job pins the named catalogue's snapshot
        when a worker picks it up.
    workers:
        Pool size — how many jobs refine concurrently.
    keep:
        Finished jobs retained for ``result`` collection; the oldest
        finished jobs are evicted beyond this bound so a long-lived
        daemon cannot leak completed batches.
    observer:
        Optional ``observer(catalogue, context, question, answer)``
        callback invoked for every successfully refined answer when
        its job finishes — the server feeds these timings to the
        cost model's calibration.  Observer failures never fail the
        job.
    """

    def __init__(self, registry, *, workers: int = 2,
                 keep: int = 256, observer=None):
        self.registry = registry
        self.keep = int(keep)
        self._observer = observer
        self._jobs: dict[str, Job] = {}
        self._order: list[str] = []        # submission order
        self._lock = threading.Lock()
        self._queue: queue.Queue = queue.Queue()
        self._closed = False
        self._counter = itertools.count(1)
        self._threads = [
            threading.Thread(target=self._worker, daemon=True,
                             name=f"wqrtq-job-worker-{i}")
            for i in range(max(1, int(workers)))]
        for thread in self._threads:
            thread.start()

    # -- submission ----------------------------------------------------

    def submit(self, catalogue: str, questions, *,
               seed: int = 0) -> Job:
        """Enqueue a batch; returns the queued :class:`Job`.

        Raises ``KeyError`` for an unknown catalogue and
        ``ValueError`` for an empty batch or a closed manager —
        submission-time failures belong to the submitter, not the
        job's failure log.
        """
        questions = list(questions)
        if not questions:
            raise ValueError("a job needs at least one question")
        self.registry.catalogue(catalogue)   # raises KeyError
        with self._lock:
            if self._closed:
                raise ValueError("job manager is shut down")
            job_id = (f"job-{next(self._counter):04d}-"
                      f"{uuid.uuid4().hex[:8]}")
            job = Job(job_id, catalogue, questions, seed=seed)
            self._jobs[job_id] = job
            self._order.append(job_id)
            self._evict_finished()
            # Enqueue while still holding the lock: a shutdown()
            # racing in after the _closed check would otherwise
            # cancel the job and retire every worker *before* this
            # put, stranding the job in "cancelling" forever.
            self._queue.put(job_id)
        return job

    def _evict_finished(self) -> None:
        # Caller holds the lock.  Active jobs are never evicted.
        finished = [job_id for job_id in self._order
                    if self._jobs[job_id].is_finished]
        for job_id in finished[:max(0, len(finished) - self.keep)]:
            self._jobs.pop(job_id, None)
            self._order.remove(job_id)

    # -- lookup --------------------------------------------------------

    def get(self, job_id: str) -> Job:
        with self._lock:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise KeyError(f"unknown job {job_id!r}") from None

    def jobs(self) -> list[Job]:
        with self._lock:
            return [self._jobs[job_id] for job_id in self._order]

    def cancel(self, job_id: str) -> Job:
        """Request cooperative cancellation; returns the job."""
        job = self.get(job_id)
        job.request_cancel()
        return job

    # -- deferred work -------------------------------------------------

    def defer(self, fn) -> bool:
        """Run ``fn()`` on the pool, after everything already queued.

        The watch subsystem rides the job pool for its re-answers:
        deferred callables share the FIFO with jobs, so watch
        refreshes and batch refinement compete for the same worker
        budget instead of spawning unbounded threads.  Returns False
        (and drops ``fn``) once the manager is shut down.
        """
        with self._lock:
            if self._closed:
                return False
            self._queue.put(fn)
        return True

    # -- the pool ------------------------------------------------------

    def _worker(self) -> None:
        while True:
            job_id = self._queue.get()
            if job_id is None:   # shutdown sentinel
                return
            if callable(job_id):
                try:
                    job_id()
                except Exception:   # pragma: no cover - defensive
                    pass
                continue
            job = self._jobs.get(job_id)
            if job is None or not job.mark_running():
                continue
            try:
                session = self.registry.session(job.catalogue)
                # Pin one snapshot for the whole job, like ask_batch.
                context = session.context
                answers, stopped = refine_questions(
                    context, job.questions, seed=job.seed,
                    penalty_config=session.penalty_config,
                    should_stop=job.cancel_requested,
                    on_answer=job.record)
                job.mark_finished(answers, stopped)
                self._notify_observer(job, context, answers)
            except Exception as exc:   # pragma: no cover - defensive
                job.mark_failed(exc)

    def _notify_observer(self, job, context, answers) -> None:
        if self._observer is None:
            return
        for question, answer in zip(job.questions, answers):
            if answer is None or not getattr(answer, "ok", False):
                continue
            try:
                self._observer(job.catalogue, context, question,
                               answer)
            except Exception:   # pragma: no cover - defensive
                return

    def shutdown(self, *, timeout: float = 10.0) -> None:
        """Drain gracefully: stop accepting, cancel everything still
        queued or running (cooperatively — at the next chunk
        boundary), and join the pool.  No partial job state persists
        because none is ever written."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            jobs = list(self._jobs.values())
        for job in jobs:
            if not job.is_finished:
                job.request_cancel()
        for _ in self._threads:
            self._queue.put(None)
        deadline = time.monotonic() + timeout
        for thread in self._threads:
            thread.join(timeout=max(0.0, deadline - time.monotonic()))
