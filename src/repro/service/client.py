"""``urllib``-based client for the why-not service.

The client is deliberately thin — JSON in, JSON out, no retries or
pooling — because its job is to be the *reference consumer*: the test
suite, the throughput benchmark and the CI smoke check all talk to
``wqrtq serve`` through it, so the wire format has exactly one
encoding/decoding implementation on each side.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import numpy as np


class ServiceError(RuntimeError):
    """An HTTP-level failure reported by the service."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


def _jsonable_question(q, k, why_not) -> dict:
    return {
        "q": np.asarray(q, dtype=np.float64).tolist(),
        "k": int(k),
        "why_not": np.atleast_2d(
            np.asarray(why_not, dtype=np.float64)).tolist(),
    }


class ServiceClient:
    """Talk to one running why-not service.

    Parameters
    ----------
    host, port:
        Address of a :class:`~repro.service.server.WhyNotServer` (or
        a ``wqrtq serve`` process).
    timeout:
        Per-request socket timeout in seconds.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8977, *,
                 timeout: float = 60.0):
        self.base_url = f"http://{host}:{int(port)}"
        self.timeout = timeout

    # -- transport -----------------------------------------------------

    def _request(self, path: str, payload: dict | None = None) -> dict:
        if payload is None:
            request = urllib.request.Request(self.base_url + path)
        else:
            request = urllib.request.Request(
                self.base_url + path,
                data=json.dumps(payload).encode("utf-8"),
                headers={"Content-Type": "application/json"},
                method="POST")
        try:
            with urllib.request.urlopen(
                    request, timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                message = json.loads(
                    exc.read().decode("utf-8")).get("error", "")
            except Exception:
                message = exc.reason
            raise ServiceError(exc.code, message) from None

    # -- endpoints -----------------------------------------------------

    def health(self) -> dict:
        return self._request("/health")

    def catalogues(self) -> list[dict]:
        return self._request("/catalogues")["catalogues"]

    def stats(self) -> dict:
        return self._request("/stats")

    def answer(self, catalogue: str, q, k: int, why_not, *,
               algorithm: str = "mqp", sample_size: int = 200,
               seed: int = 0) -> dict:
        """Answer one why-not question; returns the execution item."""
        payload = _jsonable_question(q, k, why_not)
        payload.update(catalogue=catalogue, algorithm=algorithm,
                       sample_size=int(sample_size), seed=int(seed))
        return self._request("/answer", payload)["item"]

    def batch(self, catalogue: str, questions, *,
              algorithm: str = "mqp", sample_size: int = 200,
              seed: int = 0, workers: int = 1) -> dict:
        """Answer many ``(q, k, why_not)`` questions in one request.

        Returns the full response: ``{"items": [...],
        "summary": {...}}``.
        """
        payload = {
            "catalogue": catalogue,
            "questions": [_jsonable_question(q, k, wm)
                          for q, k, wm in questions],
            "algorithm": algorithm,
            "sample_size": int(sample_size),
            "seed": int(seed),
            "workers": int(workers),
        }
        return self._request("/batch", payload)
