"""``urllib``-based client speaking the typed wire schema.

The client is deliberately thin — no pooling, no backoff — because
its job is to be the *reference consumer*: the test suite, the
throughput benchmark and the CI smoke check all talk to ``wqrtq
serve`` through it.  The typed methods (:meth:`ServiceClient.ask`,
:meth:`ServiceClient.ask_batch`) ship
:class:`~repro.core.protocol.Question` payloads and decode
:class:`~repro.core.protocol.Answer` payloads with the library's own
``to_dict``/``from_dict`` methods, so the wire format has exactly one
encoding/decoding implementation — the schema itself.  The dict-level
convenience methods (:meth:`ServiceClient.answer`,
:meth:`ServiceClient.batch`) keep the pre-schema flat call shapes and
let the server do all validation against *its* registry.  Every
schema-speaking response echoes ``schema_version``; the client
verifies the echo and refuses to mis-decode a server speaking an
unsupported version.

Transport failures never surface as raw ``urllib``/``socket``
exceptions: they are wrapped in :class:`ServiceConnectionError`, and
**GET** requests — idempotent by construction — are retried once
first, so a connection reset mid-read (a server restart between
keep-alive requests, say) does not fail a health probe.  POSTs are
never retried on *transport* failures: ``/answer`` is safe to repeat
but a ``/catalogues/…/products`` mutation is not, and the client
cannot tell whether the server processed the request before the
connection died.

Admission rejections are different: a 429 is a *typed* refusal — the
server guarantees it executed nothing — so retrying is always safe,
for POSTs included.  With ``retry_429 > 0`` the client sleeps the
server's ``Retry-After`` hint when one is present (the token-bucket
refill time, exact) and falls back to the jittered
:func:`backoff_delays` schedule when it is not, then re-sends.  The
final rejection surfaces as :class:`ServiceError` with
``status == 429`` and the parsed ``retry_after`` / ``admission``
payload attached.
"""

from __future__ import annotations

import hashlib
import http.client
import json
import time
import urllib.error
import urllib.parse
import urllib.request

from repro.core.protocol import (
    SCHEMA_VERSION,
    SUPPORTED_SCHEMA_VERSIONS,
    Answer,
    Budget,
    Plan,
    Question,
    WatchEvent,
)


def backoff_delays(*, initial: float = 0.05, cap: float = 2.0,
                   factor: float = 2.0, salt: str = ""):
    """Jittered exponential backoff delays, forever.

    Yields ``min(cap, initial * factor**attempt)`` scaled by a
    deterministic jitter in ``[0.5, 1.0]`` — full-jitter's collision
    avoidance without its worst-case zero wait.  The jitter is a
    ``blake2b`` hash over ``(salt, attempt)``, not a PRNG draw: the
    service tier bans nondeterministic randomness (DET-RNG), and a
    per-caller ``salt`` (a job or watch id) still de-synchronizes
    concurrent pollers the way random jitter would.
    """
    initial = max(1e-6, float(initial))
    cap = max(initial, float(cap))
    attempt = 0
    while True:
        digest = hashlib.blake2b(f"{salt}:{attempt}".encode("utf-8"),
                                 digest_size=8).digest()
        fraction = 0.5 + 0.5 * (int.from_bytes(digest, "big")
                                / 2.0 ** 64)
        yield min(cap, initial * factor ** attempt) * fraction
        attempt += 1


# The client is part of the stdlib-only service tier (see DESIGN.md
# "Invariants & static analysis", SERVICE-PURITY): array-likes are
# flattened to JSON lists with duck-typed helpers instead of numpy,
# so callers may still hand in ndarrays but the client itself never
# imports them.

def _as_list(values):
    """``values`` as a plain list; honours ``.tolist()`` so ndarrays
    (and numpy scalars inside them) degrade to builtin types."""
    tolist = getattr(values, "tolist", None)
    return tolist() if callable(tolist) else list(values)


def _float_list(values) -> list[float]:
    return [float(v) for v in _as_list(values)]


def _float_rows(values) -> list[list[float]]:
    """``values`` as a list of float rows, promoting a single flat
    vector to one row (the ``np.atleast_2d`` contract)."""
    rows = _as_list(values)
    if rows and not hasattr(rows[0], "__iter__"):
        rows = [rows]
    return [_float_list(row) for row in rows]


def _int_list(ids) -> list[int]:
    tolist = getattr(ids, "tolist", None)
    if callable(tolist):
        ids = tolist()
    if not hasattr(ids, "__iter__"):
        ids = [ids]
    return [int(i) for i in ids]


class ServiceError(RuntimeError):
    """An HTTP-level failure reported by the service.

    ``retry_after`` is the parsed ``Retry-After`` header in seconds
    (``None`` when the server sent none); ``admission`` the decoded
    ``AdmissionDecision`` payload of a typed 429, when present.
    """

    def __init__(self, status: int, message: str, *,
                 retry_after: float | None = None,
                 admission: dict | None = None):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message
        self.retry_after = retry_after
        self.admission = admission


class ServiceConnectionError(ServiceError):
    """A transport-level failure: the request never produced a
    (complete) HTTP response — connection refused or reset, timeout,
    a read cut short.  ``status`` is ``None``: no status line was
    trustworthy.  ``attempts`` says how many tries were made (2 for
    idempotent GETs, 1 for POSTs)."""

    def __init__(self, message: str, *, attempts: int = 1):
        RuntimeError.__init__(self, message)
        self.status = None
        self.message = message
        self.attempts = attempts


class ServiceClient:
    """Talk to one running why-not service.

    Parameters
    ----------
    host, port:
        Address of a :class:`~repro.service.server.WhyNotServer` (or
        a ``wqrtq serve`` process).
    timeout:
        Per-request socket timeout in seconds.
    retry_429:
        How many times to re-send a request the server shed with a
        typed 429 (default 0: surface the rejection).  Each retry
        sleeps the response's ``Retry-After`` hint when present,
        else the next jittered :func:`backoff_delays` delay.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8977, *,
                 timeout: float = 60.0, retry_429: int = 0):
        self.base_url = f"http://{host}:{int(port)}"
        self.timeout = timeout
        self.retry_429 = max(int(retry_429), 0)

    # -- transport -----------------------------------------------------

    def _request(self, path: str, payload: dict | None = None, *,
                 method: str | None = None) -> dict:
        # GETs are idempotent: retry exactly once on a transport
        # failure.  POSTs are not (a mutation may have been applied
        # before the connection died), so they get one attempt —
        # and so does DELETE: job cancellation *is* idempotent, but
        # one attempt keeps the rule simple and a retry buys nothing
        # (the caller polls progress anyway).
        attempts = 2 if payload is None and method is None else 1
        sheds = 0
        backoff = None
        while True:
            for attempt in range(1, attempts + 1):
                try:
                    # HTTP-status failures leave _request_once as
                    # ServiceError (a RuntimeError) and propagate —
                    # only transport-level trouble is caught below.
                    return self._request_once(path, payload,
                                              method=method)
                except ServiceError as exc:
                    # A typed 429 means the server refused *before*
                    # executing anything, so re-sending is safe even
                    # for POSTs: honor Retry-After, else jitter.
                    if exc.status != 429 or sheds >= self.retry_429:
                        raise
                    sheds += 1
                    if backoff is None:
                        backoff = backoff_delays(salt=path)
                    delay = (exc.retry_after
                             if exc.retry_after is not None
                             else next(backoff))
                    time.sleep(delay)
                    break   # back to the while loop: re-send
                except (OSError,
                        http.client.HTTPException) as exc:
                    # URLError, ConnectionResetError, timeouts and
                    # IncompleteRead all land here.
                    if attempt < attempts:
                        continue
                    raise ServiceConnectionError(
                        f"{type(exc).__name__} talking to "
                        f"{self.base_url}{path} "
                        f"(after {attempts} attempt(s)): {exc}",
                        attempts=attempts) from exc

    def _request_once(self, path: str,
                      payload: dict | None = None, *,
                      method: str | None = None) -> dict:
        if payload is None and method is None:
            request = urllib.request.Request(self.base_url + path)
        elif payload is None:
            request = urllib.request.Request(self.base_url + path,
                                             method=method)
        else:
            request = urllib.request.Request(
                self.base_url + path,
                data=json.dumps(payload).encode("utf-8"),
                headers={"Content-Type": "application/json"},
                method=method or "POST")
        try:
            with urllib.request.urlopen(
                    request, timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            admission = None
            try:
                body = json.loads(exc.read().decode("utf-8"))
                message = body.get("error", "")
                admission = body.get("admission")
            except Exception:
                message = exc.reason
            retry_after = None
            header = exc.headers.get("Retry-After") \
                if exc.headers is not None else None
            if header is not None:
                try:
                    retry_after = float(header)
                except ValueError:
                    pass   # HTTP-date form: treat as absent
            raise ServiceError(exc.code, message,
                               retry_after=retry_after,
                               admission=admission) from None

    @staticmethod
    def _check_version(response: dict) -> None:
        version = response.get("schema_version")
        if version not in SUPPORTED_SCHEMA_VERSIONS:
            supported = ", ".join(
                str(v) for v in sorted(SUPPORTED_SCHEMA_VERSIONS))
            raise ValueError(
                f"server replied with schema_version {version!r}; "
                f"this client speaks {supported}")

    @staticmethod
    def _flat_question(q, k, why_not) -> dict:
        """Pre-schema flat fields for the dict-level methods.

        Deliberately *not* validated against the client-process
        registry: the server is authoritative, so a refinement
        registered only server-side stays reachable (the
        ``/algorithms`` endpoint is how a client discovers it).
        """
        return {
            "q": _float_list(q),
            "k": int(k),
            "why_not": _float_rows(why_not),
        }

    # -- plumbing endpoints --------------------------------------------

    def health(self) -> dict:
        return self._request("/health")

    def catalogues(self) -> list[dict]:
        return self._request("/catalogues")["catalogues"]

    def algorithms(self) -> list[dict]:
        """The server's registered algorithms (name/summary/options)."""
        response = self._request("/algorithms")
        self._check_version(response)
        return response["algorithms"]

    def stats(self) -> dict:
        return self._request("/stats")

    # -- catalogue lifecycle -------------------------------------------

    @staticmethod
    def _catalogue_path(name: str, *parts: str) -> str:
        if not name:
            # An empty name would route to the /catalogues *list*.
            raise ValueError("catalogue name must be non-empty")
        quoted = urllib.parse.quote(str(name), safe="")
        return "/".join(["/catalogues", quoted, *parts])

    def catalogue(self, name: str) -> dict:
        """One catalogue's lifecycle state: version, size, mutation
        counters and cache stats (``GET /catalogues/<name>``)."""
        response = self._request(self._catalogue_path(name))
        self._check_version(response)
        return response

    def add_products(self, name: str, products) -> dict:
        """Append products; the response carries their assigned
        stable ``ids`` and the new ``catalogue_version``."""
        return self._mutate(name, {
            "op": "add",
            "products": _float_rows(products),
        })

    def update_products(self, name: str, ids, products) -> dict:
        """Replace the coordinates of existing products (by id)."""
        return self._mutate(name, {
            "op": "update",
            "ids": _int_list(ids),
            "products": _float_rows(products),
        })

    def remove_products(self, name: str, ids) -> dict:
        """Delete products (by id)."""
        return self._mutate(name, {
            "op": "remove",
            "ids": _int_list(ids),
        })

    def _mutate(self, name: str, payload: dict) -> dict:
        response = self._request(
            self._catalogue_path(name, "products"), payload)
        self._check_version(response)
        return response

    # -- typed endpoints -----------------------------------------------

    def ask(self, catalogue: str, question: Question, *,
            seed: int = 0) -> Answer:
        """Answer one typed :class:`Question`; returns the
        :class:`Answer` (identical to ``Session.ask`` on the server's
        context)."""
        response = self._request("/answer", {
            "schema_version": SCHEMA_VERSION,
            "catalogue": catalogue,
            "question": question.to_dict(),
            "seed": int(seed),
        })
        self._check_version(response)
        return Answer.from_dict(response["item"])

    def ask_batch(self, catalogue: str, questions, *, seed: int = 0,
                  workers: int = 1) -> tuple[list[Answer], dict]:
        """Answer many typed Questions in one request.

        Returns ``(answers, summary)``.
        """
        response = self._request("/batch", {
            "schema_version": SCHEMA_VERSION,
            "catalogue": catalogue,
            "questions": [question.to_dict()
                          for question in questions],
            "seed": int(seed),
            "workers": int(workers),
        })
        self._check_version(response)
        answers = [Answer.from_dict(item)
                   for item in response["items"]]
        return answers, response["summary"]

    def explain(self, catalogue: str, question: Question, *,
                seed: int = 0) -> tuple[Plan, str]:
        """The server's cost-based execution plan for one question,
        without executing it (``POST /explain``).

        Returns ``(plan, rendered)`` — the typed
        :class:`~repro.core.protocol.Plan` and the server's
        Impala-style text rendering of it.  Estimates come from the
        daemon's own calibrated cost model, so they reflect the
        serving topology (worker pool, shards) and the traffic the
        daemon has actually seen.
        """
        response = self._request("/explain", {
            "schema_version": SCHEMA_VERSION,
            "catalogue": catalogue,
            "question": question.to_dict(),
            "seed": int(seed),
        })
        self._check_version(response)
        return Plan.from_dict(response["plan"]), response["rendered"]

    # -- async jobs ----------------------------------------------------

    @staticmethod
    def _job_path(job_id: str, *parts: str) -> str:
        if not job_id:
            raise ValueError("job id must be non-empty")
        quoted = urllib.parse.quote(str(job_id), safe="")
        return "/".join(["/jobs", quoted, *parts])

    def submit(self, catalogue: str, questions, *, budget=None,
               seed: int = 0) -> dict:
        """Submit a batch as an asynchronous job (``POST /jobs``).

        ``questions`` are typed :class:`Question` objects; ``budget``
        (a :class:`~repro.core.protocol.Budget` or its dict form)
        becomes the default for questions carrying none.  Returns the
        queued job's progress snapshot — ``["id"]`` is the handle for
        :meth:`poll` / :meth:`result` / :meth:`cancel`.
        """
        payload = {
            "schema_version": SCHEMA_VERSION,
            "catalogue": catalogue,
            "questions": [question.to_dict()
                          for question in questions],
            "seed": int(seed),
        }
        if budget is not None:
            payload["budget"] = (budget.to_dict()
                                 if isinstance(budget, Budget)
                                 else dict(budget))
        response = self._request("/jobs", payload)
        self._check_version(response)
        return response["job"]

    def poll(self, job_id: str) -> dict:
        """One job's progress snapshot (``GET /jobs/<id>``): status,
        done/total, current per-item penalties."""
        response = self._request(self._job_path(job_id))
        self._check_version(response)
        return response

    def jobs(self) -> list[dict]:
        """Progress snapshots of every job the server remembers."""
        response = self._request("/jobs")
        self._check_version(response)
        return response["jobs"]

    def result(self, job_id: str) -> tuple[list[Answer | None], dict]:
        """A finished job's answers (``GET /jobs/<id>/result``).

        Returns ``(answers, summary)``; items a cancellation stopped
        before their first refinement round are ``None``.  Raises
        :class:`ServiceError` with ``status == 409`` while the job is
        still running — poll first.
        """
        response = self._request(self._job_path(job_id, "result"))
        self._check_version(response)
        answers = [None if item is None else Answer.from_dict(item)
                   for item in response["items"]]
        return answers, response["summary"]

    def cancel(self, job_id: str) -> dict:
        """Request cooperative cancellation (``DELETE /jobs/<id>``);
        returns the job's progress snapshot.  The job keeps refining
        until the next chunk boundary, then stops and becomes
        collectible with every answer produced so far."""
        response = self._request(self._job_path(job_id),
                                 method="DELETE")
        self._check_version(response)
        return response

    def wait(self, job_id: str, *, poll_interval: float = 0.05,
             timeout: float = 60.0, on_progress=None) -> dict:
        """Poll until the job finishes; returns the final progress.

        ``on_progress`` (if given) receives every snapshot — the
        hook behind ``wqrtq batch --watch``'s progress lines.

        Polls with jittered exponential backoff starting at
        ``poll_interval`` (see :func:`backoff_delays`): a short job
        is noticed almost immediately, a long one is not hammered
        at a fixed rate, and concurrent waiters drift apart.
        """
        deadline = time.monotonic() + timeout
        delays = backoff_delays(initial=poll_interval,
                                cap=max(poll_interval, 2.0),
                                salt=str(job_id))
        for delay in delays:
            progress = self.poll(job_id)
            if on_progress is not None:
                on_progress(progress)
            if progress["status"] in ("done", "cancelled", "failed"):
                return progress
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id!r} still {progress['status']} "
                    f"after {timeout}s")
            time.sleep(min(delay, max(0.0, deadline
                                      - time.monotonic())))

    # -- watches -------------------------------------------------------

    @staticmethod
    def _watch_path(watch_id: str, *parts: str) -> str:
        if not watch_id:
            raise ValueError("watch id must be non-empty")
        quoted = urllib.parse.quote(str(watch_id), safe="")
        return "/".join(["/watches", quoted, *parts])

    def create_watch(self, catalogue: str, question: Question, *,
                     seed: int = 0) -> tuple[dict, WatchEvent]:
        """Register a standing question (``POST /watches``).

        Returns ``(descriptor, event)`` — the watch descriptor
        (``["id"]`` is the handle) and its ``seq`` 0 event carrying
        the immediate answer.
        """
        response = self._request("/watches", {
            "schema_version": SCHEMA_VERSION,
            "catalogue": catalogue,
            "question": question.to_dict(),
            "seed": int(seed),
        })
        self._check_version(response)
        return (response["watch"],
                WatchEvent.from_dict(response["event"]))

    def watch_events(self, watch_id: str, *, cursor: int = -1,
                     timeout_ms: int = 0) -> list[WatchEvent]:
        """One long-poll leg (``GET /watches/<id>/events``).

        Blocks server-side up to ``timeout_ms`` for an event past
        ``cursor``; a lapse returns an empty list, never an error.
        """
        query = urllib.parse.urlencode({
            "cursor": int(cursor),
            "timeout_ms": int(timeout_ms),
        })
        response = self._request(
            self._watch_path(watch_id, f"events?{query}"))
        self._check_version(response)
        return [WatchEvent.from_dict(event)
                for event in response["events"]]

    def delete_watch(self, watch_id: str) -> dict:
        """Unregister (``DELETE /watches/<id>``); server-side
        consumers receive the terminal ``end`` event."""
        response = self._request(self._watch_path(watch_id),
                                 method="DELETE")
        self._check_version(response)
        return response

    def watch(self, catalogue: str, question: Question, *,
              seed: int = 0, timeout_ms: int = 10_000,
              max_events: int | None = None):
        """Register a watch and iterate its refreshed Answers.

        Yields the immediate answer first, then every re-answer the
        server pushes, via repeated long-poll legs; transport
        failures between legs reconnect with jittered backoff (the
        cursor makes resumption lossless).  Stops at the server's
        terminal ``end`` event or after ``max_events`` yields; the
        watch is unregistered on the way out either way.
        """
        descriptor, event = self.create_watch(catalogue, question,
                                              seed=seed)
        watch_id = descriptor["id"]
        cursor = event.seq
        yielded = 0
        try:
            yield event.answer
            yielded += 1
            delays = backoff_delays(initial=0.05, cap=2.0,
                                    salt=watch_id)
            while max_events is None or yielded < max_events:
                try:
                    events = self.watch_events(
                        watch_id, cursor=cursor,
                        timeout_ms=timeout_ms)
                except ServiceConnectionError:
                    time.sleep(next(delays))
                    continue
                delays = backoff_delays(initial=0.05, cap=2.0,
                                        salt=watch_id)
                for event in events:
                    cursor = event.seq
                    if event.kind == "end":
                        return
                    yield event.answer
                    yielded += 1
                    if (max_events is not None
                            and yielded >= max_events):
                        return
        finally:
            try:
                self.delete_watch(watch_id)
            except (ServiceError, ServiceConnectionError):
                pass   # server gone or already unregistered

    # -- dict-level convenience (the pre-schema call shapes) -----------
    #
    # These ship the pre-schema flat wire form and let the *server*
    # upgrade it to typed Questions, so validation — including the
    # algorithm-name lookup — happens against the server's registry,
    # not this process's.  The responses are still the versioned
    # ``Answer.to_dict()`` payloads.

    def answer(self, catalogue: str, q, k: int, why_not, *,
               algorithm: str = "mqp", sample_size: int = 200,
               seed: int = 0) -> dict:
        """Answer one question; returns ``Answer.to_dict()``."""
        payload = self._flat_question(q, k, why_not)
        payload.update(catalogue=catalogue, algorithm=algorithm,
                       sample_size=int(sample_size), seed=int(seed))
        response = self._request("/answer", payload)
        self._check_version(response)
        return response["item"]

    def batch(self, catalogue: str, questions, *,
              algorithm: str = "mqp", sample_size: int = 200,
              seed: int = 0, workers: int = 1) -> dict:
        """Answer many ``(q, k, why_not)`` questions in one request.

        Returns the full response: ``{"schema_version",
        "items": [...], "summary": {...}}``.
        """
        response = self._request("/batch", {
            "catalogue": catalogue,
            "questions": [self._flat_question(q, k, wm)
                          for q, k, wm in questions],
            "algorithm": algorithm,
            "sample_size": int(sample_size),
            "seed": int(seed),
            "workers": int(workers),
        })
        self._check_version(response)
        return response
