"""Multi-process shard-parallel serving over shared-memory snapshots.

Every layer below this one executes inside a single GIL-bound
process.  The kernels release the GIL, but the Python halves of the
refinement algorithms — stepper bookkeeping, partition set algebra,
the quadratic program — do not, so one ``wqrtq serve`` process cannot
saturate a many-core box.  This module adds the missing tier: a pool
of **worker processes** that attach the current catalogue snapshot
through :mod:`repro.engine.shm` (zero-copy — every worker maps the
same ``/dev/shm`` segment) and answer
:class:`~repro.core.protocol.Question` objects shipped over pipes.

Execution paths
---------------
``ask``
    One question.  With ``shards == 1`` (or a question whose
    algorithm cannot shard — see
    :func:`repro.core.protocol.shard_plan`) the whole question runs
    on one worker.  With ``shards > 1`` the catalogue's row ranges
    are fanned out: each shard worker computes a
    :class:`~repro.core.protocol.ShardPartial` over its slice of the
    shared point array, the front door merges them into a
    :class:`~repro.core.protocol.Precompute`
    (:func:`~repro.core.protocol.merge_shard_partials` — top-k order
    statistics and dominance-partition unions), and one finisher
    worker runs the refinement seeded with the merged precomputation.
    The result is byte-identical to a single process: same floats,
    same tie-breaks.
``ask_batch``
    Many questions.  The batch splits into contiguous slices, one per
    worker; slice ``[a, b)`` runs ``execute_questions(..., seed=seed
    + a)`` so item ``j`` still draws ``default_rng(seed + a + j)`` —
    the per-item rng streams are worker-count-invariant, which keeps
    pooled batches byte-identical to ``Session.ask_batch``.

Publish / retire protocol (single writer)
-----------------------------------------
The parent process is the only writer.  A catalogue mutation commits
a new snapshot version in-process, then :meth:`WorkerPool.publish`:

1. waits for in-flight questions to drain (a condition-variable
   write gate — publishes are rare, questions are not);
2. exports the new snapshot to a fresh segment
   (:func:`~repro.engine.shm.export_snapshot`);
3. broadcasts the manifest; every worker attaches the new version,
   drops its old context and closes the old mapping, then acks;
4. unlinks the retired segment — safe because each worker's pipe is
   a FIFO, so every question dispatched before the publish was
   answered before the worker acked it, and the drain gate stops new
   questions pinning the old version mid-publish.

A worker answers with the registry's default penalty configuration
(the same one :class:`~repro.service.registry.CatalogueRegistry`
sessions use).  Algorithms registered at runtime in the parent only
are not visible in spawned workers; the built-ins always are.

Workers are **spawned**, not forked: the parent is a threaded HTTP
daemon, and forking a multi-threaded process is undefined behaviour
waiting to happen.  Spawn also means each worker re-imports
:mod:`repro` fresh, which is why the worker entry point below must
live at module level in an importable module.
"""

from __future__ import annotations

import dataclasses
import itertools
import multiprocessing
import threading
import time

from repro.core.protocol import (
    Question,
    merge_shard_partials,
    shard_plan,
    shard_ranges,
)
from repro.engine.shm import export_snapshot, unlink_snapshot

__all__ = ["WorkerPool", "WorkerPoolError"]


class WorkerPoolError(RuntimeError):
    """A worker failed or died while serving a request."""


# ---------------------------------------------------------------------
# Worker-process side.
#
# One loop per process, strictly FIFO over its pipe: commands are
# processed in arrival order, so a ``publish`` acts as a barrier —
# every question the parent sent before it has been answered by the
# time the ack goes back.  The publish/retire protocol above leans on
# this ordering.
# ---------------------------------------------------------------------


def _close_attached(context) -> None:
    """Drop a worker's retired context and close its shm mapping.

    The caller must pass its *only* reference.  Dropping the context
    releases every numpy view over the segment buffer, after which
    ``close()`` succeeds; ``BufferError`` (a still-exported view —
    should not happen, but a leaked view must not kill the worker)
    leaves the mapping to process exit.
    """
    segment = getattr(context, "_shm_segment", None)
    del context
    if segment is not None:
        try:
            segment.close()
        except BufferError:   # pragma: no cover - defensive
            pass


def _worker_main(conn, worker_id: int) -> None:
    """Entry point of one spawned worker process."""
    # Imports happen here, in the child: spawn re-imports this module
    # by name, and the heavy engine modules should not load before
    # the process actually exists.  No numpy even here: randomness
    # goes through answer_question's seed= seam (SERVICE-PURITY).
    from repro.core.penalty import DEFAULT_PENALTY
    from repro.core.protocol import compute_shard_partial
    from repro.engine.context import DatasetContext
    from repro.engine.executor import answer_question, execute_questions

    contexts: dict[str, DatasetContext] = {}
    stats = {"worker": int(worker_id), "questions": 0, "partials": 0,
             "batches": 0, "publishes": 0, "busy_seconds": 0.0}

    def current(name):
        try:
            return contexts[name]
        except KeyError:
            raise ValueError(f"worker has no published catalogue "
                             f"{name!r}") from None

    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        req_id, op, payload = message
        started = time.perf_counter()
        try:
            if op == "publish":
                name, manifest = payload
                old = contexts.pop(name, None)
                contexts[name] = DatasetContext.from_shared(manifest)
                if old is not None:
                    _close_attached(old)
                    old = None
                stats["publishes"] += 1
                ok, out = True, manifest.version
            elif op == "run":
                name, question, seed = payload
                answer = answer_question(
                    current(name), question, index=0,
                    seed=int(seed),
                    penalty_config=DEFAULT_PENALTY)
                stats["questions"] += 1
                ok, out = True, answer
            elif op == "partial":
                name, question, start, stop = payload
                points = current(name).points[start:stop]
                stats["partials"] += 1
                ok, out = True, compute_shard_partial(points, start,
                                                      question)
            elif op == "finish":
                name, question, seed, precompute = payload
                answer = answer_question(
                    current(name), question, index=0,
                    seed=int(seed),
                    penalty_config=DEFAULT_PENALTY,
                    precompute=precompute)
                stats["questions"] += 1
                ok, out = True, answer
            elif op == "slice":
                name, questions, seed = payload
                answers = execute_questions(
                    current(name), questions, seed=int(seed),
                    workers=1, penalty_config=DEFAULT_PENALTY)
                stats["questions"] += len(answers)
                stats["batches"] += 1
                ok, out = True, answers
            elif op == "stats":
                ok, out = True, dict(stats)
            elif op == "stop":
                conn.send((req_id, True, None))
                break
            else:   # pragma: no cover - protocol bug
                ok, out = False, f"unknown worker op {op!r}"
        except Exception as exc:
            ok, out = False, f"{type(exc).__name__}: {exc}"
        stats["busy_seconds"] += time.perf_counter() - started
        try:
            conn.send((req_id, ok, out))
        except (BrokenPipeError, OSError):   # pragma: no cover
            break

    for name in list(contexts):
        _close_attached(contexts.pop(name))
    conn.close()


# ---------------------------------------------------------------------
# Parent side.
# ---------------------------------------------------------------------


class _Reply:
    """A pending response slot, resolved by the handle's reader
    thread."""

    __slots__ = ("_event", "ok", "payload")

    def __init__(self):
        self._event = threading.Event()
        self.ok = False
        self.payload = None

    def resolve(self, ok: bool, payload) -> None:
        self.ok = ok
        self.payload = payload
        self._event.set()

    def get(self, timeout: float | None = None):
        if not self._event.wait(timeout):
            raise WorkerPoolError("timed out waiting for a worker")
        if not self.ok:
            raise WorkerPoolError(str(self.payload))
        return self.payload


class _WorkerHandle:
    """Parent-side endpoint of one worker: pipe + reader thread.

    Many HTTP handler threads share one handle; sends are serialized
    by a lock, responses are demultiplexed by request id, so
    concurrent requests to the same worker interleave safely (the
    worker itself answers them FIFO).
    """

    def __init__(self, mp_context, worker_id: int):
        parent_conn, child_conn = mp_context.Pipe()
        self.worker_id = worker_id
        self.process = mp_context.Process(
            target=_worker_main, args=(child_conn, worker_id),
            name=f"wqrtq-worker-{worker_id}", daemon=True)
        self.process.start()
        child_conn.close()
        self._conn = parent_conn
        self._send_lock = threading.Lock()
        self._pending: dict[int, _Reply] = {}
        self._pending_lock = threading.Lock()
        self._ids = itertools.count(1)
        self._reader = threading.Thread(
            target=self._read_loop, daemon=True,
            name=f"wqrtq-worker-{worker_id}-reader")
        self._reader.start()

    def send(self, op: str, payload) -> _Reply:
        reply = _Reply()
        with self._pending_lock:
            req_id = next(self._ids)
            self._pending[req_id] = reply
        try:
            with self._send_lock:
                self._conn.send((req_id, op, payload))
        except (BrokenPipeError, OSError) as exc:
            with self._pending_lock:
                self._pending.pop(req_id, None)
            reply.resolve(False, f"worker {self.worker_id} is gone "
                                 f"({exc})")
        return reply

    def request(self, op: str, payload, *,
                timeout: float | None = None):
        return self.send(op, payload).get(timeout)

    def _read_loop(self) -> None:
        while True:
            try:
                req_id, ok, payload = self._conn.recv()
            except (EOFError, OSError):
                break
            with self._pending_lock:
                reply = self._pending.pop(req_id, None)
            if reply is not None:
                reply.resolve(ok, payload)
        # The worker died (or closed on stop): fail whatever is left
        # so no handler thread waits forever.
        with self._pending_lock:
            pending, self._pending = self._pending, {}
        for reply in pending.values():
            reply.resolve(False,
                          f"worker {self.worker_id} exited with "
                          f"pending requests")

    def close(self, *, timeout: float = 5.0) -> None:
        try:
            self.send("stop", None).get(timeout)
        except WorkerPoolError:
            pass
        self.process.join(timeout)
        if self.process.is_alive():   # pragma: no cover - defensive
            self.process.terminate()
            self.process.join(timeout)
        try:
            self._conn.close()
        except OSError:   # pragma: no cover
            pass
        self._reader.join(timeout)


class WorkerPool:
    """N spawned workers serving questions against shared snapshots.

    Parameters
    ----------
    registry:
        The :class:`~repro.service.registry.CatalogueRegistry` to
        serve.  Every catalogue registered at construction is
        exported and published to the workers; later versions are
        published by calling :meth:`publish` after each mutation (the
        HTTP mutation endpoint does).
    workers:
        Number of worker processes (>= 1).
    shards:
        Row-range fan-out per shardable question.  ``1`` (default)
        disables scatter-gather: each question runs whole on one
        worker, which is the right shape when throughput comes from
        many concurrent questions rather than one huge catalogue.
    """

    def __init__(self, registry, *, workers: int = 2,
                 shards: int = 1):
        self.registry = registry
        self.shards = max(1, int(shards))
        mp_context = multiprocessing.get_context("spawn")
        self._workers = [
            _WorkerHandle(mp_context, worker_id)
            for worker_id in range(max(1, int(workers)))]
        self._rr = itertools.count()
        self._manifests: dict[str, object] = {}
        # The publish gate: questions dispatch concurrently
        # (readers), a publish drains them and runs alone (writer).
        self._gate = threading.Condition()
        self._inflight = 0
        self._publishing = False
        self._closed = False
        try:
            for name in registry.names():
                self.publish(name)
        except BaseException:
            self.shutdown()
            raise

    # -- introspection -------------------------------------------------

    def __len__(self) -> int:
        return len(self._workers)

    @property
    def workers(self) -> int:
        """Number of worker processes (the planner reads this)."""
        return len(self._workers)

    def serves(self, name: str) -> bool:
        """Whether ``name`` has a published snapshot."""
        with self._gate:
            return name in self._manifests

    def manifest(self, name: str):
        """The currently published
        :class:`~repro.engine.shm.SnapshotManifest` of ``name``."""
        with self._gate:
            return self._manifests[name]

    def version(self, name: str) -> int:
        """The published (worker-visible) version of ``name``."""
        return self.manifest(name).version

    # -- the publish gate ----------------------------------------------

    def _begin_question(self) -> None:
        with self._gate:
            while self._publishing and not self._closed:
                self._gate.wait()
            if self._closed:
                raise WorkerPoolError("worker pool is shut down")
            self._inflight += 1

    def _end_question(self) -> None:
        with self._gate:
            self._inflight -= 1
            self._gate.notify_all()

    def publish(self, name: str):
        """Export the catalogue's current snapshot and roll every
        worker onto it; unlinks the retired version.  Returns the
        published manifest.  Idempotent per version."""
        catalogue = self.registry.catalogue(name)
        with self._gate:
            while self._publishing and not self._closed:
                self._gate.wait()
            if self._closed:
                raise WorkerPoolError("worker pool is shut down")
            self._publishing = True
            while self._inflight:
                self._gate.wait()
        try:
            snapshot = catalogue.snapshot
            old = self._manifests.get(name)
            if old is not None and old.version == snapshot.version:
                return old
            manifest = export_snapshot(snapshot)
            # A failed broadcast propagates without adopting the new
            # manifest (and without unlinking it — workers that did
            # attach reference the segment; the exit sweep collects
            # it).
            replies = [worker.send("publish", (name, manifest))
                       for worker in self._workers]
            for reply in replies:
                reply.get()
            self._manifests[name] = manifest
            if old is not None:
                unlink_snapshot(old)
            return manifest
        finally:
            with self._gate:
                self._publishing = False
                self._gate.notify_all()

    # -- answering -----------------------------------------------------

    def _next_worker(self) -> _WorkerHandle:
        return self._workers[next(self._rr) % len(self._workers)]

    def ask(self, name: str, question: Question, *, seed: int = 0):
        """Answer one question; scatter-gathers when sharding is on
        and the question's algorithm supports it."""
        self._begin_question()
        try:
            with self._gate:
                manifest = self._manifests[name]
            plan = (shard_plan(question) if self.shards > 1 else None)
            if plan is None:
                return self._next_worker().request(
                    "run", (name, question, int(seed)))
            ranges = shard_ranges(manifest.n_points, self.shards)
            if len(ranges) <= 1:
                return self._next_worker().request(
                    "run", (name, question, int(seed)))
            replies = [
                self._workers[i % len(self._workers)].send(
                    "partial", (name, question, start, stop))
                for i, (start, stop) in enumerate(ranges)]
            partials = [reply.get() for reply in replies]
            precompute = merge_shard_partials(question, partials)
            return self._next_worker().request(
                "finish", (name, question, int(seed), precompute))
        finally:
            self._end_question()

    def ask_batch(self, name: str, questions, *,
                  seed: int = 0) -> list:
        """Answer a batch, sliced contiguously across the workers.

        Slice ``[a, b)`` runs with base seed ``seed + a`` so item
        ``j`` draws ``default_rng(seed + a + j)`` — exactly the rng
        stream ``Session.ask_batch`` gives the same global index, for
        any worker count.  Entries may be pre-failed ``Answer``
        objects (the legacy wire contract); they ride along and come
        back stamped like their siblings.
        """
        items = list(questions)
        if not items:
            return []
        self._begin_question()
        try:
            slices = shard_ranges(len(items), len(self._workers))
            replies = [
                self._workers[i].send(
                    "slice", (name, items[start:stop],
                              int(seed) + start))
                for i, (start, stop) in enumerate(slices)]
            answers: list = [None] * len(items)
            for (start, stop), reply in zip(slices, replies):
                for j, answer in enumerate(reply.get()):
                    answers[start + j] = dataclasses.replace(
                        answer, index=start + j)
            return answers
        finally:
            self._end_question()

    # -- observability -------------------------------------------------

    def stats(self) -> dict:
        """Per-worker throughput counters (the ``/stats`` payload).

        Each worker reports questions answered, shard partials
        computed, batches sliced to it, publishes seen and busy
        seconds; ``throughput_qps`` is questions over busy time.
        """
        self._begin_question()
        try:
            replies = [worker.send("stats", None)
                       for worker in self._workers]
            per_worker = []
            for reply in replies:
                stats = reply.get()
                busy = stats["busy_seconds"]
                stats["throughput_qps"] = (
                    stats["questions"] / busy if busy > 0 else 0.0)
                per_worker.append(stats)
        finally:
            self._end_question()
        with self._gate:
            published = {name: manifest.version for name, manifest
                         in sorted(self._manifests.items())}
        return {
            "workers": len(self._workers),
            "shards": self.shards,
            "published": published,
            "questions": sum(w["questions"] for w in per_worker),
            "partials": sum(w["partials"] for w in per_worker),
            "per_worker": per_worker,
        }

    # -- lifecycle -----------------------------------------------------

    def shutdown(self, *, timeout: float = 10.0) -> None:
        """Stop the workers and unlink every published segment.

        Idempotent.  Waits for in-flight questions to drain (they
        hold attached mappings), then stops each worker (FIFO: the
        stop ack means the worker detached everything) and unlinks.
        """
        with self._gate:
            if self._closed:
                return
            self._closed = True
            self._gate.notify_all()
            deadline = time.monotonic() + timeout
            while self._inflight and time.monotonic() < deadline:
                self._gate.wait(timeout=0.1)
        for worker in self._workers:
            worker.close(timeout=timeout / max(1, len(self._workers)))
        with self._gate:
            manifests, self._manifests = self._manifests, {}
        for manifest in manifests.values():
            unlink_snapshot(manifest)
