"""Standing questions, kept fresh by delta-driven maintenance.

A *watch* is a registered :class:`~repro.core.protocol.Question`
whose last :class:`~repro.core.protocol.Answer` the server keeps
pinned to the catalogue version it was computed at.  Catalogue
mutations publish their deltas here; the manager dominance-checks
each delta against every standing answer (:mod:`repro.engine.delta`)
and re-answers **only the watches a delta can actually reach** —
the rest are *skipped*, their cached answer provably still what a
fresh ``Session.ask`` would return.  Re-answers ride the existing
:class:`~repro.service.jobs.JobManager` worker pool (via
:meth:`~repro.service.jobs.JobManager.defer`), so watch maintenance
and batch refinement compete for one bounded worker budget.

Each watch carries an append-only event stream: ``seq`` 0 is the
registration answer, every re-answer appends an ``"answer"`` event,
and deletion or server drain appends a terminal ``"end"`` event
after which nothing follows.  Consumers resume from a cursor —
``GET /watches/<id>/events?cursor=`` for long-poll,
``Last-Event-ID`` for SSE — and :meth:`Watch.events_after` blocks on
a condition variable until an event past the cursor exists, the
timeout lapses (empty batch, not an error) or the watch ends.  The
buffer is bounded (:data:`EVENT_BUFFER`): a consumer that falls more
than a buffer behind resumes from the oldest retained event — late
answers supersede earlier ones, so nothing correctness-bearing is
lost.

Correctness contract: every event's ``answer`` is byte-identical to
a fresh ``Session.ask`` at the event's ``catalogue_version`` —
re-answers because they *are* fresh asks, skips because the skip is
only taken when the delta provably cannot change the answer.
"""

from __future__ import annotations

import itertools
import threading
import time
import uuid
from collections import deque

from repro.core.protocol import Answer, Question, WatchEvent
from repro.engine.context import ContextStats
from repro.engine.delta import answer_affected

__all__ = ["EVENT_BUFFER", "Watch", "WatchManager"]

#: Events retained per watch.  Bounds memory for slow consumers; a
#: resume from further back replays from the oldest retained event.
EVENT_BUFFER = 256


class Watch:
    """One standing question and its event stream.

    All mutable state — the cached answer, the version it is known
    fresh for, the event deque and the sequence counter — sits
    behind one condition variable; :meth:`events_after` waits on it,
    :meth:`record` and :meth:`end` notify it.
    """

    def __init__(self, watch_id: str, catalogue: str,
                 question: Question, *, seed: int = 0):
        self.id = watch_id
        self.catalogue = catalogue
        self.question = question
        self.seed = int(seed)
        self.created = time.time()
        self._cond = threading.Condition()
        # Serializes re-answers: concurrent sweeps collapse into one
        # fresh ask instead of racing duplicate refreshes.
        self.refresh_lock = threading.Lock()
        self._events: deque[WatchEvent] = deque(maxlen=EVENT_BUFFER)
        self._seq = itertools.count()
        self._answer: Answer | None = None
        self._checked_version = -1
        self._closed = False

    # -- producer side -------------------------------------------------

    def record(self, answer: Answer) -> WatchEvent | None:
        """Adopt a fresh answer; appends an ``"answer"`` event.

        Returns ``None`` (and drops the answer) once the watch has
        ended — nothing may follow the terminal event.
        """
        with self._cond:
            if self._closed:
                return None
            self._answer = answer
            self._checked_version = max(self._checked_version,
                                        answer.catalogue_version)
            event = WatchEvent(
                watch_id=self.id, seq=next(self._seq), kind="answer",
                catalogue_version=answer.catalogue_version,
                answer=answer)
            self._events.append(event)
            self._cond.notify_all()
            return event

    def mark_checked(self, version: int, *,
                     expected: int) -> bool:
        """Advance the known-fresh version after a proven skip.

        Compare-and-swap against ``expected`` (the version the
        relevance check read): a refresh that landed in between
        already advanced further, and must not be rolled back.
        """
        with self._cond:
            if self._closed or self._checked_version != expected:
                return False
            self._checked_version = int(version)
            return True

    def end(self) -> None:
        """Append the terminal ``"end"`` event and close the stream."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._events.append(WatchEvent(
                watch_id=self.id, seq=next(self._seq), kind="end",
                catalogue_version=max(self._checked_version, 0)))
            self._cond.notify_all()

    # -- consumer side -------------------------------------------------

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed

    def state(self) -> tuple[Answer | None, int]:
        """``(cached answer, known-fresh version)`` as one snapshot."""
        with self._cond:
            return self._answer, self._checked_version

    def events_after(self, cursor: int, *,
                     timeout: float = 0.0) -> list[WatchEvent]:
        """Events with ``seq > cursor``, blocking up to ``timeout``
        seconds for the first one.  An empty list means the timeout
        lapsed (or the stream ended at or before ``cursor``) — never
        an error."""
        deadline = time.monotonic() + max(0.0, float(timeout))
        with self._cond:
            while True:
                batch = [event for event in self._events
                         if event.seq > cursor]
                if batch or self._closed:
                    return batch
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return []
                self._cond.wait(remaining)

    def describe(self) -> dict:
        """JSON-safe descriptor (the ``POST /watches`` /
        ``GET /watches`` payload)."""
        with self._cond:
            last_seq = (self._events[-1].seq if self._events
                        else None)
            return {
                "id": self.id,
                "catalogue": self.catalogue,
                "question_id": self.question.id,
                "algorithm": self.question.algorithm,
                "seed": self.seed,
                "seq": last_seq,
                "catalogue_version": (
                    self._answer.catalogue_version
                    if self._answer is not None else None),
                "checked_version": self._checked_version,
                "events_buffered": len(self._events),
                "closed": self._closed,
            }


class WatchManager:
    """All standing watches of one server, plus the maintenance loop.

    ``publish(name)`` — called by the mutation endpoint after each
    commit — defers one *sweep* per catalogue onto the job pool
    (coalesced: a sweep already queued absorbs further publishes).
    The sweep reads each watch's delta chain since its known-fresh
    version (``Catalogue.deltas_since``), runs the cheap relevance
    fold (:func:`~repro.engine.delta.answer_affected`) and either
    advances the watch's checked version (skip) or defers a
    re-answer.  A truncated delta history (``deltas_since`` →
    ``None``) conservatively re-answers.
    """

    def __init__(self, registry, jobs):
        self.registry = registry
        self.jobs = jobs
        self.stats = ContextStats()
        self._lock = threading.Lock()
        self._watches: dict[str, Watch] = {}
        self._order: list[str] = []
        self._counter = itertools.count(1)
        self._created = 0
        self._deltas_seen = 0
        self._pending_sweeps: set[str] = set()
        self._closed = False

    # -- lifecycle -----------------------------------------------------

    def create(self, catalogue: str, question: Question, *,
               seed: int = 0) -> tuple[Watch, WatchEvent]:
        """Register a watch; answers immediately (event ``seq`` 0).

        Raises ``KeyError`` for an unknown catalogue and
        ``ValueError`` once the manager is shut down.
        """
        session = self.registry.session(catalogue)   # raises KeyError
        answer = session.ask(question, seed=seed)
        with self._lock:
            if self._closed:
                raise ValueError("watch manager is shut down")
            watch_id = (f"watch-{next(self._counter):04d}-"
                        f"{uuid.uuid4().hex[:8]}")
            watch = Watch(watch_id, catalogue, question, seed=seed)
            self._watches[watch_id] = watch
            self._order.append(watch_id)
            self._created += 1
        event = watch.record(answer)
        # Close the registration race: a mutation swept between the
        # ask above and the registration never saw this watch — if
        # the catalogue moved on, refresh rather than serve stale.
        if (self.registry.catalogue(catalogue).version
                > answer.catalogue_version):
            self.jobs.defer(lambda: self._refresh(watch))
        return watch, event

    def get(self, watch_id: str) -> Watch:
        with self._lock:
            try:
                return self._watches[watch_id]
            except KeyError:
                raise KeyError(
                    f"unknown watch {watch_id!r}") from None

    def watches(self) -> list[Watch]:
        with self._lock:
            return [self._watches[watch_id]
                    for watch_id in self._order]

    def delete(self, watch_id: str) -> Watch:
        """End the stream (terminal event) and forget the watch."""
        with self._lock:
            try:
                watch = self._watches.pop(watch_id)
            except KeyError:
                raise KeyError(
                    f"unknown watch {watch_id!r}") from None
            self._order.remove(watch_id)
        watch.end()
        return watch

    def shutdown(self) -> None:
        """Drain: every consumer gets the terminal event, every
        blocked ``events_after`` wakes.  Idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            watches = [self._watches[watch_id]
                       for watch_id in self._order]
        for watch in watches:
            watch.end()

    # -- maintenance ---------------------------------------------------

    def publish(self, catalogue: str) -> None:
        """One committed mutation on ``catalogue``; defers a
        coalesced sweep onto the job pool."""
        with self._lock:
            if self._closed:
                return
            self._deltas_seen += 1
            if catalogue in self._pending_sweeps:
                return
            self._pending_sweeps.add(catalogue)
        self.jobs.defer(lambda: self._sweep(catalogue))

    def _sweep(self, catalogue: str) -> None:
        with self._lock:
            # Un-mark first: a mutation landing mid-sweep queues a
            # fresh sweep instead of being silently absorbed.
            self._pending_sweeps.discard(catalogue)
            watches = [self._watches[watch_id]
                       for watch_id in self._order
                       if self._watches[watch_id].catalogue
                       == catalogue]
        try:
            handle = self.registry.catalogue(catalogue)
        except KeyError:   # pragma: no cover - unregister race
            return
        for watch in watches:
            if watch.closed:
                continue
            answer, checked = watch.state()
            deltas = handle.deltas_since(checked)
            if deltas == []:
                continue   # already current
            if deltas is None:
                affected = True   # history truncated: must re-answer
            else:
                affected = answer_affected(
                    watch.question, answer, deltas,
                    stats=self.stats)
            if affected:
                self.jobs.defer(lambda w=watch: self._refresh(w))
            elif watch.mark_checked(deltas[-1].version,
                                    expected=checked):
                with self._lock:
                    self.stats.watches_skipped += 1

    def _refresh(self, watch: Watch) -> None:
        """Re-answer one watch at the current version and push the
        refreshed answer.  Serialized per watch; a refresh that
        arrives already-fresh (a coalesced duplicate) is a no-op."""
        with watch.refresh_lock:
            if watch.closed:
                return
            try:
                handle = self.registry.catalogue(watch.catalogue)
                session = self.registry.session(watch.catalogue)
            except KeyError:   # pragma: no cover - unregister race
                return
            _, checked = watch.state()
            if checked >= handle.version:
                return
            answer = session.ask(watch.question, seed=watch.seed)
            if watch.record(answer) is not None:
                with self._lock:
                    self.stats.watches_reanswered += 1

    # -- observability -------------------------------------------------

    def describe(self) -> dict:
        """The ``watches`` section of ``GET /stats``."""
        with self._lock:
            registered = len(self._watches)
            created = self._created
            deltas_seen = self._deltas_seen
            delta_checks = self.stats.delta_checks
            skipped = self.stats.watches_skipped
            reanswered = self.stats.watches_reanswered
        return {
            "registered": registered,
            "created": created,
            "deltas_seen": deltas_seen,
            "delta_checks": delta_checks,
            "reanswers_skipped": skipped,
            "reanswers_performed": reanswered,
        }
