"""Parsed-source model reprolint rules run against.

A :class:`Project` is a rooted snapshot of the repo's Python sources
— ``src/repro`` (the package), ``examples/`` and ``benchmarks/``
(scripts) — each parsed once into a :class:`ProjectFile` carrying the
AST, the raw lines (for suppression comments) and the dotted module
name.  ``tests/`` is deliberately out of scope: its lint fixtures
*exist to violate* the rules.

Rules never re-parse or re-walk imports themselves; the shared
extraction lives here:

* :meth:`ProjectFile.imports` — every ``import``/``from`` statement
  (module-level *and* deferred inside functions — layering contracts
  bind the import graph, not just import time) as
  :class:`ImportRecord` rows with relative imports resolved;
* :meth:`ProjectFile.alias_map` — local name → dotted origin
  (``np`` → ``numpy``, ``shared_memory`` →
  ``multiprocessing.shared_memory``), which
  :func:`resolve_call_target` uses to turn an attribute-chain call
  like ``np.random.default_rng(...)`` into the canonical dotted name
  rules match on;
* :func:`walk_functions` — (node, enclosing ``FunctionDef``) pairs
  for rules that scope findings to the surrounding function.

Everything here is stdlib-only (``ast`` + ``pathlib``): the linter
adds no dependencies of its own — the only heavyweight import in a
lint run is the ``repro`` facade on the way in.
"""

from __future__ import annotations

import ast
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

__all__ = [
    "ImportRecord",
    "Project",
    "ProjectFile",
    "discover_root",
    "is_stdlib",
    "resolve_call_target",
    "walk_functions",
]

#: Directories scanned relative to the project root.  ``src/repro``
#: is the package; examples and benchmarks are leaf scripts that the
#: determinism and deprecation rules still apply to.
SCAN_DIRS = ("src/repro", "examples", "benchmarks")


def is_stdlib(module: str) -> bool:
    """True when ``module``'s top-level package ships with CPython."""
    top = module.partition(".")[0]
    return top in sys.stdlib_module_names or top == "__future__"


@dataclass(frozen=True)
class ImportRecord:
    """One imported target in one file.

    ``target`` is the dotted module the statement reaches
    (``from repro.core import mqp`` records ``repro.core``;
    each plain ``import a.b`` name records ``a.b``), ``names`` the
    bound names for ``from`` imports (empty otherwise), and
    ``deferred`` whether the statement sits inside a function body.
    """

    target: str
    names: tuple[str, ...]
    line: int
    col: int
    deferred: bool


@dataclass
class ProjectFile:
    """One parsed source file."""

    path: Path
    rel: str                      # root-relative, posix separators
    module: str | None            # dotted name for package files
    source: str
    tree: ast.AST
    lines: list[str] = field(default_factory=list)
    _imports: list[ImportRecord] | None = None
    _aliases: dict[str, str] | None = None

    @property
    def package_segment(self) -> str | None:
        """The layer key: first package segment under ``repro``.

        ``repro.service.server`` → ``"service"``; single-module
        layers map to themselves (``repro.cli`` → ``"cli"``); the
        facade ``repro`` itself → ``"repro"``.  ``None`` for
        non-package files (examples, benchmarks).
        """
        if self.module is None or self.module.split(".")[0] != "repro":
            return None
        parts = self.module.split(".")
        return parts[1] if len(parts) > 1 else "repro"

    def imports(self) -> list[ImportRecord]:
        if self._imports is None:
            self._imports = list(_extract_imports(self))
        return self._imports

    def alias_map(self) -> dict[str, str]:
        """Local binding → dotted origin, for call-target resolution.

        ``import numpy as np`` → ``{"np": "numpy"}``; ``import a.b``
        binds ``a`` → ``a``; ``from m import x as y`` →
        ``{"y": "m.x"}``.  Later bindings win, matching runtime.
        """
        if self._aliases is None:
            aliases: dict[str, str] = {}
            for node in ast.walk(self.tree):
                if isinstance(node, ast.Import):
                    for name in node.names:
                        if name.asname:
                            aliases[name.asname] = name.name
                        else:
                            top = name.name.partition(".")[0]
                            aliases[top] = top
                elif isinstance(node, ast.ImportFrom):
                    base = _from_target(self, node)
                    for name in node.names:
                        if name.name == "*":
                            continue
                        bound = name.asname or name.name
                        aliases[bound] = f"{base}.{name.name}"
            self._aliases = aliases
        return self._aliases


def _module_name(rel_posix: str) -> str | None:
    """Dotted module name for package files under ``src/``."""
    if not rel_posix.startswith("src/"):
        return None
    parts = rel_posix[len("src/"):].removesuffix(".py").split("/")
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _from_target(file: ProjectFile, node: ast.ImportFrom) -> str:
    """The dotted module a ``from … import`` statement targets, with
    relative levels resolved against the file's own module."""
    if not node.level:
        return node.module or ""
    base = (file.module or "").split(".")
    # ``from . import x`` in a module drops 1 trailing part; in a
    # package __init__ the module name already names the package.
    if not file.rel.endswith("__init__.py"):
        base = base[:-1]
    drop = node.level - 1
    if drop:
        base = base[:-drop] if drop < len(base) else []
    if node.module:
        base = base + node.module.split(".")
    return ".".join(base)


def _extract_imports(file: ProjectFile) -> Iterator[ImportRecord]:
    for node, func in walk_functions(file.tree):
        deferred = func is not None
        if isinstance(node, ast.Import):
            for name in node.names:
                yield ImportRecord(target=name.name, names=(),
                                   line=node.lineno,
                                   col=node.col_offset,
                                   deferred=deferred)
        elif isinstance(node, ast.ImportFrom):
            yield ImportRecord(
                target=_from_target(file, node),
                names=tuple(n.name for n in node.names),
                line=node.lineno, col=node.col_offset,
                deferred=deferred)


def walk_functions(tree: ast.AST,
                   ) -> Iterator[tuple[ast.AST, ast.AST | None]]:
    """Yield ``(node, enclosing_function)`` for every node.

    ``enclosing_function`` is the innermost ``FunctionDef`` /
    ``AsyncFunctionDef`` containing the node, or ``None`` at module
    or class level — the scope rules use to decide questions like
    "is this ``object.__setattr__`` inside ``__post_init__``?".
    """
    def visit(node: ast.AST, func: ast.AST | None):
        yield node, func
        inner = (node if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef)) else func)
        for child in ast.iter_child_nodes(node):
            yield from visit(child, inner)

    yield from visit(tree, None)


def resolve_call_target(node: ast.expr,
                        aliases: dict[str, str]) -> str | None:
    """Canonical dotted name of a ``Name``/``Attribute`` chain.

    ``np.random.default_rng`` with ``np → numpy`` resolves to
    ``"numpy.random.default_rng"``; a chain rooted in anything other
    than a plain name (a call result, a subscript) resolves to
    ``None`` — rules only match statically-known targets.
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(aliases.get(node.id, node.id))
    return ".".join(reversed(parts))


class Project:
    """All scanned files of one repo checkout, parsed once."""

    def __init__(self, root: Path):
        self.root = Path(root).resolve()
        self.files: list[ProjectFile] = []
        self._by_rel: dict[str, ProjectFile] = {}
        for scan in SCAN_DIRS:
            base = self.root / scan
            if not base.is_dir():
                continue
            for path in sorted(base.rglob("*.py")):
                rel = path.relative_to(self.root).as_posix()
                source = path.read_text(encoding="utf-8")
                try:
                    tree = ast.parse(source, filename=str(path))
                except SyntaxError as exc:
                    raise ValueError(
                        f"cannot lint {rel}: {exc}") from exc
                file = ProjectFile(
                    path=path, rel=rel, module=_module_name(rel),
                    source=source, tree=tree,
                    lines=source.splitlines())
                self.files.append(file)
                self._by_rel[rel] = file

    def get(self, rel: str) -> ProjectFile | None:
        return self._by_rel.get(rel)

    def package_files(self) -> list[ProjectFile]:
        """Files that belong to the ``repro`` package."""
        return [f for f in self.files if f.module is not None]


def discover_root(explicit: str | Path | None = None) -> Path:
    """Locate the repo root (the directory holding ``src/repro``).

    Tries, in order: the explicit argument, the working directory and
    its ancestors, then the installed package's own location (a
    ``src/`` layout checkout).  Raises ``ValueError`` when nothing
    matches — the CLI turns that into exit code 2.
    """
    def is_root(path: Path) -> bool:
        return (path / "src" / "repro" / "__init__.py").is_file()

    if explicit is not None:
        root = Path(explicit).resolve()
        if not is_root(root):
            raise ValueError(f"{root} does not look like a repo root "
                             f"(no src/repro package)")
        return root
    for candidate in [Path.cwd(), *Path.cwd().parents]:
        if is_root(candidate):
            return candidate
    package_dir = Path(__file__).resolve().parent.parent   # src/repro
    candidate = package_dir.parent.parent                  # repo root
    if is_root(candidate):
        return candidate
    raise ValueError(
        "cannot locate the repo root: pass --root (a directory "
        "containing src/repro)")
