"""Frozen-value discipline: protocol objects and context arrays are
immutable everywhere except their constructors.

The whole snapshot architecture (PRs 4 and 6) rests on two
conventions Python cannot enforce at runtime:

* ``FROZEN-SETATTR`` — frozen dataclasses (``Question``, ``Answer``,
  ``Budget``, …) are only writable through ``object.__setattr__``,
  which their own constructors legitimately use to install validated
  values.  The same call *outside* a constructor is a mutation of a
  value other code already hashed, cached or shipped over a pipe.
* ``CTX-MUTATE`` — arrays handed out by ``DatasetContext``
  (``points``, ``product_ids``) are shared across threads, cached
  partitions and zero-copy shm views; writing into them corrupts
  every reader at once.  The arrays are marked read-only at
  construction, so this rule also bans re-enabling writability with
  ``setflags(write=True)`` — the one way around the runtime guard.
"""

from __future__ import annotations

import ast

from repro.analysis.framework import Finding, register_rule
from repro.analysis.project import Project, walk_functions

#: Methods where ``object.__setattr__`` is the sanctioned idiom:
#: construction, unpickling and copying — the places a frozen value
#: does not yet (or no longer) have observers.
_CONSTRUCTOR_METHODS = frozenset({
    "__init__", "__post_init__", "__new__",
    "__setstate__", "__reduce__", "__reduce_ex__",
    "__copy__", "__deepcopy__",
})

#: Context-owned array attributes that must never be written through.
_CONTEXT_ARRAYS = frozenset({"points", "product_ids"})


@register_rule(
    "FROZEN-SETATTR",
    summary="object.__setattr__ only inside constructors of frozen "
            "types",
    contract="Question/Answer/Budget are hashed, cached and piped "
             "(PRs 3-6); mutating one after construction corrupts "
             "caches and worker IPC")
def check_frozen_setattr(project: Project):
    for file in project.files:
        for node, func in walk_functions(file.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "__setattr__"
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == "object"):
                continue
            where = getattr(func, "name", None)
            if where in _CONSTRUCTOR_METHODS:
                continue
            yield Finding(
                rule="FROZEN-SETATTR", path=file.rel,
                line=node.lineno, col=node.col_offset,
                message=(f"object.__setattr__ outside a constructor "
                         f"(in {where or 'module scope'}): frozen "
                         f"protocol values must not mutate after "
                         f"construction — build a new value with "
                         f"dataclasses.replace"))


def _names_context_array(node: ast.expr) -> str | None:
    """The attribute name if ``node`` is ``<expr>.points`` /
    ``<expr>.product_ids`` (possibly under subscripts)."""
    while isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Attribute) and \
            node.attr in _CONTEXT_ARRAYS:
        return node.attr
    return None


@register_rule(
    "CTX-MUTATE",
    summary="no in-place writes to context-owned arrays, no "
            "setflags(write=True)",
    contract="DatasetContext arrays back cached partitions and "
             "zero-copy shm views (PRs 1, 6); an in-place write "
             "corrupts every concurrent reader")
def check_context_mutation(project: Project):
    for file in project.files:
        for node in ast.walk(file.tree):
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = [t for t in node.targets
                           if isinstance(t, ast.Subscript)]
            elif isinstance(node, ast.AugAssign):
                targets = [node.target]
            for target in targets:
                name = _names_context_array(target)
                if name is not None:
                    yield Finding(
                        rule="CTX-MUTATE", path=file.rel,
                        line=node.lineno, col=node.col_offset,
                        message=(f"in-place write to a context "
                                 f"array (.{name}): snapshots are "
                                 f"immutable — go through "
                                 f"Catalogue.add/update/"
                                 f"remove_products"))
            if isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Attribute) and \
                    node.func.attr == "setflags" and \
                    _enables_write(node):
                yield Finding(
                    rule="CTX-MUTATE", path=file.rel,
                    line=node.lineno, col=node.col_offset,
                    message=("setflags(write=True): re-enabling "
                             "writability defeats the read-only "
                             "guard on shared snapshot arrays"))


def _enables_write(call: ast.Call) -> bool:
    if call.args and isinstance(call.args[0], ast.Constant) and \
            call.args[0].value is True:
        return True
    return any(kw.arg == "write"
               and isinstance(kw.value, ast.Constant)
               and kw.value.value is True
               for kw in call.keywords)
