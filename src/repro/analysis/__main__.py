"""``python -m repro.analysis`` — standalone reprolint entry point
for environments that bypass the ``wqrtq`` console script (CI)."""

from repro.analysis.runner import main

if __name__ == "__main__":
    raise SystemExit(main())
