"""Resource-lifecycle rules: shared memory, locks and threads.

PR 6's multi-process tier made three leak classes possible that no
unit test reliably reproduces (they need a crash, a signal, or an
unlucky interleaving to bite):

* ``SHM-LIFECYCLE`` — a ``SharedMemory(create=True)`` segment that
  never reaches the owner-side sweep registry survives its process
  and strands ``/dev/shm`` (the CI smoke test can only catch the
  happy path).  Creation is therefore confined to
  ``engine/shm.py``, inside a function that records the segment in
  the ``_OWNED`` registry swept at exit.
* ``LOCK-WITH`` — a bare ``.acquire()`` orphans the lock on any
  exception between it and the matching ``release()``; ``with``
  is the only acquisition idiom.
* ``THREAD-LIFECYCLE`` — a non-daemon thread that nobody joins turns
  SIGTERM drain (PR 5's graceful shutdown) into a hang.  Threads are
  either daemons or joined in their creating scope.
"""

from __future__ import annotations

import ast

from repro.analysis.framework import Finding, register_rule
from repro.analysis.project import (
    Project,
    resolve_call_target,
    walk_functions,
)

#: The one module allowed to create shared-memory segments: it owns
#: the sweep registry (``_OWNED``) that ``atexit``/``server_close``
#: drain.
_SHM_OWNER_MODULE = "repro.engine.shm"
_SHM_REGISTRY_NAME = "_OWNED"

_THREAD_FACTORIES = frozenset({
    "threading.Thread", "threading.Timer",
})


def _is_shared_memory_call(target: str | None) -> bool:
    return target is not None and (
        target == "multiprocessing.shared_memory.SharedMemory"
        or target.endswith("shared_memory.SharedMemory")
        or target == "SharedMemory")


def _creates_segment(call: ast.Call) -> bool:
    for keyword in call.keywords:
        if keyword.arg == "create" and \
                isinstance(keyword.value, ast.Constant) and \
                keyword.value.value is True:
            return True
    return False


@register_rule(
    "SHM-LIFECYCLE",
    summary="SharedMemory(create=True) only in engine/shm.py, "
            "flowing into the _OWNED sweep registry",
    contract="every exported segment must be reachable by the "
             "atexit/server_close sweep (PR 6) or /dev/shm leaks "
             "on crash and SIGTERM paths")
def check_shm(project: Project):
    for file in project.files:
        aliases = file.alias_map()
        for node, func in walk_functions(file.tree):
            if not isinstance(node, ast.Call):
                continue
            target = resolve_call_target(node.func, aliases)
            if not (_is_shared_memory_call(target)
                    and _creates_segment(node)):
                continue
            if file.module != _SHM_OWNER_MODULE:
                yield Finding(
                    rule="SHM-LIFECYCLE", path=file.rel,
                    line=node.lineno, col=node.col_offset,
                    message=("SharedMemory(create=True) outside "
                             "engine/shm.py: segments must be "
                             "created by the owner module so the "
                             "exit sweep can unlink them"))
            elif func is None or not _references(
                    func, _SHM_REGISTRY_NAME):
                yield Finding(
                    rule="SHM-LIFECYCLE", path=file.rel,
                    line=node.lineno, col=node.col_offset,
                    message=(f"SharedMemory(create=True) in a "
                             f"function that never records the "
                             f"segment in {_SHM_REGISTRY_NAME}: "
                             f"the exit sweep cannot find it"))


def _references(scope: ast.AST, name: str) -> bool:
    return any(isinstance(node, ast.Name) and node.id == name
               for node in ast.walk(scope))


@register_rule(
    "LOCK-WITH",
    summary="locks are acquired with `with`, never bare .acquire()",
    contract="an exception between acquire() and release() deadlocks "
             "every handler thread behind the orphaned lock")
def check_lock_with(project: Project):
    for file in project.files:
        for node in ast.walk(file.tree):
            if isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Attribute) and \
                    node.func.attr in ("acquire", "release"):
                yield Finding(
                    rule="LOCK-WITH", path=file.rel,
                    line=node.lineno, col=node.col_offset,
                    message=(f"bare .{node.func.attr}(): acquire "
                             f"locks with a `with` block so every "
                             f"exit path releases"))


@register_rule(
    "THREAD-LIFECYCLE",
    summary="threads are daemonized or joined in their creating "
            "scope",
    contract="graceful drain (PR 5) joins handler threads on "
             "shutdown; a forgotten non-daemon thread turns SIGTERM "
             "into a hang")
def check_threads(project: Project):
    for file in project.files:
        aliases = file.alias_map()
        for node, func in walk_functions(file.tree):
            if not isinstance(node, ast.Call):
                continue
            target = resolve_call_target(node.func, aliases)
            if target not in _THREAD_FACTORIES:
                continue
            if any(kw.arg == "daemon"
                   and isinstance(kw.value, ast.Constant)
                   and kw.value.value is True
                   for kw in node.keywords):
                continue
            scope = func if func is not None else file.tree
            if _calls_join(scope):
                continue
            yield Finding(
                rule="THREAD-LIFECYCLE", path=file.rel,
                line=node.lineno, col=node.col_offset,
                message=(f"{target.rpartition('.')[2]} created "
                         f"without daemon=True and never joined in "
                         f"this scope: it will outlive shutdown — "
                         f"daemonize it or join it"))


def _calls_join(scope: ast.AST) -> bool:
    return any(isinstance(node, ast.Call)
               and isinstance(node.func, ast.Attribute)
               and node.func.attr == "join"
               and not isinstance(node.func.value, ast.Constant)
               for node in ast.walk(scope))
