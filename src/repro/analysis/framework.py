"""Rule framework for *reprolint* — the repo's invariant checker.

The analysis subsystem mirrors the shape of
:mod:`repro.core.registry`: rules are plain functions made
addressable through a ``@register_rule`` decorator, and every front
door (the ``wqrtq lint`` CLI, the test harness, CI) dispatches
through the same registry — adding a rule means writing one function,
not touching the runner.

A rule is a callable ``fn(project) -> iterable[Finding]`` over a
parsed :class:`~repro.analysis.project.Project`.  The runner
(:func:`run_rules`) owns everything rules should not re-implement:

* **Suppressions** — a finding whose source line carries
  ``# reprolint: disable=RULE-ID`` (comma-separated ids, or ``all``)
  is dropped and counted, so deliberate exceptions are visible in the
  report instead of silently configured away.  Project-level findings
  (line 0) cannot be suppressed — they describe the repo, not a line.
* **Ordering** — findings sort by ``(path, line, rule)`` so output is
  stable across dict-ordering and rule-registration changes.
* **Rendering** — one human formatter (``path:line:col: RULE: msg``)
  and one JSON formatter share the runner's counts, so the two output
  modes can never disagree about what was found.

Exit codes are fixed here (:data:`EXIT_CLEAN` / :data:`EXIT_FINDINGS`
/ :data:`EXIT_USAGE`) because CI keys off them.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.analysis.project import Project

__all__ = [
    "EXIT_CLEAN",
    "EXIT_FINDINGS",
    "EXIT_USAGE",
    "Finding",
    "LintReport",
    "RuleSpec",
    "get_rule",
    "register_rule",
    "render_human",
    "render_json",
    "rule_ids",
    "run_rules",
]

#: ``wqrtq lint`` exit codes — stable, CI scripts key off them.
EXIT_CLEAN = 0      # no findings
EXIT_FINDINGS = 1   # at least one unsuppressed finding
EXIT_USAGE = 2      # bad invocation / unresolvable project root


@dataclass(frozen=True)
class Finding:
    """One rule violation at one location.

    ``path`` is root-relative (posix separators); ``line``/``col``
    are 1-based/0-based as in :mod:`ast`.  ``line == 0`` marks a
    project-level finding (e.g. a missing schema lock) that has no
    source line to suppress on.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.rule}: {self.message}")

    def to_dict(self) -> dict:
        return {"rule": self.rule, "path": self.path,
                "line": self.line, "col": self.col,
                "message": self.message}


@dataclass(frozen=True)
class RuleSpec:
    """One registered rule: id, one-line summary, the contract it
    guards (shown by ``wqrtq lint --list-rules``) and the checker."""

    id: str
    summary: str
    contract: str
    fn: Callable[[Project], Iterable[Finding]]

    def run(self, project: Project) -> list[Finding]:
        return list(self.fn(project))

    def describe(self) -> dict:
        return {"id": self.id, "summary": self.summary,
                "contract": self.contract}


#: Registration order is preserved — it is the presentation order of
#: ``--list-rules`` and of the DESIGN.md invariant table.
_RULES: dict[str, RuleSpec] = {}


def register_rule(rule_id: str, *, summary: str, contract: str = ""):
    """Decorator registering a checker under ``rule_id``.

    Raises ``ValueError`` for empty or duplicate ids — shadowing an
    existing rule silently would change what CI enforces.
    """
    key = str(rule_id).strip().upper()

    def decorate(fn):
        if not key:
            raise ValueError("rule id must be non-empty")
        if key in _RULES:
            raise ValueError(f"rule {key!r} is already registered")
        _RULES[key] = RuleSpec(id=key, summary=summary,
                               contract=contract, fn=fn)
        return fn

    return decorate


def rule_ids() -> tuple[str, ...]:
    """Registered rule ids, in registration order."""
    return tuple(_RULES)


def get_rule(rule_id: str) -> RuleSpec:
    """Look up a rule; the error message lists the registered ids."""
    key = str(rule_id).strip().upper()
    spec = _RULES.get(key)
    if spec is None:
        known = ", ".join(rule_ids()) or "<none>"
        raise ValueError(f"unknown rule: {rule_id!r} "
                         f"(registered: {known})")
    return spec


# ---------------------------------------------------------------------
# Suppressions
# ---------------------------------------------------------------------

_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*disable=([A-Za-z0-9_\-, ]+)")


def suppressed_ids(line: str) -> frozenset[str]:
    """Rule ids a source line suppresses (``ALL`` disables every
    rule on the line); empty when the line carries no directive."""
    match = _SUPPRESS_RE.search(line)
    if not match:
        return frozenset()
    return frozenset(token.strip().upper()
                     for token in match.group(1).split(",")
                     if token.strip())


def _is_suppressed(finding: Finding, project: Project) -> bool:
    if finding.line <= 0:
        return False
    file = project.get(finding.path)
    if file is None or finding.line > len(file.lines):
        return False
    ids = suppressed_ids(file.lines[finding.line - 1])
    return bool(ids) and (finding.rule in ids or "ALL" in ids)


# ---------------------------------------------------------------------
# Runner and renderers
# ---------------------------------------------------------------------


@dataclass(frozen=True)
class LintReport:
    """The result of one lint run — what both renderers consume."""

    findings: tuple[Finding, ...]
    suppressed: int
    rules: tuple[str, ...]
    files: int

    @property
    def clean(self) -> bool:
        return not self.findings

    @property
    def exit_code(self) -> int:
        return EXIT_CLEAN if self.clean else EXIT_FINDINGS


def run_rules(project: Project,
              rules: Iterable[str] | None = None) -> LintReport:
    """Run ``rules`` (default: all registered) over ``project``.

    Unknown ids raise ``ValueError`` (listing the registry) before
    any rule runs — a typo'd ``--rule`` must not report "clean".
    """
    specs = ([get_rule(rule_id) for rule_id in rules]
             if rules is not None else
             [get_rule(rule_id) for rule_id in rule_ids()])
    raw: list[Finding] = []
    for spec in specs:
        raw.extend(spec.run(project))
    kept = [f for f in raw if not _is_suppressed(f, project)]
    kept.sort(key=lambda f: (f.path, f.line, f.rule, f.col))
    return LintReport(findings=tuple(kept),
                      suppressed=len(raw) - len(kept),
                      rules=tuple(spec.id for spec in specs),
                      files=len(project.files))


def render_human(report: LintReport) -> str:
    lines = [finding.render() for finding in report.findings]
    noun = "finding" if len(report.findings) == 1 else "findings"
    tail = (f"reprolint: {len(report.findings)} {noun}"
            if report.findings else "reprolint: clean")
    tail += (f" ({report.files} files, {len(report.rules)} rules"
             + (f", {report.suppressed} suppressed" if report.suppressed
                else "") + ")")
    lines.append(tail)
    return "\n".join(lines)


def render_json(report: LintReport) -> dict:
    """JSON-safe report (the ``wqrtq lint --json`` payload)."""
    return {
        "clean": report.clean,
        "counts": {"findings": len(report.findings),
                   "suppressed": report.suppressed,
                   "files": report.files},
        "rules": list(report.rules),
        "findings": [finding.to_dict()
                     for finding in report.findings],
    }
