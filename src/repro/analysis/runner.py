"""CLI glue for ``wqrtq lint`` — argument handling, root discovery
and rendering.

Kept separate from :mod:`repro.analysis.framework` so the rule
engine stays importable (and testable) without argparse in the
frame; :mod:`repro.cli` delegates its ``lint`` subcommand here, and
``python -m repro.analysis`` is a thin wrapper for environments that
bypass the ``wqrtq`` entry point (the CI lint job).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.analysis.framework import (
    EXIT_CLEAN,
    EXIT_USAGE,
    get_rule,
    render_human,
    render_json,
    rule_ids,
    run_rules,
)
from repro.analysis.project import Project, discover_root
from repro.analysis.rules_schema import update_lock

__all__ = ["add_lint_arguments", "lint_command", "main"]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the ``lint`` options to an (sub)parser."""
    parser.add_argument(
        "--root", default=None, metavar="DIR",
        help="repo root to lint (default: auto-discover from the "
             "working directory)")
    parser.add_argument(
        "--rule", action="append", default=None, metavar="ID",
        help="run only this rule id (repeatable; default: all)")
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the machine-readable report instead of "
             "path:line:col lines")
    parser.add_argument(
        "--update-lock", action="store_true",
        help="regenerate schema_lock.json from the current protocol "
             "module, then lint")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list registered rule ids with the contract each "
             "guards, then exit")


def lint_command(args: argparse.Namespace,
                 out=None, err=None) -> int:
    """Execute a parsed ``lint`` invocation; returns the exit code.

    ``out``/``err`` default to the *current* ``sys.stdout``/``stderr``
    at call time (not import time), so stream redirection — pytest's
    capsys, ``contextlib.redirect_stdout`` — is honoured.
    """
    out = sys.stdout if out is None else out
    err = sys.stderr if err is None else err
    if args.list_rules:
        payload = [get_rule(rule_id).describe()
                   for rule_id in rule_ids()]
        if args.as_json:
            print(json.dumps(payload, indent=2), file=out)
        else:
            for spec in payload:
                print(f"{spec['id']}: {spec['summary']}", file=out)
                if spec["contract"]:
                    print(f"    guards: {spec['contract']}",
                          file=out)
        return EXIT_CLEAN

    try:
        root = discover_root(args.root)
        project = Project(root)
    except ValueError as exc:
        print(f"wqrtq lint: {exc}", file=err)
        return EXIT_USAGE

    if args.update_lock:
        try:
            path = update_lock(project)
        except ValueError as exc:
            print(f"wqrtq lint: --update-lock failed: {exc}",
                  file=err)
            return EXIT_USAGE
        print(f"wrote {path.relative_to(project.root).as_posix()}",
              file=err)

    try:
        report = run_rules(project, rules=args.rule)
    except ValueError as exc:           # unknown --rule id
        print(f"wqrtq lint: {exc}", file=err)
        return EXIT_USAGE

    if args.as_json:
        print(json.dumps(render_json(report), indent=2), file=out)
    else:
        print(render_human(report), file=out)
    return report.exit_code


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="wqrtq lint",
        description="reprolint: check the repo's architectural "
                    "invariants (layering, schema lock, "
                    "determinism, resource lifecycle, frozen-value "
                    "discipline)")
    add_lint_arguments(parser)
    return lint_command(parser.parse_args(argv))


if __name__ == "__main__":
    raise SystemExit(main())
