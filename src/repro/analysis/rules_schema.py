"""SCHEMA-LOCK: protocol dataclass fields are frozen under
``schema_lock.json`` until ``SCHEMA_VERSION`` is bumped.

The wire schema (:mod:`repro.core.protocol`) is consumed by clients
that negotiate by version number (PRs 3-5): a field added to
``Answer`` without bumping ``SCHEMA_VERSION`` ships payloads that a
same-version peer decodes differently — the one bug class the
version ladder exists to prevent, and one no test catches because
both sides of the test suite share the mutated code.

The committed ``schema_lock.json`` (repo root) records, per locked
dataclass, the field names at the version it was generated for.  The
rule compares the *parsed* protocol source against the lock:

* fields changed, ``SCHEMA_VERSION`` unchanged → the violation this
  rule exists for: bump the version, extend
  ``SUPPORTED_SCHEMA_VERSIONS`` and the server's negotiation ladder,
  then regenerate the lock;
* fields changed *and* the version bumped → the lock is stale;
  regenerate it (``wqrtq lint --update-lock``) so the next drift is
  caught against the new baseline;
* lock missing / unreadable → a project-level finding, because an
  absent baseline silently disables the check.

``wqrtq lint --update-lock`` writes the lock from the current
source; CI regenerates and ``git diff --exit-code``\\ s it, so a
schema change cannot merge without an explicit, reviewed lock
update riding alongside.
"""

from __future__ import annotations

import ast
import json
from pathlib import Path

from repro.analysis.framework import Finding, register_rule
from repro.analysis.project import Project

__all__ = ["LOCKED_CLASSES", "extract_schema", "update_lock"]

#: Root-relative locations of the schema source and its lock.
PROTOCOL_REL = "src/repro/core/protocol.py"
LOCK_REL = "schema_lock.json"

#: Wire dataclasses whose field sets the lock freezes.
LOCKED_CLASSES = ("Question", "Answer", "Budget", "Quality",
                  "ErrorInfo", "WatchEvent", "CostEstimate", "Plan",
                  "AdmissionDecision")

_REGEN_HINT = "regenerate with: wqrtq lint --update-lock"


def extract_schema(tree: ast.AST) -> dict:
    """Parse the protocol module into the lock's shape:
    ``{"schema_version": int | None, "classes": {name: [fields]}}``.

    Fields are the annotated assignments in each locked class body —
    exactly what ``@dataclass`` turns into wire fields; unannotated
    class attributes (e.g. ``Question._FIELDS``) and underscored
    names are not schema.
    """
    classes: dict[str, list[str]] = {}
    version: int | None = None
    lines: dict[str, int] = {}
    for node in ast.iter_child_nodes(tree):
        if isinstance(node, ast.ClassDef) and \
                node.name in LOCKED_CLASSES:
            fields = [stmt.target.id for stmt in node.body
                      if isinstance(stmt, ast.AnnAssign)
                      and isinstance(stmt.target, ast.Name)
                      and not stmt.target.id.startswith("_")]
            classes[node.name] = fields
            lines[node.name] = node.lineno
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and \
                        target.id == "SCHEMA_VERSION" and \
                        isinstance(node.value, ast.Constant) and \
                        isinstance(node.value.value, int):
                    version = node.value.value
    return {"schema_version": version, "classes": classes,
            "_lines": lines}


def _current_schema(project: Project) -> tuple[dict | None, Finding | None]:
    file = project.get(PROTOCOL_REL)
    if file is None:
        return None, Finding(
            rule="SCHEMA-LOCK", path=PROTOCOL_REL, line=0, col=0,
            message="protocol module not found — cannot check the "
                    "schema lock")
    schema = extract_schema(file.tree)
    if schema["schema_version"] is None:
        return None, Finding(
            rule="SCHEMA-LOCK", path=PROTOCOL_REL, line=1, col=0,
            message="no literal SCHEMA_VERSION assignment found in "
                    "the protocol module")
    missing = [name for name in LOCKED_CLASSES
               if name not in schema["classes"]]
    if missing:
        return None, Finding(
            rule="SCHEMA-LOCK", path=PROTOCOL_REL, line=1, col=0,
            message=(f"locked dataclass(es) missing from the "
                     f"protocol module: {', '.join(missing)}"))
    return schema, None


def _lock_payload(schema: dict) -> dict:
    return {
        "comment": f"Schema lock for {PROTOCOL_REL} — do not edit "
                   f"by hand; {_REGEN_HINT}",
        "schema_version": schema["schema_version"],
        "classes": {name: list(schema["classes"][name])
                    for name in sorted(schema["classes"])},
    }


def update_lock(project: Project) -> Path:
    """Write ``schema_lock.json`` from the current protocol source.

    Raises ``ValueError`` when the protocol module cannot be parsed
    into a lock (the CLI reports it and exits 2).
    """
    schema, problem = _current_schema(project)
    if schema is None:
        raise ValueError(problem.message)
    path = project.root / LOCK_REL
    path.write_text(json.dumps(_lock_payload(schema), indent=2,
                               sort_keys=False) + "\n",
                    encoding="utf-8")
    return path


@register_rule(
    "SCHEMA-LOCK",
    summary="protocol dataclass fields match schema_lock.json at "
            "the locked SCHEMA_VERSION",
    contract="wire compatibility (PRs 3-5): a field change without "
             "a version bump ships payloads same-version peers "
             "decode differently")
def check_schema_lock(project: Project):
    schema, problem = _current_schema(project)
    if schema is None:
        yield problem
        return
    lock_path = project.root / LOCK_REL
    if not lock_path.is_file():
        yield Finding(
            rule="SCHEMA-LOCK", path=LOCK_REL, line=0, col=0,
            message=f"committed schema lock missing — {_REGEN_HINT}")
        return
    try:
        lock = json.loads(lock_path.read_text(encoding="utf-8"))
        locked_version = int(lock["schema_version"])
        locked_classes = {str(k): [str(f) for f in v]
                          for k, v in dict(lock["classes"]).items()}
    except (ValueError, KeyError, TypeError) as exc:
        yield Finding(
            rule="SCHEMA-LOCK", path=LOCK_REL, line=0, col=0,
            message=f"schema lock is unreadable ({exc}) — "
                    f"{_REGEN_HINT}")
        return

    version = schema["schema_version"]
    drifted = []
    for name in LOCKED_CLASSES:
        current = schema["classes"][name]
        locked = locked_classes.get(name)
        if locked is None or current != locked:
            drifted.append((name, locked, current))

    if drifted and version == locked_version:
        for name, locked, current in drifted:
            added = sorted(set(current) - set(locked or []))
            removed = sorted(set(locked or []) - set(current))
            detail = "; ".join(
                part for part in (
                    f"added: {', '.join(added)}" if added else "",
                    f"removed: {', '.join(removed)}" if removed
                    else "",
                    "reordered" if not added and not removed else "",
                ) if part)
            yield Finding(
                rule="SCHEMA-LOCK", path=PROTOCOL_REL,
                line=schema["_lines"].get(name, 1), col=0,
                message=(f"{name} fields changed ({detail}) without "
                         f"a SCHEMA_VERSION bump (still "
                         f"{version}): bump SCHEMA_VERSION, extend "
                         f"SUPPORTED_SCHEMA_VERSIONS and the "
                         f"server's negotiation ladder, then "
                         f"{_REGEN_HINT}"))
    elif drifted:
        names = ", ".join(name for name, _, _ in drifted)
        yield Finding(
            rule="SCHEMA-LOCK", path=LOCK_REL, line=0, col=0,
            message=(f"schema changed with a version bump "
                     f"({locked_version} → {version}: {names}) but "
                     f"the lock is stale — {_REGEN_HINT}"))
    elif version != locked_version:
        yield Finding(
            rule="SCHEMA-LOCK", path=LOCK_REL, line=0, col=0,
            message=(f"SCHEMA_VERSION is {version} but the lock "
                     f"records {locked_version} with identical "
                     f"fields — {_REGEN_HINT}"))
