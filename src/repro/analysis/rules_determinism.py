"""Determinism rules: no hidden randomness, no wall-clock in the
deterministic zone.

The anytime contract (PR 5) rests on two properties the type system
cannot see: refinement is *chunk-invariant* (refining to ``N`` total
samples in any chunk sequence equals the one-shot run at
``sample_size=N`` and the same seed) and penalties are *monotone*
across rounds.  Both break the moment an algorithm draws entropy
from anywhere but the caller's seeded generator, or branches on the
wall clock:

* ``DET-RNG`` — in every scanned file, randomness must flow through
  an explicitly seeded ``numpy.random.default_rng(seed)``; unseeded
  generators, the legacy global-state ``np.random.*`` functions and
  the stdlib ``random`` module are all hidden per-process state that
  makes chunked ≠ one-shot and worker ≠ session.
* ``DET-CLOCK`` — inside the deterministic zone (the stepper modules,
  the kernel set and ``topk/``), reading the clock is forbidden:
  deadline handling lives in the *executor*, which sits outside the
  zone precisely so the refinement math below it stays a pure
  function of (question, seed, snapshot).
"""

from __future__ import annotations

import ast

from repro.analysis.framework import Finding, register_rule
from repro.analysis.project import (
    Project,
    resolve_call_target,
)

#: Modules whose outputs must be pure functions of
#: (inputs, seed, snapshot): the three steppers and their sampling
#: substrate, the shared kernel set, and the whole top-k layer.
DETERMINISTIC_MODULES = frozenset({
    "repro.core.mqp",
    "repro.core.mwk",
    "repro.core.mqwk",
    "repro.core.sampling",
    "repro.core.incomparable",
    "repro.core.penalty",
    "repro.core.safe_region",
    "repro.engine.kernels",
    "repro.planner.model",
    "repro.planner.plan",
})

#: ``numpy.random`` attributes that are *not* hidden global state.
_SEEDABLE_RNG_API = frozenset({
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "Philox", "SFC64", "MT19937",
})

#: Clock reads the deterministic zone may never perform.
_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.process_time", "time.process_time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})


def _in_deterministic_zone(module: str | None) -> bool:
    if module is None:
        return False
    return (module in DETERMINISTIC_MODULES
            or module.startswith("repro.topk"))


def _is_unseeded(call: ast.Call) -> bool:
    """True when a ``default_rng`` call passes no seed (or ``None``)."""
    if call.keywords:
        return False
    if not call.args:
        return True
    return (len(call.args) == 1
            and isinstance(call.args[0], ast.Constant)
            and call.args[0].value is None)


@register_rule(
    "DET-RNG",
    summary="randomness flows only through seeded default_rng "
            "generators",
    contract="chunk-invariance and worker/session byte-identity "
             "(PRs 5-6) require every sample to derive from the "
             "caller's seed, never from process-global RNG state")
def check_rng(project: Project):
    for file in project.files:
        aliases = file.alias_map()
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.Call):
                continue
            target = resolve_call_target(node.func, aliases)
            if target is None:
                continue
            if target.endswith(".default_rng") or \
                    target == "numpy.random.default_rng":
                if _is_unseeded(node):
                    yield Finding(
                        rule="DET-RNG", path=file.rel,
                        line=node.lineno, col=node.col_offset,
                        message=("unseeded default_rng(): draws "
                                 "OS entropy, so reruns (and "
                                 "chunked refinement) cannot "
                                 "reproduce — pass an explicit "
                                 "seed"))
            elif target.startswith("numpy.random."):
                attr = target[len("numpy.random."):]
                if attr not in _SEEDABLE_RNG_API:
                    yield Finding(
                        rule="DET-RNG", path=file.rel,
                        line=node.lineno, col=node.col_offset,
                        message=(f"legacy global-state "
                                 f"numpy.random.{attr}(): mutates "
                                 f"hidden per-process state — use a "
                                 f"seeded default_rng generator"))
            elif target.startswith("random."):
                yield Finding(
                    rule="DET-RNG", path=file.rel,
                    line=node.lineno, col=node.col_offset,
                    message=(f"stdlib {target}(): per-process "
                             f"global RNG — use a seeded "
                             f"numpy default_rng generator"))
        # ``from random import shuffle`` smuggles the same state in
        # under a bare name; catch it at the import.
        for record in file.imports():
            if record.target == "random" or \
                    record.target.startswith("random."):
                yield Finding(
                    rule="DET-RNG", path=file.rel, line=record.line,
                    col=record.col,
                    message=("stdlib random module imported: "
                             "per-process global RNG — use seeded "
                             "numpy default_rng generators"))


@register_rule(
    "DET-CLOCK",
    summary="no wall-clock reads inside the deterministic zone "
            "(steppers, kernels, topk/)",
    contract="penalty monotonicity and chunked ≡ one-shot (PR 5) "
             "hold only if refinement never branches on time; "
             "deadlines belong to the executor above the zone")
def check_clock(project: Project):
    for file in project.package_files():
        if not _in_deterministic_zone(file.module):
            continue
        aliases = file.alias_map()
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.Call):
                continue
            target = resolve_call_target(node.func, aliases)
            if target in _CLOCK_CALLS:
                yield Finding(
                    rule="DET-CLOCK", path=file.rel,
                    line=node.lineno, col=node.col_offset,
                    message=(f"{target}() inside the deterministic "
                             f"zone: refinement must be a pure "
                             f"function of (question, seed, "
                             f"snapshot) — hoist timing into "
                             f"engine/executor.py"))
