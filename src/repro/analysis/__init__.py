"""reprolint — AST-based invariant checker for this repo.

The test suite proves behaviour; this package proves *structure*: the
architectural contracts PRs 1-6 established (layer separation, the
versioned wire schema, seeded determinism, resource lifecycles,
frozen-value discipline) hold as properties of the source tree, not
as conventions living in reviewers' heads.  ``wqrtq lint`` runs every
registered rule; see DESIGN.md §"Invariants & static analysis" for
the rule-by-rule contract table.

The package itself is stdlib-only (``ast`` + ``pathlib`` +
``argparse``), so the CI lint job stays cheap and gates the test
matrix.
"""

from repro.analysis.framework import (
    EXIT_CLEAN,
    EXIT_FINDINGS,
    EXIT_USAGE,
    Finding,
    LintReport,
    RuleSpec,
    get_rule,
    register_rule,
    render_human,
    render_json,
    rule_ids,
    run_rules,
)
from repro.analysis.project import Project, discover_root

# Importing a rule module registers its rules; the import order below
# is the registry order (and therefore --list-rules / DESIGN.md
# table order).
from repro.analysis import rules_layering as _rules_layering
from repro.analysis import rules_schema as _rules_schema
from repro.analysis import rules_determinism as _rules_determinism
from repro.analysis import rules_resources as _rules_resources
from repro.analysis import rules_frozen as _rules_frozen
from repro.analysis.rules_schema import extract_schema, update_lock
from repro.analysis.runner import lint_command, main

__all__ = [
    "EXIT_CLEAN",
    "EXIT_FINDINGS",
    "EXIT_USAGE",
    "Finding",
    "LintReport",
    "Project",
    "RuleSpec",
    "discover_root",
    "extract_schema",
    "get_rule",
    "lint_command",
    "main",
    "register_rule",
    "render_human",
    "render_json",
    "rule_ids",
    "run_rules",
    "update_lock",
]
