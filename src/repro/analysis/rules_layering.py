"""Layering rules: the DESIGN.md import matrix, service purity and
the deprecated-API quarantine.

These three rules guard the architecture PRs 1-6 built:

* the engine layer must stay importable without the service tier,
  substrates (geometry/index/qp/topk/rtopk) without either;
* ``service/`` is stdlib-only by design (PR 2) — the whole point of
  the layer is that a deployment can reason about it without numpy
  in the frame, and every array computation crosses into ``engine/``
  through a ``repro.*`` seam;
* the pre-schema entry points (``WQRTQ``, ``WhyNotBatch``,
  ``answer_one``, ``execute_batch``) were demoted to deprecation
  shims in PR 3 — nothing outside the shim modules and the public
  facade may import them, or the deprecation can never complete.
"""

from __future__ import annotations

from repro.analysis.framework import Finding, register_rule
from repro.analysis.project import Project, is_stdlib

__all__ = ["LAYER_MATRIX"]

#: Allowed cross-package import edges inside ``repro`` — the
#: DESIGN.md "Layering" diagram in machine-checkable form.  Keys and
#: values are first package segments (``repro.service.server`` →
#: ``service``); imports within one segment are always allowed, and
#: the ``repro`` facade (``__init__``) is unrestricted — it exists to
#: re-export everything.  A package missing from the matrix is itself
#: a finding: new subsystems must declare their layer in DESIGN.md.
LAYER_MATRIX: dict[str, frozenset[str]] = {
    "__main__": frozenset({"cli"}),
    "cli": frozenset({"analysis", "bench", "core", "data", "engine",
                      "planner", "rtopk", "service", "viz"}),
    "bench": frozenset({"core", "data", "engine", "geometry",
                        "topk"}),
    "service": frozenset({"core", "data", "engine", "planner"}),
    "core": frozenset({"data", "engine", "geometry", "index",
                       "planner", "qp", "rtopk", "topk"}),
    "planner": frozenset({"core"}),
    "data": frozenset({"core", "engine", "geometry"}),
    "engine": frozenset({"core", "geometry", "index"}),
    "geometry": frozenset({"engine"}),
    "index": frozenset(),
    "qp": frozenset(),
    "rtopk": frozenset({"engine", "geometry", "index", "topk"}),
    "topk": frozenset({"engine", "geometry", "index"}),
    "viz": frozenset(),
    "analysis": frozenset(),
    "_testsupport": frozenset(),
}

#: Deprecated pre-schema entry points (PR 3) and the shim module that
#: still defines each.
DEPRECATED_NAMES: dict[str, str] = {
    "WQRTQ": "repro.core.framework",
    "WhyNotBatch": "repro.core.batch",
    "answer_one": "repro.engine.executor",
    "execute_batch": "repro.engine.executor",
}

#: Modules allowed to import the deprecated names: the shims
#: themselves plus the back-compat facades that re-export them.
_SHIM_MODULES = frozenset({
    "repro", "repro.core", "repro.engine",
    "repro.core.framework", "repro.core.batch",
    "repro.engine.executor",
})


def _target_segment(target: str) -> str | None:
    parts = target.split(".")
    if parts[0] != "repro":
        return None
    return parts[1] if len(parts) > 1 else "repro"


@register_rule(
    "LAYERING",
    summary="cross-package imports must follow the DESIGN.md layer "
            "matrix",
    contract="engine/ serves every front door without depending on "
             "any of them; substrates stay leaf-importable "
             "(established by PR 1, extended by PRs 2-6)")
def check_layering(project: Project):
    for file in project.package_files():
        segment = file.package_segment
        if segment is None or segment == "repro":
            continue   # the facade re-exports everything by design
        allowed = LAYER_MATRIX.get(segment)
        if allowed is None:
            yield Finding(
                rule="LAYERING", path=file.rel, line=1, col=0,
                message=(f"package segment {segment!r} is not in the "
                         f"layer matrix — declare its allowed "
                         f"imports in DESIGN.md and "
                         f"repro.analysis.rules_layering"))
            continue
        for record in file.imports():
            dest = _target_segment(record.target)
            if dest is None or dest == segment:
                continue
            if dest == "repro":
                yield Finding(
                    rule="LAYERING", path=file.rel, line=record.line,
                    col=record.col,
                    message=(f"{file.module} imports the repro "
                             f"facade; import the defining module "
                             f"instead (facade imports create "
                             f"cycles)"))
            elif dest not in allowed:
                yield Finding(
                    rule="LAYERING", path=file.rel, line=record.line,
                    col=record.col,
                    message=(f"{segment}/ must not import {dest}/ "
                             f"({record.target}): edge is outside "
                             f"the DESIGN.md layer matrix"))


@register_rule(
    "SERVICE-PURITY",
    summary="service/ imports only the stdlib and repro.*",
    contract="the serving tier is stdlib-only and numpy-free "
             "(PR 2); array work crosses into engine/ through a "
             "repro seam")
def check_service_purity(project: Project):
    for file in project.package_files():
        if file.package_segment != "service":
            continue
        for record in file.imports():
            top = record.target.partition(".")[0]
            if top == "repro" or is_stdlib(record.target):
                continue
            detail = ("service/ is numpy-free by contract"
                      if top == "numpy" else
                      "service/ is stdlib-only by contract")
            yield Finding(
                rule="SERVICE-PURITY", path=file.rel,
                line=record.line, col=record.col,
                message=(f"service module imports {record.target!r}: "
                         f"{detail} — move the computation below a "
                         f"repro.* seam"))


@register_rule(
    "DEPRECATED-API",
    summary="deprecated names (WQRTQ, WhyNotBatch, answer_one, "
            "execute_batch) import only inside their shims",
    contract="the pre-schema entry points are DeprecationWarning "
             "shims (PR 3); new call sites would re-entrench the "
             "API the typed protocol replaced")
def check_deprecated_api(project: Project):
    for file in project.files:
        if file.module in _SHIM_MODULES:
            continue
        for record in file.imports():
            if not record.target.startswith("repro"):
                continue
            for name in record.names:
                shim = DEPRECATED_NAMES.get(name)
                if shim is None:
                    continue
                yield Finding(
                    rule="DEPRECATED-API", path=file.rel,
                    line=record.line, col=record.col,
                    message=(f"import of deprecated {name!r} "
                             f"(shimmed in {shim}); use the typed "
                             f"Question/Answer API via "
                             f"repro.core.session.Session"))
