"""``wqrtq`` — command-line interface to the WQRTQ framework.

Subcommands
-----------

``query``
    Run a reverse top-k query on a generated dataset and show the
    result plus which panel members are missing.
``refine``
    Answer a why-not question with MQP / MWK / MQWK on a generated
    workload (the same workloads the benchmark harness uses).
``batch``
    Answer a whole batch of why-not questions against one catalogue
    through one :class:`~repro.core.session.Session` (optionally in
    parallel with ``--workers``), and report cache effectiveness.
    ``--json`` emits the versioned ``Answer.to_dict()`` payloads —
    byte-identical to what ``Session.ask_batch`` and the HTTP
    ``/batch`` endpoint produce for the same questions.
    ``--sample-budget`` / ``--deadline-ms`` / ``--tolerance`` attach
    an anytime :class:`~repro.core.protocol.Budget` to every
    question; ``--submit`` runs the workload as an async job on a
    running daemon and ``--watch`` follows a job's convergence.
``serve``
    Run the long-lived JSON-over-HTTP daemon
    (:mod:`repro.service`): named catalogues — generated and/or
    loaded from ``.npz`` archives — each behind one warmed,
    LRU-bounded context, answering ``/answer`` and ``/batch``
    requests until interrupted.  ``--workers N`` executes in ``N``
    worker processes attached to zero-copy shared-memory snapshots;
    ``--shards M`` additionally scatter-gathers each shardable
    question over ``M`` catalogue row ranges.
``explain``
    Ask a *running* daemon for the cost-based execution plan of a
    why-not question — without executing it.  Prints the
    Impala-style plan tree (:mod:`repro.planner`): execution path
    (session / worker pool / scatter-gather), chunk schedule,
    estimated latency and peak memory, and whether the estimate is
    backed by calibrated timings or the analytic prior.
``watch``
    Register a standing why-not question on a *running* daemon and
    stream its refreshed answers: every catalogue mutation that can
    affect the answer (see :mod:`repro.engine.delta`) re-answers it
    and pushes the result; provably unaffected mutations are
    skipped.
``catalogue``
    Inspect or mutate a catalogue on a *running* ``wqrtq serve``
    daemon: ``show`` (version, size, mutation counters), ``add`` /
    ``update`` / ``remove`` products.  Mutations advance the
    catalogue's version live — no restart, no reload.
``bench``
    Regenerate a figure of the paper (delegates to
    :mod:`repro.bench`).
``lint``
    Run *reprolint* (:mod:`repro.analysis`) — the AST-based checker
    that enforces the repo's architectural invariants: the DESIGN.md
    layer matrix, the ``schema_lock.json`` wire-schema freeze,
    seeded determinism, resource lifecycles and frozen-value
    discipline.  ``--json`` emits a machine-readable report,
    ``--rule ID`` narrows to one rule, ``--update-lock`` regenerates
    the schema lock, ``--list-rules`` documents every contract.

Every subcommand builds one ``DatasetContext`` per catalogue and runs
all its queries through it, so the R-tree and ``FindIncom`` partitions
are paid once.  Algorithm choices are enumerated from the
:mod:`~repro.core.registry` algorithm registry — a newly registered
refinement shows up in every subcommand without CLI changes.

Examples
--------
::

    wqrtq query --dataset independent -n 5000 -d 3 -k 10
    wqrtq refine --algorithm mqwk --rank 101 --sample-size 400
    wqrtq batch --questions 20 --products 5 --workers 4
    wqrtq batch --questions 50 --deadline-ms 50 --algorithm mwk
    wqrtq batch --questions 50 --submit --watch --port 8977
    wqrtq serve --port 8977 -n 10000 --max-partitions 1024
    wqrtq serve --port 0 --load laptops=data/laptops.npz
    wqrtq serve --port 0 -n 100000 --workers 4 --shards 4
    wqrtq serve --port 0 --max-concurrent 4 --tenant-rate 20
    wqrtq explain laptops --q '[0.4, 0.1, 0.2]' -k 10 \\
        --why-not '[[0.3, 0.3, 0.4]]' --port 8977
    wqrtq watch laptops --q '[0.4, 0.1, 0.2]' -k 10 \\
        --why-not '[[0.3, 0.3, 0.4]]' --port 8977
    wqrtq catalogue show laptops --port 8977
    wqrtq catalogue add laptops --products '[[0.4, 0.1, 0.2]]'
    wqrtq catalogue remove laptops --ids 17,23
    wqrtq bench fig9
    wqrtq lint --json
    wqrtq lint --rule SCHEMA-LOCK --update-lock
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _add_workload_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", default="independent",
                        choices=["independent", "anticorrelated",
                                 "correlated", "nba", "household"])
    parser.add_argument("-n", "--cardinality", type=int, default=20_000)
    parser.add_argument("-d", "--dim", type=int, default=3)
    parser.add_argument("-k", type=int, default=10)
    parser.add_argument("--seed", type=int, default=0)


def _cmd_query(args) -> int:
    from repro.bench.harness import (
        ExperimentCell,
        build_context,
        build_workload,
    )
    from repro.rtopk.bichromatic import brtopk_rta

    cell = ExperimentCell(dataset=args.dataset, n=args.cardinality,
                          d=args.dim, k=args.k, rank=args.rank,
                          wm_size=1, sample_size=1, seed=args.seed)
    context = build_context(cell)
    query = build_workload(cell, context=context)
    panel = np.random.default_rng(args.seed + 5).dirichlet(
        np.ones(query.dim), size=args.panel)
    members = brtopk_rta(query.rtree, panel, query.q, args.k)
    print(f"dataset: {cell.label()}")
    print(f"q = {np.round(query.q, 4).tolist()}")
    print(f"reverse top-{args.k}: {len(members)} of {args.panel} panel "
          f"vectors rank q in their top-{args.k}")
    if len(members):
        print("member indices:", members.tolist())
    return 0


def _describe_result(name: str, result) -> str:
    """One human line per refinement result, keyed on result type."""
    from repro.core.types import MQPResult, MQWKResult, MWKResult

    label = f"{name.upper():<4}:"
    if isinstance(result, MQPResult):
        return (f"{label} q' = "
                f"{np.round(result.q_refined, 4).tolist()} "
                f"penalty = {result.penalty:.4f}")
    if isinstance(result, MWKResult):
        return (f"{label} k' = {result.k_refined} "
                f"(k_max = {result.k_max}), "
                f"ΔW = {result.delta_w:.4f}, "
                f"penalty = {result.penalty:.4f}")
    if isinstance(result, MQWKResult):
        return (f"{label} q' = "
                f"{np.round(result.q_refined, 4).tolist()}, "
                f"k' = {result.k_refined}, "
                f"penalty = {result.penalty:.4f}")
    return f"{label} penalty = {result.penalty:.4f}"


def _cmd_refine(args) -> int:
    from repro.bench.harness import (
        ExperimentCell,
        build_context,
        build_workload,
    )
    from repro.core.protocol import Question
    from repro.core.registry import algorithm_names
    from repro.core.session import Session
    from repro.core.types import MQPResult

    cell = ExperimentCell(dataset=args.dataset, n=args.cardinality,
                          d=args.dim, k=args.k, rank=args.rank,
                          wm_size=args.wm_size,
                          sample_size=args.sample_size, seed=args.seed)
    session = Session(context=build_context(cell), warm=False)
    query = build_workload(cell, context=session.context)
    print(f"workload: {cell.label()}")
    print(f"q = {np.round(query.q, 4).tolist()}")
    print(f"why-not ranks: {query.ranks().tolist()}")

    if args.explain:
        question = Question(q=query.q, k=query.k,
                            why_not=query.why_not)
        for expl in session.explain(question, max_culprits=5):
            print("  " + expl.describe(query.k))

    names = (algorithm_names() if args.algorithm == "all"
             else (args.algorithm,))
    failed = 0
    for offset, name in enumerate(names):
        answer = session.ask(
            Question.from_legacy(query.q, query.k, query.why_not,
                                 algorithm=name,
                                 sample_size=args.sample_size),
            seed=args.seed + 10 + offset)
        if answer.error is not None:
            failed += 1
            print(f"{name.upper():<4}: FAILED "
                  f"({answer.error.type}: {answer.error.message})")
            continue
        print(_describe_result(name, answer.result))
        if args.plot and isinstance(answer.result, MQPResult):
            if query.dim == 2:
                from repro.core.safe_region import safe_region_polygon
                from repro.viz import render_plane

                polygon = safe_region_polygon(query.points, query.q,
                                              query.why_not, query.k)
                print(render_plane(query.points[:300], query.q,
                                   polygon=polygon, width=56,
                                   height=18))
            else:
                print("(--plot requires 2-dimensional data)")
    return 0 if failed == 0 else 1


def build_batch_questions(session, *, n_questions: int,
                          products: int, dim: int, k: int, rank: int,
                          algorithm: str, sample_size: int,
                          seed: int, budget=None):
    """The ``wqrtq batch`` workload as typed Questions.

    A realistic serving mix: a few distinct products, each asked
    about by several customer panels.  Factored out so tests can
    rebuild the exact question list the CLI answers and assert the
    payloads match ``Session.ask_batch`` byte for byte.  ``budget``
    (a :class:`~repro.core.protocol.Budget`) is attached to every
    question when given — the anytime form of the same workload.
    """
    import dataclasses

    from repro.core.protocol import Question
    from repro.data import preference_set, query_point_with_rank

    products = max(1, min(products, n_questions))
    wts = preference_set(n_questions, dim, seed=seed + 3)
    qs = []
    for j in range(products):
        base = preference_set(1, dim, seed=seed + 100 + j)[0]
        qs.append(query_point_with_rank(session.points, base, rank))
    # One buffered batched-rank call per product validates every
    # panel at once (reusing the context's score buffer).
    panel_ranks = [session.context.ranks(wts, q) for q in qs]
    questions = []
    for i in range(n_questions):
        j = i % products
        if panel_ranks[j][i] <= k:
            continue   # this panel already shortlists the product
        question = Question.from_legacy(
            qs[j], k, wts[i:i + 1], algorithm=algorithm,
            sample_size=sample_size, id=f"q{i:04d}-p{j}")
        if budget is not None:
            question = dataclasses.replace(question, budget=budget)
        questions.append(question)
    return questions, products


def _batch_budget(args):
    """The :class:`~repro.core.protocol.Budget` the batch flags ask
    for, or ``None`` when no limit was given."""
    from repro.core.protocol import Budget

    budget = Budget(sample_budget=args.sample_budget,
                    deadline_ms=args.deadline_ms,
                    target_penalty_tolerance=args.tolerance)
    return None if budget.is_unbounded else budget


def _cmd_batch_submit(args, questions) -> int:
    """``wqrtq batch --submit``: run the workload as an async job on
    a running daemon, optionally watching it converge."""
    from repro.service import ServiceClient, ServiceError

    client = ServiceClient(host=args.host, port=args.port)
    catalogue = args.name or args.dataset
    try:
        job = client.submit(catalogue, questions, seed=args.seed)
        print(f"submitted job {job['id']} ({job['total']} questions) "
              f"to {catalogue!r} on {client.base_url}")
        if not args.watch:
            print(f"poll with: wqrtq batch --watch {job['id']} "
                  f"--port {args.port}")
            return 0
        return _watch_job(client, job["id"],
                          poll_interval=args.poll_interval)
    except (ServiceError, OSError, TimeoutError) as exc:
        print(f"batch --submit failed: {exc}", file=sys.stderr)
        return 1


def _watch_job(client, job_id: str, *,
               poll_interval: float = 0.2) -> int:
    """Poll one job to completion, printing progress lines."""
    from repro.service import ServiceError

    def show(progress):
        penalties = [p for p in progress["penalties"]
                     if p is not None]
        worst = max(penalties) if penalties else None
        line = (f"job {progress['id']}: {progress['status']} "
                f"{progress['done']}/{progress['total']}")
        if worst is not None:
            line += f" worst-penalty={worst:.4f}"
        print(line, flush=True)

    try:
        final = client.wait(job_id, poll_interval=poll_interval,
                            timeout=3600.0, on_progress=show)
        if final["status"] != "done":
            print(f"job finished as {final['status']}"
                  + (f": {final['error']}" if final.get("error")
                     else ""), file=sys.stderr)
            return 1
        _, summary = client.result(job_id)
        print(f"answered={summary['answered']} "
              f"failed={summary['failed']} "
              f"all_valid={summary['all_valid']}")
        if summary["mean_penalty"] is not None:
            print(f"penalty: mean={summary['mean_penalty']:.4f} "
                  f"max={summary['max_penalty']:.4f}")
        return 0 if summary["failed"] == 0 else 1
    except (ServiceError, OSError, TimeoutError) as exc:
        print(f"batch --watch failed: {exc}", file=sys.stderr)
        return 1


def _cmd_batch(args) -> int:
    import json
    import time

    from repro.core.protocol import SCHEMA_VERSION
    from repro.core.session import Session
    from repro.data import make_dataset

    if isinstance(args.watch, str):
        # Standalone ``--watch JOB_ID``: attach to a job submitted
        # earlier (or by someone else) and follow it to completion.
        from repro.service import ServiceClient

        return _watch_job(
            ServiceClient(host=args.host, port=args.port),
            args.watch, poll_interval=args.poll_interval)
    if args.watch and not args.submit:
        # A bare flag with nothing to watch would otherwise fall
        # through to a silent local run — make the misuse loud.
        print("--watch needs --submit (follow the new job) or an "
              "explicit JOB_ID", file=sys.stderr)
        return 2

    points = make_dataset(args.dataset, args.cardinality, args.dim,
                          seed=args.seed)
    session = Session(points)
    questions, products = build_batch_questions(
        session, n_questions=args.questions, products=args.products,
        dim=args.dim, k=args.k, rank=args.rank,
        algorithm=args.algorithm, sample_size=args.sample_size,
        seed=args.seed, budget=_batch_budget(args))

    if args.submit:
        return _cmd_batch_submit(args, questions)

    start = time.perf_counter()
    answers = session.ask_batch(questions, seed=args.seed,
                                workers=args.workers)
    wall = time.perf_counter() - start
    summary = session.summarize(answers, wall_seconds=wall)
    stats = session.context.stats

    if args.json:
        print(json.dumps({
            "schema_version": SCHEMA_VERSION,
            "answers": [answer.to_dict() for answer in answers],
            "summary": summary,
        }, sort_keys=True))
        return 0 if summary["failed"] == 0 else 1

    print(f"batch: {len(questions)} questions ({products} products) "
          f"on {args.dataset}[n={args.cardinality}, d={args.dim}], "
          f"algorithm={args.algorithm}, workers={args.workers}")
    print(f"answered={summary['answered']} failed={summary['failed']} "
          f"all_valid={summary['all_valid']}")
    if summary["mean_penalty"] is not None:
        print(f"penalty: mean={summary['mean_penalty']:.4f} "
              f"max={summary['max_penalty']:.4f}")
    print(f"wall time: {wall:.3f}s  "
          f"(sum of per-item times: {summary['total_item_time']:.3f}s)")
    print(f"engine cache: tree_builds={stats.tree_builds} "
          f"findincom_traversals={stats.findincom_traversals} "
          f"cache_hits={stats.cache_hits} "
          f"buffer_reuses={stats.buffer_reuses}")
    return 0 if summary["failed"] == 0 else 1


def _cmd_serve(args) -> int:
    import signal
    import threading
    import zipfile

    from repro.data import make_dataset
    from repro.service import CatalogueRegistry, create_server

    # Unset flags keep the registry's default (bounded) caps.
    caps = {key: value for key, value in
            (("max_partitions", args.max_partitions),
             ("max_box_caches", args.max_box_caches))
            if value is not None}
    registry = CatalogueRegistry(**caps)
    try:
        for spec in args.load:
            name, sep, path = spec.partition("=")
            if not sep or not name or not path:
                print(f"--load expects NAME=PATH, got {spec!r}",
                      file=sys.stderr)
                return 2
            registry.load(name, path)
        if not args.load or args.generate:
            name = args.name or args.dataset
            points = make_dataset(args.dataset, args.cardinality,
                                  args.dim, seed=args.seed)
            registry.register(name, points,
                              meta={"kind": args.dataset,
                                    "seed": args.seed})
    except (OSError, ValueError, zipfile.BadZipFile) as exc:
        # Missing/corrupt archives and duplicate catalogue names are
        # configuration errors, not tracebacks.
        print(f"failed to register catalogue: {exc}", file=sys.stderr)
        return 2

    server = create_server(registry, host=args.host, port=args.port,
                           verbose=args.verbose,
                           job_workers=args.job_workers,
                           workers=args.workers, shards=args.shards,
                           max_concurrent=args.max_concurrent,
                           max_queue=args.max_queue,
                           tenant_rate=args.tenant_rate,
                           tenant_burst=args.tenant_burst,
                           enforce_deadlines=args.enforce_deadlines,
                           calibration_path=args.calibration)
    from repro.core.registry import algorithm_names
    print(f"algorithms: {', '.join(algorithm_names())}", flush=True)
    if args.workers > 0:
        print(f"worker pool: {args.workers} process(es), "
              f"{args.shards} shard(s)", flush=True)
    for entry in registry.describe():
        print(f"catalogue: {entry['name']} (n={entry['n']}, "
              f"d={entry['d']}, "
              f"max_partitions={entry['max_partitions']})",
              flush=True)
    # The CI smoke test and the load benchmark parse this line to
    # discover the ephemeral port, so keep its shape stable.
    print(f"serving on {server.url}", flush=True)

    # Graceful shutdown: SIGTERM/SIGINT stop the accept loop, then
    # server_close() drains — in-flight handler threads are joined
    # (socketserver's block_on_close) and the job pool cancels
    # cooperatively at the next chunk boundary.  shutdown() must run
    # off the signal frame: the handler interrupts serve_forever's
    # own poll loop, which shutdown() waits on.
    def _drain(signum, frame):
        print(f"received {signal.Signals(signum).name}, draining...",
              flush=True)
        threading.Thread(target=server.shutdown, daemon=True).start()

    signal.signal(signal.SIGTERM, _drain)
    signal.signal(signal.SIGINT, _drain)
    try:
        server.serve_forever()
    except KeyboardInterrupt:   # pragma: no cover - belt and braces
        pass
    finally:
        server.server_close()
    print("server stopped", flush=True)
    return 0


def _parse_ids(raw: str) -> list[int]:
    try:
        return [int(token) for token in raw.split(",") if token.strip()]
    except ValueError:
        raise ValueError(f"--ids expects a comma-separated list of "
                         f"product ids, got {raw!r}") from None


def _parse_products(args) -> list:
    """Product rows from ``--products`` JSON or an ``--from-npz``
    archive (exactly one of the two)."""
    import json

    if (args.products is None) == (getattr(args, "from_npz", None)
                                   is None):
        raise ValueError("pass exactly one of --products or "
                         "--from-npz")
    if args.products is not None:
        try:
            rows = json.loads(args.products)
        except json.JSONDecodeError as exc:
            raise ValueError(f"--products is not valid JSON: {exc}") \
                from None
        return rows
    from repro.data.io import load_dataset

    points, _ = load_dataset(args.from_npz)
    return points.tolist()


def _cmd_catalogue(args) -> int:
    from repro.service import ServiceClient, ServiceError

    client = ServiceClient(host=args.host, port=args.port)
    try:
        if args.action == "show":
            entry = client.catalogue(args.name)
            print(f"catalogue: {entry['name']}")
            print(f"version: {entry['version']}  n: {entry['n']}  "
                  f"d: {entry['d']}")
            mutations = entry["mutations"]
            print(f"mutations: adds={mutations['adds']} "
                  f"updates={mutations['updates']} "
                  f"removes={mutations['removes']} "
                  f"(count={mutations['count']})")
            stats = entry["stats"]
            print(f"caches: partitions={entry['cached_partitions']} "
                  f"inherited={stats['partitions_inherited']} "
                  f"invalidated={stats['partition_invalidations']} "
                  f"tree_patches={stats['tree_patches']}")
        elif args.action == "add":
            response = client.add_products(args.name,
                                           _parse_products(args))
            print(f"added {len(response['ids'])} product(s) "
                  f"(ids {response['ids']}) -> "
                  f"version {response['catalogue_version']}, "
                  f"n={response['n']}")
        elif args.action == "update":
            response = client.update_products(
                args.name, _parse_ids(args.ids),
                _parse_products(args))
            print(f"updated {len(response['ids'])} product(s) -> "
                  f"version {response['catalogue_version']}")
        else:   # remove
            response = client.remove_products(args.name,
                                              _parse_ids(args.ids))
            print(f"removed {len(response['ids'])} product(s) -> "
                  f"version {response['catalogue_version']}, "
                  f"n={response['n']}")
    except (ServiceError, ValueError, OSError) as exc:
        print(f"catalogue {args.action} failed: {exc}",
              file=sys.stderr)
        return 1
    return 0


def _cmd_explain(args) -> int:
    """Print a running daemon's execution plan for one question."""
    import json

    from repro.core.protocol import Question
    from repro.service import (
        ServiceClient,
        ServiceConnectionError,
        ServiceError,
    )

    try:
        q = json.loads(args.q)
        why_not = json.loads(args.why_not)
    except json.JSONDecodeError as exc:
        print(f"--q/--why-not must be JSON: {exc}", file=sys.stderr)
        return 2
    try:
        question = Question.from_legacy(
            q, args.k, why_not, algorithm=args.algorithm,
            sample_size=args.sample_size)
    except (ValueError, KeyError) as exc:
        print(f"invalid question: {exc}", file=sys.stderr)
        return 2

    client = ServiceClient(host=args.host, port=args.port)
    try:
        plan, rendered = client.explain(args.name, question,
                                        seed=args.seed)
    except (ServiceError, ServiceConnectionError, ValueError) as exc:
        print(f"explain failed: {exc}", file=sys.stderr)
        return 1
    print(rendered, flush=True)
    if args.json:
        print(json.dumps(plan.to_dict(), sort_keys=True), flush=True)
    return 0


def _cmd_watch(args) -> int:
    """Register a watch on a running daemon and stream refreshed
    answers until the terminal event (or ``--max-events``)."""
    import json

    from repro.core.protocol import Question
    from repro.service import (
        ServiceClient,
        ServiceConnectionError,
        ServiceError,
    )

    try:
        q = json.loads(args.q)
        why_not = json.loads(args.why_not)
    except json.JSONDecodeError as exc:
        print(f"--q/--why-not must be JSON: {exc}", file=sys.stderr)
        return 2
    try:
        question = Question.from_legacy(
            q, args.k, why_not, algorithm=args.algorithm,
            sample_size=args.sample_size)
    except (ValueError, KeyError) as exc:
        print(f"invalid question: {exc}", file=sys.stderr)
        return 2

    client = ServiceClient(host=args.host, port=args.port)
    count = 0
    try:
        for answer in client.watch(args.name, question,
                                   seed=args.seed,
                                   timeout_ms=args.timeout_ms,
                                   max_events=args.max_events):
            label = "answer" if count == 0 else "refresh"
            if answer.error is not None:
                print(f"[{count}] {label} "
                      f"v{answer.catalogue_version} "
                      f"error: {answer.error.message}", flush=True)
            else:
                print(f"[{count}] {label} "
                      f"v{answer.catalogue_version} "
                      f"penalty={answer.penalty:.4f} "
                      f"valid={answer.valid}", flush=True)
            count += 1
    except (ServiceError, ServiceConnectionError, ValueError) as exc:
        print(f"watch failed: {exc}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:   # pragma: no cover - interactive
        pass
    print(f"watch ended after {count} event(s)", flush=True)
    return 0


def _cmd_bench(args) -> int:
    from repro.bench.__main__ import main as bench_main

    argv = [args.figure]
    if args.paper_scale:
        argv.append("--paper-scale")
    return bench_main(argv)


def _cmd_lint(args) -> int:
    from repro.analysis.runner import lint_command

    return lint_command(args)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="wqrtq",
        description="Why-not questions on reverse top-k queries "
                    "(Gao et al., VLDB 2015 — reproduction).")
    sub = parser.add_subparsers(dest="command", required=True)

    p_query = sub.add_parser("query", help="run a reverse top-k query")
    _add_workload_args(p_query)
    p_query.add_argument("--rank", type=int, default=51,
                         help="rank of q under the probe vector")
    p_query.add_argument("--panel", type=int, default=100,
                         help="size of the customer panel W")
    p_query.set_defaults(func=_cmd_query)

    p_refine = sub.add_parser("refine",
                              help="answer a why-not question")
    _add_workload_args(p_refine)
    p_refine.add_argument("--rank", type=int, default=51)
    p_refine.add_argument("--wm-size", type=int, default=1)
    p_refine.add_argument("--sample-size", type=int, default=200)
    from repro.core.registry import algorithm_names
    p_refine.add_argument("--algorithm", default="all",
                          choices=[*algorithm_names(), "all"])
    p_refine.add_argument("--explain", action="store_true",
                          help="also print aspect (i) explanations")
    p_refine.add_argument("--plot", action="store_true",
                          help="render the 2-D safe region (d=2 only)")
    p_refine.set_defaults(func=_cmd_refine)

    p_batch = sub.add_parser(
        "batch", help="answer a batch of why-not questions")
    _add_workload_args(p_batch)
    p_batch.add_argument("--rank", type=int, default=51)
    p_batch.add_argument("--questions", type=int, default=20,
                         help="number of (product, panel) questions")
    p_batch.add_argument("--products", type=int, default=5,
                         help="distinct products the questions cover")
    p_batch.add_argument("--sample-size", type=int, default=200)
    p_batch.add_argument("--algorithm", default="mqwk",
                         choices=list(algorithm_names()))
    p_batch.add_argument("--workers", type=int, default=1,
                         help="executor threads (1 = serial)")
    p_batch.add_argument("--json", action="store_true",
                         help="emit the versioned Answer payloads as "
                              "JSON instead of the human summary")
    p_batch.add_argument("--sample-budget", type=int, default=None,
                         help="anytime budget: cap on samples "
                              "examined per question")
    p_batch.add_argument("--deadline-ms", type=float, default=None,
                         help="anytime budget: soft per-question "
                              "deadline in milliseconds")
    p_batch.add_argument("--tolerance", type=float, default=None,
                         help="anytime budget: stop refining once "
                              "the penalty is at or below this")
    p_batch.add_argument("--submit", action="store_true",
                         help="submit the workload as an async job "
                              "to a running wqrtq serve daemon "
                              "instead of answering locally")
    p_batch.add_argument("--watch", nargs="?", const=True,
                         default=False, metavar="JOB_ID",
                         help="with --submit: follow the new job to "
                              "completion; standalone: follow an "
                              "existing job by id")
    p_batch.add_argument("--host", default="127.0.0.1",
                         help="daemon host for --submit/--watch")
    p_batch.add_argument("--port", type=int, default=8977,
                         help="daemon port for --submit/--watch")
    p_batch.add_argument("--name", default=None,
                         help="server catalogue name for --submit "
                              "(default: the dataset kind)")
    p_batch.add_argument("--poll-interval", type=float, default=0.2,
                         help="seconds between --watch polls")
    p_batch.set_defaults(func=_cmd_batch)

    p_serve = sub.add_parser(
        "serve", help="run the JSON-over-HTTP why-not daemon")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8977,
                         help="TCP port (0 = pick an ephemeral port)")
    p_serve.add_argument("--dataset", default="independent",
                         choices=["independent", "anticorrelated",
                                  "correlated", "nba", "household"],
                         help="distribution of the generated catalogue")
    p_serve.add_argument("-n", "--cardinality", type=int,
                         default=20_000)
    p_serve.add_argument("-d", "--dim", type=int, default=3)
    p_serve.add_argument("--seed", type=int, default=0)
    p_serve.add_argument("--name", default=None,
                         help="registry name of the generated "
                              "catalogue (default: the dataset kind)")
    p_serve.add_argument("--load", action="append", default=[],
                         metavar="NAME=PATH",
                         help="register a saved .npz catalogue "
                              "(repeatable; suppresses the generated "
                              "one unless --generate)")
    p_serve.add_argument("--generate", action="store_true",
                         help="also register the generated catalogue "
                              "when --load is given")
    p_serve.add_argument("--max-partitions", type=int, default=None,
                         help="LRU bound on cached FindIncom "
                              "partitions per catalogue")
    p_serve.add_argument("--max-box-caches", type=int, default=None,
                         help="LRU bound on cached box traversals "
                              "per catalogue")
    p_serve.add_argument("--workers", type=int, default=0,
                         help="worker processes answering over "
                              "shared-memory snapshots (0 = "
                              "single-process threaded execution)")
    p_serve.add_argument("--shards", type=int, default=1,
                         help="catalogue row-range fan-out per "
                              "shardable question (needs --workers)")
    p_serve.add_argument("--job-workers", type=int, default=2,
                         help="async job worker threads "
                              "(POST /jobs)")
    p_serve.add_argument("--max-concurrent", type=int, default=None,
                         help="admission: cap on concurrently "
                              "executing requests (default: "
                              "unlimited)")
    p_serve.add_argument("--max-queue", type=int, default=64,
                         help="admission: waiters allowed behind a "
                              "full --max-concurrent before "
                              "load-shedding with 429")
    p_serve.add_argument("--tenant-rate", type=float, default=None,
                         help="admission: per-tenant token-bucket "
                              "refill rate in requests/second "
                              "(default: no quota)")
    p_serve.add_argument("--tenant-burst", type=float, default=None,
                         help="admission: per-tenant bucket "
                              "capacity (default: the rate)")
    p_serve.add_argument("--enforce-deadlines", action="store_true",
                         help="admission: reject questions whose "
                              "calibrated latency estimate exceeds "
                              "their budget's deadline_ms")
    p_serve.add_argument("--calibration", default=None,
                         metavar="PATH",
                         help="load/persist cost-model calibration "
                              "at this JSON path (saved on drain)")
    p_serve.add_argument("--verbose", action="store_true",
                         help="log every HTTP request")
    p_serve.set_defaults(func=_cmd_serve)

    p_explain = sub.add_parser(
        "explain", help="show a running daemon's cost-based "
                        "execution plan for a question")
    p_explain.add_argument("name",
                           help="registry name of the catalogue")
    p_explain.add_argument("--q", required=True,
                           help="JSON coordinate list of the missing "
                                "product, e.g. '[0.4, 0.1, 0.2]'")
    p_explain.add_argument("-k", type=int, default=10)
    p_explain.add_argument("--why-not", required=True,
                           dest="why_not",
                           help="JSON weight rows, e.g. "
                                "'[[0.3, 0.3, 0.4]]'")
    p_explain.add_argument("--algorithm", default="mqp",
                           choices=list(algorithm_names()))
    p_explain.add_argument("--sample-size", type=int, default=200)
    p_explain.add_argument("--seed", type=int, default=0)
    p_explain.add_argument("--host", default="127.0.0.1")
    p_explain.add_argument("--port", type=int, default=8977)
    p_explain.add_argument("--json", action="store_true",
                           help="also print the Plan payload as "
                                "JSON after the rendering")
    p_explain.set_defaults(func=_cmd_explain)

    p_watch = sub.add_parser(
        "watch", help="stream live answers to a standing question "
                      "from a running server")
    p_watch.add_argument("name",
                         help="registry name of the catalogue")
    p_watch.add_argument("--q", required=True,
                         help="JSON coordinate list of the missing "
                              "product, e.g. '[0.4, 0.1, 0.2]'")
    p_watch.add_argument("-k", type=int, default=10)
    p_watch.add_argument("--why-not", required=True, dest="why_not",
                         help="JSON weight rows, e.g. "
                              "'[[0.3, 0.3, 0.4]]'")
    p_watch.add_argument("--algorithm", default="mqp",
                         choices=list(algorithm_names()))
    p_watch.add_argument("--sample-size", type=int, default=200)
    p_watch.add_argument("--seed", type=int, default=0)
    p_watch.add_argument("--host", default="127.0.0.1")
    p_watch.add_argument("--port", type=int, default=8977)
    p_watch.add_argument("--max-events", type=int, default=None,
                         help="stop after this many answers "
                              "(default: until the server ends the "
                              "watch)")
    p_watch.add_argument("--timeout-ms", type=int, default=10_000,
                         dest="timeout_ms",
                         help="long-poll leg duration")
    p_watch.set_defaults(func=_cmd_watch)

    p_cat = sub.add_parser(
        "catalogue",
        help="inspect or mutate a catalogue on a running server")
    cat_sub = p_cat.add_subparsers(dest="action", required=True)

    def _cat_common(parser: argparse.ArgumentParser) -> None:
        parser.add_argument("name",
                            help="registry name of the catalogue")
        parser.add_argument("--host", default="127.0.0.1")
        parser.add_argument("--port", type=int, default=8977)
        parser.set_defaults(func=_cmd_catalogue)

    c_show = cat_sub.add_parser(
        "show", help="version, size and mutation counters")
    _cat_common(c_show)

    c_add = cat_sub.add_parser("add", help="append products")
    _cat_common(c_add)
    c_add.add_argument("--products", default=None,
                       help="JSON list of coordinate rows, e.g. "
                            "'[[0.4, 0.1, 0.2]]'")
    c_add.add_argument("--from-npz", dest="from_npz", default=None,
                       help="append every row of a save_dataset "
                            "archive instead of --products")

    c_update = cat_sub.add_parser(
        "update", help="replace coordinates of existing products")
    _cat_common(c_update)
    c_update.add_argument("--ids", required=True,
                          help="comma-separated product ids")
    c_update.add_argument("--products", default=None,
                          help="JSON list of replacement rows "
                               "(one per id)")
    c_update.add_argument("--from-npz", dest="from_npz", default=None,
                          help="take the replacement rows from a "
                               "save_dataset archive")

    c_remove = cat_sub.add_parser("remove", help="delete products")
    _cat_common(c_remove)
    c_remove.add_argument("--ids", required=True,
                          help="comma-separated product ids")

    p_bench = sub.add_parser("bench", help="regenerate a paper figure")
    from repro.bench.figures import FIGURES
    p_bench.add_argument("figure", choices=sorted(FIGURES) + ["all"])
    p_bench.add_argument("--paper-scale", action="store_true")
    p_bench.set_defaults(func=_cmd_bench)

    p_lint = sub.add_parser(
        "lint", help="check the repo's architectural invariants "
                     "(reprolint)")
    from repro.analysis.runner import add_lint_arguments
    add_lint_arguments(p_lint)
    p_lint.set_defaults(func=_cmd_lint)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
