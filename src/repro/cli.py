"""``wqrtq`` — command-line interface to the WQRTQ framework.

Subcommands
-----------

``query``
    Run a reverse top-k query on a generated dataset and show the
    result plus which panel members are missing.
``refine``
    Answer a why-not question with MQP / MWK / MQWK on a generated
    workload (the same workloads the benchmark harness uses).
``batch``
    Answer a whole batch of why-not questions against one catalogue
    through the shared :class:`~repro.engine.context.DatasetContext`
    (optionally in parallel with ``--workers``), and report cache
    effectiveness.
``serve``
    Run the long-lived JSON-over-HTTP daemon
    (:mod:`repro.service`): named catalogues — generated and/or
    loaded from ``.npz`` archives — each behind one warmed,
    LRU-bounded context, answering ``/answer`` and ``/batch``
    requests until interrupted.
``bench``
    Regenerate a figure of the paper (delegates to
    :mod:`repro.bench`).

Every subcommand builds one ``DatasetContext`` per catalogue and runs
all its queries through it, so the R-tree and ``FindIncom`` partitions
are paid once.

Examples
--------
::

    wqrtq query --dataset independent -n 5000 -d 3 -k 10
    wqrtq refine --algorithm mqwk --rank 101 --sample-size 400
    wqrtq batch --questions 20 --products 5 --workers 4
    wqrtq serve --port 8977 -n 10000 --max-partitions 1024
    wqrtq serve --port 0 --load laptops=data/laptops.npz
    wqrtq bench fig9
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _add_workload_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", default="independent",
                        choices=["independent", "anticorrelated",
                                 "correlated", "nba", "household"])
    parser.add_argument("-n", "--cardinality", type=int, default=20_000)
    parser.add_argument("-d", "--dim", type=int, default=3)
    parser.add_argument("-k", type=int, default=10)
    parser.add_argument("--seed", type=int, default=0)


def _cmd_query(args) -> int:
    from repro.bench.harness import (
        ExperimentCell,
        build_context,
        build_workload,
    )
    from repro.rtopk.bichromatic import brtopk_rta

    cell = ExperimentCell(dataset=args.dataset, n=args.cardinality,
                          d=args.dim, k=args.k, rank=args.rank,
                          wm_size=1, sample_size=1, seed=args.seed)
    context = build_context(cell)
    query = build_workload(cell, context=context)
    panel = np.random.default_rng(args.seed + 5).dirichlet(
        np.ones(query.dim), size=args.panel)
    members = brtopk_rta(query.rtree, panel, query.q, args.k)
    print(f"dataset: {cell.label()}")
    print(f"q = {np.round(query.q, 4).tolist()}")
    print(f"reverse top-{args.k}: {len(members)} of {args.panel} panel "
          f"vectors rank q in their top-{args.k}")
    if len(members):
        print("member indices:", members.tolist())
    return 0


def _cmd_refine(args) -> int:
    from repro.bench.harness import (
        ExperimentCell,
        build_context,
        build_workload,
    )
    from repro.core.explain import explain_why_not
    from repro.core.mqp import modify_query_point
    from repro.core.mqwk import modify_query_weights_and_k
    from repro.core.mwk import modify_weights_and_k

    cell = ExperimentCell(dataset=args.dataset, n=args.cardinality,
                          d=args.dim, k=args.k, rank=args.rank,
                          wm_size=args.wm_size,
                          sample_size=args.sample_size, seed=args.seed)
    context = build_context(cell)
    query = build_workload(cell, context=context)
    print(f"workload: {cell.label()}")
    print(f"q = {np.round(query.q, 4).tolist()}")
    print(f"why-not ranks: {query.ranks().tolist()}")

    if args.explain:
        for expl in explain_why_not(query.rtree, query.q,
                                    query.why_not, query.k,
                                    max_culprits=5):
            print("  " + expl.describe(query.k))

    rng = np.random.default_rng(args.seed + 10)
    if args.algorithm in ("mqp", "all"):
        res = modify_query_point(query)
        print(f"MQP : q' = {np.round(res.q_refined, 4).tolist()} "
              f"penalty = {res.penalty:.4f}")
        if args.plot and query.dim == 2:
            from repro.core.safe_region import safe_region_polygon
            from repro.viz import render_plane

            polygon = safe_region_polygon(query.points, query.q,
                                          query.why_not, query.k)
            print(render_plane(query.points[:300], query.q,
                               polygon=polygon, width=56, height=18))
        elif args.plot:
            print("(--plot requires 2-dimensional data)")
    if args.algorithm in ("mwk", "all"):
        res = modify_weights_and_k(query,
                                   sample_size=args.sample_size,
                                   rng=rng, context=context)
        print(f"MWK : k' = {res.k_refined} (k_max = {res.k_max}), "
              f"ΔW = {res.delta_w:.4f}, penalty = {res.penalty:.4f}")
    if args.algorithm in ("mqwk", "all"):
        res = modify_query_weights_and_k(
            query, sample_size=args.sample_size, rng=rng,
            context=context)
        print(f"MQWK: q' = {np.round(res.q_refined, 4).tolist()}, "
              f"k' = {res.k_refined}, penalty = {res.penalty:.4f}")
    return 0


def _cmd_batch(args) -> int:
    import time

    from repro.core.batch import WhyNotBatch
    from repro.data import (
        make_dataset,
        preference_set,
        query_point_with_rank,
    )
    from repro.engine.context import DatasetContext

    points = make_dataset(args.dataset, args.cardinality, args.dim,
                          seed=args.seed)
    context = DatasetContext(points)
    batch = WhyNotBatch(context=context)

    # A realistic serving mix: a few distinct products, each asked
    # about by several customer panels.
    products = max(1, min(args.products, args.questions))
    wts = preference_set(args.questions, args.dim,
                         seed=args.seed + 3)
    qs = []
    for j in range(products):
        base = preference_set(1, args.dim, seed=args.seed + 100 + j)[0]
        qs.append(query_point_with_rank(points, base, args.rank))
    # One buffered batched-rank call per product validates every
    # panel at once (reusing the context's score buffer).
    panel_ranks = [context.ranks(wts, q) for q in qs]
    queued = 0
    for i in range(args.questions):
        j = i % products
        if panel_ranks[j][i] <= args.k:
            continue   # this panel already shortlists the product
        batch.add_question(qs[j], args.k, wts[i:i + 1])
        queued += 1

    start = time.perf_counter()
    report = batch.run(args.algorithm, sample_size=args.sample_size,
                       seed=args.seed, workers=args.workers)
    wall = time.perf_counter() - start
    summary = report.summary()
    print(f"batch: {queued} questions ({products} products) on "
          f"{args.dataset}[n={args.cardinality}, d={args.dim}], "
          f"algorithm={args.algorithm}, workers={args.workers}")
    print(f"answered={summary['answered']} failed={summary['failed']} "
          f"all_valid={summary['all_valid']}")
    if summary["mean_penalty"] is not None:
        print(f"penalty: mean={summary['mean_penalty']:.4f} "
              f"max={summary['max_penalty']:.4f}")
    print(f"wall time: {wall:.3f}s  "
          f"(sum of per-item times: {summary['total_item_time']:.3f}s)")
    stats = context.stats
    print(f"engine cache: tree_builds={stats.tree_builds} "
          f"findincom_traversals={stats.findincom_traversals} "
          f"cache_hits={stats.cache_hits} "
          f"buffer_reuses={stats.buffer_reuses}")
    return 0 if summary["failed"] == 0 else 1


def _cmd_serve(args) -> int:
    import zipfile

    from repro.data import make_dataset
    from repro.service import CatalogueRegistry, create_server

    # Unset flags keep the registry's default (bounded) caps.
    caps = {key: value for key, value in
            (("max_partitions", args.max_partitions),
             ("max_box_caches", args.max_box_caches))
            if value is not None}
    registry = CatalogueRegistry(**caps)
    try:
        for spec in args.load:
            name, sep, path = spec.partition("=")
            if not sep or not name or not path:
                print(f"--load expects NAME=PATH, got {spec!r}",
                      file=sys.stderr)
                return 2
            registry.load(name, path)
        if not args.load or args.generate:
            name = args.name or args.dataset
            points = make_dataset(args.dataset, args.cardinality,
                                  args.dim, seed=args.seed)
            registry.register(name, points,
                              meta={"kind": args.dataset,
                                    "seed": args.seed})
    except (OSError, ValueError, zipfile.BadZipFile) as exc:
        # Missing/corrupt archives and duplicate catalogue names are
        # configuration errors, not tracebacks.
        print(f"failed to register catalogue: {exc}", file=sys.stderr)
        return 2

    server = create_server(registry, host=args.host, port=args.port,
                           verbose=args.verbose)
    for entry in registry.describe():
        print(f"catalogue: {entry['name']} (n={entry['n']}, "
              f"d={entry['d']}, "
              f"max_partitions={entry['max_partitions']})",
              flush=True)
    # The CI smoke test and the load benchmark parse this line to
    # discover the ephemeral port, so keep its shape stable.
    print(f"serving on {server.url}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    print("server stopped", flush=True)
    return 0


def _cmd_bench(args) -> int:
    from repro.bench.__main__ import main as bench_main

    argv = [args.figure]
    if args.paper_scale:
        argv.append("--paper-scale")
    return bench_main(argv)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="wqrtq",
        description="Why-not questions on reverse top-k queries "
                    "(Gao et al., VLDB 2015 — reproduction).")
    sub = parser.add_subparsers(dest="command", required=True)

    p_query = sub.add_parser("query", help="run a reverse top-k query")
    _add_workload_args(p_query)
    p_query.add_argument("--rank", type=int, default=51,
                         help="rank of q under the probe vector")
    p_query.add_argument("--panel", type=int, default=100,
                         help="size of the customer panel W")
    p_query.set_defaults(func=_cmd_query)

    p_refine = sub.add_parser("refine",
                              help="answer a why-not question")
    _add_workload_args(p_refine)
    p_refine.add_argument("--rank", type=int, default=51)
    p_refine.add_argument("--wm-size", type=int, default=1)
    p_refine.add_argument("--sample-size", type=int, default=200)
    p_refine.add_argument("--algorithm", default="all",
                          choices=["mqp", "mwk", "mqwk", "all"])
    p_refine.add_argument("--explain", action="store_true",
                          help="also print aspect (i) explanations")
    p_refine.add_argument("--plot", action="store_true",
                          help="render the 2-D safe region (d=2 only)")
    p_refine.set_defaults(func=_cmd_refine)

    p_batch = sub.add_parser(
        "batch", help="answer a batch of why-not questions")
    _add_workload_args(p_batch)
    p_batch.add_argument("--rank", type=int, default=51)
    p_batch.add_argument("--questions", type=int, default=20,
                         help="number of (product, panel) questions")
    p_batch.add_argument("--products", type=int, default=5,
                         help="distinct products the questions cover")
    p_batch.add_argument("--sample-size", type=int, default=200)
    p_batch.add_argument("--algorithm", default="mqwk",
                         choices=["mqp", "mwk", "mqwk"])
    p_batch.add_argument("--workers", type=int, default=1,
                         help="executor threads (1 = serial)")
    p_batch.set_defaults(func=_cmd_batch)

    p_serve = sub.add_parser(
        "serve", help="run the JSON-over-HTTP why-not daemon")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8977,
                         help="TCP port (0 = pick an ephemeral port)")
    p_serve.add_argument("--dataset", default="independent",
                         choices=["independent", "anticorrelated",
                                  "correlated", "nba", "household"],
                         help="distribution of the generated catalogue")
    p_serve.add_argument("-n", "--cardinality", type=int,
                         default=20_000)
    p_serve.add_argument("-d", "--dim", type=int, default=3)
    p_serve.add_argument("--seed", type=int, default=0)
    p_serve.add_argument("--name", default=None,
                         help="registry name of the generated "
                              "catalogue (default: the dataset kind)")
    p_serve.add_argument("--load", action="append", default=[],
                         metavar="NAME=PATH",
                         help="register a saved .npz catalogue "
                              "(repeatable; suppresses the generated "
                              "one unless --generate)")
    p_serve.add_argument("--generate", action="store_true",
                         help="also register the generated catalogue "
                              "when --load is given")
    p_serve.add_argument("--max-partitions", type=int, default=None,
                         help="LRU bound on cached FindIncom "
                              "partitions per catalogue")
    p_serve.add_argument("--max-box-caches", type=int, default=None,
                         help="LRU bound on cached box traversals "
                              "per catalogue")
    p_serve.add_argument("--verbose", action="store_true",
                         help="log every HTTP request")
    p_serve.set_defaults(func=_cmd_serve)

    p_bench = sub.add_parser("bench", help="regenerate a paper figure")
    from repro.bench.figures import FIGURES
    p_bench.add_argument("figure", choices=sorted(FIGURES) + ["all"])
    p_bench.add_argument("--paper-scale", action="store_true")
    p_bench.set_defaults(func=_cmd_bench)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
