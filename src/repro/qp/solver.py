"""Primal–dual interior-point solver for convex QP.

Problem form
------------

    minimize    ½ xᵀ H x + cᵀ x
    subject to  G x <= h          (inequalities, slacks s > 0)
                A x  = b          (optional equalities)

``H`` must be symmetric positive semi-definite (the library only feeds
it positive-definite diagonals).  The implementation is the standard
infeasible-start path-following method with a Mehrotra-style adaptive
centring parameter:

1. Newton step on the perturbed KKT system,
2. fraction-to-boundary step length (s, z stay strictly positive),
3. centring ``sigma = (mu_aff / mu)^3``.

The per-iteration cost is one dense factorization of the reduced system
``(H + Gᵀ diag(z/s) G)`` bordered by the equality rows — ``O(n³)`` for
``n`` variables, matching the ``d³·L`` term in the paper's Theorem 1.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np


class QPStatus(enum.Enum):
    """Solver exit condition."""

    OPTIMAL = "optimal"
    MAX_ITER = "max_iterations"
    INFEASIBLE = "infeasible"


@dataclass
class QPResult:
    """Solution bundle with optimality certificates.

    Attributes
    ----------
    x:
        Primal solution.
    status:
        :class:`QPStatus`.
    objective:
        ``½ xᵀHx + cᵀx`` at ``x``.
    iterations:
        Newton iterations performed.
    dual_ineq / dual_eq:
        Lagrange multipliers.
    kkt_residual:
        Max-norm of the stationarity + feasibility + complementarity
        residuals; near zero certifies optimality.
    """

    x: np.ndarray
    status: QPStatus
    objective: float
    iterations: int
    dual_ineq: np.ndarray
    dual_eq: np.ndarray
    kkt_residual: float

    @property
    def ok(self) -> bool:
        return self.status is QPStatus.OPTIMAL


def solve_qp(h_mat, c_vec, g_mat=None, h_vec=None, a_mat=None, b_vec=None,
             *, lb=None, ub=None, tol: float = 1e-8,
             max_iter: int = 100) -> QPResult:
    """Solve the convex QP described in the module docstring.

    Box bounds ``lb <= x <= ub`` are folded into the inequality block.
    Infinite entries in ``lb``/``ub`` are skipped.

    Raises
    ------
    ValueError
        On malformed shapes.
    """
    h_mat = np.atleast_2d(np.asarray(h_mat, dtype=np.float64))
    c_vec = np.asarray(c_vec, dtype=np.float64).reshape(-1)
    n = c_vec.shape[0]
    if h_mat.shape != (n, n):
        raise ValueError("H must be (n, n) matching c")

    g_rows, h_rows = _assemble_inequalities(n, g_mat, h_vec, lb, ub)
    m = len(h_rows)
    if a_mat is not None:
        a_mat = np.atleast_2d(np.asarray(a_mat, dtype=np.float64))
        b_vec = np.asarray(b_vec, dtype=np.float64).reshape(-1)
        if a_mat.shape[1] != n or a_mat.shape[0] != b_vec.shape[0]:
            raise ValueError("equality block shape mismatch")
        p = a_mat.shape[0]
    else:
        a_mat = np.zeros((0, n))
        b_vec = np.zeros(0)
        p = 0

    if m == 0:
        # No inequalities: the KKT conditions are one linear solve.
        if p == 0:
            x = np.linalg.solve(h_mat + 1e-12 * np.eye(n), -c_vec)
            y = np.zeros(0)
        else:
            kkt = np.zeros((n + p, n + p))
            kkt[:n, :n] = h_mat + 1e-12 * np.eye(n)
            kkt[:n, n:] = a_mat.T
            kkt[n:, :n] = a_mat
            sol = np.linalg.solve(kkt, np.concatenate([-c_vec, b_vec]))
            x, y = sol[:n], sol[n:]
        obj = 0.5 * float(x @ h_mat @ x) + float(c_vec @ x)
        kkt_res = float(np.max(np.abs(h_mat @ x + c_vec + a_mat.T @ y)))
        return QPResult(x, QPStatus.OPTIMAL, obj, 0, np.zeros(0), y,
                        kkt_res)

    g = g_rows
    h = h_rows

    x = np.zeros(n)
    y = np.zeros(p)
    s = np.maximum(h - g @ x, 1.0)
    z = np.ones(m)

    status = QPStatus.MAX_ITER
    it = 0
    # Iterates diverge on infeasible problems before the finiteness
    # guard trips; suppress the intermediate overflow warnings.
    with np.errstate(over="ignore", invalid="ignore"):
        for it in range(1, max_iter + 1):
            if (not np.all(np.isfinite(x)) or not np.all(np.isfinite(s))
                    or not np.all(np.isfinite(z))):
                status = QPStatus.INFEASIBLE
                x = np.nan_to_num(x)
                s = np.abs(np.nan_to_num(s)) + 1e-9
                z = np.abs(np.nan_to_num(z)) + 1e-9
                break
            r_dual = h_mat @ x + c_vec + g.T @ z + a_mat.T @ y
            r_prim = g @ x + s - h
            r_eq = a_mat @ x - b_vec
            mu = float(s @ z) / m

            if (np.max(np.abs(r_dual)) < tol
                    and np.max(np.abs(r_prim), initial=0.0) < tol
                    and np.max(np.abs(r_eq), initial=0.0) < tol
                    and mu < tol):
                status = QPStatus.OPTIMAL
                break

            # --- affine (predictor) direction -------------------------
            dx_a, dy_a, dz_a, ds_a = _newton_step(
                h_mat, g, a_mat, s, z, r_dual, r_prim, r_eq, s * z)
            alpha_a = _step_length(s, ds_a, z, dz_a, tau=1.0)
            mu_aff = float(
                (s + alpha_a * ds_a) @ (z + alpha_a * dz_a)) / m
            sigma = (mu_aff / mu) ** 3 if mu > 0 else 0.1

            # --- corrector direction ----------------------------------
            r_cent = s * z + ds_a * dz_a - sigma * mu
            dx, dy, dz, ds = _newton_step(
                h_mat, g, a_mat, s, z, r_dual, r_prim, r_eq, r_cent)
            alpha = _step_length(s, ds, z, dz, tau=0.995)

            x = x + alpha * dx
            y = y + alpha * dy
            z = np.maximum(z + alpha * dz, 1e-14)
            s = np.maximum(s + alpha * ds, 1e-14)

    r_dual = h_mat @ x + c_vec + g.T @ z + a_mat.T @ y
    r_prim = np.maximum(g @ x - h, 0.0)
    r_eq = a_mat @ x - b_vec
    comp = np.abs((h - g @ x) * z) if m else np.zeros(1)
    kkt = max(
        float(np.max(np.abs(r_dual), initial=0.0)),
        float(np.max(r_prim, initial=0.0)),
        float(np.max(np.abs(r_eq), initial=0.0)),
        float(np.max(comp, initial=0.0)),
    )
    if status is QPStatus.MAX_ITER and np.max(r_prim, initial=0.0) > 1e-4:
        status = QPStatus.INFEASIBLE
    obj = 0.5 * float(x @ h_mat @ x) + float(c_vec @ x)
    return QPResult(x, status, obj, it, z, y, kkt)


def _assemble_inequalities(n, g_mat, h_vec, lb, ub):
    """Stack user inequalities with box rows (skipping infinities)."""
    blocks_g: list[np.ndarray] = []
    blocks_h: list[np.ndarray] = []
    if g_mat is not None:
        gm = np.atleast_2d(np.asarray(g_mat, dtype=np.float64))
        hv = np.asarray(h_vec, dtype=np.float64).reshape(-1)
        if gm.shape[1] != n or gm.shape[0] != hv.shape[0]:
            raise ValueError("inequality block shape mismatch")
        blocks_g.append(gm)
        blocks_h.append(hv)
    eye = np.eye(n)
    if ub is not None:
        ub_arr = np.broadcast_to(
            np.asarray(ub, dtype=np.float64), (n,)).astype(float)
        finite = np.isfinite(ub_arr)
        if finite.any():
            blocks_g.append(eye[finite])
            blocks_h.append(ub_arr[finite])
    if lb is not None:
        lb_arr = np.broadcast_to(
            np.asarray(lb, dtype=np.float64), (n,)).astype(float)
        finite = np.isfinite(lb_arr)
        if finite.any():
            blocks_g.append(-eye[finite])
            blocks_h.append(-lb_arr[finite])
    if not blocks_g:
        return np.zeros((0, n)), np.zeros(0)
    return np.vstack(blocks_g), np.concatenate(blocks_h)


def _newton_step(h_mat, g, a_mat, s, z, r_dual, r_prim, r_eq, r_cent):
    """Solve one perturbed-KKT Newton system via block elimination.

    Eliminating ``ds = -(r_cent + s·dz)/z`` and then ``dz`` yields the
    reduced SPD system ``(H + Gᵀ diag(z/s) G) dx + Aᵀ dy = rhs`` bordered
    by the equality rows.
    """
    n = h_mat.shape[0]
    p = a_mat.shape[0]
    w = z / s                      # diag scaling
    # r2 enters as: G dx - diag(s/z) dz = -r_prim + r_cent / z
    r2 = -r_prim + r_cent / z
    reduced = h_mat + (g.T * w) @ g
    rhs_x = -r_dual + g.T @ (w * r2)
    if p:
        kkt = np.zeros((n + p, n + p))
        kkt[:n, :n] = reduced
        kkt[:n, n:] = a_mat.T
        kkt[n:, :n] = a_mat
        rhs = np.concatenate([rhs_x, -r_eq])
        try:
            sol = np.linalg.solve(kkt, rhs)
        except np.linalg.LinAlgError:
            sol = np.linalg.lstsq(kkt, rhs, rcond=None)[0]
        dx, dy = sol[:n], sol[n:]
    else:
        try:
            dx = np.linalg.solve(reduced, rhs_x)
        except np.linalg.LinAlgError:
            dx = np.linalg.lstsq(reduced, rhs_x, rcond=None)[0]
        dy = np.zeros(0)
    dz = w * (g @ dx - r2)
    ds = -(r_cent + s * dz) / z
    return dx, dy, dz, ds


def _step_length(s, ds, z, dz, *, tau: float) -> float:
    """Largest step in (0, 1] keeping ``s`` and ``z`` positive."""
    alpha = 1.0
    neg_s = ds < 0
    if neg_s.any():
        alpha = min(alpha, float(np.min(-s[neg_s] / ds[neg_s])) * tau)
    neg_z = dz < 0
    if neg_z.any():
        alpha = min(alpha, float(np.min(-z[neg_z] / dz[neg_z])) * tau)
    return max(min(alpha, 1.0), 0.0)
