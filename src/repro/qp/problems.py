"""QP problem builders for the WQRTQ refinement steps.

Two concrete optimization problems recur in the paper:

* **MQP core** — the closest point to ``q`` inside the safe region
  (intersection of score half-spaces, boxed to ``[0, q]``):
  :func:`closest_point_in_halfspaces`.
* **Weight projection** — the closest simplex vector to a why-not
  vector that places ``q`` on a given separating hyperplane
  ``w · (p - q) = 0``.  The paper's MWK avoids enumerating these exact
  projections (exponentially many rank configurations) by sampling, but
  the projection itself is useful for tests and for the sampler's
  quality ablation: :func:`closest_weight_with_rank_plane`.
"""

from __future__ import annotations

import numpy as np

from repro.qp.solver import QPResult, solve_qp


def closest_point_in_halfspaces(q, a_matrix, b_vector, *, lower=None,
                                upper=None) -> QPResult:
    """``argmin ||x - q||²`` subject to ``A x <= b`` and box bounds.

    Expands the objective to the standard form ``½xᵀHx + cᵀx`` with
    ``H = 2I`` and ``c = -2q`` — exactly the matrices spelled out in
    Section 4.2 of the paper.

    Parameters
    ----------
    q:
        Reference point (the original query point).
    a_matrix, b_vector:
        Half-space system: each row of ``a_matrix`` is a why-not
        weighting vector, each ``b_vector`` entry the score of its
        top-k-th point.
    lower, upper:
        Box bounds; the paper uses ``[0, q]``.
    """
    qv = np.asarray(q, dtype=np.float64).reshape(-1)
    d = qv.shape[0]
    h_mat = 2.0 * np.eye(d)
    c_vec = -2.0 * qv
    result = solve_qp(h_mat, c_vec, a_matrix, b_vector,
                      lb=lower, ub=upper)
    # Report the geometric objective ||x - q||² (plus-constant shift).
    result.objective = float(np.sum((result.x - qv) ** 2))
    return result


def closest_weight_with_rank_plane(w, p, q) -> QPResult:
    """Closest simplex vector to ``w`` scoring ``p`` and ``q`` equally.

    Solves ``argmin ||w' - w||²`` subject to ``w' >= 0``,
    ``sum(w') = 1`` and ``w' · (p - q) = 0`` — the projection of a
    why-not vector onto one of the candidate hyperplanes "formed by I
    and q" (Section 4.3).  He & Lo [14] prove the optimal modified
    weight lies on one such hyperplane for a fixed target rank.
    """
    wv = np.asarray(w, dtype=np.float64).reshape(-1)
    d = wv.shape[0]
    diff = (np.asarray(p, dtype=np.float64)
            - np.asarray(q, dtype=np.float64)).reshape(-1)
    h_mat = 2.0 * np.eye(d)
    c_vec = -2.0 * wv
    a_eq = np.vstack([np.ones(d), diff])
    b_eq = np.array([1.0, 0.0])
    result = solve_qp(h_mat, c_vec, a_mat=a_eq, b_vec=b_eq,
                      lb=np.zeros(d))
    result.objective = float(np.sum((result.x - wv) ** 2))
    return result
