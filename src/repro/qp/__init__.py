"""Convex quadratic programming, from scratch.

The MQP algorithm of the paper finds the refined query point by solving

    min  ½ xᵀ H x + cᵀ x
    s.t. A x <= b,   lb <= x <= ub,

with the interior-point code *QuadProg* of Monteiro & Adler [26].  This
package re-implements that capability as a primal–dual interior-point
method with an infeasible start (no phase-I needed), optionally with
linear equality constraints (used for weight-space projections onto the
simplex).  Results carry KKT residuals so callers and tests can verify
optimality certificates directly.
"""

from repro.qp.problems import (
    closest_point_in_halfspaces,
    closest_weight_with_rank_plane,
)
from repro.qp.solver import QPResult, QPStatus, solve_qp

__all__ = [
    "QPResult",
    "QPStatus",
    "closest_point_in_halfspaces",
    "closest_weight_with_rank_plane",
    "solve_qp",
]
