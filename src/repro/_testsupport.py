"""Shared test-infrastructure helpers (no runtime API).

Currently just the global per-test timeout guard used by the
``tests/`` and ``benchmarks/`` conftests: the suite exercises a
threaded HTTP daemon and an async job pool, and a stuck job or a
never-draining poll loop must fail one test loudly, not hang CI.
Implemented with ``SIGALRM`` (no third-party plugin): the alarm fires
in the main thread and raises, so worker threads can't mask it.
POSIX-only; elsewhere tests simply run without the guard.
"""

from __future__ import annotations

import contextlib
import signal


@contextlib.contextmanager
def alarm_timeout(seconds: int, nodeid: str, *,
                  what: str = "test"):
    """Raise ``TimeoutError`` in the main thread after ``seconds``.

    No-op when ``seconds <= 0`` or the platform lacks ``SIGALRM``.
    The previous handler and any pending alarm are restored on exit.
    """
    if seconds <= 0 or not hasattr(signal, "SIGALRM"):
        yield                              # pragma: no cover
        return

    def _timed_out(signum, frame):
        raise TimeoutError(f"{what} exceeded the global {seconds}s "
                           f"timeout: {nodeid}")

    previous = signal.signal(signal.SIGALRM, _timed_out)
    signal.alarm(seconds)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)
