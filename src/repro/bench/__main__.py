"""``python -m repro.bench`` — regenerate the paper's figures.

Examples
--------
::

    python -m repro.bench fig7               # scaled grid (fast)
    python -m repro.bench fig9 --paper-scale # Table 1 sizes (slow!)
    python -m repro.bench all                # every figure + ablations
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.config import PAPER_PARAMS, SCALED_PARAMS
from repro.bench.figures import FIGURES


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the evaluation figures of 'Answering "
                    "Why-not Questions on Reverse Top-k Queries'.")
    parser.add_argument("figure",
                        choices=sorted(FIGURES) + ["all"],
                        help="which figure/ablation to run")
    parser.add_argument("--paper-scale", action="store_true",
                        help="use Table 1's original sizes (up to "
                             "1M points; hours of runtime)")
    args = parser.parse_args(argv)

    grid = PAPER_PARAMS if args.paper_scale else SCALED_PARAMS
    targets = sorted(FIGURES) if args.figure == "all" else [args.figure]
    for name in targets:
        FIGURES[name](grid)
    return 0


if __name__ == "__main__":
    sys.exit(main())
