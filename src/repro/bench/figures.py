"""Per-figure experiment drivers (Figures 7-12 + ablations).

Each ``figN`` function sweeps exactly the parameter its figure varies,
holding everything else at the grid's defaults, and returns the rows
it printed — callers (the CLI, EXPERIMENTS.md regeneration, tests) can
post-process them.

Datasets per figure follow the paper: Figures 7-8 use the synthetic
distributions only; Figures 9-12 add the Household and NBA stand-ins.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.bench.config import SCALED_PARAMS, ParameterGrid
from repro.bench.harness import (
    CellResult,
    ExperimentCell,
    print_rows,
    run_cell,
)


def _default_cell(grid: ParameterGrid, dataset: str,
                  **overrides) -> ExperimentCell:
    n = grid.real_sizes.get(dataset, grid.default_cardinality)
    params = dict(dataset=dataset, n=n, d=grid.default_dim,
                  k=grid.default_k, rank=grid.default_rank,
                  wm_size=grid.default_wm_size,
                  sample_size=grid.default_sample_size, seed=0)
    params.update(overrides)
    if dataset in grid.real_sizes:
        # Real datasets have fixed dimensionality.
        params["d"] = 13 if dataset == "nba" else 6
    return ExperimentCell(**params)


def _sweep(grid: ParameterGrid, datasets: Iterable[str], vary: str,
           values: Iterable, **fixed) -> list[CellResult]:
    results = []
    for dataset in datasets:
        for value in values:
            cell = _default_cell(grid, dataset, **{vary: value},
                                 **fixed)
            results.append(run_cell(cell))
    return results


def fig7(grid: ParameterGrid = SCALED_PARAMS, *,
         quiet: bool = False) -> list[dict]:
    """Figure 7: cost vs. dimensionality (Independent, Anti-corr.)."""
    results = _sweep(grid, grid.synthetic_datasets, "d", grid.dims)
    rows = [r.row() for r in results]
    if not quiet:
        print_rows("Figure 7: WQRTQ cost vs. dimensionality", rows, "d")
    return rows


def fig8(grid: ParameterGrid = SCALED_PARAMS, *,
         quiet: bool = False) -> list[dict]:
    """Figure 8: cost vs. dataset cardinality."""
    results = _sweep(grid, grid.synthetic_datasets, "n",
                     grid.cardinalities)
    rows = [r.row() for r in results]
    if not quiet:
        print_rows("Figure 8: WQRTQ cost vs. dataset cardinality",
                   rows, "n")
    return rows


def fig9(grid: ParameterGrid = SCALED_PARAMS, *,
         quiet: bool = False) -> list[dict]:
    """Figure 9: cost vs. k (all four datasets)."""
    datasets = grid.real_datasets + grid.synthetic_datasets
    results = _sweep(grid, datasets, "k", grid.ks)
    rows = [r.row() for r in results]
    if not quiet:
        print_rows("Figure 9: WQRTQ cost vs. k", rows, "k")
    return rows


def fig10(grid: ParameterGrid = SCALED_PARAMS, *,
          quiet: bool = False) -> list[dict]:
    """Figure 10: cost vs. actual rank of q under Wm."""
    datasets = grid.real_datasets + grid.synthetic_datasets
    results = _sweep(grid, datasets, "rank", grid.ranks)
    rows = [r.row() for r in results]
    if not quiet:
        print_rows("Figure 10: WQRTQ cost vs. actual ranking under Wm",
                   rows, "rank")
    return rows


def fig11(grid: ParameterGrid = SCALED_PARAMS, *,
          quiet: bool = False) -> list[dict]:
    """Figure 11: cost vs. |Wm|."""
    datasets = grid.real_datasets + grid.synthetic_datasets
    results = _sweep(grid, datasets, "wm_size", grid.wm_sizes)
    rows = [r.row() for r in results]
    if not quiet:
        print_rows("Figure 11: WQRTQ cost vs. |Wm|", rows, "wm")
    return rows


def fig12(grid: ParameterGrid = SCALED_PARAMS, *,
          quiet: bool = False) -> list[dict]:
    """Figure 12: cost vs. sample size."""
    datasets = grid.real_datasets + grid.synthetic_datasets
    results = _sweep(grid, datasets, "sample_size", grid.sample_sizes)
    rows = [r.row() for r in results]
    if not quiet:
        print_rows("Figure 12: WQRTQ cost vs. sample size", rows, "S")
    return rows


# ---------------------------------------------------------------------
# Ablations (design choices of Section 4, beyond the paper's figures)
# ---------------------------------------------------------------------

def ablation_reuse(grid: ParameterGrid = SCALED_PARAMS, *,
                   quiet: bool = False) -> list[dict]:
    """MQWK with vs. without the R-tree reuse cache (Section 4.4)."""
    import time

    import numpy as np

    from repro.bench.harness import build_workload
    from repro.core.mqwk import modify_query_weights_and_k

    rows = []
    for dataset in grid.synthetic_datasets:
        cell = _default_cell(grid, dataset)
        query = build_workload(cell)
        query.rtree
        for use_reuse in (True, False):
            start = time.perf_counter()
            res = modify_query_weights_and_k(
                query, sample_size=cell.sample_size,
                rng=np.random.default_rng(0), use_reuse=use_reuse)
            elapsed = time.perf_counter() - start
            rows.append({"dataset": dataset, "reuse": use_reuse,
                         "time": elapsed, "penalty": res.penalty})
    if not quiet:
        print("\n=== Ablation: MQWK reuse technique ===")
        print(f"{'dataset':>16} {'reuse':>6} {'time(s)':>9} "
              f"{'penalty':>8}")
        for r in rows:
            print(f"{r['dataset']:>16} {str(r['reuse']):>6} "
                  f"{r['time']:>9.3f} {r['penalty']:>8.3f}")
    return rows


def ablation_sampler(grid: ParameterGrid = SCALED_PARAMS, *,
                     quiet: bool = False) -> list[dict]:
    """Hyperplane-restricted sampling vs. naive simplex sampling.

    The paper restricts MWK's sample space to the hyperplanes spanned
    by q and its incomparable points.  This ablation gives a naive
    sampler the same budget on the whole simplex and compares the
    achieved penalties.
    """
    import numpy as np

    from repro.bench.harness import build_workload
    from repro.core.incomparable import find_incomparable
    from repro.core.mwk import modify_weights_and_k
    from repro.core.penalty import DEFAULT_PENALTY
    from repro.core.sampling import sample_simplex

    rows = []
    for dataset in grid.synthetic_datasets:
        cell = _default_cell(grid, dataset)
        query = build_workload(cell)
        hyper = modify_weights_and_k(
            query, sample_size=cell.sample_size,
            rng=np.random.default_rng(0), include_originals=False)

        # Naive: same budget, samples from the whole simplex.  Re-run
        # the scan with pre-drawn samples by monkey-free injection:
        # emulate by drawing simplex samples and calling the core with
        # a patched sampler is invasive; instead measure quality as
        # "best achievable penalty from naive samples" directly.
        inc = find_incomparable(query.rtree, query.q)
        naive_samples = sample_simplex(np.random.default_rng(0),
                                       cell.sample_size, cell.d)
        from repro.core.penalty import penalty_weights_k
        from repro.core.sampling import ranks_under_weights
        inc_pts = query.points[inc.incomparable_ids]
        ranks = ranks_under_weights(naive_samples, inc_pts,
                                    inc.n_dominating, query.q)
        k_max = hyper.k_max
        best = 0.5  # the pure-k fallback
        order = np.argsort(ranks)
        w0 = query.why_not[0]
        for idx in order:
            if ranks[idx] > k_max:
                break
            cand = naive_samples[idx].reshape(1, -1)
            pen = penalty_weights_k(
                query.why_not[:1], cand, cell.k,
                max(cell.k, int(ranks[idx])), k_max, DEFAULT_PENALTY)
            best = min(best, pen)
        rows.append({"dataset": dataset,
                     "hyperplane_penalty": hyper.penalty,
                     "naive_penalty": float(best)})
    if not quiet:
        print("\n=== Ablation: MWK sample space ===")
        print(f"{'dataset':>16} {'hyperplane':>11} {'naive':>8}")
        for r in rows:
            print(f"{r['dataset']:>16} {r['hyperplane_penalty']:>11.4f}"
                  f" {r['naive_penalty']:>8.4f}")
    return rows


def ablation_topk(grid: ParameterGrid = SCALED_PARAMS, *,
                  quiet: bool = False) -> list[dict]:
    """BRS vs. sequential scan inside MQP's k-th-point phase."""
    import time

    from repro.bench.harness import build_workload
    from repro.core.mqp import modify_query_point

    rows = []
    for dataset in grid.synthetic_datasets:
        cell = _default_cell(grid, dataset)
        query = build_workload(cell)
        query.rtree
        for use_rtree in (True, False):
            start = time.perf_counter()
            res = modify_query_point(query, use_rtree=use_rtree)
            elapsed = time.perf_counter() - start
            rows.append({"dataset": dataset, "engine":
                         "BRS" if use_rtree else "scan",
                         "time": elapsed, "penalty": res.penalty})
    if not quiet:
        print("\n=== Ablation: MQP top-k engine ===")
        print(f"{'dataset':>16} {'engine':>6} {'time(s)':>9} "
              f"{'penalty':>8}")
        for r in rows:
            print(f"{r['dataset']:>16} {r['engine']:>6} "
                  f"{r['time']:>9.3f} {r['penalty']:>8.3f}")
    return rows


FIGURES = {
    "fig7": fig7, "fig8": fig8, "fig9": fig9, "fig10": fig10,
    "fig11": fig11, "fig12": fig12,
    "ablation-reuse": ablation_reuse,
    "ablation-sampler": ablation_sampler,
    "ablation-topk": ablation_topk,
}
