"""Workload construction and single-cell measurement.

A *cell* is one point of a figure: one dataset, one parameter setting,
three algorithms.  ``run_cell`` builds the workload (dataset, R-tree,
why-not vector set, query point with the prescribed rank), executes
MQP, MWK and MQWK, and reports wall-clock time and penalty for each —
the two metrics every figure of the paper plots.

Timing covers query processing only (the R-tree is built once per
cell, outside the timed region), matching the paper's setup where the
index pre-exists.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.mqp import modify_query_point
from repro.core.mqwk import modify_query_weights_and_k
from repro.core.mwk import modify_weights_and_k
from repro.core.types import WhyNotQuery
from repro.data import make_dataset, preference_set, query_point_with_rank
from repro.engine.context import DatasetContext
from repro.geometry.vectors import normalize_weight
from repro.topk.scan import rank_of_scan

ALGORITHMS = ("MQP", "MWK", "MQWK")


@dataclass(frozen=True)
class ExperimentCell:
    """One measurement point: dataset × parameters."""

    dataset: str
    n: int
    d: int
    k: int
    rank: int
    wm_size: int
    sample_size: int
    seed: int = 0

    def label(self) -> str:
        return (f"{self.dataset}[n={self.n}, d={self.d}, k={self.k}, "
                f"rank={self.rank}, |Wm|={self.wm_size}, "
                f"|S|={self.sample_size}]")


@dataclass
class CellResult:
    """Times (seconds) and penalties per algorithm for one cell."""

    cell: ExperimentCell
    times: dict = field(default_factory=dict)
    penalties: dict = field(default_factory=dict)
    meta: dict = field(default_factory=dict)

    def row(self) -> dict:
        """Flat dict for table printing / serialization."""
        out = {"dataset": self.cell.dataset, "n": self.cell.n,
               "d": self.cell.d, "k": self.cell.k,
               "rank": self.cell.rank, "wm": self.cell.wm_size,
               "S": self.cell.sample_size}
        for alg in ALGORITHMS:
            if alg in self.times:
                out[f"{alg}_time"] = self.times[alg]
                out[f"{alg}_penalty"] = self.penalties[alg]
        return out


def build_context(cell: ExperimentCell) -> DatasetContext:
    """The shared per-cell catalogue context (dataset, cached index)."""
    points = make_dataset(cell.dataset, cell.n, cell.d, seed=cell.seed)
    return DatasetContext(points)


def build_workload(cell: ExperimentCell, *,
                   context: DatasetContext | None = None) -> WhyNotQuery:
    """Materialize the why-not question a cell prescribes.

    The first why-not vector is drawn uniformly from the simplex and
    the query point is chosen so its rank under that vector equals
    ``cell.rank`` (the Figure 10 knob).  Additional why-not vectors
    (``|Wm| > 1``, Figure 11) are small perturbations of the first,
    accepted only if the query point is genuinely missing from their
    top-k — mirroring a set of like-minded customers the paper's
    market scenario implies.

    When ``context`` is given (built by :func:`build_context` for the
    same cell), the question binds to its shared R-tree; otherwise a
    private context is created.
    """
    if cell.rank <= cell.k:
        raise ValueError("cell.rank must exceed cell.k for a why-not "
                         "question to exist")
    if context is None:
        context = build_context(cell)
    points = context.points
    rng = np.random.default_rng(cell.seed + 1)
    base = preference_set(1, cell.d, seed=cell.seed + 2)[0]
    q = query_point_with_rank(points, base, cell.rank)

    vectors = [base]
    attempts = 0
    while len(vectors) < cell.wm_size:
        attempts += 1
        if attempts > 500:
            raise RuntimeError("could not build a why-not set; "
                               "perturbations keep q inside the top-k")
        candidate = normalize_weight(
            np.clip(base + rng.normal(0.0, 0.05, cell.d), 1e-6, None))
        if rank_of_scan(points, candidate, q) > cell.k:
            vectors.append(candidate)

    return context.question(q, cell.k, np.asarray(vectors))


def run_cell(cell: ExperimentCell,
             algorithms: tuple[str, ...] = ALGORITHMS,
             *, mqwk_q_samples: int | None = None) -> CellResult:
    """Execute the requested algorithms on one cell and time them.

    ``mqwk_q_samples`` caps MQWK's query-point sample count
    independently of the weight sample size (the paper sets them
    equal, which we default to as well).

    The three algorithms share one :class:`DatasetContext` (the index
    is built once, outside the timed region); the ``FindIncom``
    traversal stays inside the timed region, as in the paper's setup.
    """
    context = build_context(cell)
    query = build_workload(cell, context=context)
    context.tree  # build the index outside the timed region
    result = CellResult(cell=cell)

    if "MQP" in algorithms:
        start = time.perf_counter()
        res = modify_query_point(query)
        result.times["MQP"] = time.perf_counter() - start
        result.penalties["MQP"] = res.penalty

    if "MWK" in algorithms:
        rng = np.random.default_rng(cell.seed + 10)
        start = time.perf_counter()
        res = modify_weights_and_k(query,
                                   sample_size=cell.sample_size,
                                   rng=rng)
        result.times["MWK"] = time.perf_counter() - start
        result.penalties["MWK"] = res.penalty
        result.meta["k_max"] = res.k_max

    if "MQWK" in algorithms:
        rng = np.random.default_rng(cell.seed + 20)
        start = time.perf_counter()
        res = modify_query_weights_and_k(
            query, sample_size=cell.sample_size,
            q_sample_size=mqwk_q_samples, rng=rng)
        result.times["MQWK"] = time.perf_counter() - start
        result.penalties["MQWK"] = res.penalty

    return result


def print_rows(title: str, rows: list[dict], vary: str) -> None:
    """Print one figure's data in the paper's layout.

    One block per dataset; columns: the varied parameter, then
    time/penalty per algorithm (time on a log axis in the paper; raw
    seconds here).
    """
    print(f"\n=== {title} ===")
    datasets = sorted({r["dataset"] for r in rows})
    for ds in datasets:
        print(f"\n--- {ds} ---")
        header = (f"{vary:>8} | " + " | ".join(
            f"{alg} time(s)  penalty" for alg in ALGORITHMS))
        print(header)
        print("-" * len(header))
        for r in (r for r in rows if r["dataset"] == ds):
            cells = []
            for alg in ALGORITHMS:
                t = r.get(f"{alg}_time")
                p = r.get(f"{alg}_penalty")
                cells.append(f"{t:>11.3f}  {p:>7.3f}"
                             if t is not None else " " * 20)
            print(f"{r[vary]:>8} | " + " | ".join(cells))
