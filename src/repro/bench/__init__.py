"""Benchmark harness for the paper's evaluation (Section 5).

* :mod:`repro.bench.config` — Table 1's parameter grid (paper scale)
  and the scaled-down defaults used on a laptop / in CI.
* :mod:`repro.bench.harness` — workload construction and single-cell
  measurement (one dataset × one parameter setting × three
  algorithms).
* :mod:`repro.bench.figures` — one driver per figure (7-12) plus the
  ablation studies; each prints the same rows the paper plots.

Command line: ``python -m repro.bench fig9 --paper-scale`` (see
``python -m repro.bench --help``).
"""

from repro.bench.config import PAPER_PARAMS, SCALED_PARAMS, ParameterGrid
from repro.bench.harness import CellResult, ExperimentCell, run_cell

__all__ = [
    "CellResult",
    "ExperimentCell",
    "PAPER_PARAMS",
    "ParameterGrid",
    "SCALED_PARAMS",
    "run_cell",
]
