"""Experiment parameter grids (the paper's Table 1).

``PAPER_PARAMS`` reproduces Table 1 verbatim.  ``SCALED_PARAMS`` is the
default for this pure-Python reproduction: the sweeps keep the same
*shape* (factors and ratios) at roughly 1/5 of the paper's sizes so a
full figure regenerates in minutes rather than hours.  Pass
``--paper-scale`` to any driver to use the original grid.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class ParameterGrid:
    """One experiment grid: per-parameter sweep ranges and defaults.

    Attributes mirror Table 1 of the paper; ``default_*`` values are
    used for every parameter except the one a figure varies.
    """

    dims: tuple[int, ...]
    default_dim: int
    cardinalities: tuple[int, ...]
    default_cardinality: int
    ks: tuple[int, ...]
    default_k: int
    ranks: tuple[int, ...]
    default_rank: int
    wm_sizes: tuple[int, ...]
    default_wm_size: int
    sample_sizes: tuple[int, ...]
    default_sample_size: int
    synthetic_datasets: tuple[str, ...] = ("independent",
                                           "anticorrelated")
    real_datasets: tuple[str, ...] = ("household", "nba")
    real_sizes: dict = field(default_factory=lambda: {
        "nba": 17_000, "household": 127_000})


#: Table 1 of the paper, verbatim.
PAPER_PARAMS = ParameterGrid(
    dims=(2, 3, 4, 5),
    default_dim=3,
    cardinalities=(10_000, 50_000, 100_000, 500_000, 1_000_000),
    default_cardinality=100_000,
    ks=(10, 20, 30, 40, 50),
    default_k=10,
    ranks=(11, 101, 501, 1001),
    default_rank=101,
    wm_sizes=(1, 2, 3, 4, 5),
    default_wm_size=1,
    sample_sizes=(100, 200, 400, 800, 1600),
    default_sample_size=800,
)

#: Laptop/CI-scale grid: same sweep shapes, ~1/5 sizes.
SCALED_PARAMS = ParameterGrid(
    dims=(2, 3, 4, 5),
    default_dim=3,
    cardinalities=(2_000, 10_000, 20_000, 50_000, 100_000),
    default_cardinality=20_000,
    ks=(10, 20, 30, 40, 50),
    default_k=10,
    ranks=(11, 51, 101, 201),
    default_rank=51,
    wm_sizes=(1, 2, 3, 4, 5),
    default_wm_size=1,
    sample_sizes=(25, 50, 100, 200, 400),
    default_sample_size=200,
    real_sizes={"nba": 5_000, "household": 20_000},
)
