"""Weighting vectors and linear scoring.

The paper (and this reproduction) uses the linear scoring function

    f(w, p) = sum_i w[i] * p[i]

over a d-dimensional dataset, where the weighting vector ``w`` satisfies
``w[i] >= 0`` and ``sum_i w[i] == 1`` (it lives on the standard simplex)
and *smaller scores are preferable*.

All functions accept plain sequences or NumPy arrays and are tolerant of
float noise up to ``ATOL``.
"""

from __future__ import annotations

import numpy as np

#: Absolute tolerance used for simplex-membership checks.
ATOL = 1e-9


def as_array(x, *, name: str = "array") -> np.ndarray:
    """Convert ``x`` to a float64 NumPy array, validating finiteness.

    Parameters
    ----------
    x:
        Any array-like of numbers.
    name:
        Label used in error messages.

    Returns
    -------
    numpy.ndarray
        A float64 array sharing memory with ``x`` when possible.

    Raises
    ------
    ValueError
        If ``x`` contains NaN or infinities.
    """
    arr = np.asarray(x, dtype=np.float64)
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} must contain only finite values")
    return arr


def is_valid_weight(w, *, atol: float = ATOL) -> bool:
    """Return True iff ``w`` is a valid weighting vector.

    A valid weighting vector is non-negative and sums to 1 (within
    ``atol``), i.e. it lies on the standard (d-1)-simplex.

    >>> is_valid_weight([0.3, 0.7])
    True
    >>> is_valid_weight([0.5, 0.6])
    False
    >>> is_valid_weight([-0.1, 1.1])
    False
    """
    arr = np.asarray(w, dtype=np.float64)
    if arr.ndim != 1 or arr.size == 0:
        return False
    if not np.all(np.isfinite(arr)):
        return False
    if np.any(arr < -atol):
        return False
    return bool(abs(float(arr.sum()) - 1.0) <= max(atol, atol * arr.size))


def normalize_weight(w) -> np.ndarray:
    """Project a non-negative vector onto the simplex by L1 normalization.

    Negative components are clipped to zero first.  Raises ``ValueError``
    when the clipped vector is all-zero (no direction to normalize).

    >>> normalize_weight([2.0, 2.0]).tolist()
    [0.5, 0.5]
    """
    arr = as_array(w, name="weight")
    arr = np.clip(arr, 0.0, None)
    total = float(arr.sum())
    if total <= 0.0:
        raise ValueError("cannot normalize an all-zero weight vector")
    return arr / total


def score(w, p) -> float:
    """Score a single point ``p`` under weighting vector ``w``.

    ``f(w, p) = sum_i w[i] * p[i]``; smaller is better.

    >>> score([0.5, 0.5], [4.0, 4.0])
    4.0
    """
    return float(np.dot(np.asarray(w, dtype=np.float64),
                        np.asarray(p, dtype=np.float64)))


def score_many(w, points) -> np.ndarray:
    """Score every row of ``points`` (shape ``(n, d)``) under one ``w``.

    Returns a length-``n`` float array.  This is the vectorized kernel
    used by every rank computation in the library.
    """
    pts = np.asarray(points, dtype=np.float64)
    wv = np.asarray(w, dtype=np.float64)
    if pts.ndim == 1:
        pts = pts.reshape(1, -1)
    return pts @ wv


def score_matrix(weights, points) -> np.ndarray:
    """Score every point under every weighting vector.

    Delegates to :func:`repro.engine.kernels.score_matrix` (the
    library's single chunked implementation of this primitive).

    Parameters
    ----------
    weights:
        Array of shape ``(m, d)``.
    points:
        Array of shape ``(n, d)``.

    Returns
    -------
    numpy.ndarray
        Shape ``(m, n)``; entry ``[i, j]`` is ``f(weights[i], points[j])``.
    """
    from repro.engine.kernels import score_matrix as _kernel

    return _kernel(weights, points)


def weight_distance(w1, w2) -> float:
    """Euclidean distance ``|w1 - w2|`` between two weighting vectors.

    This is the per-vector modification cost used by the MWK penalty
    model (Eq. 3 of the paper).  Its maximum over the simplex is
    ``sqrt(2)`` (achieved between two distinct vertices).
    """
    a = np.asarray(w1, dtype=np.float64)
    b = np.asarray(w2, dtype=np.float64)
    return float(np.linalg.norm(a - b))


#: Maximum Euclidean distance between two points of the standard simplex.
MAX_SIMPLEX_DISTANCE = float(np.sqrt(2.0))
