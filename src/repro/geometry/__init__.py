"""Geometric primitives for linear preference queries.

This package provides the low-level vector, dominance, and hyperplane
machinery that every higher layer (top-k engines, reverse top-k engines,
and the WQRTQ why-not core) builds on:

* :mod:`repro.geometry.vectors` — weighting-vector validation and linear
  scoring, ``f(w, p) = sum_i w[i] * p[i]`` with *smaller is better*.
* :mod:`repro.geometry.dominance` — Pareto dominance and incomparability
  tests, both scalar and vectorized.
* :mod:`repro.geometry.hyperplane` — the hyperplane ``H(w, p)`` and
  half-space ``HS(w, p)`` constructs of Lemma 1 / Definition 8.
* :mod:`repro.geometry.convex2d` — an exact 2-D convex-polygon engine used
  to materialize safe regions in the plane (verification and plotting).
"""

from repro.geometry.convex2d import (
    Polygon2D,
    clip_polygon_halfplane,
    halfplane_intersection,
)
from repro.geometry.dominance import (
    dominates,
    dominance_partition,
    incomparable,
    pareto_front_mask,
)
from repro.geometry.hyperplane import Hyperplane, side_of
from repro.geometry.vectors import (
    is_valid_weight,
    normalize_weight,
    score,
    score_many,
    score_matrix,
)

__all__ = [
    "Hyperplane",
    "Polygon2D",
    "clip_polygon_halfplane",
    "dominance_partition",
    "dominates",
    "halfplane_intersection",
    "incomparable",
    "is_valid_weight",
    "normalize_weight",
    "pareto_front_mask",
    "score",
    "score_many",
    "score_matrix",
    "side_of",
]
