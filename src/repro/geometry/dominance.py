"""Pareto dominance tests (smaller-is-better convention).

A point ``a`` *dominates* ``b`` when ``a[i] <= b[i]`` for every dimension
and ``a[j] < b[j]`` for at least one.  Two points are *incomparable* when
neither dominates the other.  Dominance drives the ``FindIncom`` routine
of the paper (Algorithm 2, lines 20-29): points dominating the query
point ``q`` outrank it under *every* weighting vector, points dominated
by ``q`` never outrank it, and only the incomparable points can switch
sides depending on the weighting vector.
"""

from __future__ import annotations

import numpy as np


def dominates(a, b, *, strict: bool = True) -> bool:
    """Return True iff ``a`` dominates ``b``.

    With ``strict=True`` (the default and the paper's definition) equality
    in every dimension does *not* count as dominance.

    >>> dominates([1, 2], [2, 3])
    True
    >>> dominates([1, 2], [1, 2])
    False
    >>> dominates([1, 2], [1, 2], strict=False)
    True
    """
    av = np.asarray(a, dtype=np.float64)
    bv = np.asarray(b, dtype=np.float64)
    if av.shape != bv.shape:
        raise ValueError("dominance requires equal-dimensional points")
    if not np.all(av <= bv):
        return False
    if strict:
        return bool(np.any(av < bv))
    return True


def incomparable(a, b) -> bool:
    """Return True iff neither ``a`` nor ``b`` dominates the other.

    >>> incomparable([1, 9], [4, 4])
    True
    >>> incomparable([1, 2], [4, 4])
    False
    """
    return not dominates(a, b) and not dominates(b, a)


def dominates_mask(points, q) -> np.ndarray:
    """Vectorized: which rows of ``points`` dominate the point ``q``.

    Returns a boolean mask of length ``len(points)``.
    """
    pts = np.atleast_2d(np.asarray(points, dtype=np.float64))
    qv = np.asarray(q, dtype=np.float64)
    le = pts <= qv
    lt = pts < qv
    return np.all(le, axis=1) & np.any(lt, axis=1)


def dominated_by_mask(points, q) -> np.ndarray:
    """Vectorized: which rows of ``points`` are dominated *by* ``q``."""
    pts = np.atleast_2d(np.asarray(points, dtype=np.float64))
    qv = np.asarray(q, dtype=np.float64)
    ge = pts >= qv
    gt = pts > qv
    return np.all(ge, axis=1) & np.any(gt, axis=1)


def dominance_partition(points, q):
    """Partition ``points`` into (D, I, S) index arrays relative to ``q``.

    * ``D`` — indices of points that dominate ``q`` (always outrank it),
    * ``I`` — indices incomparable with ``q`` (outrank it under some
      weighting vectors only),
    * ``S`` — indices dominated by ``q`` or coinciding with it (never
      strictly outrank it).

    This is the vectorized core of the paper's ``FindIncom``.

    Returns
    -------
    tuple of numpy.ndarray
        ``(dominating_idx, incomparable_idx, dominated_idx)``.
    """
    pts = np.atleast_2d(np.asarray(points, dtype=np.float64))
    dom = dominates_mask(pts, q)
    sub = dominated_by_mask(pts, q)
    equal = np.all(pts == np.asarray(q, dtype=np.float64), axis=1)
    inc = ~(dom | sub | equal)
    idx = np.arange(len(pts))
    return idx[dom], idx[inc], idx[sub | equal]


def pareto_front_mask(points) -> np.ndarray:
    """Boolean mask of the Pareto-optimal (skyline) rows of ``points``.

    Used by tests and by the anti-correlated data generator to check the
    generated skyline is large.  O(n^2 / 64) bit-ops via NumPy; fine for
    the dataset sizes exercised in tests.
    """
    pts = np.atleast_2d(np.asarray(points, dtype=np.float64))
    n = len(pts)
    mask = np.ones(n, dtype=bool)
    for i in range(n):
        if not mask[i]:
            continue
        dominated = dominated_by_mask(pts, pts[i])
        dominated[i] = False
        mask &= ~dominated
    return mask
