"""Hyperplanes and half-spaces of the WQRTQ safe-region construction.

Given a weighting vector ``w`` and a point ``p``, the hyperplane
``H(w, p) = { x : f(w, x) = f(w, p) }`` is perpendicular to ``w`` and
passes through ``p``.  Lemma 1 of the paper states that points on /
below / above the hyperplane score equal / smaller / larger than ``p``
under ``w``.  The half-space ``HS(w, p)`` (Definition 8) collects the
points scoring no worse than ``p``:

    HS(w, p) = { x : f(w, x) <= f(w, p) }.

The safe region of a query point (Lemma 3) is the intersection of the
half-spaces formed by each why-not vector and its top-k-th point.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geometry.vectors import score


@dataclass(frozen=True)
class Hyperplane:
    """The hyperplane ``H(w, p)``: ``{x : w . x = w . p}``.

    Attributes
    ----------
    normal:
        The weighting vector ``w`` (the plane's normal).
    offset:
        The score ``f(w, p)`` — the constant term of the plane equation.
    """

    normal: np.ndarray
    offset: float

    @classmethod
    def through(cls, w, p) -> "Hyperplane":
        """Build ``H(w, p)`` from a weighting vector and a point."""
        wv = np.asarray(w, dtype=np.float64).copy()
        wv.setflags(write=False)
        return cls(normal=wv, offset=score(wv, p))

    @classmethod
    def separating(cls, p, q) -> "Hyperplane":
        """The hyperplane ``{w : w . (p - q) = 0}`` in *weighting* space.

        These are the hyperplanes "formed by I and q" that the MWK sampler
        draws from: a weighting vector on this plane scores ``p`` and ``q``
        identically, so crossing it flips their relative order.
        """
        diff = (np.asarray(p, dtype=np.float64)
                - np.asarray(q, dtype=np.float64))
        diff = diff.copy()
        diff.setflags(write=False)
        return cls(normal=diff, offset=0.0)

    def evaluate(self, x) -> float:
        """Signed evaluation ``w . x - offset`` (0 on the plane)."""
        return score(self.normal, x) - self.offset

    def evaluate_many(self, xs) -> np.ndarray:
        """Vectorized :meth:`evaluate` over rows of ``xs``."""
        pts = np.atleast_2d(np.asarray(xs, dtype=np.float64))
        return pts @ self.normal - self.offset

    def contains(self, x, *, atol: float = 1e-9) -> bool:
        """True iff ``x`` lies on the hyperplane (within ``atol``)."""
        return abs(self.evaluate(x)) <= atol

    def halfspace_contains(self, x, *, atol: float = 1e-9) -> bool:
        """True iff ``x`` is in ``HS(w, p)``, i.e. scores <= the offset."""
        return self.evaluate(x) <= atol


def side_of(w, p, x, *, atol: float = 1e-9) -> int:
    """Which side of ``H(w, p)`` the point ``x`` falls on.

    Returns ``-1`` (below: strictly better score), ``0`` (on the plane),
    or ``+1`` (above: strictly worse score) — the three cases of Lemma 1.

    >>> side_of([0.5, 0.5], [1.0, 9.0], [2.0, 1.0])
    -1
    """
    value = score(w, x) - score(w, p)
    if abs(value) <= atol:
        return 0
    return -1 if value < 0 else 1


@dataclass
class HalfspaceSystem:
    """A conjunction of half-spaces ``A x <= b`` (plus box bounds).

    This is the algebraic form of a safe region that the QP layer
    consumes directly: each row of ``A`` is a why-not weighting vector,
    each entry of ``b`` the score of its top-k-th point.
    """

    a_matrix: np.ndarray
    b_vector: np.ndarray
    lower: np.ndarray | None = None
    upper: np.ndarray | None = None
    _planes: list[Hyperplane] = field(default_factory=list, repr=False)

    @classmethod
    def from_constraints(cls, weights, thresholds, *, lower=None,
                         upper=None) -> "HalfspaceSystem":
        """Assemble from per-constraint weighting vectors and score caps."""
        a = np.atleast_2d(np.asarray(weights, dtype=np.float64))
        b = np.asarray(thresholds, dtype=np.float64).reshape(-1)
        if a.shape[0] != b.shape[0]:
            raise ValueError("one threshold per weighting vector required")
        lo = None if lower is None else np.asarray(lower, dtype=np.float64)
        hi = None if upper is None else np.asarray(upper, dtype=np.float64)
        return cls(a_matrix=a, b_vector=b, lower=lo, upper=hi)

    def contains(self, x, *, atol: float = 1e-7) -> bool:
        """Membership test of ``x`` in the region (within ``atol``)."""
        xv = np.asarray(x, dtype=np.float64)
        if np.any(self.a_matrix @ xv - self.b_vector > atol):
            return False
        if self.lower is not None and np.any(xv < self.lower - atol):
            return False
        if self.upper is not None and np.any(xv > self.upper + atol):
            return False
        return True

    def violations(self, x) -> np.ndarray:
        """Per-constraint slack ``A x - b`` (positive entries violate)."""
        return self.a_matrix @ np.asarray(x, dtype=np.float64) - self.b_vector
