"""Exact 2-D convex-polygon engine (half-plane clipping).

The paper illustrates safe regions in the plane (Figure 5): the safe
region of a query point is the intersection of half-planes
``w . x <= b`` clipped to the box ``[0, q]``.  In two dimensions this
intersection can be materialized exactly with Sutherland–Hodgman
polygon clipping, which this module implements from scratch.  The
general-dimension path uses quadratic programming instead
(:mod:`repro.qp`); the 2-D polygon serves as an independent oracle in
tests and for visualisation in examples.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

_EPS = 1e-12


@dataclass(frozen=True)
class Polygon2D:
    """A convex polygon given by its vertices in counter-clockwise order.

    An empty vertex list represents the empty polygon.
    """

    vertices: tuple[tuple[float, float], ...]

    @classmethod
    def from_points(cls, pts) -> "Polygon2D":
        """Build a polygon from an ``(n, 2)`` array of CCW vertices."""
        arr = np.atleast_2d(np.asarray(pts, dtype=np.float64))
        return cls(tuple(map(tuple, arr.tolist())))

    @classmethod
    def box(cls, lower, upper) -> "Polygon2D":
        """Axis-aligned rectangle from ``lower`` to ``upper`` corners."""
        (lx, ly), (ux, uy) = lower, upper
        if ux < lx or uy < ly:
            return cls(())
        return cls(((lx, ly), (ux, ly), (ux, uy), (lx, uy)))

    @property
    def is_empty(self) -> bool:
        return len(self.vertices) == 0

    def as_array(self) -> np.ndarray:
        return np.asarray(self.vertices, dtype=np.float64).reshape(-1, 2)

    def area(self) -> float:
        """Signed shoelace area (>= 0 for CCW polygons)."""
        if len(self.vertices) < 3:
            return 0.0
        pts = self.as_array()
        x, y = pts[:, 0], pts[:, 1]
        return 0.5 * float(
            np.dot(x, np.roll(y, -1)) - np.dot(y, np.roll(x, -1))
        )

    def contains(self, point, *, atol: float = 1e-9) -> bool:
        """Point-in-convex-polygon test (boundary counts as inside)."""
        if self.is_empty:
            return False
        px, py = float(point[0]), float(point[1])
        pts = self.as_array()
        n = len(pts)
        if n == 1:
            return bool(np.allclose(pts[0], (px, py), atol=atol))
        for i in range(n):
            ax, ay = pts[i]
            bx, by = pts[(i + 1) % n]
            cross = (bx - ax) * (py - ay) - (by - ay) * (px - ax)
            if cross < -atol:
                return False
        return True

    def closest_point_to(self, target) -> tuple[float, float]:
        """The polygon point nearest (Euclidean) to ``target``.

        Checks interior membership first, then projects onto every edge.
        This is the 2-D oracle the QP solver is validated against.
        """
        if self.is_empty:
            raise ValueError("empty polygon has no closest point")
        tx, ty = float(target[0]), float(target[1])
        if self.contains((tx, ty)):
            return (tx, ty)
        pts = self.as_array()
        n = len(pts)
        best, best_d2 = None, np.inf
        for i in range(n):
            a = pts[i]
            b = pts[(i + 1) % n] if n > 1 else pts[i]
            proj = _project_to_segment((tx, ty), a, b)
            d2 = (proj[0] - tx) ** 2 + (proj[1] - ty) ** 2
            if d2 < best_d2:
                best, best_d2 = proj, d2
        return best


def _project_to_segment(p, a, b) -> tuple[float, float]:
    """Orthogonal projection of ``p`` onto segment ``ab`` (clamped)."""
    ax, ay = float(a[0]), float(a[1])
    bx, by = float(b[0]), float(b[1])
    px, py = p
    dx, dy = bx - ax, by - ay
    denom = dx * dx + dy * dy
    if denom <= _EPS:
        return (ax, ay)
    t = ((px - ax) * dx + (py - ay) * dy) / denom
    t = min(1.0, max(0.0, t))
    return (ax + t * dx, ay + t * dy)


def clip_polygon_halfplane(poly: Polygon2D, normal, offset: float,
                           *, atol: float = 1e-12) -> Polygon2D:
    """Clip ``poly`` by the half-plane ``normal . x <= offset``.

    Classic Sutherland–Hodgman step: walk the edge ring, keep inside
    vertices, and emit edge/boundary intersection points where the ring
    crosses the clipping line.
    """
    if poly.is_empty:
        return poly
    nx, ny = float(normal[0]), float(normal[1])
    pts = poly.as_array()
    n = len(pts)
    out: list[tuple[float, float]] = []
    values = pts[:, 0] * nx + pts[:, 1] * ny - offset
    for i in range(n):
        cur, nxt = pts[i], pts[(i + 1) % n]
        v_cur, v_nxt = values[i], values[(i + 1) % n]
        cur_in = v_cur <= atol
        nxt_in = v_nxt <= atol
        if cur_in:
            out.append((float(cur[0]), float(cur[1])))
        if cur_in != nxt_in:
            denom = v_cur - v_nxt
            if abs(denom) > _EPS:
                t = v_cur / denom
                ix = cur[0] + t * (nxt[0] - cur[0])
                iy = cur[1] + t * (nxt[1] - cur[1])
                out.append((float(ix), float(iy)))
    return Polygon2D(tuple(_dedupe_ring(out)))


def _dedupe_ring(ring, *, atol: float = 1e-10):
    """Drop consecutive (and wrap-around) duplicate vertices."""
    cleaned: list[tuple[float, float]] = []
    for pt in ring:
        if cleaned and (abs(pt[0] - cleaned[-1][0]) <= atol
                        and abs(pt[1] - cleaned[-1][1]) <= atol):
            continue
        cleaned.append(pt)
    while len(cleaned) > 1 and (
        abs(cleaned[0][0] - cleaned[-1][0]) <= atol
        and abs(cleaned[0][1] - cleaned[-1][1]) <= atol
    ):
        cleaned.pop()
    return cleaned


def halfplane_intersection(normals, offsets, *, lower,
                           upper) -> Polygon2D:
    """Intersect ``normals[i] . x <= offsets[i]`` with the box.

    Parameters
    ----------
    normals:
        ``(m, 2)`` array of half-plane normals.
    offsets:
        Length-``m`` array of right-hand sides.
    lower, upper:
        Corners of the bounding box the intersection starts from.

    Returns
    -------
    Polygon2D
        Possibly empty when the constraints are infeasible in the box.
    """
    poly = Polygon2D.box(tuple(lower), tuple(upper))
    norm_arr = np.atleast_2d(np.asarray(normals, dtype=np.float64))
    off_arr = np.asarray(offsets, dtype=np.float64).reshape(-1)
    for normal, offset in zip(norm_arr, off_arr):
        poly = clip_polygon_halfplane(poly, normal, float(offset))
        if poly.is_empty:
            break
    return poly
