"""Top-k query engines over linear preference functions.

Three interchangeable engines, all returning ids into the dataset array
and all following the paper's tie convention (smaller score wins; ties
broken by point id so results are deterministic):

* :mod:`repro.topk.scan` — vectorized sequential scan; the O(n) oracle
  every other engine is validated against.
* :mod:`repro.topk.brs` — the Branch-and-bound Ranked Search of Tao et
  al. [29] over the R-tree; I/O-optimal and the engine Algorithm 1 of
  the paper mounts its "find the top k-th point" phase on.
* :mod:`repro.topk.progressive` — an incremental iterator yielding
  points in rank order; used to answer the *explanation* aspect of a
  why-not question (report every point ranked above ``q``).

Two further engines from the related-work lineage round out the
substrate (and serve as independent oracles in the tests):

* :mod:`repro.topk.ta` — the Threshold Algorithm over per-dimension
  sorted lists [Fagin et al.];
* :mod:`repro.topk.onion` — convex-hull-layer (Onion) indexing in
  2-D [Chang et al., ref. 7 of the paper];
* :mod:`repro.topk.views` — PREFER-style materialized ranked views
  with watermark-bounded prefix scans [refs. 18-19].
"""

from repro.topk.brs import BRSEngine
from repro.topk.onion import OnionIndex, convex_hull_2d
from repro.topk.progressive import progressive_topk, rank_of_point
from repro.topk.scan import (
    kth_point_scan,
    rank_of_scan,
    topk_scan,
)
from repro.topk.ta import TAEngine
from repro.topk.views import PreferIndex, RankedView

__all__ = [
    "BRSEngine",
    "OnionIndex",
    "PreferIndex",
    "RankedView",
    "TAEngine",
    "convex_hull_2d",
    "kth_point_scan",
    "progressive_topk",
    "rank_of_point",
    "rank_of_scan",
    "topk_scan",
]
