"""PREFER-style materialized ranked views [Hristidis et al., SIGMOD
2001].

PREFER answers a top-k query for weighting vector ``w`` from a view
materialized for a *different* vector ``v``: the dataset is stored
sorted by ``f(v, ·)``, and a *watermark* bounds how deep the prefix
scan must go.  For non-negative data and weights,

    f(w, p) >= c · f(v, p),   c = min_i (w[i] / v[i])   (v[i] > 0),

so once the k-th best score found satisfies ``score_k <= c · s`` for
the current view score ``s``, no deeper point can improve the result.
The closer ``w`` is to ``v`` (the larger ``c``), the shorter the scan
— which is why PREFER materializes several views and picks the one
maximizing ``c``.

This is the "view-based" branch of the paper's related work ([18, 19]
and LPTA [11]); it also gives the library a fifth independent top-k
oracle.
"""

from __future__ import annotations

import numpy as np

from repro.topk.scan import topk_scan


class RankedView:
    """One materialized ranking of the dataset under a view vector."""

    def __init__(self, points, view_vector):
        pts = np.atleast_2d(np.asarray(points, dtype=np.float64))
        vv = np.asarray(view_vector, dtype=np.float64)
        if np.any(vv < 0) or vv.sum() <= 0:
            raise ValueError("view vector must be non-negative and "
                             "non-zero")
        if np.any(pts < 0):
            raise ValueError("PREFER's watermark requires "
                             "non-negative data")
        self.view_vector = vv
        scores = pts @ vv
        self.order = np.lexsort((np.arange(len(pts)), scores))
        self.view_scores = scores[self.order]
        self.points = pts

    def coverage(self, w) -> float:
        """The watermark constant ``c = min_i w[i]/v[i]`` for ``w``.

        Dimensions where ``v[i] = 0`` force ``c = 0`` unless
        ``w[i] = 0`` too (a zero-weight view column carries no
        information about that coordinate).
        """
        wv = np.asarray(w, dtype=np.float64)
        with np.errstate(divide="ignore", invalid="ignore"):
            ratios = np.where(
                self.view_vector > 0, wv / self.view_vector,
                np.where(wv > 0, 0.0, np.inf))
        c = float(np.min(ratios))
        return max(c, 0.0)

    def topk(self, w, k: int) -> tuple[np.ndarray, int]:
        """Top-k under ``w`` via the watermark-bounded prefix scan.

        Returns ``(ids, prefix_length)`` — the second element is the
        number of view entries inspected (PREFER's cost metric).
        """
        if k <= 0:
            raise ValueError("k must be positive")
        wv = np.asarray(w, dtype=np.float64)
        n = len(self.points)
        k = min(k, n)
        c = self.coverage(wv)
        best: list[tuple[float, int]] = []
        scanned = 0
        for pos in range(n):
            pid = int(self.order[pos])
            scanned += 1
            score = float(wv @ self.points[pid])
            best.append((score, pid))
            if len(best) >= k:
                best.sort()
                del best[k:]
                if c > 0 and best[k - 1][0] <= c * float(
                        self.view_scores[pos]):
                    break
        best.sort()
        return (np.asarray([pid for _, pid in best[:k]],
                           dtype=np.int64), scanned)


class PreferIndex:
    """A small family of ranked views with best-view routing."""

    def __init__(self, points, view_vectors):
        views = np.atleast_2d(np.asarray(view_vectors,
                                         dtype=np.float64))
        if len(views) == 0:
            raise ValueError("at least one view vector required")
        self.views = [RankedView(points, v) for v in views]
        self.points = self.views[0].points

    def best_view(self, w) -> RankedView:
        """The view with the largest watermark constant for ``w``."""
        return max(self.views, key=lambda view: view.coverage(w))

    def topk(self, w, k: int) -> np.ndarray:
        """Route to the best view; fall back to a scan if no view
        covers ``w`` (all coverage constants zero)."""
        view = self.best_view(w)
        if view.coverage(w) <= 0.0:
            return topk_scan(self.points, w, k)
        ids, _ = view.topk(w, k)
        return ids
