"""Onion index: convex-hull layers for linear top-k [Chang et al.,
SIGMOD 2000].

The Onion technique peels the dataset into convex-hull layers: the
minimizer of *any* linear scoring function lies on the first layer's
hull, the second-best on the first two layers, and in general the
top-k is contained in the first k layers.  A top-k query therefore
evaluates layers outward, maintaining the best-k heap, and stops once
the next layer cannot contribute (every candidate already found beats
the layer's best possible score — bounded here by each layer's own
minimum, since layer minima are non-decreasing for minimization over
nested hulls).

This reproduction implements the 2-D variant from scratch (Andrew's
monotone-chain hull, iterated peeling); it is the "layered index"
family the paper's related work cites ([7, 36]) and serves as a
fourth independent top-k oracle in the tests.
"""

from __future__ import annotations

import numpy as np


def convex_hull_2d(points) -> np.ndarray:
    """Indices of the convex hull of a 2-D point set, CCW order.

    Andrew's monotone chain, O(n log n).  Collinear boundary points
    are kept OFF the hull (strict turns), which is fine for peeling:
    they join a later layer.  Degenerate inputs (single point,
    collinear set) return the extreme points.
    """
    pts = np.atleast_2d(np.asarray(points, dtype=np.float64))
    n = len(pts)
    if n <= 2:
        return np.arange(n, dtype=np.int64)
    order = np.lexsort((pts[:, 1], pts[:, 0]))

    def cross(o, a, b) -> float:
        return ((pts[a, 0] - pts[o, 0]) * (pts[b, 1] - pts[o, 1])
                - (pts[a, 1] - pts[o, 1]) * (pts[b, 0] - pts[o, 0]))

    lower: list[int] = []
    for idx in order:
        while len(lower) >= 2 and cross(lower[-2], lower[-1],
                                        idx) <= 0:
            lower.pop()
        lower.append(int(idx))
    upper: list[int] = []
    for idx in order[::-1]:
        while len(upper) >= 2 and cross(upper[-2], upper[-1],
                                        idx) <= 0:
            upper.pop()
        upper.append(int(idx))
    hull = lower[:-1] + upper[:-1]
    if not hull:                      # fully collinear input
        hull = [int(order[0]), int(order[-1])]
    return np.asarray(hull, dtype=np.int64)


class OnionIndex:
    """Convex-hull-layer index over a 2-D dataset.

    Attributes
    ----------
    layers:
        List of id arrays, outermost (layer 0) first.  Every point
        belongs to exactly one layer.
    """

    def __init__(self, points):
        pts = np.atleast_2d(np.asarray(points, dtype=np.float64))
        if pts.shape[1] != 2:
            raise ValueError("OnionIndex is implemented for 2-D data")
        if pts.shape[0] == 0:
            raise ValueError("OnionIndex requires a non-empty dataset")
        self.points = pts
        self.layers: list[np.ndarray] = []
        remaining = np.arange(len(pts), dtype=np.int64)
        while len(remaining):
            hull_local = convex_hull_2d(pts[remaining])
            layer = remaining[hull_local]
            self.layers.append(np.sort(layer))
            mask = np.ones(len(remaining), dtype=bool)
            mask[hull_local] = False
            remaining = remaining[mask]
        #: Layers evaluated by the last query (cost metric).
        self.last_layers_scanned = 0

    @property
    def depth(self) -> int:
        return len(self.layers)

    def topk(self, w, k: int) -> np.ndarray:
        """Ids of the k best points under ``w``, via layer expansion.

        Scans layers outward; stops when ``k`` results are held and
        the *next* layer's best score cannot beat the current k-th
        (layer minima are non-decreasing, so one layer of lookahead
        suffices for linear minimization).
        """
        if k <= 0:
            raise ValueError("k must be positive")
        k = min(k, len(self.points))
        wv = np.asarray(w, dtype=np.float64)
        candidates: list[tuple[float, int]] = []
        scanned = 0
        for layer in self.layers:
            scanned += 1
            scores = self.points[layer] @ wv
            candidates.extend(zip(scores.tolist(), layer.tolist()))
            if len(candidates) >= k:
                candidates.sort()
                kth_score = candidates[k - 1][0]
                nxt = scanned
                if nxt >= len(self.layers):
                    break
                next_best = float(
                    np.min(self.points[self.layers[nxt]] @ wv))
                if next_best >= kth_score:
                    break
        self.last_layers_scanned = scanned
        candidates.sort()
        return np.asarray([pid for _, pid in candidates[:k]],
                          dtype=np.int64)
