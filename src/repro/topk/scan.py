"""Sequential-scan top-k: the O(n·d) oracle.

Simple, fully vectorized, and used both as a baseline in the ablation
benchmarks and as the ground truth the R-tree engines are tested
against.  Tie-breaking is deterministic: equal scores are ordered by
point id, matching Definition 1's "only one of them is randomly
returned" with a fixed choice.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.vectors import score, score_many

#: Tie tolerance for rank computations.  Scores within RANK_EPS of the
#: query point's score count as ties and resolve in the query point's
#: favour.  This keeps rank computations consistent across the
#: different (BLAS-path-dependent) ways the library evaluates
#: ``f(w, p)``: bit-identical inputs can differ by ~1e-17 between a
#: matrix product and a dot product.
RANK_EPS = 1e-12


def topk_scan(points, w, k: int) -> np.ndarray:
    """Ids of the k best-scoring rows of ``points`` under ``w``.

    Returns ids sorted by ascending ``(score, id)``.  ``k`` is clamped
    to ``len(points)``.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    pts = np.atleast_2d(np.asarray(points, dtype=np.float64))
    scores = score_many(w, pts)
    k = min(k, len(pts))
    # argpartition then stable refine: O(n + k log k).
    part = np.argpartition(scores, k - 1)[:k]
    order = np.lexsort((part, scores[part]))
    return part[order]


def kth_point_scan(points, w, k: int) -> tuple[int, float]:
    """Id and score of the k-th ranked point (1-based) under ``w``."""
    ids = topk_scan(points, w, k)
    if len(ids) < k:
        raise ValueError(f"dataset has fewer than k={k} points")
    kth = int(ids[-1])
    return kth, score(w, np.atleast_2d(points)[kth])


def rank_of_scan(points, w, q) -> int:
    """Rank of the query point ``q`` among ``points`` under ``w``.

    ``rank = 1 + |{p : f(w, p) < f(w, q) - RANK_EPS}|`` — ties resolved
    in q's favour, consistent with Definitions 2-3
    (``f(w, q) <= f(w, p)``).  ``q`` itself need not belong to
    ``points``; if it does, its own row ties with it and therefore does
    not increase the rank.
    """
    scores = score_many(w, points)
    return int(np.count_nonzero(scores < score(w, q) - RANK_EPS)) + 1
