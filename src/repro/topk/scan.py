"""Sequential-scan top-k: the O(n·d) oracle.

Simple, fully vectorized, and used both as a baseline in the ablation
benchmarks and as the ground truth the R-tree engines are tested
against.  Tie-breaking is deterministic: equal scores are ordered by
point id, matching Definition 1's "only one of them is randomly
returned" with a fixed choice.

The actual array work lives in :mod:`repro.engine.kernels` (the
library's single score/rank kernel module); these free functions are
kept as the stable, historically-named entry points.
"""

from __future__ import annotations

import numpy as np

from repro.engine.kernels import RANK_EPS, rank_of, topk_ids
from repro.geometry.vectors import score

__all__ = ["RANK_EPS", "topk_scan", "kth_point_scan", "rank_of_scan"]


def topk_scan(points, w, k: int) -> np.ndarray:
    """Ids of the k best-scoring rows of ``points`` under ``w``.

    Returns ids sorted by ascending ``(score, id)``.  ``k`` is clamped
    to ``len(points)``.
    """
    return topk_ids(points, w, k)


def kth_point_scan(points, w, k: int) -> tuple[int, float]:
    """Id and score of the k-th ranked point (1-based) under ``w``."""
    ids = topk_scan(points, w, k)
    if len(ids) < k:
        raise ValueError(f"dataset has fewer than k={k} points")
    kth = int(ids[-1])
    return kth, score(w, np.atleast_2d(points)[kth])


def rank_of_scan(points, w, q) -> int:
    """Rank of the query point ``q`` among ``points`` under ``w``.

    ``rank = 1 + |{p : f(w, p) < f(w, q) - RANK_EPS}|`` — ties resolved
    in q's favour, consistent with Definitions 2-3
    (``f(w, q) <= f(w, p)``).  ``q`` itself need not belong to
    ``points``; if it does, its own row ties with it and therefore does
    not increase the rank.
    """
    return rank_of(points, w, q)
