"""Threshold Algorithm (TA) top-k engine [Fagin et al., PODS 2001].

The classic sorted-list engine the top-k literature (and the paper's
related work, via PREFER/LPTA [11, 18, 19]) builds on: one list per
dimension, each sorted ascending (smaller is better here), consumed
round-robin under sorted access.  After each row the *threshold*
``t = f(w, (l_1, ..., l_d))`` — the score of the last value seen in
each list — lower-bounds every unseen point's score, so the scan can
stop as soon as ``k`` seen points score at or below ``t``.

TA is instance-optimal among algorithms using sorted + random access.
In this library it serves as a third independent top-k oracle (next to
the sequential scan and BRS) and as the engine of the view-based
related work; the test suite cross-checks all three on identical
workloads.
"""

from __future__ import annotations

import heapq

import numpy as np


class TAEngine:
    """Threshold-Algorithm top-k over per-dimension sorted lists.

    Parameters
    ----------
    points:
        The dataset ``P`` of shape ``(n, d)``.  The constructor builds
        the d sorted access lists (ids ordered by that dimension's
        value), the index a real deployment would maintain.
    """

    def __init__(self, points):
        pts = np.atleast_2d(np.asarray(points, dtype=np.float64))
        if pts.shape[0] == 0:
            raise ValueError("TAEngine requires a non-empty dataset")
        self.points = pts
        self.n, self.dim = pts.shape
        # sorted_ids[j] lists point ids by ascending j-th coordinate.
        self.sorted_ids = np.argsort(pts, axis=0, kind="stable")
        #: Sorted accesses performed by the last query (cost metric).
        self.last_sorted_accesses = 0

    def topk(self, w, k: int) -> np.ndarray:
        """Ids of the k best points under ``w`` (ascending score).

        Dimensions with zero weight are skipped entirely — their
        lists cannot advance the threshold.
        """
        if k <= 0:
            raise ValueError("k must be positive")
        k = min(k, self.n)
        wv = np.asarray(w, dtype=np.float64)
        if wv.shape[0] != self.dim:
            raise ValueError("weight dimensionality mismatch")
        active = np.nonzero(wv > 0)[0]
        if len(active) == 0:
            # All-zero weight: every point ties at score 0.
            return np.arange(k, dtype=np.int64)

        seen: set[int] = set()
        # Max-heap (negated scores) of the best k candidates so far.
        best: list[tuple[float, int]] = []
        accesses = 0
        for depth in range(self.n):
            last_values = np.empty(len(active))
            for j_pos, j in enumerate(active):
                pid = int(self.sorted_ids[depth, j])
                accesses += 1
                last_values[j_pos] = self.points[pid, j]
                if pid not in seen:
                    seen.add(pid)
                    score = float(wv @ self.points[pid])
                    if len(best) < k:
                        heapq.heappush(best, (-score, pid))
                    elif score < -best[0][0]:
                        heapq.heapreplace(best, (-score, pid))
            threshold = float(wv[active] @ last_values)
            if len(best) == k and -best[0][0] <= threshold:
                break
        self.last_sorted_accesses = accesses
        ranked = sorted(((-neg, pid) for neg, pid in best),
                        key=lambda t: (t[0], t[1]))
        return np.asarray([pid for _, pid in ranked], dtype=np.int64)

    def kth_point(self, w, k: int) -> tuple[int, float]:
        """Id and score of the k-th ranked point under ``w``."""
        ids = self.topk(w, k)
        if len(ids) < k:
            raise ValueError(f"dataset has fewer than k={k} points")
        pid = int(ids[-1])
        return pid, float(np.asarray(w, dtype=np.float64)
                          @ self.points[pid])
