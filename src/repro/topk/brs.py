"""Branch-and-bound Ranked Search (BRS) over the R-tree.

BRS [Tao et al., Inf. Syst. 2007] answers a top-k query by best-first
traversal of the R-tree: a min-heap keyed by the lower bound of each
entry's score (lower MBR corner dotted with the weighting vector; exact
score for points).  Every de-heaped *point* is the next point in rank
order, which makes the traversal progressive — exactly the property
Algorithm 1 of the paper exploits to fetch "the top k-th point" of each
why-not weighting vector, and that the explanation phase uses to stream
all points ranked above ``q``.
"""

from __future__ import annotations

import heapq
from collections.abc import Iterator

import numpy as np

from repro.index.rtree import Node, RTree
from repro.topk.scan import RANK_EPS


class BRSEngine:
    """Best-first ranked retrieval bound to one :class:`RTree`.

    The engine is stateless between calls; each query builds a fresh
    heap.  Heap entries are ``(key, tie, kind, payload)`` where ``kind``
    0 = point, 1 = node, so that at equal keys points pop before nodes
    (a point with score equal to a node's lower bound can never be
    outranked by that subtree) and ties stay deterministic.
    """

    def __init__(self, tree: RTree):
        self.tree = tree

    # ------------------------------------------------------------------

    def iter_ranked(self, w) -> Iterator[tuple[int, float]]:
        """Yield ``(point_id, score)`` in ascending rank order.

        The traversal is lazy: consuming only ``k`` results touches only
        the nodes whose MBR lower-bound beats the k-th score — BRS's
        I/O-optimality argument.
        """
        wv = np.asarray(w, dtype=np.float64)
        tree = self.tree
        counter = 0
        root_key = tree.root.mbr.min_score(wv)
        heap: list[tuple[float, int, int, object]] = [
            (root_key, counter, 1, tree.root)]
        while heap:
            key, _, kind, payload = heapq.heappop(heap)
            if kind == 0:
                yield int(payload), float(key)
                continue
            node: Node = payload  # type: ignore[assignment]
            tree.record_access(node)
            if node.is_leaf:
                scores = node.child_lowers @ wv
                for pid, sc in zip(node.point_ids, scores):
                    counter += 1
                    heapq.heappush(heap, (float(sc), pid, 0, pid))
            else:
                keys = node.child_lowers @ wv
                for child, child_key in zip(node.children, keys):
                    counter += 1
                    heapq.heappush(
                        heap, (float(child_key), counter, 1, child))

    # ------------------------------------------------------------------

    def topk(self, w, k: int) -> np.ndarray:
        """Ids of the top-k points under ``w`` (ascending rank)."""
        if k <= 0:
            raise ValueError("k must be positive")
        out = []
        for pid, _ in self.iter_ranked(w):
            out.append(pid)
            if len(out) == k:
                break
        return np.asarray(out, dtype=np.int64)

    def kth_point(self, w, k: int) -> tuple[int, float]:
        """Id and score of the k-th ranked point under ``w``.

        This is lines 1-12 of the paper's Algorithm 1 (MQP) for a single
        why-not weighting vector.

        Ties at the k-th score resolve by ascending id — the library's
        ``(score, id)`` convention (see ``topk_ids``) — not by heap
        emission order, which interleaves push counters with point ids
        and is no deterministic function of the data.  Emissions arrive
        in non-decreasing score order, so the traversal only runs past
        the k-th emission while scores stay exactly equal to it.
        """
        run: list[int] = []        # ids of the current equal-score run
        run_score: float | None = None
        n_before_run = 0           # emissions strictly below the run
        for count, (pid, sc) in enumerate(self.iter_ranked(w), start=1):
            if run_score is None or sc != run_score:
                if count > k:
                    break          # the run holding rank k just ended
                n_before_run = count - 1
                run = [pid]
                run_score = sc
            else:
                run.append(pid)
        if run_score is None or n_before_run + len(run) < k:
            raise ValueError(f"dataset has fewer than k={k} points")
        return sorted(run)[k - 1 - n_before_run], run_score

    def rank_of(self, w, q) -> int:
        """Rank of external point ``q``: 1 + #points scoring strictly
        less.

        Stops the progressive traversal as soon as scores reach
        ``f(w, q)``, so low ranks are cheap.
        """
        target = float(np.dot(np.asarray(w, dtype=np.float64),
                              np.asarray(q, dtype=np.float64)))
        rank = 1
        for _, sc in self.iter_ranked(w):
            if sc >= target - RANK_EPS:
                break
            rank += 1
        return rank
