"""Progressive top-k helpers built on either engine.

These free functions pick the right engine automatically: when an
:class:`~repro.index.rtree.RTree` is supplied they run BRS; otherwise
they fall back to the sequential scan.  They are the entry points the
why-not *explanation* (Section 3, aspect (i)) and the rank computations
of MWK use.
"""

from __future__ import annotations

import numpy as np

from repro.index.rtree import RTree
from repro.topk.brs import BRSEngine
from repro.topk.scan import RANK_EPS, rank_of_scan, topk_scan


def progressive_topk(source, w, *, until_score: float | None = None,
                     limit: int | None = None):
    """Yield ``(point_id, score)`` in rank order from ``source``.

    Parameters
    ----------
    source:
        Either an :class:`RTree` or an ``(n, d)`` point array.
    w:
        Weighting vector.
    until_score:
        Stop (exclusive) once scores reach this value — the paper's
        "proceed until the query point q is contained in the result".
    limit:
        Stop after this many results.
    """
    if isinstance(source, RTree):
        iterator = BRSEngine(source).iter_ranked(w)
    else:
        pts = np.atleast_2d(np.asarray(source, dtype=np.float64))
        order = topk_scan(pts, w, len(pts))
        scores = pts[order] @ np.asarray(w, dtype=np.float64)
        iterator = ((int(pid), float(sc))
                    for pid, sc in zip(order, scores))
    emitted = 0
    for pid, sc in iterator:
        if until_score is not None and sc >= until_score - RANK_EPS:
            return
        yield pid, sc
        emitted += 1
        if limit is not None and emitted >= limit:
            return


def rank_of_point(source, w, q) -> int:
    """Rank of external point ``q`` under ``w`` (ties favour ``q``)."""
    if isinstance(source, RTree):
        return BRSEngine(source).rank_of(w, q)
    return rank_of_scan(source, w, q)
