"""Terminal visualization helpers (no plotting dependencies).

The paper communicates its geometry with 2-D figures (data space with
safe regions, the weighting segment of Figure 2(b)) and its evaluation
with log-scale time curves.  These helpers render the same pictures as
Unicode text so examples and the CLI can show them anywhere:

* :func:`render_plane` — scatter a 2-D dataset, the query point, and
  optionally a safe-region polygon into a character grid;
* :func:`render_intervals` — the monochromatic result segment;
* :func:`render_curve` — one log-scale series per algorithm (the
  shape of a figure panel).
"""

from __future__ import annotations

import math

import numpy as np

_POINT, _QUERY, _REGION, _BOTH = "·", "Q", "░", "▒"


def render_plane(points, q, *, polygon=None, width: int = 48,
                 height: int = 20, lower=None, upper=None) -> str:
    """ASCII scatter of a 2-D dataset with the query point.

    Parameters
    ----------
    points:
        ``(n, 2)`` array.
    q:
        Query point (rendered as ``Q``).
    polygon:
        Optional :class:`repro.geometry.convex2d.Polygon2D`; cells
        inside it are shaded.
    width, height:
        Grid size in characters.
    lower, upper:
        View box; defaults to the data's bounding box (plus q).
    """
    pts = np.atleast_2d(np.asarray(points, dtype=np.float64))
    qv = np.asarray(q, dtype=np.float64)
    if pts.shape[1] != 2:
        raise ValueError("render_plane requires 2-D data")
    every = np.vstack([pts, qv])
    lo = np.asarray(lower, dtype=np.float64) if lower is not None \
        else every.min(axis=0)
    hi = np.asarray(upper, dtype=np.float64) if upper is not None \
        else every.max(axis=0)
    span = np.where(hi > lo, hi - lo, 1.0)

    grid = [[" "] * width for _ in range(height)]

    def cell_of(xy):
        cx = int((xy[0] - lo[0]) / span[0] * (width - 1))
        cy = int((xy[1] - lo[1]) / span[1] * (height - 1))
        return (min(max(cy, 0), height - 1), min(max(cx, 0), width - 1))

    if polygon is not None and not polygon.is_empty:
        for row in range(height):
            for col in range(width):
                x = lo[0] + (col + 0.5) / width * span[0]
                y = lo[1] + (row + 0.5) / height * span[1]
                if polygon.contains((x, y)):
                    grid[row][col] = _REGION

    for p in pts:
        r, c = cell_of(p)
        grid[r][c] = _BOTH if grid[r][c] == _REGION else _POINT

    r, c = cell_of(qv)
    grid[r][c] = _QUERY

    # y grows upward: print rows in reverse.
    lines = ["".join(row) for row in reversed(grid)]
    frame = ["+" + "-" * width + "+"]
    out = frame + ["|" + line + "|" for line in lines] + frame
    out.append(f"x: [{lo[0]:.3g}, {hi[0]:.3g}]  "
               f"y: [{lo[1]:.3g}, {hi[1]:.3g}]  "
               f"Q = ({qv[0]:.3g}, {qv[1]:.3g})")
    return "\n".join(out)


def render_intervals(intervals, *, width: int = 60,
                     marks=None) -> str:
    """The monochromatic result segment (Figure 2(b), in text).

    ``intervals`` is the list returned by
    :func:`repro.rtopk.mono.mrtopk_2d`; ``marks`` maps labels to
    ``w1`` values (e.g. why-not vectors) drawn above the bar.
    """
    bar = [" "] * width

    def col_of(w1: float) -> int:
        return min(max(int(w1 * (width - 1)), 0), width - 1)

    for iv in intervals:
        for col in range(col_of(iv.lo), col_of(iv.hi) + 1):
            bar[col] = "█"
    lines = []
    if marks:
        label_row = [" "] * width
        for label, w1 in marks.items():
            col = col_of(float(w1))
            label_row[col] = str(label)[0]
        lines.append("".join(label_row))
    lines.append("".join(bar))
    lines.append("0" + " " * (width - 2) + "1")
    lines.append("w1 (weight on the first attribute)")
    return "\n".join(lines)


def render_curve(series: dict, xs, *, width: int = 60,
                 height: int = 12, logy: bool = True,
                 title: str = "") -> str:
    """One text panel of a figure: x-indexed series per algorithm.

    Parameters
    ----------
    series:
        Mapping label -> list of y values (same length as ``xs``).
    xs:
        The swept parameter values (ticks).
    logy:
        Log-scale y like the paper's running-time axes.
    """
    labels = list(series)
    if not labels:
        raise ValueError("no series to plot")
    ys = np.array([series[label] for label in labels],
                  dtype=np.float64)
    if ys.shape[1] != len(list(xs)):
        raise ValueError("series lengths must match xs")
    vals = np.log10(np.maximum(ys, 1e-12)) if logy else ys
    v_lo, v_hi = float(vals.min()), float(vals.max())
    if v_hi <= v_lo:
        v_hi = v_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    n_pts = ys.shape[1]
    for s_idx, label in enumerate(labels):
        glyph = label[0]
        for j in range(n_pts):
            col = int(j / max(n_pts - 1, 1) * (width - 1))
            frac = (vals[s_idx, j] - v_lo) / (v_hi - v_lo)
            row = int(frac * (height - 1))
            grid[height - 1 - row][col] = glyph
    lines = [title] if title else []
    lines += ["".join(row) for row in grid]
    ticks = "  ".join(str(x) for x in xs)
    lines.append("-" * width)
    lines.append(f"x: {ticks}")
    if logy:
        lines.append(f"y: log10 scale in [{10 ** v_lo:.2e}, "
                     f"{10 ** v_hi:.2e}]")
    legend = "  ".join(f"{label[0]}={label}" for label in labels)
    lines.append(f"legend: {legend}")
    return "\n".join(lines)


def format_markdown_table(rows: list[dict], columns: list[str], *,
                          floatfmt: str = ".3f") -> str:
    """Render dict rows as a GitHub-markdown table (EXPERIMENTS.md)."""
    if not rows:
        return "(no rows)"

    def fmt(value):
        if isinstance(value, float):
            return format(value, floatfmt)
        return str(value)

    header = "| " + " | ".join(columns) + " |"
    rule = "|" + "|".join("---" for _ in columns) + "|"
    body = ["| " + " | ".join(fmt(r.get(c, ""))
                              for c in columns) + " |"
            for r in rows]
    return "\n".join([header, rule] + body)


def log_interpolate(value: float) -> int:
    """Bucket a positive value onto a small log scale (test helper)."""
    return int(math.floor(math.log10(max(value, 1e-12))))
