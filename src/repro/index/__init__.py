"""Spatial indexing substrate: a from-scratch R-tree.

The paper's algorithms (BRS top-k, ``FindIncom``) are framed as
branch-and-bound traversals of an R-tree ``RT`` over the product
dataset ``P``; their cost analyses are stated in terms of ``|RT|``.
This package provides:

* :mod:`repro.index.mbr` — minimum bounding rectangles and the
  dominance / score lower-bound predicates the traversals prune with.
* :mod:`repro.index.rtree` — the R-tree itself, with Sort-Tile-Recursive
  bulk loading (the default for static datasets), incremental insertion
  with quadratic split, and node-access statistics.
"""

from repro.index.mbr import MBR
from repro.index.rtree import RTree, RTreeStats

__all__ = ["MBR", "RTree", "RTreeStats"]
